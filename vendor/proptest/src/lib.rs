//! Offline vendored subset of the `proptest` API.
//!
//! The workspace builds without crates.io access, so this crate provides the
//! slice of proptest the test-suite uses: the [`Strategy`] trait,
//! `any::<T>()`, range/tuple/collection/string-pattern strategies,
//! [`prop_oneof!`], [`Just`], and the [`proptest!`] / [`prop_assert!`] /
//! [`prop_assert_eq!`] macros.
//!
//! Semantics: each `proptest!` test runs `PROPTEST_CASES` (default 64)
//! random cases from a deterministic per-test seed. There is **no
//! shrinking** — a failing case reports its inputs and case number instead.
//! `*.proptest-regressions` files are ignored.

// Vendored stand-in: mirrors the upstream API surface, so pedantic
// lints about API shape do not apply here.
#![allow(
    clippy::type_complexity,
    clippy::should_implement_trait,
    clippy::new_without_default
)]

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The RNG driving test-case generation.
pub struct TestRng(StdRng);

impl TestRng {
    /// Deterministic RNG for one test case: hash of test name + case index.
    pub fn for_case(test_name: &str, case: u64) -> TestRng {
        // FNV-1a over the name, mixed with the case index.
        let mut h: u64 = 0xcbf29ce484222325;
        for b in test_name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
        TestRng(StdRng::seed_from_u64(
            h ^ case.wrapping_mul(0x9e3779b97f4a7c15),
        ))
    }

    /// Uniform draw in `[0, n)`.
    pub fn below(&mut self, n: usize) -> usize {
        self.0.gen_range(0..n.max(1))
    }

    /// Raw 64 random bits.
    pub fn bits(&mut self) -> u64 {
        use rand::RngCore;
        self.0.next_u64()
    }
}

/// Number of cases per `proptest!` test (`PROPTEST_CASES` env override).
pub fn cases() -> u64 {
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(64)
}

/// A generator of test values (no shrinking in this vendored subset).
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// A [`Strategy::prop_map`] adapter.
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;

    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// Strategy producing one fixed value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// Draws an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// The `any::<T>()` strategy.
pub struct Any<T>(std::marker::PhantomData<T>);

/// Uniform strategy over all values of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.bits() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.bits() & 1 == 1
    }
}

impl<T: Arbitrary + Default + Copy, const N: usize> Arbitrary for [T; N] {
    fn arbitrary(rng: &mut TestRng) -> [T; N] {
        let mut out = [T::default(); N];
        for slot in &mut out {
            *slot = T::arbitrary(rng);
        }
        out
    }
}

// Integer ranges are strategies.
macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.0.gen_range(self.clone())
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.0.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

// Simplified regex string patterns are strategies: literals, `[class]`
// char classes (with `a-z` ranges), and `{n}` / `{m,n}` / `*` / `+` / `?`
// quantifiers — the subset this workspace's tests use.
impl Strategy for &'static str {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        generate_pattern(self, rng)
    }
}

fn generate_pattern(pattern: &str, rng: &mut TestRng) -> String {
    let chars: Vec<char> = pattern.chars().collect();
    let mut out = String::new();
    let mut i = 0;
    while i < chars.len() {
        // One atom: a char class or a literal.
        let class: Vec<char>;
        match chars[i] {
            '[' => {
                let close = chars[i..]
                    .iter()
                    .position(|&c| c == ']')
                    .map(|p| i + p)
                    .unwrap_or_else(|| panic!("unclosed [ in pattern {pattern:?}"));
                class = expand_class(&chars[i + 1..close], pattern);
                i = close + 1;
            }
            '\\' => {
                class = vec![*chars.get(i + 1).expect("dangling escape")];
                i += 2;
            }
            c => {
                class = vec![c];
                i += 1;
            }
        }
        // Optional quantifier.
        let (lo, hi) = match chars.get(i) {
            Some('{') => {
                let close = chars[i..]
                    .iter()
                    .position(|&c| c == '}')
                    .map(|p| i + p)
                    .unwrap_or_else(|| panic!("unclosed {{ in pattern {pattern:?}"));
                let body: String = chars[i + 1..close].iter().collect();
                i = close + 1;
                match body.split_once(',') {
                    Some((lo, hi)) => (
                        lo.trim().parse().expect("bad quantifier"),
                        hi.trim().parse().expect("bad quantifier"),
                    ),
                    None => {
                        let n: usize = body.trim().parse().expect("bad quantifier");
                        (n, n)
                    }
                }
            }
            Some('*') => {
                i += 1;
                (0, 8)
            }
            Some('+') => {
                i += 1;
                (1, 8)
            }
            Some('?') => {
                i += 1;
                (0, 1)
            }
            _ => (1, 1),
        };
        let n = lo + rng.below(hi - lo + 1);
        for _ in 0..n {
            out.push(class[rng.below(class.len())]);
        }
    }
    out
}

fn expand_class(body: &[char], pattern: &str) -> Vec<char> {
    let mut class = Vec::new();
    let mut j = 0;
    while j < body.len() {
        if j + 2 < body.len() && body[j + 1] == '-' {
            let (lo, hi) = (body[j] as u32, body[j + 2] as u32);
            assert!(lo <= hi, "bad class range in {pattern:?}");
            class.extend((lo..=hi).filter_map(char::from_u32));
            j += 3;
        } else {
            class.push(body[j]);
            j += 1;
        }
    }
    assert!(!class.is_empty(), "empty char class in {pattern:?}");
    class
}

// Tuples of strategies are strategies.
macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);

/// Union of same-valued strategies — the engine behind [`prop_oneof!`].
pub struct Union<V> {
    arms: Vec<Box<dyn Fn(&mut TestRng) -> V>>,
}

impl<V> Union<V> {
    /// An empty union (never sample this directly).
    pub fn new() -> Self {
        Union { arms: Vec::new() }
    }

    /// Adds an arm.
    pub fn or(mut self, s: impl Strategy<Value = V> + 'static) -> Self {
        self.arms.push(Box::new(move |rng| s.generate(rng)));
        self
    }
}

impl<V> Default for Union<V> {
    fn default() -> Self {
        Self::new()
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;

    fn generate(&self, rng: &mut TestRng) -> V {
        assert!(!self.arms.is_empty(), "prop_oneof! needs at least one arm");
        self.arms[rng.below(self.arms.len())](rng)
    }
}

/// Collection strategies (`prop::collection`).
pub mod collection {
    use super::{Strategy, TestRng};
    use std::collections::BTreeSet;

    /// `Vec` of values from `element`, with length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: core::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    /// Strategy for vectors.
    pub struct VecStrategy<S> {
        element: S,
        size: core::ops::Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = self.size.end.saturating_sub(self.size.start).max(1);
            let n = self.size.start + rng.below(span);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// `BTreeSet` of values; duplicates shrink the final size, exactly as
    /// in upstream proptest.
    pub fn btree_set<S: Strategy>(element: S, size: core::ops::Range<usize>) -> BTreeSetStrategy<S>
    where
        S::Value: Ord,
    {
        BTreeSetStrategy { element, size }
    }

    /// Strategy for ordered sets.
    pub struct BTreeSetStrategy<S> {
        element: S,
        size: core::ops::Range<usize>,
    }

    impl<S: Strategy> Strategy for BTreeSetStrategy<S>
    where
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> BTreeSet<S::Value> {
            let span = self.size.end.saturating_sub(self.size.start).max(1);
            let n = self.size.start + rng.below(span);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Sampling helpers (`prop::sample`).
pub mod sample {
    use super::{Arbitrary, TestRng};

    /// An index into a collection whose length is only known at use time.
    #[derive(Clone, Copy, Debug)]
    pub struct Index(u64);

    impl Index {
        /// Resolves the index against a concrete length.
        ///
        /// # Panics
        ///
        /// Panics if `len` is zero.
        pub fn index(&self, len: usize) -> usize {
            assert!(len > 0, "Index::index on empty collection");
            (self.0 % len as u64) as usize
        }
    }

    impl Arbitrary for Index {
        fn arbitrary(rng: &mut TestRng) -> Index {
            Index(rng.bits())
        }
    }
}

/// Everything a test file needs.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, Just, Strategy,
    };

    /// The `prop::` module alias used by idiomatic proptest imports.
    pub mod prop {
        pub use crate::collection;
        pub use crate::sample;
    }
}

/// Picks a random arm each case (no weights in this vendored subset).
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        {
            let u = $crate::Union::new();
            $(let u = u.or($arm);)+
            u
        }
    };
}

/// Asserts inside a `proptest!` body; failure aborts the case with context.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return Err(format!("assertion failed: {}", stringify!($cond)));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return Err(format!($($fmt)+));
        }
    };
}

/// Equality assertion inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {
        {
            let (l, r) = (&$left, &$right);
            if !(*l == *r) {
                return Err(format!(
                    "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
                    stringify!($left), stringify!($right), l, r
                ));
            }
        }
    };
    ($left:expr, $right:expr, $($fmt:tt)+) => {
        {
            let (l, r) = (&$left, &$right);
            if !(*l == *r) {
                return Err(format!(
                    "{}\n  left: {:?}\n right: {:?}",
                    format!($($fmt)+), l, r
                ));
            }
        }
    };
}

/// Inequality assertion inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if *l == *r {
            return Err(format!(
                "assertion failed: {} != {}\n  both: {:?}",
                stringify!($left),
                stringify!($right),
                l
            ));
        }
    }};
}

/// Declares property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running [`cases`] random cases.
#[macro_export]
macro_rules! proptest {
    ($(
        $(#[$attr:meta])*
        fn $name:ident ( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
    )*) => {$(
        $(#[$attr])*
        fn $name() {
            for case in 0..$crate::cases() {
                let mut rng = $crate::TestRng::for_case(stringify!($name), case);
                let outcome = (|| -> ::core::result::Result<(), ::std::string::String> {
                    $(let $arg = $crate::Strategy::generate(&($strat), &mut rng);)+
                    $body
                    #[allow(unreachable_code)]
                    Ok(())
                })();
                if let Err(message) = outcome {
                    panic!("proptest {} failed on case {}:\n{}", stringify!($name), case, message);
                }
            }
        }
    )*};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn patterns_generate_within_spec() {
        let mut rng = crate::TestRng::for_case("patterns", 0);
        for _ in 0..50 {
            let s = crate::Strategy::generate(&"[a-z]{2,5}", &mut rng);
            assert!((2..=5).contains(&s.len()), "{s:?}");
            assert!(s.chars().all(|c| c.is_ascii_lowercase()));
            let t = crate::Strategy::generate(&"[a-zA-Z0-9 ._-]{0,40}", &mut rng);
            assert!(t.len() <= 40);
        }
    }

    proptest! {
        #[test]
        fn ranges_in_bounds(x in 3u32..9, y in 0usize..4) {
            prop_assert!((3..9).contains(&x));
            prop_assert!(y < 4);
        }

        #[test]
        fn collections_respect_sizes(
            v in prop::collection::vec(any::<u8>(), 2..6),
            s in prop::collection::btree_set(0u32..100, 0..10),
        ) {
            prop_assert!((2..6).contains(&v.len()));
            prop_assert!(s.len() < 10);
        }

        #[test]
        fn oneof_and_map_compose(x in prop_oneof![Just(1u32), Just(2u32), 10u32..20]) {
            prop_assert!(x == 1 || x == 2 || (10..20).contains(&x));
        }

        #[test]
        fn index_resolves(ix in any::<prop::sample::Index>(), len in 1usize..50) {
            prop_assert!(ix.index(len) < len);
        }
    }
}
