//! Offline vendored subset of the `criterion` API.
//!
//! Provides the types and macros the workspace's benches use —
//! [`Criterion`], [`BenchmarkGroup`], [`Throughput`], [`criterion_group!`],
//! [`criterion_main!`] — with a simple fixed-sample timing loop instead of
//! criterion's statistical machinery. Results print as
//! `bench_name ... mean ± spread per iter (throughput)` on stdout.

// Vendored stand-in: mirrors the upstream API surface, so pedantic
// lints about API shape do not apply here.
#![allow(
    clippy::type_complexity,
    clippy::should_implement_trait,
    clippy::new_without_default
)]

use std::time::{Duration, Instant};

/// Work-per-iteration declaration, used to report rates.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Logical elements processed per iteration.
    Elements(u64),
}

/// Prevents the optimizer from discarding a value (re-export shim).
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// The benchmark driver.
#[derive(Default)]
pub struct Criterion {
    _priv: (),
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 20,
            throughput: None,
            _criterion: self,
        }
    }

    /// Runs one stand-alone benchmark.
    pub fn bench_function(
        &mut self,
        name: impl Into<String>,
        f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let name = name.into();
        let mut group = self.benchmark_group(name.clone());
        group.bench_function(name, f);
        group.finish();
        self
    }
}

/// A group of benchmarks sharing sample-size and throughput settings.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Declares the work done per iteration.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Times one benchmark.
    pub fn bench_function(
        &mut self,
        id: impl Into<String>,
        mut f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let id = id.into();
        let mut bencher = Bencher {
            samples: Vec::new(),
            sample_size: self.sample_size,
        };
        f(&mut bencher);
        let mut samples = bencher.samples;
        if samples.is_empty() {
            println!("{}/{}: no samples recorded", self.name, id);
            return self;
        }
        samples.sort_unstable();
        let mean: Duration = samples.iter().sum::<Duration>() / samples.len() as u32;
        let median = samples[samples.len() / 2];
        let rate = self.throughput.map(|t| {
            let per_sec = |units: u64| units as f64 / mean.as_secs_f64().max(1e-12);
            match t {
                Throughput::Bytes(b) => format!(" ({:.1} MiB/s)", per_sec(b) / (1 << 20) as f64),
                Throughput::Elements(e) => format!(" ({:.0} elem/s)", per_sec(e)),
            }
        });
        println!(
            "{}/{}: mean {:?}, median {:?} over {} samples{}",
            self.name,
            id,
            mean,
            median,
            samples.len(),
            rate.unwrap_or_default()
        );
        self
    }

    /// Ends the group (printing happens per benchmark; nothing to flush).
    pub fn finish(&mut self) {}
}

/// Collects timed samples of a closure.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Times `f`, recording `sample_size` samples (plus one warm-up call).
    pub fn iter<O>(&mut self, mut f: impl FnMut() -> O) {
        std::hint::black_box(f());
        for _ in 0..self.sample_size {
            let start = Instant::now();
            std::hint::black_box(f());
            self.samples.push(start.elapsed());
        }
    }
}

/// Bundles benchmark functions under one name.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emits `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timing_loop_runs_and_reports() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("selftest");
        group.sample_size(3);
        group.throughput(Throughput::Elements(10));
        let mut calls = 0u32;
        group.bench_function("count", |b| b.iter(|| calls += 1));
        group.finish();
        assert_eq!(calls, 4, "warm-up + 3 samples");
    }
}
