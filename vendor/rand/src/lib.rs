//! Offline vendored subset of the `rand` 0.8 API.
//!
//! This workspace builds in environments with no crates.io access, so the
//! external `rand` crate is replaced by this path dependency. It implements
//! exactly the surface the workspace uses — [`Rng::gen_range`],
//! [`Rng::gen_bool`], [`SeedableRng::seed_from_u64`] and the [`rngs::StdRng`]
//! / [`rngs::SmallRng`] generators — with the same trait shapes, so switching
//! back to the real crate is a one-line `Cargo.toml` change.
//!
//! The generator is xoshiro256++ seeded through SplitMix64: a small,
//! well-studied PRNG with 256 bits of state, statistically strong enough for
//! every simulation in this repository. Note the *streams differ* from the
//! real `rand::rngs::StdRng` (ChaCha12); all experiment seeds in this repo
//! are self-consistent but not comparable to runs made with upstream rand.

// Vendored stand-in: mirrors the upstream API surface, so pedantic
// lints about API shape do not apply here.
#![allow(
    clippy::type_complexity,
    clippy::should_implement_trait,
    clippy::new_without_default
)]

/// Low-level source of randomness (subset of `rand_core::RngCore`).
pub trait RngCore {
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]);
}

/// A generator that can be instantiated from a seed.
pub trait SeedableRng: Sized {
    /// The raw seed type.
    type Seed: Sized + Default + AsMut<[u8]>;

    /// Builds the generator from a raw seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Builds the generator from a `u64`, expanding it with SplitMix64
    /// (the same construction the real rand crate documents).
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            let x = splitmix64(&mut state);
            for (b, s) in chunk.iter_mut().zip(x.to_le_bytes()) {
                *b = s;
            }
        }
        Self::from_seed(seed)
    }
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// User-facing convenience methods (subset of `rand::Rng`).
pub trait Rng: RngCore {
    /// Uniform sample from a range (`a..b` or `a..=b`).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample_from(self)
    }

    /// Bernoulli draw: `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 <= p <= 1.0`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!(
            (0.0..=1.0).contains(&p),
            "gen_bool: p must be in [0,1], got {p}"
        );
        unit_f64(self.next_u64()) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Maps 64 random bits to a uniform `f64` in `[0, 1)`.
fn unit_f64(bits: u64) -> f64 {
    // 53 high bits → the standard open-interval construction.
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Ranges that [`Rng::gen_range`] accepts (subset of
/// `rand::distributions::uniform::SampleRange`).
pub trait SampleRange<T> {
    /// Draws a uniform sample from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Unbiased-enough uniform integer in `[0, span)` via 128-bit widening
/// multiply (Lemire's multiply-shift; bias ≤ span/2⁶⁴, far below any
/// statistical test in this workspace).
fn uniform_u64<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    ((rng.next_u64() as u128 * span as u128) >> 64) as u64
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start + uniform_u64(rng, span) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                if span == 0 {
                    // Full u64 domain: every draw is in range.
                    return rng.next_u64() as $t;
                }
                lo + uniform_u64(rng, span) as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize);

macro_rules! impl_signed_range {
    ($($t:ty => $u:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as $u).wrapping_sub(self.start as $u) as u64;
                self.start.wrapping_add(uniform_u64(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = ((hi as $u).wrapping_sub(lo as $u) as u64).wrapping_add(1);
                if span == 0 {
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(uniform_u64(rng, span) as $t)
            }
        }
    )*};
}

impl_signed_range!(i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize);

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range: empty range");
        let u = unit_f64(rng.next_u64());
        let v = self.start + u * (self.end - self.start);
        // Guard against rounding up to the excluded endpoint.
        if v >= self.end {
            self.end - (self.end - self.start) * f64::EPSILON
        } else {
            v
        }
    }
}

impl SampleRange<f32> for core::ops::Range<f32> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "gen_range: empty range");
        let u = unit_f64(rng.next_u64()) as f32;
        let v = self.start + u * (self.end - self.start);
        if v >= self.end {
            f32::from_bits(self.end.to_bits() - 1)
        } else {
            v
        }
    }
}

/// The bundled generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256++ — the workspace's standard generator.
    ///
    /// Not the upstream `StdRng` algorithm (ChaCha12), but the same API;
    /// see the crate docs for the compatibility note.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }

        fn fill_bytes(&mut self, dest: &mut [u8]) {
            for chunk in dest.chunks_mut(8) {
                let x = self.next_u64();
                for (b, s) in chunk.iter_mut().zip(x.to_le_bytes()) {
                    *b = s;
                }
            }
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: [u8; 32]) -> Self {
            let mut s = [0u64; 4];
            for (i, word) in s.iter_mut().enumerate() {
                let mut bytes = [0u8; 8];
                bytes.copy_from_slice(&seed[i * 8..i * 8 + 8]);
                *word = u64::from_le_bytes(bytes);
            }
            // All-zero state is the one forbidden xoshiro state.
            if s == [0; 4] {
                s = [
                    0x9e3779b97f4a7c15,
                    0x6a09e667f3bcc909,
                    0xbb67ae8584caa73b,
                    1,
                ];
            }
            StdRng { s }
        }
    }

    /// Alias: the small generator is the same xoshiro256++ here.
    pub type SmallRng = StdRng;
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        let mut c = StdRng::seed_from_u64(43);
        let xs: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..8).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x = rng.gen_range(3..17u32);
            assert!((3..17).contains(&x));
            let y = rng.gen_range(0..=5usize);
            assert!(y <= 5);
            let f = rng.gen_range(0.0..1.0);
            assert!((0.0..1.0).contains(&f));
            let s = rng.gen_range(-5..5i64);
            assert!((-5..5).contains(&s));
        }
    }

    #[test]
    fn rough_uniformity() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut buckets = [0u32; 10];
        for _ in 0..10_000 {
            buckets[rng.gen_range(0..10usize)] += 1;
        }
        for &b in &buckets {
            assert!((800..1200).contains(&b), "bucket {b} badly off uniform");
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(13);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2200..2800).contains(&hits), "p=0.25 gave {hits}/10000");
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn fill_bytes_covers_tail() {
        let mut rng = StdRng::seed_from_u64(17);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }
}
