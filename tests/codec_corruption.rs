//! Robustness battery for the binary columnar trace codec: corrupted,
//! truncated, and adversarially forged inputs must always come back as a
//! structured [`TraceIoError`] — never a panic, and never an
//! attacker-sized allocation.
//!
//! The corpus is deterministic: single-byte mutations are exhaustive
//! over every byte position (×3 XOR masks), truncations are exhaustive
//! over every strict prefix, and the random-blob fuzz corpus is drawn
//! from a fixed-seed RNG.

use edonkey_repro::proto::md4::Md4;
use edonkey_repro::proto::query::FileKind;
use edonkey_repro::trace::io::bin::{FORMAT_VERSION, HEADER_LEN, MAGIC};
use edonkey_repro::trace::io::{from_bin, to_bin};
use edonkey_repro::trace::model::{CountryCode, FileInfo, PeerInfo, TraceBuilder};
use rand::{Rng, RngCore, SeedableRng};

/// Mirror of the codec's lane-folded FNV-1a64 checksum, for forging
/// "valid" headers.
fn fnv1a64(bytes: &[u8]) -> u64 {
    const PRIME: u64 = 0x100000001b3;
    let mut h: u64 = 0xcbf29ce484222325;
    let mut lanes = bytes.chunks_exact(8);
    for lane in &mut lanes {
        h ^= u64::from_le_bytes(lane.try_into().expect("8 bytes"));
        h = h.wrapping_mul(PRIME);
    }
    for &b in lanes.remainder() {
        h ^= b as u64;
        h = h.wrapping_mul(PRIME);
    }
    h ^= bytes.len() as u64;
    h.wrapping_mul(PRIME)
}

/// A small but fully featured trace: several files and peers (with a
/// duplicate IP and a free-rider), three non-contiguous days.
fn sample_bytes() -> Vec<u8> {
    let mut b = TraceBuilder::new();
    let peers: Vec<_> = (0..5u32)
        .map(|i| {
            b.intern_peer(PeerInfo {
                uid: Md4::digest(format!("corrupt-peer-{i}").as_bytes()),
                ip: 0x0a00_0000 + (i % 2), // two addresses shared by five peers
                country: CountryCode::new("FR"),
                asn: 3215 + i,
            })
        })
        .collect();
    let files: Vec<_> = (0..8u32)
        .map(|i| {
            b.intern_file(FileInfo {
                id: Md4::digest(format!("corrupt-file-{i}").as_bytes()),
                size: 700_000 * (i as u64 + 1),
                kind: FileKind::ALL[i as usize % FileKind::ALL.len()],
            })
        })
        .collect();
    for (offset, day) in [340u32, 341, 345].into_iter().enumerate() {
        for (p, peer) in peers.iter().enumerate() {
            if p == 4 {
                b.observe(day, *peer, vec![]); // the free-rider
            } else if (p + offset) % 2 == 0 {
                let cache = files.iter().skip(p).step_by(2).copied().collect();
                b.observe(day, *peer, cache);
            }
        }
    }
    to_bin(&b.finish())
}

/// Overwrites the header checksum so forged header fields pass the
/// checksum gate and exercise the *semantic* validation behind it.
fn fix_header_checksum(bytes: &mut [u8]) {
    let sum = fnv1a64(&bytes[..HEADER_LEN as usize - 8]);
    bytes[HEADER_LEN as usize - 8..HEADER_LEN as usize].copy_from_slice(&sum.to_le_bytes());
}

#[test]
fn every_single_byte_mutation_is_detected() {
    let valid = sample_bytes();
    assert!(from_bin(&valid).is_ok(), "corpus baseline must decode");
    for pos in 0..valid.len() {
        for mask in [0x01u8, 0x80, 0xFF] {
            let mut mutated = valid.clone();
            mutated[pos] ^= mask;
            assert!(
                from_bin(&mutated).is_err(),
                "mutation at byte {pos} (xor {mask:#04x}) must be detected"
            );
        }
    }
}

#[test]
fn every_truncation_is_detected() {
    let valid = sample_bytes();
    for len in 0..valid.len() {
        assert!(
            from_bin(&valid[..len]).is_err(),
            "truncation to {len} of {} bytes must be detected",
            valid.len()
        );
    }
}

#[test]
fn trailing_garbage_is_detected() {
    let mut bytes = sample_bytes();
    bytes.push(0);
    assert!(
        from_bin(&bytes).is_err(),
        "one trailing byte must be detected"
    );
    bytes.extend_from_slice(&MAGIC);
    assert!(
        from_bin(&bytes).is_err(),
        "appended second file must be detected"
    );
}

#[test]
fn random_blobs_never_decode_and_never_panic() {
    let mut rng = rand::rngs::StdRng::seed_from_u64(0xC0DEC);
    for case in 0..256 {
        let len = rng.gen_range(0usize..512);
        let mut blob = vec![0u8; len];
        rng.fill_bytes(&mut blob);
        // Half the corpus gets the real magic so the fuzz reaches past
        // the first gate into header/section parsing.
        if case % 2 == 0 && blob.len() >= MAGIC.len() {
            blob[..MAGIC.len()].copy_from_slice(&MAGIC);
            if blob.len() > MAGIC.len() {
                blob[MAGIC.len()] = FORMAT_VERSION;
            }
        }
        assert!(
            from_bin(&blob).is_err(),
            "random blob {case} must not decode"
        );
    }
}

/// A checksum-valid header declaring 4-billion-entry tables over a
/// tiny file must fail on the count/length cross-checks — allocations
/// are sized from actual payload bytes, never from declared counts.
#[test]
fn forged_table_counts_fail_without_oom() {
    let mut bytes = sample_bytes();
    bytes[9..13].copy_from_slice(&u32::MAX.to_le_bytes()); // n_files
    fix_header_checksum(&mut bytes);
    assert!(from_bin(&bytes).is_err(), "forged n_files must be rejected");

    let mut bytes = sample_bytes();
    bytes[13..17].copy_from_slice(&u32::MAX.to_le_bytes()); // n_peers
    fix_header_checksum(&mut bytes);
    assert!(from_bin(&bytes).is_err(), "forged n_peers must be rejected");
}

/// A checksum-valid header pointing the table offset outside the file
/// (or into the header) must be rejected before any section read.
#[test]
fn forged_table_offset_fails() {
    for offset in [0u64, 1, HEADER_LEN - 1, u64::MAX / 2, u64::MAX] {
        let mut bytes = sample_bytes();
        bytes[17..25].copy_from_slice(&offset.to_le_bytes());
        fix_header_checksum(&mut bytes);
        assert!(
            from_bin(&bytes).is_err(),
            "table offset {offset:#x} must be rejected"
        );
    }
}

/// A section declaring a payload longer than the file must be rejected
/// by the bounds check *before* the payload buffer is allocated — a
/// `u64::MAX` length would otherwise be a one-byte OOM bomb.
#[test]
fn forged_section_length_fails_without_oom() {
    for forged_len in [u64::MAX, u64::MAX / 2, 1 << 40] {
        let mut bytes = sample_bytes();
        // The first section starts right after the header; its length
        // field follows the tag byte. Section checksums cover only the
        // payload, so no re-checksum is needed to reach the gate.
        let len_at = HEADER_LEN as usize + 1;
        bytes[len_at..len_at + 8].copy_from_slice(&forged_len.to_le_bytes());
        assert!(
            from_bin(&bytes).is_err(),
            "section payload length {forged_len:#x} must be rejected"
        );
    }
}
