//! End-to-end integration: population → trace → pipeline → analyses →
//! search simulation, with the paper's qualitative shape checks
//! (DESIGN.md §5) asserted as machine-checked bounds.
//!
//! Everything runs at test scale with fixed seeds, so these are exact,
//! reproducible assertions — not flaky statistical hopes.

use edonkey_repro::analysis::{
    contribution, daily, geo_clustering, geography, popularity, semantic, sizes, stats, view,
};
use edonkey_repro::prelude::*;
use edonkey_repro::semsearch::experiment;

/// One shared workload for the whole file (generation dominates test
/// time; every check is read-only on it).
fn workload() -> (Population, Trace) {
    let mut config = WorkloadConfig::test_scale(20060418);
    config.peers = 2_000;
    config.files = 40_000;
    config.topics = 400;
    config.days = 20;
    generate_trace(config)
}

fn filtered_caches(trace: &Trace) -> (Vec<Vec<FileRef>>, usize) {
    let filtered = filter(trace).trace;
    let n = filtered.files.len();
    (filtered.static_caches(), n)
}

#[test]
fn pipeline_stages_shrink_and_stay_valid() {
    let (_, trace) = workload();
    assert_eq!(trace.check_invariants(), Ok(()));
    let filtered = filter(&trace);
    assert_eq!(filtered.trace.check_invariants(), Ok(()));
    assert!(filtered.trace.peers.len() <= trace.peers.len());
    let extrapolated = extrapolate(&filtered.trace, ExtrapolateConfig::default());
    assert_eq!(extrapolated.trace.check_invariants(), Ok(()));
    assert!(extrapolated.trace.peers.len() <= filtered.trace.peers.len());
    assert!(
        extrapolated.trace.peers.len() > 100,
        "regular clients must survive"
    );
}

#[test]
fn table1_free_riders_dominate() {
    let (_, trace) = workload();
    let summary = summarize(&trace);
    let frac = summary.free_rider_fraction();
    assert!(
        (0.6..0.9).contains(&frac),
        "free-rider fraction {frac} outside the paper's 70–84% ballpark"
    );
    assert!(
        summary.snapshots > summary.clients,
        "multiple snapshots per client"
    );
}

#[test]
fn fig5_popularity_is_zipf_like() {
    let (_, trace) = workload();
    let day = trace.days[trace.days.len() / 2].day;
    let curve = popularity::replication_rank_curve(&trace, day);
    assert!(curve.len() > 1_000);
    // Log-log slope of the tail (ranks 10..) must be clearly negative.
    let points: Vec<(f64, f64)> = curve
        .iter()
        .skip(10)
        .map(|&(r, s)| (r as f64, s as f64))
        .collect();
    let (_, slope) = stats::loglog_slope(&points).expect("enough points");
    assert!(
        (-2.0..-0.2).contains(&slope),
        "rank-popularity slope {slope} is not Zipf-like"
    );
}

#[test]
fn fig6_popular_files_are_large() {
    let (_, trace) = workload();
    let filtered = filter(&trace).trace;
    let (small, mid, large) = sizes::size_mix(&filtered);
    assert!(small > 0.2, "small-file share {small}");
    assert!(mid > 0.3, "mid-file share {mid}");
    assert!(large < 0.3, "large-file share {large}");
    // Among popular files, big files dominate far beyond their share.
    let big_among_popular = sizes::fraction_larger_than(&filtered, 5, 100 << 20);
    let big_among_all = sizes::fraction_larger_than(&filtered, 1, 100 << 20);
    assert!(
        big_among_popular > 2.0 * big_among_all,
        "popularity must tilt toward large files: {big_among_popular} vs {big_among_all}"
    );
}

#[test]
fn fig7_generosity_is_concentrated() {
    let (_, trace) = workload();
    let filtered = filter(&trace).trace;
    let top15 = contribution::generosity_concentration(&filtered, 0.15);
    assert!(
        (0.5..0.95).contains(&top15),
        "top-15% share {top15}; paper reports 75%"
    );
}

#[test]
fn fig4_country_mix_matches_plan() {
    let (_, trace) = workload();
    let rows = geography::clients_per_country(&trace);
    assert_eq!(rows[0].0.as_str().len(), 2);
    // FR and DE must lead with roughly 29/28%.
    let share_of = |cc: &str| {
        rows.iter()
            .find(|(c, _, _)| c.as_str() == cc)
            .map(|&(_, _, s)| s)
            .unwrap_or(0.0)
    };
    assert!((share_of("FR") - 0.29).abs() < 0.05);
    assert!((share_of("DE") - 0.28).abs() < 0.05);
    let top5 = geography::top_as_combined_share(&trace, 5);
    assert!(
        (0.35..0.75).contains(&top5),
        "top-5 AS share {top5}; paper: 54%"
    );
}

#[test]
fn fig11_rare_files_cluster_geographically() {
    let (_, trace) = workload();
    let filtered = filter(&trace).trace;
    let conc = geo_clustering::home_concentration(&filtered, geo_clustering::Level::Country);
    let spans = edonkey_repro::analysis::view::file_spans(&filtered);
    // Band by popularity rank (the paper's thresholds are absolute, but
    // "popular" is scale-relative): the 200 most replicated files vs all.
    let mut by_pop: Vec<(usize, f64)> = spans
        .iter()
        .enumerate()
        .filter(|(i, s)| s.distinct_sources > 0 && conc.percent_at_home[*i].is_some())
        .map(|(i, s)| (i, s.average_popularity()))
        .collect();
    by_pop.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("finite"));
    let fully_home = |files: &[usize]| {
        let n = files.len().max(1);
        files
            .iter()
            .filter(|&&i| conc.percent_at_home[i].expect("filtered") >= 100.0 - 1e-9)
            .count() as f64
            / n as f64
    };
    let top: Vec<usize> = by_pop.iter().take(200).map(|&(i, _)| i).collect();
    let all: Vec<usize> = by_pop.iter().map(|&(i, _)| i).collect();
    assert!(all.len() > 2_000, "need real support: {}", all.len());
    let home_top = fully_home(&top);
    let home_all = fully_home(&all);
    assert!(
        home_all > home_top + 0.1,
        "popular files must be less home-bound: all {home_all} vs top {home_top}"
    );
    assert!(
        home_all > 0.2,
        "rare files should often be single-country: {home_all}"
    );
}

#[test]
fn fig13_correlation_rises_with_common_files() {
    let (_, trace) = workload();
    let (caches, n_files) = filtered_caches(&trace);
    let curve = semantic::clustering_correlation(&caches, n_files, |_| true, Some(400));
    assert!(curve.len() >= 5);
    let p1 = curve[0].probability_percent;
    let p5 = curve
        .iter()
        .find(|p| p.common == 5)
        .map(|p| p.probability_percent)
        .expect("k=5 present");
    assert!(
        p5 > p1,
        "P(another | 5 common) = {p5} must exceed P(another | 1 common) = {p1}"
    );
    assert!(
        p5 > 50.0,
        "peers with 5 common files nearly always share more: {p5}"
    );
}

#[test]
fn fig14_randomization_destroys_rare_file_clustering() {
    let (_, trace) = workload();
    let (caches, n_files) = filtered_caches(&trace);
    let popularity = view::popularity_of_caches(&caches, n_files);
    let rare = |fr: FileRef| (3..=5).contains(&popularity[fr.index()]);
    let before = semantic::clustering_correlation(&caches, n_files, rare, None);
    let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(7);
    let (random_caches, _) = randomize_caches(caches, &mut rng);
    let rand_popularity = view::popularity_of_caches(&random_caches, n_files);
    assert_eq!(
        popularity, rand_popularity,
        "popularity is preserved exactly"
    );
    let after = semantic::clustering_correlation(&random_caches, n_files, rare, None);
    let p = |curve: &[semantic::CorrelationPoint]| {
        curve.first().map(|p| p.probability_percent).unwrap_or(0.0)
    };
    assert!(
        p(&before) > p(&after) + 10.0,
        "trace {} vs randomized {}: the gap IS the semantic clustering",
        p(&before),
        p(&after)
    );
}

#[test]
fn fig18_policy_ordering_and_magnitudes() {
    let (_, trace) = workload();
    let (caches, n_files) = filtered_caches(&trace);
    let cmp = experiment::policy_comparison(&caches, n_files, &[20], 1);
    let rate = |k: PolicyKind| {
        cmp.iter().find(|(p, _)| *p == k).unwrap().1[0]
            .result
            .hit_rate()
    };
    let (lru, history, random) = (
        rate(PolicyKind::Lru),
        rate(PolicyKind::History),
        rate(PolicyKind::Random),
    );
    assert!(lru > 0.2, "LRU-20 hit rate {lru}; paper: 41%");
    assert!(history > 0.2, "History-20 hit rate {history}; paper: 47%");
    assert!(
        lru > random + 0.1 && history > random + 0.1,
        "semantic lists must beat random: lru {lru}, history {history}, random {random}"
    );
}

#[test]
fn fig19_uploader_removal_hurts_but_does_not_collapse() {
    let (_, trace) = workload();
    let (caches, n_files) = filtered_caches(&trace);
    let grid = experiment::uploader_removal_grid(&caches, n_files, &[0.0, 0.15], &[20], 1);
    let baseline = grid[0].1[0].result.hit_rate();
    let reduced = grid[1].1[0].result.hit_rate();
    assert!(reduced < baseline, "removing generous uploaders must hurt");
    assert!(
        reduced > baseline * 0.5,
        "…but most of the hit rate must survive: {baseline} → {reduced}"
    );
}

#[test]
fn fig20_popular_file_removal_helps_small_lists_most() {
    let (_, trace) = workload();
    let (caches, n_files) = filtered_caches(&trace);
    let grid = experiment::file_removal_grid(&caches, n_files, &[0.0, 0.05, 0.30], &[5], 1);
    let baseline = grid[0].1[0].result.clone();
    let light = grid[1].1[0].result.clone();
    let heavy = grid[2].1[0].result.clone();
    // Removing the head leaves mostly rare-file requests…
    assert!(
        light.requests < baseline.requests * 9 / 10,
        "a 5% removal must shed a disproportionate share of requests"
    );
    assert!(
        heavy.requests < baseline.requests * 3 / 4,
        "a 30% removal must shed most requests"
    );
    // …and those hit *at least as well*: the paper's rare-file
    // clustering result. (At the paper's 11M-file scale the rise holds
    // through 30% removals; with a tens-of-thousands catalogue the 30%
    // rank cut reaches into the clustered band itself, so the
    // machine-checked claim is pinned at 5%. Even at 5% the delta is
    // population-sampling noise at this 2k-peer scale — it flips sign
    // across workload seeds with spread ≈ ±0.08 — so the bound asserts
    // "survives within sampling noise", not a strict rise.)
    assert!(
        light.hit_rate() > baseline.hit_rate() * 0.75,
        "rare-file hit rate must survive a light removal: {} → {}",
        baseline.hit_rate(),
        light.hit_rate()
    );
    // The stable, seed-independent shape: a shallow cut leaves the
    // clustered rare-file band intact, a deep cut destroys it.
    assert!(
        light.hit_rate() > heavy.hit_rate() + 0.05,
        "light removal must hit far better than heavy: {} vs {}",
        light.hit_rate(),
        heavy.hit_rate()
    );
}

#[test]
fn fig21_hit_rate_decays_under_randomization() {
    let (_, trace) = workload();
    let (caches, n_files) = filtered_caches(&trace);
    let replicas: usize = caches.iter().map(Vec::len).sum();
    let full = edonkey_repro::trace::randomize::recommended_iterations(replicas);
    let sweep = experiment::randomization_sweep(&caches, n_files, 10, &[0, full], 3);
    assert!(
        sweep[1].hit_rate < sweep[0].hit_rate * 0.7,
        "full randomization must destroy most of the hit rate: {} → {}",
        sweep[0].hit_rate,
        sweep[1].hit_rate
    );
    assert!(
        sweep[1].hit_rate > 0.0,
        "generosity+popularity keep a residual"
    );
}

#[test]
fn fig22_removing_uploaders_flattens_load() {
    let (_, trace) = workload();
    let (caches, n_files) = filtered_caches(&trace);
    let grid = experiment::uploader_removal_grid(&caches, n_files, &[0.0, 0.10], &[5], 1);
    let baseline = &grid[0].1[0].result;
    let reduced = &grid[1].1[0].result;
    let skew = |r: &SimResult| r.max_load() as f64 / r.mean_load().max(1.0);
    assert!(
        skew(reduced) < skew(baseline),
        "load skew must drop: {} → {}",
        skew(baseline),
        skew(reduced)
    );
}

#[test]
fn fig23_two_hop_beats_one_hop_most_at_small_lists() {
    let (_, trace) = workload();
    let (caches, n_files) = filtered_caches(&trace);
    let rates = |size: usize| {
        let one = simulate(&caches, n_files, &SimConfig::lru(size)).hit_rate();
        let two = simulate(&caches, n_files, &SimConfig::lru(size).with_two_hop()).hit_rate();
        (one, two)
    };
    let (one_small, two_small) = rates(5);
    let (one_large, two_large) = rates(100);
    assert!(
        two_small - one_small > 0.02,
        "two-hop must add real hits at size 5"
    );
    assert!(two_large >= one_large, "two-hop never hurts");
    // "As the number of semantic neighbours increases, the discrepancy
    // decreases": with a few hundred sharers the absolute gap plateaus,
    // so the machine-checked form is the relative gain.
    let rel_small = (two_small - one_small) / one_small.max(1e-9);
    let rel_large = (two_large - one_large) / one_large.max(1e-9);
    assert!(
        rel_small > rel_large,
        "relative two-hop gain must shrink with list size: {rel_small} vs {rel_large}"
    );
}

#[test]
fn fig2_new_files_keep_arriving() {
    let (_, trace) = workload();
    let discovery = daily::file_discovery_per_day(&trace);
    let last = discovery.last().unwrap();
    assert!(
        last.new_files > 0,
        "even on the final day the crawler must discover new files"
    );
    // At paper scale the rate is ~5/day; it shrinks with the catalogue
    // (11M files vs our tens of thousands), so assert the mechanism, not
    // the absolute value.
    let rate = daily::new_files_per_client(&trace);
    assert!(
        (0.05..20.0).contains(&rate),
        "new files per client per day: {rate}"
    );
}
