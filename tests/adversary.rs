//! Acceptance matrix for the adversarial workload plane (DESIGN.md
//! §12): sybil, pollution and free-rider injection over the nested role
//! bands, and the per-neighbour reputation defense.
//!
//! What the matrix pins:
//! * **Monotone degradation** — a larger attacker fraction marks a
//!   strict superset of peers (the bands nest), so one-hop hits can
//!   only fall as each attack kind scales up;
//! * **Ledger discipline** — every adversarial run's `SearchHealth`
//!   reconciles, and each attack kind moves exactly its own counters;
//! * **Defense direction** — the armed defense never does worse than
//!   no defense, fires under a mixed attack, and is a bitwise no-op on
//!   honest runs; for Random lists the attacked run equals the
//!   refusal-only twin bit-for-bit (nothing is ever recorded, so the
//!   capture channel does not exist);
//! * **Determinism** — the same plan replays identically, and distinct
//!   adversary seeds change the drawn roles without breaking any
//!   invariant.
//!
//! A golden fixture (`tests/data/adversary_golden.tsv`) pins one
//! attacked and one defended run per policy — hits plus the full
//! attack/defense ledger. Regenerate with
//! `EDONKEY_BLESS=1 cargo test --test adversary` after an *intentional*
//! change to the plan draws or the defense.

use std::fmt::Write as _;
use std::sync::OnceLock;

use edonkey_repro::semsearch::neighbours::PolicyKind;
use edonkey_repro::semsearch::sim::{simulate_health, AvailabilityConfig, QueryPolicy};
use edonkey_repro::semsearch::{AdversaryConfig, SimConfig, CHURN_POLICIES};
use edonkey_repro::trace::model::FileRef;
use edonkey_repro::trace::pipeline::filter;
use edonkey_repro::workload::{generate_trace, WorkloadConfig};

const SEED: u64 = 20060418;
const ADVERSARY_SEED: u64 = SEED ^ 0xad5e;
const LIST_SIZE: usize = 20;
const FIXTURE: &str = concat!(
    env!("CARGO_MANIFEST_DIR"),
    "/tests/data/adversary_golden.tsv"
);

/// One shared filtered workload for the whole file (generation
/// dominates test time; every check is read-only on it).
fn caches() -> &'static (Vec<Vec<FileRef>>, usize) {
    static W: OnceLock<(Vec<Vec<FileRef>>, usize)> = OnceLock::new();
    W.get_or_init(|| {
        let mut config = WorkloadConfig::test_scale(SEED);
        config.peers = 1_000;
        config.files = 20_000;
        config.topics = 200;
        config.days = 12;
        let (_, trace) = generate_trace(config);
        let filtered = filter(&trace).trace;
        let n = filtered.files.len();
        (filtered.static_caches(), n)
    })
}

/// A `SimConfig` under one adversary plan (no churn: the adversary is
/// the only availability signal, so every miss is attributable).
fn config(policy: PolicyKind, adversary: AdversaryConfig, defended: bool) -> SimConfig {
    let mut availability = AvailabilityConfig::none()
        .with_query(QueryPolicy::no_retry())
        .with_adversary(adversary);
    if defended {
        availability = availability.with_reputation();
    }
    SimConfig {
        list_size: LIST_SIZE,
        policy,
        two_hop: false,
        seed: SEED,
        availability,
    }
}

/// The nested role bands make degradation mechanical: each attack kind,
/// scaled over a superset chain of fractions, can only lose hits — and
/// each kind moves exactly its own ledger counters.
#[test]
fn each_attack_kind_degrades_hits_monotonically() {
    let (caches, n_files) = caches();
    type Make = fn(u64, u32) -> AdversaryConfig;
    let kinds: [(&str, Make); 3] = [
        ("sybil", AdversaryConfig::sybils),
        ("polluter", AdversaryConfig::polluters),
        ("freerider", AdversaryConfig::freeriders),
    ];
    for policy in CHURN_POLICIES {
        for (kind, make) in kinds {
            let mut prev = u64::MAX;
            for permille in [0u32, 100, 200, 400] {
                let cfg = config(policy, make(ADVERSARY_SEED, permille), false);
                let (result, health) = simulate_health(caches, *n_files, &cfg);
                health.expect_reconciled(&result, &cfg);
                assert!(
                    result.one_hop_hits <= prev,
                    "{policy:?}/{kind} at {permille} permille: hits rose under a \
                     larger attacker fraction ({} > {prev})",
                    result.one_hop_hits
                );
                prev = result.one_hop_hits;
                if permille == 0 {
                    assert_eq!(health.wasted_queries, 0, "{policy:?}/{kind}: quiet plan");
                    continue;
                }
                // Every adversarial peer refuses overlay answers.
                assert!(health.wasted_queries > 0, "{policy:?}/{kind} at {permille}");
                // Undefended runs never evict.
                assert_eq!(health.reputation_evictions, 0, "{policy:?}/{kind}");
                // Each kind owns its capture counter.
                match kind {
                    "sybil" => {
                        assert!(health.sybil_slots_held > 0, "{policy:?} at {permille}");
                        assert_eq!(health.polluted_acquisitions, 0, "{policy:?}");
                    }
                    "polluter" => {
                        assert!(health.polluted_acquisitions > 0, "{policy:?} at {permille}");
                        assert_eq!(health.sybil_slots_held, 0, "{policy:?}");
                    }
                    _ => {
                        assert_eq!(health.sybil_slots_held, 0, "{policy:?}");
                        assert_eq!(health.polluted_acquisitions, 0, "{policy:?}");
                    }
                }
            }
        }
    }
}

/// Defense direction under a 10% sybil+pollution mix, against the
/// refusal-only twin plan (`freeriders` over the same nested band —
/// identical refusals, no capture): refusing holders are an
/// irreducible loss, capture costs extra, the armed defense claws hits
/// back and never does worse than no defense.
#[test]
fn defense_recovers_against_the_mixed_attack() {
    let (caches, n_files) = caches();
    let mix = AdversaryConfig::sybils(ADVERSARY_SEED, 50).with_polluters(50);
    let twin = AdversaryConfig::freeriders(ADVERSARY_SEED, 100);
    for policy in CHURN_POLICIES {
        let run = |adversary: AdversaryConfig, defended: bool| {
            let cfg = config(policy, adversary, defended);
            let (result, health) = simulate_health(caches, *n_files, &cfg);
            health.expect_reconciled(&result, &cfg);
            (result, health)
        };
        let (honest, honest_health) = run(AdversaryConfig::none(), false);
        let (twinned, _) = run(twin.clone(), false);
        let (attacked, attacked_health) = run(mix.clone(), false);
        let (defended, defended_health) = run(mix.clone(), true);
        assert_eq!(honest_health.wasted_queries, 0, "{policy:?}");
        assert!(
            attacked.one_hop_hits <= twinned.one_hop_hits
                && twinned.one_hop_hits <= honest.one_hop_hits,
            "{policy:?}: capture must cost hits on top of the refusal floor \
             (honest {}, twin {}, attacked {})",
            honest.one_hop_hits,
            twinned.one_hop_hits,
            attacked.one_hop_hits
        );
        assert!(
            attacked_health.sybil_slots_held > 0 && attacked_health.polluted_acquisitions > 0,
            "{policy:?}: the mix must land both capture kinds"
        );
        assert!(
            defended.one_hop_hits >= attacked.one_hop_hits,
            "{policy:?}: the armed defense must never do worse than no defense"
        );
        assert!(
            defended_health.reputation_evictions > 0,
            "{policy:?}: the defense must fire under the mix"
        );
        assert!(
            defended_health.wasted_queries < attacked_health.wasted_queries,
            "{policy:?}: banning refusers must cut wasted queries \
             (attacked {}, defended {})",
            attacked_health.wasted_queries,
            defended_health.wasted_queries
        );
        if policy == PolicyKind::Random {
            // Random lists record nothing: the capture channel does
            // not exist, so the attacked run IS the twin, bit for bit.
            assert_eq!(
                attacked, twinned,
                "Random: sybils and polluters must reduce to pure refusers"
            );
        }
    }
}

/// An armed defense on an honest run is a bitwise no-op, and a seeded
/// quiet plan is invisible: both replay the plain honest run exactly.
#[test]
fn honest_runs_ignore_quiet_plans_and_armed_defenses() {
    let (caches, n_files) = caches();
    for policy in CHURN_POLICIES {
        let (expected, expected_health) = simulate_health(
            caches,
            *n_files,
            &config(policy, AdversaryConfig::none(), false),
        );
        for (label, adversary, defended) in [
            ("armed defense", AdversaryConfig::none(), true),
            ("quiet plan", AdversaryConfig::sybils(0xfeed_beef, 0), false),
            (
                "armed quiet plan",
                AdversaryConfig::sybils(0xfeed_beef, 0),
                true,
            ),
        ] {
            let (result, health) =
                simulate_health(caches, *n_files, &config(policy, adversary, defended));
            assert_eq!(result, expected, "{policy:?}: {label}");
            assert_eq!(health, expected_health, "{policy:?}: {label}");
        }
    }
}

/// The plan is a pure function of its seed: replaying any adversarial
/// cell reproduces it bit-for-bit, and each of three distinct seeds
/// yields a reconciled, deterministic run of its own.
#[test]
fn adversarial_runs_replay_bit_identically_across_seeds() {
    let (caches, n_files) = caches();
    for adversary_seed in [ADVERSARY_SEED, 0x0dd5_eed5, u64::MAX] {
        let mix = AdversaryConfig::sybils(adversary_seed, 150).with_freeriders(100);
        for defended in [false, true] {
            let cfg = config(PolicyKind::Lru, mix.clone(), defended);
            let (first, first_health) = simulate_health(caches, *n_files, &cfg);
            let (second, second_health) = simulate_health(caches, *n_files, &cfg);
            first_health.expect_reconciled(&first, &cfg);
            assert_eq!(
                first, second,
                "seed {adversary_seed:#x} defended {defended}"
            );
            assert_eq!(
                first_health, second_health,
                "seed {adversary_seed:#x} defended {defended}"
            );
            assert!(
                first_health.sybil_slots_held > 0,
                "seed {adversary_seed:#x}"
            );
        }
    }
}

/// Renders the fixture: one attacked and one defended run per policy
/// under the pinned 10% mix — hits plus the full attack/defense ledger.
fn golden_fixture() -> String {
    let (caches, n_files) = caches();
    let mix = AdversaryConfig::sybils(ADVERSARY_SEED, 50).with_polluters(50);
    let mut out = String::from(
        "# adversary golden fixture v1 — bless with EDONKEY_BLESS=1\n\
         # mix: 50 permille sybils + 50 permille polluters, list 20, no churn\n",
    );
    for policy in CHURN_POLICIES {
        for defended in [false, true] {
            let cfg = config(policy, mix.clone(), defended);
            let (result, health) = simulate_health(caches, *n_files, &cfg);
            writeln!(
                out,
                "run\t{}\tdefended={defended}\tseed={SEED}\tadversary_seed={ADVERSARY_SEED}\t\
                 requests={}\thits={}\twasted={}\tsybil_slots_held={}\t\
                 polluted_acquisitions={}\treputation_evictions={}\tserver_fallback={}",
                policy.name(),
                result.requests,
                result.hits(),
                health.wasted_queries,
                health.sybil_slots_held,
                health.polluted_acquisitions,
                health.reputation_evictions,
                health.server_fallback
            )
            .unwrap();
        }
    }
    out
}

/// The checked-in fixture must keep matching what the code produces —
/// any drift in the role draws, the capture paths or the defense is an
/// intentional-change gate.
#[test]
fn golden_fixture_pins_attack_and_defense_ledgers() {
    let rendered = golden_fixture();
    if std::env::var("EDONKEY_BLESS").is_ok() {
        std::fs::write(FIXTURE, &rendered).expect("bless fixture");
    }
    let expected = std::fs::read_to_string(FIXTURE).expect("read checked-in fixture");
    assert_eq!(
        rendered, expected,
        "adversary plan or defense drifted from the blessed fixture — \
         if intentional, regenerate with EDONKEY_BLESS=1"
    );
}
