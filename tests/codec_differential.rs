//! Differential battery across the three on-disk trace formats: a
//! generated workload saved and reloaded through JSON, compact text,
//! and the binary columnar codec must yield identical traces — and
//! identical derived artefacts all the way down the pipeline (filtered
//! and extrapolated stages, the Fig. 14 clustering-correlation series,
//! the Fig. 18 policy-comparison hit rates). The streaming filter is
//! held to the in-memory filter over the same workload.

use std::path::{Path, PathBuf};

use edonkey_repro::analysis::semantic;
use edonkey_repro::semsearch::experiment;
use edonkey_repro::trace::io;
use edonkey_repro::trace::model::Trace;
use edonkey_repro::trace::pipeline::{extrapolate, filter, filter_streaming, ExtrapolateConfig};
use edonkey_repro::workload::{generate_trace, WorkloadConfig};

const SEED: u64 = 20060418;
const HOLDER_CAP: usize = 200;
const LIST_SIZES: [usize; 3] = [5, 20, 100];

fn small_workload() -> Trace {
    let mut config = WorkloadConfig::test_scale(SEED);
    config.peers = 150;
    config.files = 1_200;
    config.days = 8;
    let (_, trace) = generate_trace(config);
    trace
}

fn scratch_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("edonkey_differential_{name}_{SEED}"));
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

/// Saves `trace` through each codec and reloads it twice: once with the
/// format-specific loader, once with the sniffing [`io::load_auto`].
fn round_trips(trace: &Trace, dir: &Path) -> Vec<(&'static str, Trace)> {
    let json = dir.join("trace.json");
    let compact = dir.join("trace.txt");
    let bin = dir.join("trace.etrc");
    io::save_json(trace, &json).expect("save_json");
    io::save_compact(trace, &compact).expect("save_compact");
    io::save_bin(trace, &bin).expect("save_bin");
    let mut out = Vec::new();
    type Loader = fn(&std::path::Path) -> Result<Trace, io::TraceIoError>;
    for (name, path, load) in [
        ("json", &json, io::load_json as Loader),
        ("compact", &compact, io::load_compact as Loader),
        ("binary", &bin, io::load_bin as Loader),
    ] {
        let direct = load(path).expect(name);
        let sniffed = io::load_auto(path).expect(name);
        assert_eq!(
            direct, sniffed,
            "{name}: load_auto must match the direct loader"
        );
        out.push((name, direct));
    }
    out
}

/// The Fig. 18 series, flattened to comparable rows.
fn fig18_series(
    caches: &[Vec<edonkey_repro::trace::model::FileRef>],
    n_files: usize,
) -> Vec<(String, usize, u64, u64)> {
    experiment::policy_comparison(caches, n_files, &LIST_SIZES, SEED)
        .into_iter()
        .flat_map(|(policy, sweep)| {
            sweep.into_iter().map(move |point| {
                (
                    policy.name().to_string(),
                    point.list_size,
                    point.result.hits(),
                    point.result.requests,
                )
            })
        })
        .collect()
}

#[test]
fn all_formats_agree_down_the_pipeline() {
    let full = small_workload();
    let dir = scratch_dir("pipeline");
    let loaded = round_trips(&full, &dir);

    // Reference pipeline from the in-memory original.
    let ref_filtered = filter(&full).trace;
    let ref_extrapolated = extrapolate(&ref_filtered, ExtrapolateConfig::default()).trace;
    let ref_caches = ref_filtered.static_caches();
    let n_files = ref_filtered.files.len();
    let ref_fig14 =
        semantic::clustering_correlation(&ref_caches, n_files, |_| true, Some(HOLDER_CAP));
    let ref_fig18 = fig18_series(&ref_caches, n_files);
    assert!(
        !ref_fig14.is_empty(),
        "workload too small: empty Fig. 14 series"
    );
    assert!(
        !ref_fig18.is_empty(),
        "workload too small: empty Fig. 18 series"
    );

    for (name, trace) in loaded {
        assert_eq!(trace, full, "{name}: full trace must round-trip losslessly");
        let filtered = filter(&trace).trace;
        assert_eq!(filtered, ref_filtered, "{name}: filtered stage diverged");
        let extrapolated = extrapolate(&filtered, ExtrapolateConfig::default()).trace;
        assert_eq!(
            extrapolated, ref_extrapolated,
            "{name}: extrapolated stage diverged"
        );
        let caches = filtered.static_caches();
        let fig14 = semantic::clustering_correlation(&caches, n_files, |_| true, Some(HOLDER_CAP));
        assert_eq!(fig14, ref_fig14, "{name}: Fig. 14 series diverged");
        let fig18 = fig18_series(&caches, n_files);
        assert_eq!(fig18, ref_fig18, "{name}: Fig. 18 series diverged");
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn streaming_filter_matches_in_memory_filter_on_workload() {
    let full = small_workload();
    let dir = scratch_dir("streaming");
    let input = dir.join("full.etrc");
    let output = dir.join("filtered.etrc");
    io::save_bin(&full, &input).expect("save_bin");

    let streamed = filter_streaming(&input, &output).expect("filter_streaming");
    let in_memory = filter(&full);
    assert_eq!(streamed.kept, in_memory.kept, "kept-peer mapping diverged");
    assert_eq!(streamed.days as usize, full.days.len());
    let streamed_trace = io::load_bin(&output).expect("load filtered output");
    assert_eq!(
        streamed_trace, in_memory.trace,
        "streamed filtered trace diverged"
    );
    let _ = std::fs::remove_dir_all(&dir);
}
