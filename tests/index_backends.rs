//! Differential acceptance matrix for the pluggable index backends
//! (DESIGN.md §10): the single server, the server federation and the
//! Kademlia-style DHT must agree bit-for-bit whenever routing cannot
//! matter (no outage), and must degrade in their characteristic ways
//! when the index goes dark — the federation strands only the homed
//! shard, the DHT strands nothing while `replication_k` exceeds the
//! concurrent failure count.
//!
//! A golden fixture (`tests/data/index_backend_golden.tsv`) pins one
//! federated and one DHT run — seed, health ledger and the first 64
//! routing picks. Regenerate with
//! `EDONKEY_BLESS=1 cargo test --test index_backends` after an
//! *intentional* routing change.

use std::fmt::Write as _;
use std::sync::OnceLock;

use edonkey_repro::semsearch::experiment::churn_grid;
use edonkey_repro::semsearch::index::{IndexBackend, IndexRoute};
use edonkey_repro::semsearch::sim::{simulate_health, AvailabilityConfig, QueryPolicy};
use edonkey_repro::semsearch::SimConfig;
use edonkey_repro::trace::model::FileRef;
use edonkey_repro::trace::pipeline::filter;
use edonkey_repro::workload::{generate_trace, ChurnConfig, ChurnSchedule, WorkloadConfig};

const SEED: u64 = 20060418;
const CHURN_SEED: u64 = SEED ^ 0xc4c4;
const LIST_SIZE: usize = 20;
const FIXTURE: &str = concat!(
    env!("CARGO_MANIFEST_DIR"),
    "/tests/data/index_backend_golden.tsv"
);

/// One shared filtered workload for the whole file (generation
/// dominates test time; every check is read-only on it).
fn caches() -> &'static (Vec<Vec<FileRef>>, usize) {
    static W: OnceLock<(Vec<Vec<FileRef>>, usize)> = OnceLock::new();
    W.get_or_init(|| {
        let mut config = WorkloadConfig::test_scale(SEED);
        config.peers = 1_000;
        config.files = 20_000;
        config.topics = 200;
        config.days = 12;
        let (_, trace) = generate_trace(config);
        let filtered = filter(&trace).trace;
        let n = filtered.files.len();
        (filtered.static_caches(), n)
    })
}

/// A churn + outage `SimConfig` for one backend.
fn config(backend: IndexBackend, churn_permille: u32, outage: &[u32]) -> SimConfig {
    SimConfig::lru(LIST_SIZE).with_seed(SEED).with_availability(
        AvailabilityConfig::churn(CHURN_SEED, churn_permille)
            .with_query(QueryPolicy::retry_evict())
            .with_outages(outage.to_vec())
            .with_backend(backend),
    )
}

const BACKENDS: [IndexBackend; 3] = [
    IndexBackend::SingleServer,
    IndexBackend::Federated { n_servers: 4 },
    IndexBackend::Dht { replication_k: 2 },
];

/// With no outage the backend cannot matter: the routing layer only
/// decides *reachability* and hop cost, never which uploader answers —
/// so every backend × policy × churn-rate × querier-reaction cell must
/// reproduce the single server's full `SimResult` bit-for-bit (a
/// stronger form of the "agree on answered" criterion).
#[test]
fn zero_outage_runs_agree_across_backends() {
    let (caches, n_files) = caches();
    let queries = [QueryPolicy::no_retry(), QueryPolicy::retry_evict()];
    let grids: Vec<_> = BACKENDS
        .iter()
        .map(|&backend| {
            churn_grid(
                caches,
                *n_files,
                LIST_SIZE,
                &[0, 250],
                &queries,
                &[],
                backend,
                CHURN_SEED,
                SEED,
            )
        })
        .collect();
    let single = &grids[0];
    for (backend, grid) in BACKENDS.iter().zip(&grids).skip(1) {
        assert_eq!(grid.len(), single.len());
        for (cell, base) in grid.iter().zip(single) {
            assert_eq!(
                cell.result,
                base.result,
                "{}: quiet {:?}/{:?} rate {} diverged from the single server",
                backend.name(),
                cell.policy,
                cell.query,
                cell.churn_permille
            );
            assert_eq!(cell.health.answered, base.health.answered);
            assert_eq!(cell.health.stranded, 0, "{}", backend.name());
        }
    }
}

/// Under a full single-server blackout the backends differentiate:
///
/// * the single server strands every final miss (zero fallbacks);
/// * a one-member federation *is* the single server, bit-for-bit;
/// * a real federation strands only the shard homed on each day's
///   victim — some requests strand, but fallbacks keep flowing;
/// * a DHT with `replication_k = 2` strands nothing (one node fails
///   per day); with `replication_k = 1` it strands like a shard.
#[test]
fn full_outage_differentiates_the_backends() {
    let (caches, n_files) = caches();
    let outage: Vec<u32> = (0..400).collect();
    let run = |backend| simulate_health(caches, *n_files, &config(backend, 0, &outage));

    let (single_result, single_health) = run(IndexBackend::SingleServer);
    assert_eq!(
        single_health.server_fallback, 0,
        "a dead single server answers nothing"
    );
    assert!(single_health.stranded > 0);

    let (fed1_result, fed1_health) = run(IndexBackend::Federated { n_servers: 1 });
    assert_eq!(
        fed1_result, single_result,
        "federation of one == the server"
    );
    assert_eq!(fed1_health.stranded, single_health.stranded);
    assert_eq!(fed1_health.forwarded, 0);

    let (_, fed4_health) = run(IndexBackend::Federated { n_servers: 4 });
    assert!(
        fed4_health.stranded > 0,
        "the homed quarter of the overlay still strands"
    );
    assert!(
        fed4_health.stranded < single_health.stranded,
        "only one shard strands per day: {} !< {}",
        fed4_health.stranded,
        single_health.stranded
    );
    assert!(
        fed4_health.server_fallback > 0,
        "the surviving shards keep resolving misses"
    );

    let (_, dht2_health) = run(IndexBackend::Dht { replication_k: 2 });
    assert_eq!(
        dht2_health.stranded, 0,
        "replication_k = 2 survives the one-node-per-day failure model"
    );
    assert!(dht2_health.dht_hops > 0);

    let (_, dht1_health) = run(IndexBackend::Dht { replication_k: 1 });
    assert!(
        dht1_health.stranded > 0,
        "an unreplicated DHT strands when the sole replica dies"
    );
}

/// Widening the outage window never helps: for every backend, the
/// stranded count is monotone non-decreasing over nested outage sets
/// (equivalently, resolved requests are non-increasing — `requests` is
/// fixed by the trace).
#[test]
fn degradation_is_monotone_in_outage_breadth() {
    let (caches, n_files) = caches();
    let breadths: [Vec<u32>; 3] = [vec![], (7..200).collect(), (0..400).collect()];
    for backend in BACKENDS {
        let stranded: Vec<u64> = breadths
            .iter()
            .map(|outage| {
                simulate_health(caches, *n_files, &config(backend, 250, outage))
                    .1
                    .stranded
            })
            .collect();
        assert!(
            stranded.windows(2).all(|w| w[0] <= w[1]),
            "{}: stranded must be monotone over nested outages, got {:?}",
            backend.name(),
            stranded
        );
        assert_eq!(
            stranded[0],
            0,
            "{}: no outage, no stranding",
            backend.name()
        );
        assert!(
            stranded[2] > 0 || matches!(backend, IndexBackend::Dht { .. }),
            "{}: a full blackout must strand something",
            backend.name()
        );
    }
}

/// Renders the golden fixture: for one federated and one DHT run at the
/// pinned seed — the health ledger of a churn + outage simulation and
/// the first 64 raw routing picks (8 queriers × 4 files × 2 days).
fn golden_fixture() -> String {
    let (caches, n_files) = caches();
    let outage: Vec<u32> = (7..200).collect();
    let mut out = String::from(
        "# index backend golden fixture v1 — bless with EDONKEY_BLESS=1\n\
         # picks enumerate querier 0..8 x file 0..4 x day {0, 10} at milli 500\n",
    );
    for backend in [
        IndexBackend::Federated { n_servers: 8 },
        IndexBackend::Dht { replication_k: 3 },
    ] {
        let (result, health) = simulate_health(caches, *n_files, &config(backend, 250, &outage));
        writeln!(
            out,
            "run\t{}\tseed={SEED}\tchurn_seed={CHURN_SEED}\tlist_size={LIST_SIZE}",
            backend.name()
        )
        .unwrap();
        writeln!(
            out,
            "health\t{}\trequests={}\thits={}\tanswered={}\tserver_fallback={}\t\
             stranded={}\trecovered={}\tforwarded={}\tdht_hops={}",
            backend.name(),
            result.requests,
            result.hits(),
            health.answered,
            health.server_fallback,
            health.stranded,
            health.recovered,
            health.forwarded,
            health.dht_hops
        )
        .unwrap();
        let router = backend.router(SEED);
        let schedule = ChurnSchedule::new(ChurnConfig {
            seed: CHURN_SEED,
            churn_permille: 250,
            outage_days: outage.clone(),
        });
        for day in [0u32, 10] {
            for querier in 0..8u32 {
                for file in 0..4u32 {
                    let l = router.lookup(&schedule, querier, FileRef(file), day, 500);
                    writeln!(
                        out,
                        "pick\t{}\tq={querier}\tf={file}\tday={day}\tresolved={}\t\
                         forwarded={}\tdht_hops={}",
                        backend.name(),
                        l.resolved,
                        l.forwarded,
                        l.dht_hops
                    )
                    .unwrap();
                }
            }
        }
    }
    out
}

/// The checked-in fixture must keep matching what the code produces —
/// any drift in the routing draws, the hop accounting or the health
/// ledger of the pinned runs is an intentional-change gate.
#[test]
fn golden_fixture_pins_routing_and_ledgers() {
    let rendered = golden_fixture();
    if std::env::var("EDONKEY_BLESS").is_ok() {
        std::fs::write(FIXTURE, &rendered).expect("bless fixture");
    }
    let expected = std::fs::read_to_string(FIXTURE).expect("read checked-in fixture");
    assert_eq!(
        rendered, expected,
        "index backend routing or ledgers drifted from the blessed fixture — \
         if intentional, regenerate with EDONKEY_BLESS=1"
    );
}
