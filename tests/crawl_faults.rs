//! Crawl-robustness matrix: the netsim crawl under the deterministic
//! fault-injection layer (DESIGN.md §4.2), across every fault kind and
//! both retry policies, with the [`CrawlHealth`] ledger reconciled
//! against the emitted trace.
//!
//! Everything is seeded, so every bound here is an exact, reproducible
//! assertion — including the bit-identity checks.

use edonkey_repro::netsim::run_crawl_streaming;
use edonkey_repro::prelude::*;
use edonkey_repro::trace::io::bin::{from_bin, save_bin, to_bin, TraceWriter};
use edonkey_repro::trace::io::{from_compact, from_json, to_compact, to_json};
use edonkey_repro::trace::pipeline::filter_streaming;
use std::sync::OnceLock;

const SEED: u64 = 20060418;

/// One shared population for the whole file (generation dominates test
/// time; every crawl is read-only on it).
fn population() -> &'static Population {
    static POP: OnceLock<Population> = OnceLock::new();
    POP.get_or_init(|| {
        let mut config = WorkloadConfig::test_scale(SEED);
        config.peers = 400;
        config.files = 4_000;
        config.topics = 80;
        config.days = 10;
        config.cache_max = 300;
        Population::generate(config)
    })
}

fn base_config(browse_coverage: f64) -> CrawlerConfig {
    CrawlerConfig {
        outage_days: vec![],
        ..Default::default()
    }
    .budget_for(population().config.peers, browse_coverage, 2.0)
}

fn faulted(fault: FaultConfig, retry: RetryPolicy, browse_coverage: f64) -> CrawlerConfig {
    CrawlerConfig {
        fault,
        retry,
        ..base_config(browse_coverage)
    }
}

/// Every fault kind × {no-retry, retry+backoff}: the crawl completes,
/// the health ledger reconciles internally, and its `recorded` column
/// agrees exactly with the emitted trace.
#[test]
fn fault_matrix_health_reconciles_with_the_trace() {
    let quiet = FaultConfig::none();
    let kinds: &[(&str, FaultConfig)] = &[
        (
            "nat",
            FaultConfig {
                seed: 1,
                nat_prob: 0.3,
                ..quiet.clone()
            },
        ),
        (
            "transient",
            FaultConfig {
                seed: 2,
                transient_rate: 0.3,
                ..quiet.clone()
            },
        ),
        (
            "disconnect",
            FaultConfig {
                seed: 3,
                disconnect_rate: 0.4,
                ..quiet.clone()
            },
        ),
        (
            "query_drop",
            FaultConfig {
                seed: 4,
                query_drop_rate: 0.4,
                ..quiet.clone()
            },
        ),
        (
            "burst",
            FaultConfig {
                seed: 5,
                burst_days: vec![2, 5],
                burst_offline_prob: 0.8,
                ..quiet.clone()
            },
        ),
    ];
    for (name, fault) in kinds {
        for (policy, retry) in [
            ("no_retry", RetryPolicy::no_retry()),
            ("retry_backoff", RetryPolicy::backoff()),
        ] {
            let (trace, report) = run_crawl_full(
                population(),
                NetConfig::default(),
                faulted(fault.clone(), retry, 2.0),
            );
            let tag = format!("{name}/{policy}");
            assert_eq!(trace.check_invariants(), Ok(()), "{tag}");
            assert_eq!(report.health.check_invariants(), Ok(()), "{tag}");
            assert_eq!(
                report.health.recorded as usize,
                trace.snapshot_count(),
                "{tag}: every recorded browse must be a trace snapshot"
            );
            let attempts: usize = report.stats.iter().map(|d| d.attempts).sum();
            assert_eq!(
                attempts as u64, report.health.attempted,
                "{tag}: day stats and the health ledger count the same attempts"
            );
            let browsed: usize = report.stats.iter().map(|d| d.browsed).sum();
            assert_eq!(
                browsed as u64,
                report.health.recorded + report.health.duplicates,
                "{tag}: every browse is recorded or a duplicate"
            );
        }
    }
}

/// Fault draws are rate-independent (a peer-day faulted at 15% is still
/// faulted at 35%), so coverage degrades monotonically in the rate —
/// mechanically, not statistically.
#[test]
fn coverage_degrades_monotonically_with_fault_rate() {
    let mut last = usize::MAX;
    for &rate in &[0.0, 0.15, 0.35, 0.6] {
        let fault = FaultConfig {
            seed: 11,
            transient_rate: rate,
            ..FaultConfig::none()
        };
        let (trace, report) = run_crawl_full(
            population(),
            NetConfig::default(),
            faulted(fault, RetryPolicy::no_retry(), 3.0),
        );
        assert_eq!(report.health.check_invariants(), Ok(()));
        let n = trace.snapshot_count();
        assert!(
            n <= last,
            "coverage must not rise with the fault rate: {n} after {last} at rate {rate}"
        );
        last = n;
    }
    assert!(last > 0, "even the worst rate must observe something");
}

/// The ISSUE acceptance bar: at a 25% transient-fault rate the
/// retry+backoff crawler recovers at least 90% of the fault-free
/// coverage, and the no-retry crawler measurably less.
#[test]
fn retry_with_backoff_recovers_faulted_coverage() {
    let (clean, _) = run_crawl_full(population(), NetConfig::default(), base_config(3.0));
    let fault = FaultConfig {
        seed: SEED,
        transient_rate: 0.25,
        ..FaultConfig::none()
    };
    let (no_retry, nr_report) = run_crawl_full(
        population(),
        NetConfig::default(),
        faulted(fault.clone(), RetryPolicy::no_retry(), 3.0),
    );
    let (retry, r_report) = run_crawl_full(
        population(),
        NetConfig::default(),
        faulted(fault, RetryPolicy::backoff(), 3.0),
    );
    assert_eq!(nr_report.health.check_invariants(), Ok(()));
    assert_eq!(r_report.health.check_invariants(), Ok(()));
    assert!(r_report.health.retries > 0, "backoff must actually retry");
    let clean_n = clean.snapshot_count() as f64;
    let nr_n = no_retry.snapshot_count() as f64;
    let r_n = retry.snapshot_count() as f64;
    assert!(
        r_n >= 0.9 * clean_n,
        "retry+backoff must recover ≥90% of fault-free coverage: {r_n} vs {clean_n}"
    );
    assert!(
        nr_n < 0.9 * clean_n,
        "no-retry must lose measurable coverage: {nr_n} vs {clean_n}"
    );
    assert!(
        r_n > nr_n,
        "retry must strictly beat no-retry: {r_n} vs {nr_n}"
    );
}

/// The paper's headline ordering (Fig. 18: History ≳ LRU ≫ Random)
/// survives a faulted crawl — measurement noise from timeouts and
/// truncated browses does not erase the semantic-clustering signal.
#[test]
fn fig18_policy_ordering_survives_faults() {
    let mut config = WorkloadConfig::test_scale(SEED);
    config.peers = 1_200;
    config.files = 20_000;
    config.topics = 240;
    config.days = 12;
    let peers = config.peers;
    let population = Population::generate(config);
    let fault = FaultConfig {
        seed: SEED ^ 0x18,
        transient_rate: 0.25,
        disconnect_rate: 0.1,
        ..FaultConfig::none()
    };
    let crawler_config = CrawlerConfig {
        outage_days: vec![],
        fault,
        retry: RetryPolicy::backoff(),
        ..Default::default()
    }
    .budget_for(peers, 2.0, 2.0);
    let (trace, report) = run_crawl_full(&population, NetConfig::default(), crawler_config);
    assert_eq!(report.health.check_invariants(), Ok(()));
    assert!(report.health.truncated > 0, "disconnects must truncate");
    let filtered = filter(&trace).trace;
    let caches = filtered.static_caches();
    let n_files = filtered.files.len();
    let hit = |c: SimConfig| simulate(&caches, n_files, &c.with_seed(SEED)).hit_rate();
    let (lru, history, random) = (
        hit(SimConfig::lru(20)),
        hit(SimConfig::history(20)),
        hit(SimConfig::random(20)),
    );
    assert!(lru > 0.2, "LRU-20 hit rate {lru} on the faulted trace");
    assert!(
        history > 0.2,
        "History-20 hit rate {history} on the faulted trace"
    );
    assert!(
        lru > random + 0.1 && history > random + 0.1,
        "semantic lists must beat random on the faulted trace: \
         lru {lru}, history {history}, random {random}"
    );
}

/// Determinism smoke over three seeds: the same seed reproduces the
/// crawl bit-for-bit (health, day stats, and the binary trace bytes),
/// and the streaming writer emits exactly the batch bytes.
#[test]
fn same_seed_is_bit_identical_across_runs() {
    for seed in [7u64, 4242, 20060418] {
        let fault = FaultConfig {
            seed,
            nat_prob: 0.1,
            transient_rate: 0.2,
            disconnect_rate: 0.15,
            query_drop_rate: 0.1,
            burst_days: vec![3],
            burst_offline_prob: 0.5,
        };
        let config = faulted(fault, RetryPolicy::backoff(), 1.5);
        let (trace_a, report_a) =
            run_crawl_full(population(), NetConfig::default(), config.clone());
        let (trace_b, report_b) =
            run_crawl_full(population(), NetConfig::default(), config.clone());
        assert_eq!(report_a, report_b, "seed {seed}: reports must be identical");
        let bytes_a = to_bin(&trace_a);
        assert_eq!(
            bytes_a,
            to_bin(&trace_b),
            "seed {seed}: traces must be byte-identical"
        );
        let writer = TraceWriter::new(std::io::Cursor::new(Vec::new())).unwrap();
        let (stream_report, sink) =
            run_crawl_streaming(population(), NetConfig::default(), config, writer).unwrap();
        assert_eq!(stream_report, report_a, "seed {seed}: streaming report");
        assert_eq!(
            sink.into_inner(),
            bytes_a,
            "seed {seed}: streaming bytes must equal the batch encoding"
        );
    }
}

/// Truncated (mid-browse-disconnect) snapshots flow through the whole
/// trace pipeline unchanged: all three codecs round-trip them, the
/// streaming filter agrees with the in-memory filter, and extrapolation
/// accepts the survivors.
#[test]
fn truncated_traces_flow_through_the_pipeline() {
    let fault = FaultConfig {
        seed: 99,
        disconnect_rate: 0.6,
        ..FaultConfig::none()
    };
    let (trace, report) = run_crawl_full(
        population(),
        NetConfig::default(),
        faulted(fault, RetryPolicy::backoff(), 2.0),
    );
    assert!(
        report.health.truncated > 0,
        "the disconnect rate must truncate browses"
    );
    assert_eq!(trace.check_invariants(), Ok(()));

    // All three codecs round-trip the truncated trace.
    assert_eq!(from_bin(&to_bin(&trace)).unwrap(), trace, "binary codec");
    assert_eq!(from_json(&to_json(&trace)).unwrap(), trace, "JSON codec");
    assert_eq!(
        from_compact(&to_compact(&trace)).unwrap(),
        trace,
        "compact codec"
    );

    // Streaming filter agrees with the in-memory filter.
    let dir = std::env::temp_dir().join(format!("edonkey_crawl_faults_{SEED}"));
    std::fs::create_dir_all(&dir).unwrap();
    let input = dir.join("full.etb");
    let output = dir.join("filtered.etb");
    save_bin(&trace, &input).unwrap();
    let in_memory = filter(&trace);
    let streamed = filter_streaming(&input, &output).unwrap();
    let from_stream = edonkey_repro::trace::io::bin::load_bin(&output).unwrap();
    assert_eq!(
        from_stream, in_memory.trace,
        "streaming filter must equal the in-memory filter"
    );
    assert_eq!(streamed.kept, in_memory.kept);
    std::fs::remove_dir_all(&dir).ok();

    // Extrapolation accepts the surviving peers (the population runs 10
    // days, so relax the span/snapshot gates accordingly).
    let extrapolated = extrapolate(
        &in_memory.trace,
        ExtrapolateConfig {
            min_snapshots: 3,
            min_span_days: 5,
        },
    );
    assert_eq!(extrapolated.trace.check_invariants(), Ok(()));
    assert!(
        !extrapolated.trace.peers.is_empty(),
        "regular clients must survive extrapolation of a truncated trace"
    );
}
