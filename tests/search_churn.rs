//! Availability matrix for the Section 5 server-less search simulator:
//! peer churn, query timeouts with retries, staleness eviction, and
//! server-outage fallback, with every acceptance criterion asserted as
//! a machine-checked bound.
//!
//! Everything runs at test scale with fixed seeds — exact, reproducible
//! assertions, not statistical hopes.

use std::sync::OnceLock;

use edonkey_repro::semsearch::experiment::{churn_grid, CHURN_POLICIES};
use edonkey_repro::semsearch::index::IndexBackend;
use edonkey_repro::semsearch::neighbours::PolicyKind;
use edonkey_repro::semsearch::sim::{simulate_reference, AvailabilityConfig, QueryPolicy};
use edonkey_repro::semsearch::{simulate, SimConfig};
use edonkey_repro::trace::model::FileRef;
use edonkey_repro::trace::pipeline::filter;
use edonkey_repro::workload::{generate_trace, WorkloadConfig};

const SEED: u64 = 20060418;
const CHURN_SEED: u64 = SEED ^ 0xc4c4;
const LIST_SIZE: usize = 20;

/// One shared filtered workload for the whole file (generation
/// dominates test time; every check is read-only on it).
fn caches() -> &'static (Vec<Vec<FileRef>>, usize) {
    static W: OnceLock<(Vec<Vec<FileRef>>, usize)> = OnceLock::new();
    W.get_or_init(|| {
        let mut config = WorkloadConfig::test_scale(SEED);
        config.peers = 1_500;
        config.files = 30_000;
        config.topics = 300;
        config.days = 15;
        let (_, trace) = generate_trace(config);
        let filtered = filter(&trace).trace;
        let n = filtered.files.len();
        (filtered.static_caches(), n)
    })
}

/// The pre-availability `SimConfig` for one of [`CHURN_POLICIES`].
fn plain_config(policy: PolicyKind) -> SimConfig {
    let config = match policy {
        PolicyKind::Lru => SimConfig::lru(LIST_SIZE),
        PolicyKind::History => SimConfig::history(LIST_SIZE),
        PolicyKind::Random => SimConfig::random(LIST_SIZE),
        PolicyKind::RareLru { max_sources } => SimConfig::rare_lru(LIST_SIZE, max_sources),
    };
    config.with_seed(SEED)
}

/// Churn 0 + no outages ⇒ bit-identical to the pre-availability
/// simulator, both through the oracle (`simulate_reference`) and
/// through the churn grid itself — even with retries and staleness
/// eviction fully armed.
#[test]
fn zero_churn_is_bit_identical_to_the_seed_simulator() {
    let (caches, n_files) = caches();
    for config in [
        SimConfig::lru(8).with_seed(SEED),
        SimConfig::history(8).with_seed(SEED),
        SimConfig::lru(4).with_seed(SEED).with_two_hop(),
    ] {
        let reference = simulate_reference(caches, *n_files, &config);
        let armed = config
            .with_availability(AvailabilityConfig::none().with_query(QueryPolicy::retry_evict()));
        assert_eq!(
            simulate(caches, *n_files, &armed),
            reference,
            "quiet availability changed the result for {armed:?}"
        );
    }
    // The grid's rate-0 cells equal the plain simulator for every
    // policy and either querier reaction, and their ledgers are silent.
    let queries = [QueryPolicy::no_retry(), QueryPolicy::retry_evict()];
    let cells = churn_grid(
        caches,
        *n_files,
        LIST_SIZE,
        &[0],
        &queries,
        &[],
        IndexBackend::SingleServer,
        CHURN_SEED,
        SEED,
    );
    for cell in &cells {
        let plain = simulate(caches, *n_files, &plain_config(cell.policy));
        assert_eq!(
            cell.result, plain,
            "rate-0 cell diverged: {:?}",
            cell.policy
        );
        assert_eq!(cell.health.timed_out, 0);
        assert_eq!(cell.health.retried, 0);
        assert_eq!(cell.health.evicted_stale + cell.health.probed_stale, 0);
        assert_eq!(cell.health.stranded, 0);
    }
}

/// At 25% churn, retrying with backoff plus staleness eviction recovers
/// a strictly higher hit rate than the no-retry baseline — for every
/// list policy.
#[test]
fn retry_and_eviction_recover_hits_at_25pct_churn_for_every_policy() {
    let (caches, n_files) = caches();
    let queries = [QueryPolicy::no_retry(), QueryPolicy::retry_evict()];
    let cells = churn_grid(
        caches,
        *n_files,
        LIST_SIZE,
        &[250],
        &queries,
        &[],
        IndexBackend::SingleServer,
        CHURN_SEED,
        SEED,
    );
    for policy in CHURN_POLICIES {
        let rate = |max_retries: u32| {
            cells
                .iter()
                .find(|c| c.policy == policy && c.query.max_retries == max_retries)
                .expect("cell present")
                .result
                .hit_rate()
        };
        let (no_retry, retry) = (rate(0), rate(3));
        assert!(
            retry > no_retry,
            "{policy:?}: retry_evict {retry} must beat no_retry {no_retry} at 250 permille"
        );
    }
    // The recovery is driven by retries that actually happened.
    assert!(cells
        .iter()
        .filter(|c| c.query.max_retries > 0)
        .all(|c| c.health.retried > 0));
}

/// The Fig. 18 ordering — semantic lists (History, LRU) clearly beat
/// Random — survives 25% churn under the retrying querier.
#[test]
fn fig18_ordering_survives_churn() {
    let (caches, n_files) = caches();
    let cells = churn_grid(
        caches,
        *n_files,
        LIST_SIZE,
        &[250],
        &[QueryPolicy::retry_evict()],
        &[],
        IndexBackend::SingleServer,
        CHURN_SEED,
        SEED,
    );
    let rate = |p: PolicyKind| {
        cells
            .iter()
            .find(|c| c.policy == p)
            .expect("cell present")
            .result
            .hit_rate()
    };
    let (lru, history, random) = (
        rate(PolicyKind::Lru),
        rate(PolicyKind::History),
        rate(PolicyKind::Random),
    );
    assert!(lru > 0.15, "LRU-20 hit rate {lru} under 25% churn");
    assert!(
        history > 0.15,
        "History-20 hit rate {history} under 25% churn"
    );
    assert!(
        lru > random + 0.05 && history > random + 0.05,
        "semantic lists must still beat random under churn: \
         lru {lru}, history {history}, random {random}"
    );
}

/// A server outage that starts mid-span strands outage-day misses and
/// still recovers answers through the warm overlay, for every policy;
/// the ledger identities hold exactly in every cell (reconciliation is
/// also asserted inside `churn_grid` itself).
#[test]
fn server_outage_strands_and_recovers_in_every_cell() {
    let (caches, n_files) = caches();
    let outage: Vec<u32> = (7..200).collect();
    let queries = [QueryPolicy::no_retry(), QueryPolicy::retry_evict()];
    let cells = churn_grid(
        caches,
        *n_files,
        LIST_SIZE,
        &[250],
        &queries,
        &outage,
        IndexBackend::SingleServer,
        CHURN_SEED,
        SEED,
    );
    for cell in &cells {
        assert!(
            cell.health.stranded > 0,
            "{:?}: outage misses must strand",
            cell.policy
        );
        assert!(
            cell.health.recovered > 0,
            "{:?}: the warm overlay must keep answering",
            cell.policy
        );
        assert!(
            cell.health.server_fallback > 0,
            "{:?}: pre-outage misses must fall back",
            cell.policy
        );
        assert_eq!(
            cell.health.stranded + cell.health.server_fallback,
            cell.result.requests - cell.result.hits(),
            "{:?}: every miss is exactly one of stranded/fallback",
            cell.policy
        );
        assert!(cell.health.recovered <= cell.health.answered);
    }
}

/// Full churn: a peer offline the entire day answers nothing — the
/// overlay goes dark and every request lands on the server.
#[test]
fn total_churn_sends_everything_to_the_server() {
    let (caches, n_files) = caches();
    let cells = churn_grid(
        caches,
        *n_files,
        LIST_SIZE,
        &[1000],
        &[QueryPolicy::retry_evict()],
        &[],
        IndexBackend::SingleServer,
        CHURN_SEED,
        SEED,
    );
    for cell in &cells {
        assert_eq!(cell.result.hits(), 0, "{:?}", cell.policy);
        assert_eq!(cell.health.server_fallback, cell.result.requests);
    }
}

/// The whole matrix is a pure function of its seeds: re-running any
/// cell reproduces the result and the ledger bit-for-bit, across three
/// distinct churn seeds.
#[test]
fn churn_matrix_is_deterministic_across_runs() {
    let (caches, n_files) = caches();
    for churn_seed in [1u64, 0xfeed, CHURN_SEED] {
        let run = || {
            churn_grid(
                caches,
                *n_files,
                LIST_SIZE,
                &[100, 500],
                &[QueryPolicy::retry_evict()],
                &[],
                IndexBackend::SingleServer,
                churn_seed,
                SEED,
            )
        };
        let (a, b) = (run(), run());
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.result, y.result, "seed {churn_seed}: results diverged");
            assert_eq!(x.health, y.health, "seed {churn_seed}: ledgers diverged");
        }
    }
}
