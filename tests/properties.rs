//! Cross-crate property-based tests (proptest): codec round-trips,
//! randomization invariants, pipeline monotonicity, CDF laws, neighbour
//! list invariants, and simulation accounting identities hold for *all*
//! inputs, not just the hand-picked ones.

use std::collections::{HashMap, HashSet};

use edonkey_repro::analysis::banded::{self, BandedOverlapConfig};
use edonkey_repro::analysis::semantic;
use edonkey_repro::proto::error::{Reader, Writer};
use edonkey_repro::proto::md4::{Digest, Md4};
use edonkey_repro::proto::query::FileKind;
use edonkey_repro::proto::query::Query;
use edonkey_repro::proto::tags::{Tag, TagList, TagValue};
use edonkey_repro::proto::wire::{Message, PublishedFile, SourceAddr};
use edonkey_repro::semsearch::experiment::{self, sweep_cells_threads};
use edonkey_repro::semsearch::neighbours::{Lru, NeighbourPolicy};
use edonkey_repro::semsearch::overlay::{
    simulate_overlay, simulate_overlay_reference, OverlayConfig,
};
use edonkey_repro::semsearch::serve::{serve_arena_threads, ServeConfig};
use edonkey_repro::semsearch::sim::{
    simulate_arena_health_with_scratch, simulate_arena_with_scratch, simulate_reference, SimScratch,
};
use edonkey_repro::semsearch::{
    simulate, AdversaryConfig, AvailabilityConfig, IndexBackend, QueryPolicy, SimConfig,
};
use edonkey_repro::trace::compact::{CacheArena, TraceArena};
use edonkey_repro::trace::io;
use edonkey_repro::trace::model::{
    CountryCode, DaySnapshot, FileInfo, FileRef, PeerId, PeerInfo, Trace,
};
use edonkey_repro::trace::pipeline::{
    extrapolate, extrapolate_arena_with_threads, filter, filter_arena, retain_peers,
    retain_peers_arena, sorted_intersection, sorted_intersection_len, ExtrapolateConfig,
};
use edonkey_repro::trace::randomize::{ArenaShuffler, Shuffler};
use edonkey_repro::workload::{stream, ChurnConfig, ChurnSchedule};
use proptest::prelude::*;

use edonkey_repro::netsim::{run_crawl_full, CrawlerConfig, FaultConfig, NetConfig, RetryPolicy};
use edonkey_repro::workload::{Population, WorkloadConfig};

// --- strategies -------------------------------------------------------

fn arb_digest() -> impl Strategy<Value = Digest> {
    any::<[u8; 16]>().prop_map(Digest)
}

fn arb_tag() -> impl Strategy<Value = Tag> {
    let value = prop_oneof![
        any::<u32>().prop_map(TagValue::U32),
        "[a-zA-Z0-9 ._-]{0,40}".prop_map(TagValue::String),
    ];
    ("[a-z]{2,12}", value).prop_map(|(name, value)| Tag::custom(name, value))
}

fn arb_published_file() -> impl Strategy<Value = PublishedFile> {
    (
        arb_digest(),
        any::<u32>(),
        any::<u16>(),
        prop::collection::vec(arb_tag(), 0..4),
    )
        .prop_map(|(file_id, ip, port, tags)| PublishedFile {
            file_id,
            ip,
            port,
            tags: tags.into_iter().collect(),
        })
}

fn arb_message() -> impl Strategy<Value = Message> {
    prop_oneof![
        (arb_digest(), "[a-z]{1,16}", any::<u16>()).prop_map(|(uid, nick, port)| {
            Message::Login {
                uid,
                nick,
                port,
                tags: TagList::new(),
            }
        }),
        prop::collection::vec(arb_published_file(), 0..5).prop_map(Message::PublishFiles),
        "[a-z]{1,10}".prop_map(|p| Message::QueryUsers { pattern: p }),
        arb_digest().prop_map(|d| Message::QuerySources { file_id: d }),
        Just(Message::GetServerList),
        Just(Message::BrowseRequest),
        Just(Message::BrowseDenied),
        prop::collection::vec(arb_published_file(), 0..5).prop_map(Message::BrowseResult),
        (any::<u32>(), any::<u32>())
            .prop_map(|(users, files)| Message::ServerStatus { users, files }),
        prop::collection::vec((any::<u32>(), any::<u16>()), 0..6).prop_map(|v| {
            Message::ServerList(
                v.into_iter()
                    .map(|(ip, port)| SourceAddr { ip, port })
                    .collect(),
            )
        }),
        (arb_digest(), prop::collection::vec(arb_digest(), 0..5))
            .prop_map(|(file_id, parts)| Message::Hashset { file_id, parts }),
    ]
}

/// Caches: up to 24 peers, each holding distinct refs below 64.
fn arb_caches() -> impl Strategy<Value = Vec<Vec<FileRef>>> {
    prop::collection::vec(prop::collection::btree_set(0u32..64, 0..12), 0..24).prop_map(|sets| {
        sets.into_iter()
            .map(|s| s.into_iter().map(FileRef).collect())
            .collect()
    })
}

/// Arbitrary valid traces: 0–11 files, 0–9 peers (IPs drawn from four
/// addresses so DHCP-style duplicates are common), 0–3 days with
/// arbitrary per-peer caches (often empty ⇒ free-riders). Covers the
/// degenerate shapes the codecs must handle: the empty trace, day-less
/// traces with populated tables, and single-day traces.
fn arb_trace() -> impl Strategy<Value = Trace> {
    let countries = ["FR", "DE", "ES", "US"];
    (
        prop::collection::vec((any::<u32>(), 0usize..64), 0..12),
        prop::collection::vec((0u32..4, 0usize..4, any::<u32>()), 0..10),
        prop::collection::vec(
            prop::collection::vec(
                (any::<bool>(), prop::collection::btree_set(0u32..16, 0..6)),
                0..10,
            ),
            0..4,
        ),
        prop::collection::btree_set(340u32..360, 0..4),
    )
        .prop_map(move |(files_raw, peers_raw, day_slots, day_numbers)| {
            let files: Vec<FileInfo> = files_raw
                .iter()
                .enumerate()
                .map(|(i, &(size, kind))| FileInfo {
                    id: Md4::digest(format!("prop-file-{i}").as_bytes()),
                    size: size as u64,
                    kind: FileKind::ALL[kind % FileKind::ALL.len()],
                })
                .collect();
            let peers: Vec<PeerInfo> = peers_raw
                .iter()
                .enumerate()
                .map(|(i, &(ip, country, asn))| PeerInfo {
                    uid: Md4::digest(format!("prop-peer-{i}").as_bytes()),
                    ip,
                    country: CountryCode::new(countries[country]),
                    asn,
                })
                .collect();
            let days: Vec<DaySnapshot> = day_numbers
                .into_iter()
                .zip(day_slots)
                .map(|(day, slots)| DaySnapshot {
                    day,
                    caches: slots
                        .into_iter()
                        .take(peers.len())
                        .enumerate()
                        .filter(|(_, (observed, _))| *observed)
                        .map(|(peer, (_, raw))| {
                            let cache: Vec<FileRef> = raw
                                .into_iter()
                                .filter(|&f| (f as usize) < files.len())
                                .map(FileRef)
                                .collect();
                            (PeerId(peer as u32), cache)
                        })
                        .collect(),
                })
                .collect();
            Trace { files, peers, days }
        })
}

/// Arbitrary small-but-varied workload configurations for the
/// streaming-generation twin property: enough peers/files/days to
/// exercise turnover, free-riders and empty days without making each
/// proptest case generate a full population twice for minutes.
fn arb_stream_config() -> impl Strategy<Value = WorkloadConfig> {
    (
        (any::<u64>(), 2usize..24, 8usize..96),
        (2usize..6, 1u32..7, 0u32..=8),
    )
        .prop_map(|((seed, peers, files), (topics, days, free_riders))| {
            let mut c = WorkloadConfig::test_scale(seed);
            c.peers = peers;
            c.files = files;
            c.topics = topics;
            c.days = days;
            c.free_rider_fraction = f64::from(free_riders) / 10.0;
            c.cache_max = c.cache_max.min(files as u64);
            c.cache_min = c.cache_min.min(c.cache_max);
            c.interests_max = c.interests_max.min(topics);
            c.interests_min = c.interests_min.min(c.interests_max);
            assert_eq!(c.validate(), Ok(()), "strategy must emit valid configs");
            c
        })
}

/// One tiny shared population for the fault-schedule properties (the
/// crawl itself is the system under test; generation is just setup).
fn crawl_population() -> &'static Population {
    static POP: std::sync::OnceLock<Population> = std::sync::OnceLock::new();
    POP.get_or_init(|| {
        let mut config = WorkloadConfig::test_scale(0xfa17);
        config.peers = 120;
        config.files = 1_000;
        config.topics = 24;
        config.days = 5;
        Population::generate(config)
    })
}

/// Arbitrary fault schedules: every rate in [0, 0.6], any subset of the
/// population's days as burst days, either retry policy.
fn arb_fault_config() -> impl Strategy<Value = FaultConfig> {
    let pct = || (0u32..=60).prop_map(|p| p as f64 / 100.0);
    (
        (any::<u64>(), pct(), pct(), pct(), pct()),
        (
            prop::collection::btree_set(0u32..5, 0..3),
            (0u32..=90).prop_map(|p| p as f64 / 100.0),
        ),
    )
        .prop_map(
            |((seed, nat, transient, disconnect, query), (bursts, burst_prob))| FaultConfig {
                seed,
                nat_prob: nat,
                transient_rate: transient,
                disconnect_rate: disconnect,
                query_drop_rate: query,
                burst_days: bursts.into_iter().collect(),
                burst_offline_prob: burst_prob,
            },
        )
}

fn arb_retry_policy() -> impl Strategy<Value = RetryPolicy> {
    prop_oneof![Just(RetryPolicy::no_retry()), Just(RetryPolicy::backoff())]
}

fn replica_histogram(caches: &[Vec<FileRef>]) -> HashMap<FileRef, usize> {
    let mut h = HashMap::new();
    for cache in caches {
        for &f in cache {
            *h.entry(f).or_insert(0) += 1;
        }
    }
    h
}

// --- properties -------------------------------------------------------

proptest! {
    /// Every wire message survives a frame round-trip byte-exactly.
    #[test]
    fn wire_messages_round_trip(msg in arb_message()) {
        let frame = msg.to_frame();
        let (decoded, used) = Message::from_frame(&frame).expect("decode own frame");
        prop_assert_eq!(used, frame.len());
        prop_assert_eq!(decoded, msg);
    }

    /// Frame decoding never panics on arbitrary bytes; it either errors
    /// or consumes a prefix.
    #[test]
    fn frame_decoder_is_total(bytes in prop::collection::vec(any::<u8>(), 0..128)) {
        if let Ok((_, used)) = Message::from_frame(&bytes) {
            prop_assert!(used <= bytes.len());
        }
    }

    /// Tag lists round-trip through the binary codec.
    #[test]
    fn tag_lists_round_trip(tags in prop::collection::vec(arb_tag(), 0..8)) {
        let list: TagList = tags.into_iter().collect();
        let mut w = Writer::new();
        list.encode(&mut w);
        let bytes = w.into_vec();
        let mut r = Reader::new(&bytes);
        prop_assert_eq!(TagList::read(&mut r).expect("decode"), list);
        prop_assert_eq!(r.remaining(), 0);
    }

    /// The MD4 digest is invariant under arbitrary chunking.
    #[test]
    fn md4_chunking_invariance(
        data in prop::collection::vec(any::<u8>(), 0..512),
        cuts in prop::collection::vec(any::<prop::sample::Index>(), 0..6),
    ) {
        let expected = Md4::digest(&data);
        let mut boundaries: Vec<usize> =
            cuts.iter().map(|ix| ix.index(data.len() + 1)).collect();
        boundaries.push(0);
        boundaries.push(data.len());
        boundaries.sort_unstable();
        let mut hasher = Md4::new();
        for pair in boundaries.windows(2) {
            hasher.update(&data[pair[0]..pair[1]]);
        }
        prop_assert_eq!(hasher.finalize(), expected);
    }

    /// Query text that parses always re-parses from its Display output
    /// to the same AST.
    #[test]
    // Words of length >= 4 cannot collide with the AND/OR/NOT operators
    // or the size/avail comparison atoms.
    fn query_display_parse_fixpoint(words in prop::collection::vec("[a-z]{4,8}", 1..5)) {
        let text = words.join(" AND ");
        let q = Query::parse(&text).expect("well-formed");
        let q2 = Query::parse(&q.to_string()).expect("display output re-parses");
        prop_assert_eq!(q, q2);
    }

    /// Randomization preserves peer generosity and file popularity
    /// exactly, and never duplicates a file within a cache.
    #[test]
    fn randomization_invariants(caches in arb_caches(), swaps in 0u64..2_000) {
        let sizes: Vec<usize> = caches.iter().map(Vec::len).collect();
        let popularity = replica_histogram(&caches);
        let mut shuffler = Shuffler::new(caches);
        let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(42);
        shuffler.run(swaps, &mut rng);
        let result = shuffler.into_caches();
        prop_assert_eq!(result.iter().map(Vec::len).collect::<Vec<_>>(), sizes);
        prop_assert_eq!(replica_histogram(&result), popularity);
        for cache in &result {
            let set: HashSet<_> = cache.iter().collect();
            prop_assert_eq!(set.len(), cache.len());
        }
    }

    /// Sorted intersection agrees with the set-based definition.
    #[test]
    fn intersection_matches_sets(
        a in prop::collection::btree_set(0u32..64, 0..20),
        b in prop::collection::btree_set(0u32..64, 0..20),
    ) {
        let va: Vec<FileRef> = a.iter().map(|&x| FileRef(x)).collect();
        let vb: Vec<FileRef> = b.iter().map(|&x| FileRef(x)).collect();
        let expected: Vec<FileRef> =
            a.intersection(&b).map(|&x| FileRef(x)).collect();
        prop_assert_eq!(sorted_intersection(&va, &vb), expected.clone());
        prop_assert_eq!(sorted_intersection_len(&va, &vb), expected.len());
    }

    /// LRU neighbour lists never exceed capacity, never hold duplicates,
    /// and always lead with the latest uploader.
    #[test]
    fn lru_invariants(uploads in prop::collection::vec(0u32..12, 1..60), cap in 1usize..8) {
        let mut lru = Lru::new(cap);
        for &u in &uploads {
            lru.record_upload(u);
            prop_assert!(lru.neighbours().len() <= cap);
            prop_assert_eq!(lru.neighbours()[0], u, "head is the latest uploader");
            let set: HashSet<_> = lru.neighbours().iter().collect();
            prop_assert_eq!(set.len(), lru.neighbours().len());
        }
    }

    /// Simulation accounting identity: every (peer, file) pair becomes
    /// exactly one of {seed, hit, miss}, and loads only land on peers
    /// that can be neighbours.
    #[test]
    fn simulation_accounting(caches in arb_caches(), list_size in 1usize..6) {
        let n_files = 64;
        let total: u64 = caches.iter().map(|c| c.len() as u64).sum();
        let result = simulate(&caches, n_files, &SimConfig::lru(list_size));
        prop_assert_eq!(result.requests + result.contributor_seeds, total);
        prop_assert!(result.hits() <= result.requests);
        for (peer, &load) in result.messages_per_peer.iter().enumerate() {
            if caches[peer].is_empty() {
                prop_assert_eq!(load, 0, "free-riders never receive queries");
            }
        }
    }

    /// The arena-backed simulator is exactly the legacy simulator: same
    /// caches, same seed ⇒ identical `SimResult`, for every policy and
    /// with scratch buffers reused across configs.
    #[test]
    fn arena_simulate_equals_legacy(caches in arb_caches(), seed in 0u64..1_000) {
        let n_files = 64;
        let arena = CacheArena::from_caches(&caches, n_files);
        let mut scratch = SimScratch::new();
        for config in [
            SimConfig::lru(4).with_seed(seed),
            SimConfig::history(3).with_seed(seed),
            SimConfig::random(3).with_seed(seed),
            SimConfig::rare_lru(4, 2).with_seed(seed),
            SimConfig::lru(2).with_seed(seed).with_two_hop(),
        ] {
            let legacy = simulate_reference(&caches, n_files, &config);
            let arena_result = simulate_arena_with_scratch(&arena, &config, &mut scratch);
            prop_assert_eq!(&legacy, &arena_result, "config {:?}", config);
        }
    }

    /// The parallel arena overlap engine reproduces the sequential seed
    /// path exactly for 1, 2 and 8 worker threads, including holder caps.
    #[test]
    fn arena_overlap_equals_sequential(
        caches in arb_caches(),
        max_holders in prop_oneof![Just(None), (2usize..8).prop_map(Some)],
    ) {
        let n_files = 64;
        let seq = semantic::overlap_counts(&caches, n_files, |_| true, max_holders);
        let arena = CacheArena::from_caches(&caches, n_files);
        let mut expected: Vec<_> = seq.iter().collect();
        expected.sort_unstable();
        for threads in [1usize, 2, 8] {
            let par = semantic::overlap_counts_arena_with_threads(
                &arena, |_| true, max_holders, threads,
            );
            let mut got: Vec<_> = par.iter().collect();
            got.sort_unstable();
            prop_assert_eq!(&got, &expected, "threads {}", threads);
        }
    }

    /// Every valid trace — including the empty trace, day-less traces,
    /// free-riders and duplicate-IP peers — survives the binary columnar
    /// codec byte-for-byte: decode(encode(t)) == t.
    #[test]
    fn binary_codec_round_trips(trace in arb_trace()) {
        prop_assert_eq!(trace.check_invariants(), Ok(()));
        let bytes = io::to_bin(&trace);
        let decoded = io::from_bin(&bytes).expect("decode own binary encoding");
        prop_assert_eq!(decoded, trace);
    }

    /// The JSON codec round-trips the same trace family losslessly.
    #[test]
    fn json_codec_round_trips(trace in arb_trace()) {
        let decoded = io::from_json(&io::to_json(&trace)).expect("decode own JSON");
        prop_assert_eq!(decoded, trace);
    }

    /// The compact text codec round-trips the same trace family
    /// losslessly.
    #[test]
    fn compact_codec_round_trips(trace in arb_trace()) {
        let decoded =
            io::from_compact(&io::to_compact(&trace)).expect("decode own compact text");
        prop_assert_eq!(decoded, trace);
    }

    /// Crawls under arbitrary fault schedules never panic, reconcile
    /// their health ledger with the emitted trace, are bit-identical
    /// when re-run with the same seed, and the (possibly truncated)
    /// trace round-trips every codec.
    #[test]
    fn faulted_crawls_are_total_and_deterministic(
        fault in arb_fault_config(),
        retry in arb_retry_policy(),
    ) {
        let config = CrawlerConfig {
            outage_days: vec![],
            patterns: 2_000,
            fault,
            retry,
            ..Default::default()
        }
        .budget_for(120, 1.5, 1.5);
        let (trace, report) =
            run_crawl_full(crawl_population(), NetConfig::default(), config.clone());
        prop_assert_eq!(trace.check_invariants(), Ok(()));
        prop_assert_eq!(report.health.check_invariants(), Ok(()));
        prop_assert_eq!(report.health.recorded as usize, trace.snapshot_count());
        let (trace2, report2) =
            run_crawl_full(crawl_population(), NetConfig::default(), config);
        prop_assert_eq!(&report, &report2, "same seed, same report");
        let bytes = io::to_bin(&trace);
        prop_assert_eq!(&bytes, &io::to_bin(&trace2), "same seed, same bytes");
        prop_assert_eq!(io::from_bin(&bytes).expect("binary"), trace.clone());
        prop_assert_eq!(io::from_json(&io::to_json(&trace)).expect("json"), trace.clone());
        prop_assert_eq!(
            io::from_compact(&io::to_compact(&trace)).expect("compact"),
            trace
        );
    }

    /// Churn schedules are pure functions of `(seed, peer, day)`: two
    /// instances of the same config agree everywhere, and the offline
    /// windows of a lower churn rate nest inside those of any higher
    /// rate (same window start, shorter duration).
    #[test]
    fn churn_schedule_deterministic_and_nested(
        seed in any::<u64>(),
        peer in 0u32..200,
        day in 0u32..200,
        r1 in 0u32..=1000,
        r2 in 0u32..=1000,
    ) {
        let (lo, hi) = if r1 <= r2 { (r1, r2) } else { (r2, r1) };
        let a = ChurnSchedule::new(ChurnConfig::with_rate(seed, lo));
        let b = ChurnSchedule::new(ChurnConfig::with_rate(seed, lo));
        let c = ChurnSchedule::new(ChurnConfig::with_rate(seed, hi));
        prop_assert_eq!(
            a.session_offline_start(peer, day),
            b.session_offline_start(peer, day)
        );
        for milli in (0..1000u32).step_by(29) {
            prop_assert_eq!(a.offline(peer, day, milli), b.offline(peer, day, milli));
            if a.offline(peer, day, milli) {
                prop_assert!(
                    c.offline(peer, day, milli),
                    "rate {} offline at {} but rate {} online",
                    lo, milli, hi
                );
            }
        }
    }

    /// A quiet availability regime — churn 0, no outages — leaves the
    /// request-replay simulator bit-identical to the pre-availability
    /// oracle, even with retries and staleness handling fully armed.
    #[test]
    fn quiet_availability_matches_reference(caches in arb_caches(), seed in 0u64..500) {
        let n_files = 64;
        let arena = CacheArena::from_caches(&caches, n_files);
        let mut scratch = SimScratch::new();
        let quiet = AvailabilityConfig::none().with_query(QueryPolicy::retry_evict());
        for config in [
            SimConfig::lru(4).with_seed(seed),
            SimConfig::history(3).with_seed(seed),
            SimConfig::random(3).with_seed(seed),
            SimConfig::rare_lru(4, 2).with_seed(seed),
            SimConfig::lru(2).with_seed(seed).with_two_hop(),
        ] {
            let legacy = simulate_reference(&caches, n_files, &config);
            let armed = config.with_availability(quiet.clone());
            let got = simulate_arena_with_scratch(&arena, &armed, &mut scratch);
            prop_assert_eq!(&legacy, &got, "config {:?}", armed);
        }
    }

    /// The split-cell sweep scheduler is bit-identical to the
    /// whole-cell oracle for any worker count, list size, policy and
    /// churn rate — and, on quiet cells, to the legacy reference
    /// simulator. This is the invariant the parallel sweeps rest on:
    /// partitioning a cell's queriers across workers must never change
    /// a single result bit.
    #[test]
    fn split_sweep_equals_oracle_for_any_thread_count(
        caches in arb_caches(),
        list_size in 1usize..8,
        churn_permille in prop_oneof![Just(0u32), Just(150), Just(450)],
        seed in 0u64..200,
    ) {
        let n_files = 64;
        let arena = CacheArena::from_caches(&caches, n_files);
        let avail = if churn_permille == 0 {
            AvailabilityConfig::none()
        } else {
            AvailabilityConfig::churn(seed ^ 0xc4, churn_permille)
                .with_query(QueryPolicy::retry_evict())
        };
        let configs: Vec<SimConfig> = [
            SimConfig::lru(list_size),
            SimConfig::history(list_size),
            SimConfig::rare_lru(list_size, 2),
        ]
        .into_iter()
        .map(|c| c.with_seed(seed).with_availability(avail.clone()))
        .collect();
        let mut scratch = SimScratch::new();
        let expected: Vec<_> = configs
            .iter()
            .map(|c| simulate_arena_health_with_scratch(&arena, c, &mut scratch))
            .collect();
        for threads in [1usize, 2, 3, 8] {
            let got = sweep_cells_threads(&arena, &configs, threads);
            prop_assert_eq!(&got, &expected, "threads {}", threads);
        }
        if churn_permille == 0 {
            for (config, (result, _)) in configs.iter().zip(&expected) {
                let reference = simulate_reference(&caches, n_files, config);
                prop_assert_eq!(&reference, result, "config {:?}", config);
            }
        }
    }

    /// The serving engine with unbounded queues and identity arrivals
    /// is bit-identical to the batch simulator — result, health ledger
    /// *and* final neighbour lists — for every policy family (Random
    /// included: the engine replays the batch policy-construction
    /// draws), quiet or churned, for any worker count. This is the
    /// split-sweep property lifted to the serving plane.
    #[test]
    fn service_replay_equals_batch_for_any_thread_count(
        caches in arb_caches(),
        churn_permille in prop_oneof![Just(0u32), Just(250)],
        seed in 0u64..200,
    ) {
        let n_files = 64;
        let arena = CacheArena::from_caches(&caches, n_files);
        let avail = if churn_permille == 0 {
            AvailabilityConfig::none()
        } else {
            AvailabilityConfig::churn(seed ^ 0xc4, churn_permille)
                .with_query(QueryPolicy::retry_evict())
        };
        let mut scratch = SimScratch::new();
        for config in [
            SimConfig::lru(4),
            SimConfig::history(3),
            SimConfig::random(3),
            SimConfig::rare_lru(4, 2),
        ] {
            let config = config.with_seed(seed).with_availability(avail.clone());
            let (expected, expected_health) =
                simulate_arena_health_with_scratch(&arena, &config, &mut scratch);
            let expected_lists = scratch.final_lists();
            for threads in [1usize, 2, 8] {
                let report =
                    serve_arena_threads(&arena, &ServeConfig::new(config.clone()), threads);
                prop_assert_eq!(&report.result, &expected, "threads {}", threads);
                prop_assert_eq!(
                    &report.health.search,
                    &expected_health,
                    "threads {}",
                    threads
                );
                prop_assert_eq!(&report.lists, &expected_lists, "threads {}", threads);
                prop_assert_eq!(report.health.shed, 0);
                prop_assert_eq!(report.health.deferred, 0);
            }
        }
    }

    /// The index-backend trait is invisible when quiet: routing every
    /// final miss through an explicit `SingleServer` backend stays
    /// bit-identical to the pre-trait request-replay oracle, for every
    /// policy family.
    #[test]
    fn single_server_backend_matches_reference(caches in arb_caches(), seed in 0u64..200) {
        let n_files = 64;
        let arena = CacheArena::from_caches(&caches, n_files);
        let mut scratch = SimScratch::new();
        let quiet = AvailabilityConfig::none()
            .with_query(QueryPolicy::retry_evict())
            .with_backend(IndexBackend::SingleServer);
        for config in [
            SimConfig::lru(4).with_seed(seed),
            SimConfig::history(3).with_seed(seed),
            SimConfig::random(3).with_seed(seed),
            SimConfig::rare_lru(4, 2).with_seed(seed),
            SimConfig::lru(2).with_seed(seed).with_two_hop(),
        ] {
            let reference = simulate_reference(&caches, n_files, &config);
            let armed = config.with_availability(quiet.clone());
            let got = simulate_arena_with_scratch(&arena, &armed, &mut scratch);
            prop_assert_eq!(&got, &reference, "config {:?}", armed);
        }
    }

    /// Every index backend — single server, federated, DHT — is a pure
    /// function of the configuration seeds: the churn + outage sweep
    /// reproduces results and ledgers bit-for-bit across reruns and for
    /// 1, 2 and 8 worker threads. Forwarding backends take the
    /// whole-cell path inside the same scheduler, so this also pins the
    /// split-eligibility gate.
    #[test]
    fn index_backends_are_deterministic_across_threads(
        caches in arb_caches(),
        seed in prop_oneof![Just(1u64), Just(42), Just(977)],
    ) {
        let n_files = 64;
        let arena = CacheArena::from_caches(&caches, n_files);
        let outage: Vec<u32> = (2..5).collect();
        for backend in [
            IndexBackend::SingleServer,
            IndexBackend::Federated { n_servers: 4 },
            IndexBackend::Dht { replication_k: 2 },
        ] {
            let avail = AvailabilityConfig::churn(seed ^ 0xc4, 250)
                .with_query(QueryPolicy::retry_evict())
                .with_outages(outage.clone())
                .with_backend(backend);
            let configs: Vec<SimConfig> = [SimConfig::lru(4), SimConfig::history(3)]
                .into_iter()
                .map(|c| c.with_seed(seed).with_availability(avail.clone()))
                .collect();
            let baseline = sweep_cells_threads(&arena, &configs, 1);
            for threads in [1usize, 2, 8] {
                prop_assert_eq!(
                    &sweep_cells_threads(&arena, &configs, threads),
                    &baseline,
                    "{} at {} threads",
                    backend.name(),
                    threads
                );
            }
        }
    }

    /// The live-overlay simulator under a quiet availability regime is
    /// bit-identical to its pre-availability oracle on arbitrary
    /// growing cache histories.
    #[test]
    fn quiet_overlay_matches_reference(
        base in prop::collection::vec(prop::collection::btree_set(0u32..16, 0..5), 1..7),
        adds in prop::collection::vec(
            prop::collection::vec(prop::collection::btree_set(0u32..16, 0..3), 1..7),
            1..4,
        ),
        seed in 0u64..100,
    ) {
        // Growing per-peer histories: day 0 is `base`, each later day
        // adds files (the GroundTruth layout the overlay replays).
        let n_peers = base.len();
        let mut current = base;
        let snapshot = |caches: &[std::collections::BTreeSet<u32>]| -> Vec<Vec<FileRef>> {
            caches.iter().map(|s| s.iter().map(|&f| FileRef(f)).collect()).collect()
        };
        let mut days = vec![snapshot(&current)];
        for day_adds in adds {
            for (p, add) in day_adds.into_iter().enumerate().take(n_peers) {
                current[p].extend(add);
            }
            days.push(snapshot(&current));
        }
        let mut config = OverlayConfig::lru(4);
        config.seed = seed;
        let reference = simulate_overlay_reference(&days, 340, 16, &config);
        let armed = config.clone().with_availability(
            AvailabilityConfig::none().with_query(QueryPolicy::retry_evict()),
        );
        prop_assert_eq!(simulate_overlay(&days, 340, 16, &armed), reference.clone());
        // The same quiet run routed through an explicit SingleServer
        // backend stays pinned to the pre-trait overlay oracle too.
        let routed = config.with_availability(
            AvailabilityConfig::none()
                .with_query(QueryPolicy::retry_evict())
                .with_backend(IndexBackend::SingleServer),
        );
        prop_assert_eq!(simulate_overlay(&days, 340, 16, &routed), reference);
    }

    /// A seeded adversary plan with every fraction at zero is
    /// invisible, armed defense included: batch result, health ledger
    /// and final neighbour lists stay bit-identical to the honest run
    /// for every policy × index backend, and the serving replay
    /// reproduces the same bytes at 1, 2 and 8 worker threads. The
    /// quiet-plan guard consumes no RNG and takes no branches — this
    /// is the property that makes the adversary layer safe to leave
    /// permanently wired into every simulation plane.
    #[test]
    fn quiet_adversary_plan_is_invisible(
        caches in arb_caches(),
        seed in 0u64..200,
        adversary_seed in any::<u64>(),
    ) {
        let n_files = 64;
        let arena = CacheArena::from_caches(&caches, n_files);
        let mut scratch = SimScratch::new();
        for backend in [
            IndexBackend::SingleServer,
            IndexBackend::Federated { n_servers: 4 },
            IndexBackend::Dht { replication_k: 2 },
        ] {
            for config in [
                SimConfig::lru(4),
                SimConfig::history(3),
                SimConfig::random(3),
                SimConfig::rare_lru(4, 2),
            ] {
                let honest = config
                    .with_seed(seed)
                    .with_availability(AvailabilityConfig::none().with_backend(backend));
                let (expected, expected_health) =
                    simulate_arena_health_with_scratch(&arena, &honest, &mut scratch);
                let expected_lists = scratch.final_lists();
                let quiet = honest.clone().with_availability(
                    AvailabilityConfig::none()
                        .with_backend(backend)
                        .with_adversary(AdversaryConfig::sybils(adversary_seed, 0))
                        .with_reputation(),
                );
                let (got, got_health) =
                    simulate_arena_health_with_scratch(&arena, &quiet, &mut scratch);
                prop_assert_eq!(&got, &expected, "batch {:?}", &quiet);
                prop_assert_eq!(&got_health, &expected_health, "health {:?}", &quiet);
                prop_assert_eq!(
                    &scratch.final_lists(),
                    &expected_lists,
                    "lists {:?}",
                    &quiet
                );
                prop_assert_eq!(got_health.wasted_queries, 0);
                prop_assert_eq!(got_health.reputation_evictions, 0);
                for threads in [1usize, 2, 8] {
                    let report =
                        serve_arena_threads(&arena, &ServeConfig::new(quiet.clone()), threads);
                    prop_assert_eq!(&report.result, &expected, "serve threads {}", threads);
                    prop_assert_eq!(
                        &report.health.search,
                        &expected_health,
                        "serve health threads {}",
                        threads
                    );
                    prop_assert_eq!(&report.lists, &expected_lists, "serve lists {}", threads);
                }
            }
        }
    }

    /// Hit rates are monotone (within tolerance) in list size — more
    /// neighbours never lose hits on the same request order.
    #[test]
    fn hit_rate_grows_with_list_size(seed in 0u64..20) {
        let caches: Vec<Vec<FileRef>> = (0..12u32)
            .map(|p| (0..8).map(|k| FileRef((p / 4) * 8 + k)).collect())
            .collect();
        let small = simulate(&caches, 24, &SimConfig::lru(2).with_seed(seed));
        let large = simulate(&caches, 24, &SimConfig::lru(12).with_seed(seed));
        prop_assert!(large.hits() + 1 >= small.hits());
    }

    /// The arena-native derivation pipeline (retain/filter/extrapolate
    /// over CSR parts) is exactly the legacy row pipeline on arbitrary
    /// traces — same kept sets, same derived traces for 1, 2 and 8
    /// worker threads — and the arena-derived traces round-trip all
    /// three codecs losslessly.
    #[test]
    fn arena_pipeline_equals_row_pipeline(trace in arb_trace()) {
        prop_assert_eq!(trace.check_invariants(), Ok(()));
        let arena = TraceArena::from_trace(&trace);

        let row_retained = retain_peers(&trace, |p| p.0 % 2 == 0);
        let arena_retained = retain_peers_arena(&arena, |p| p.0 % 2 == 0);
        prop_assert_eq!(&arena_retained.kept, &row_retained.kept);
        prop_assert_eq!(&arena_retained.arena.to_trace(), &row_retained.trace);

        let row_filtered = filter(&trace);
        let arena_filtered = filter_arena(&arena);
        prop_assert_eq!(&arena_filtered.kept, &row_filtered.kept);
        prop_assert_eq!(&arena_filtered.arena.to_trace(), &row_filtered.trace);

        let config = ExtrapolateConfig::default();
        let row_ext = extrapolate(&row_filtered.trace, config);
        for threads in [1usize, 2, 8] {
            let arena_ext =
                extrapolate_arena_with_threads(&arena_filtered.arena, config, threads);
            prop_assert_eq!(&arena_ext.kept, &row_ext.kept, "threads {}", threads);
            prop_assert_eq!(
                &arena_ext.arena.to_trace(),
                &row_ext.trace,
                "threads {}",
                threads
            );
        }

        let derived = extrapolate_arena_with_threads(&arena_filtered.arena, config, 2)
            .arena
            .to_trace();
        prop_assert_eq!(derived.check_invariants(), Ok(()));
        prop_assert_eq!(
            io::from_bin(&io::to_bin(&derived)).expect("binary"),
            derived.clone()
        );
        prop_assert_eq!(
            io::from_json(&io::to_json(&derived)).expect("json"),
            derived.clone()
        );
        prop_assert_eq!(
            io::from_compact(&io::to_compact(&derived)).expect("compact"),
            derived
        );
    }

    /// The arena shuffler is exactly the row shuffler: same seed and
    /// swap budget ⇒ identical stats, identical RNG position, and the
    /// same shuffled caches (rows compared sorted, the arena's
    /// canonical order).
    #[test]
    fn arena_shuffler_equals_row_shuffler(caches in arb_caches(), swaps in 0u64..2_000) {
        let arena = CacheArena::from_caches(&caches, 64);
        let mut row = Shuffler::new(caches);
        let mut row_rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(42);
        row.run(swaps, &mut row_rng);
        let row_stats = row.stats();
        let mut row_caches = row.into_caches();
        for cache in &mut row_caches {
            cache.sort_unstable();
        }

        let mut csr = ArenaShuffler::new(&arena);
        let mut csr_rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(42);
        csr.run(swaps, &mut csr_rng);
        prop_assert_eq!(csr.stats(), row_stats);
        prop_assert_eq!(csr.snapshot_arena().to_caches(), row_caches);
        prop_assert_eq!(
            rand::RngCore::next_u64(&mut csr_rng),
            rand::RngCore::next_u64(&mut row_rng),
            "both shufflers consume the same number of draws"
        );
    }

    /// Checkpointing the arena shuffler mid-run and resuming is
    /// bit-identical to running uninterrupted: same stats, same caches,
    /// same RNG position — the invariant the resumable randomization
    /// sweep rests on.
    #[test]
    fn shuffle_checkpoint_resume_equals_uninterrupted(
        caches in arb_caches(),
        prefix in 0u64..1_000,
        suffix in 0u64..1_000,
    ) {
        let arena = CacheArena::from_caches(&caches, 64);

        let mut full = ArenaShuffler::new(&arena);
        let mut full_rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(9);
        full.run(prefix + suffix, &mut full_rng);

        let mut head = ArenaShuffler::new(&arena);
        let mut head_rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(9);
        head.run(prefix, &mut head_rng);
        let (mut tail, mut tail_rng) = head.checkpoint(&head_rng).resume();
        tail.run(suffix, &mut tail_rng);

        prop_assert_eq!(tail.stats(), full.stats());
        prop_assert_eq!(tail.snapshot_arena().to_caches(), full.snapshot_arena().to_caches());
        prop_assert_eq!(
            rand::RngCore::next_u64(&mut tail_rng),
            rand::RngCore::next_u64(&mut full_rng)
        );
    }

    /// The out-of-core streaming generator writes the byte-identical
    /// binary trace its in-memory twin materializes, at every thread
    /// count — the invariant that lets the paper tier stream to disk
    /// and every other consumer keep working on the same bytes.
    #[test]
    fn streamed_generation_matches_in_memory_any_threads(
        config in arb_stream_config(),
        threads in 1usize..6,
    ) {
        let (_, _, streamed) =
            stream::stream_trace_to_bytes(&config, threads).expect("stream to bytes");
        let (_, trace) = stream::generate_trace_streamed_in_memory(&config, 1);
        prop_assert_eq!(streamed, io::bin::to_bin(&trace));
    }

    /// Banded-overlap laws, for any cache shape, band split, sketch
    /// size, admit floor and thread count:
    ///  * `prefilter_off` is bit-identical to the exact arena engine;
    ///  * so is `admit_floor == 0` (everything admitted);
    ///  * pruning only ever removes or shrinks pairs (never invents
    ///    overlap), and the emitted pair set shrinks monotonically as
    ///    the floor rises (the estimate per pair is fixed by the seed);
    ///  * the out-of-core histogram equals the histogram of the
    ///    materialized entries at the same configuration.
    #[test]
    fn banded_overlap_prefilter_laws(
        caches in arb_caches(),
        band_cap in 1usize..6,
        sketch_k in 8usize..33,
        seed in any::<u64>(),
        threads in 1usize..5,
    ) {
        let arena = CacheArena::from_caches(&caches, 64);
        let exact = semantic::overlap_counts_arena_with_threads(&arena, |_| true, None, threads);
        let base = BandedOverlapConfig {
            band_cap,
            max_holders: None,
            sketch_k,
            admit_floor: 2,
            prefilter_off: false,
            seed,
        };

        let off = BandedOverlapConfig { prefilter_off: true, ..base };
        let (off_counts, _) =
            banded::overlap_counts_banded_with_threads(&arena, |_| true, &off, threads);
        prop_assert!(
            off_counts.iter().eq(exact.iter()),
            "prefilter_off must be bit-identical to the exact engine"
        );
        let zero = BandedOverlapConfig { admit_floor: 0, ..base };
        let (zero_counts, _) =
            banded::overlap_counts_banded_with_threads(&arena, |_| true, &zero, threads);
        prop_assert!(
            zero_counts.iter().eq(exact.iter()),
            "floor 0 admits everything and must also be exact"
        );

        let mut prev_pairs: Option<HashSet<(u32, u32)>> = None;
        for floor in [0u32, 1, 2, 4] {
            let cfg = BandedOverlapConfig { admit_floor: floor, ..base };
            let (pruned, _) =
                banded::overlap_counts_banded_with_threads(&arena, |_| true, &cfg, threads);
            let mut max_count = 0u32;
            for ((a, b), count) in pruned.iter() {
                prop_assert!(
                    count <= exact.overlap(a, b),
                    "pruning must never invent overlap"
                );
                max_count = max_count.max(count);
            }
            let pairs: HashSet<(u32, u32)> = pruned.iter().map(|(pair, _)| pair).collect();
            if let Some(prev) = &prev_pairs {
                prop_assert!(
                    pairs.is_subset(prev),
                    "raising the floor must only shrink the emitted pair set"
                );
            }
            prev_pairs = Some(pairs);

            let (mut hist, _) =
                banded::banded_overlap_histogram_with_threads(&arena, |_| true, &cfg, threads);
            let mut expected = vec![0u64; max_count as usize + 1];
            for (_, count) in pruned.iter() {
                expected[count as usize] += 1;
            }
            // Trailing zeros are representational (an empty run may
            // come back as `[]` or `[0]`); trim both before comparing.
            while hist.last() == Some(&0) {
                hist.pop();
            }
            while expected.last() == Some(&0) {
                expected.pop();
            }
            prop_assert_eq!(
                hist, expected,
                "the out-of-core histogram must match the materialized entries"
            );
        }
    }

    /// The bounded-working-set sweep is bit-identical to the
    /// work-stealing scheduler for every window size, including windows
    /// of one querier and windows larger than the population.
    #[test]
    fn windowed_sweep_matches_work_stealing(
        caches in arb_caches(),
        window in 1usize..40,
        seed in 0u64..500,
    ) {
        let arena = CacheArena::from_caches(&caches, 64);
        let configs = [
            SimConfig::lru(3).with_seed(seed),
            SimConfig::history(8).with_seed(seed),
        ];
        let windowed = experiment::sweep_cells_windowed(&arena, &configs, window);
        let full = sweep_cells_threads(&arena, &configs, 4);
        prop_assert_eq!(windowed, full);
    }
}
