//! Differential battery for the always-on query-serving mode
//! (DESIGN.md §11): an unconstrained serving replay must be
//! bit-identical to the batch simulator — same `SimResult`, same
//! `SearchHealth`, same final neighbour lists — for every policy,
//! every thread count and (because zero queue wait makes service
//! instants equal batch instants) even under churn; and a *bounded*
//! serving plane must degrade monotonically as arrival bursts grow.
//!
//! A golden fixture (`tests/data/service_latency_golden.tsv`) pins one
//! seeded bursty run — the `ServeHealth` ledger, the per-shard load
//! vector, and the latency histogram's non-empty buckets. Regenerate
//! with `EDONKEY_BLESS=1 cargo test --test service_mode` after an
//! *intentional* serving-plane change.

use std::fmt::Write as _;
use std::sync::OnceLock;

use edonkey_repro::semsearch::index::IndexBackend;
use edonkey_repro::semsearch::serve::{serve_arena_threads, ArrivalConfig, ServeConfig};
use edonkey_repro::semsearch::sim::{
    simulate_arena_health_with_scratch, AvailabilityConfig, QueryPolicy, SimScratch,
};
use edonkey_repro::semsearch::SimConfig;
use edonkey_repro::trace::compact::CacheArena;
use edonkey_repro::trace::pipeline::filter;
use edonkey_repro::workload::{generate_trace, WorkloadConfig};

const SEED: u64 = 20060418;
const CHURN_SEED: u64 = SEED ^ 0xc4c4;
const LIST_SIZE: usize = 20;
const FIXTURE: &str = concat!(
    env!("CARGO_MANIFEST_DIR"),
    "/tests/data/service_latency_golden.tsv"
);

/// One shared filtered workload arena for the whole file (generation
/// dominates test time; every check is read-only on it).
fn arena() -> &'static CacheArena {
    static W: OnceLock<CacheArena> = OnceLock::new();
    W.get_or_init(|| {
        let mut config = WorkloadConfig::test_scale(SEED);
        config.peers = 1_000;
        config.files = 20_000;
        config.topics = 200;
        config.days = 12;
        let (_, trace) = generate_trace(config);
        let filtered = filter(&trace).trace;
        let n_files = filtered.files.len();
        CacheArena::from_caches(&filtered.static_caches(), n_files)
    })
}

/// All four policy families at the pinned list size.
fn policies(seed: u64) -> [SimConfig; 4] {
    [
        SimConfig::lru(LIST_SIZE).with_seed(seed),
        SimConfig::history(LIST_SIZE).with_seed(seed),
        SimConfig::random(LIST_SIZE).with_seed(seed),
        SimConfig::rare_lru(LIST_SIZE, 16).with_seed(seed),
    ]
}

/// The core differential: with unbounded queues and identity arrivals,
/// a quiet serving replay reproduces the batch simulator bit-for-bit —
/// hit counts, health ledger and final policy state — for three seeds,
/// all four policies, and any worker count.
#[test]
fn quiet_service_matches_batch_for_seeds_policies_and_threads() {
    let arena = arena();
    let mut scratch = SimScratch::new();
    for seed in [SEED, SEED ^ 0x11, SEED ^ 0x2222] {
        for sim in policies(seed) {
            let (batch, batch_health) =
                simulate_arena_health_with_scratch(arena, &sim, &mut scratch);
            let batch_lists = scratch.final_lists();
            for threads in [1usize, 2, 8] {
                let report = serve_arena_threads(arena, &ServeConfig::new(sim.clone()), threads);
                let cell = format!("seed {seed} policy {:?} threads {threads}", sim.policy);
                assert_eq!(report.result, batch, "{cell}");
                assert_eq!(report.health.search, batch_health, "{cell}");
                assert_eq!(report.lists, batch_lists, "{cell}");
                assert_eq!(report.health.shed, 0, "{cell}");
                assert_eq!(report.health.deferred, 0, "{cell}");
                assert_eq!(report.latency.total(), report.health.served, "{cell}");
            }
        }
    }
}

/// Zero queue wait makes every service instant equal the batch query
/// instant, so the differential extends to churned cells — retries,
/// backoff clocks, staleness reactions, Random's stateless replacement
/// draws and forwarding-backend routing included.
#[test]
fn churn_service_matches_batch_when_unconstrained() {
    let arena = arena();
    let mut scratch = SimScratch::new();
    let combos = [
        (SimConfig::lru(LIST_SIZE), IndexBackend::SingleServer),
        (
            SimConfig::lru(LIST_SIZE),
            IndexBackend::Dht { replication_k: 2 },
        ),
        (
            SimConfig::random(LIST_SIZE),
            IndexBackend::Federated { n_servers: 4 },
        ),
    ];
    for (base, backend) in combos {
        let sim = base.with_seed(SEED).with_availability(
            AvailabilityConfig::churn(CHURN_SEED, 250)
                .with_query(QueryPolicy::retry_evict())
                .with_backend(backend),
        );
        let (batch, batch_health) = simulate_arena_health_with_scratch(arena, &sim, &mut scratch);
        let report = serve_arena_threads(arena, &ServeConfig::new(sim.clone()), 2);
        let cell = format!("policy {:?} backend {}", sim.policy, backend.name());
        assert_eq!(report.result, batch, "{cell}");
        assert_eq!(report.health.search, batch_health, "{cell}");
        assert_eq!(report.lists, scratch.final_lists(), "{cell}");
        assert!(report.health.search.retried > 0, "{cell}: churn must retry");
    }
}

/// The backpressure knee: over nested burst intensities (arrivals
/// compressed into an ever-smaller head of each day) against a fixed
/// one-query-per-tick service, tail latency and the deferral count are
/// monotone non-decreasing — and the zero-burst, zero-jitter process
/// reproduces the identity-arrival run bit-for-bit, full report
/// compared.
#[test]
fn backpressure_degrades_monotonically_and_zero_burst_is_identity() {
    let arena = arena();
    let sim = SimConfig::lru(LIST_SIZE).with_seed(SEED);
    let bounded = |arrival: ArrivalConfig| {
        serve_arena_threads(
            arena,
            &ServeConfig::new(sim.clone())
                .with_arrival(arrival)
                .with_service(1, usize::MAX, 1),
            2,
        )
    };
    let reports: Vec<_> = [0u32, 300, 600, 900]
        .iter()
        .map(|&burst| bounded(ArrivalConfig::bursty(SEED ^ 0xab, burst, 15)))
        .collect();
    let p999: Vec<u64> = reports
        .iter()
        .map(|r| r.latency.percentile(0.999))
        .collect();
    let deferred: Vec<u64> = reports.iter().map(|r| r.health.deferred).collect();
    assert!(
        p999.windows(2).all(|w| w[0] <= w[1]),
        "p999 must be monotone over nested bursts, got {p999:?}"
    );
    assert!(
        deferred.windows(2).all(|w| w[0] <= w[1]),
        "deferrals must be monotone over nested bursts, got {deferred:?}"
    );
    assert!(
        reports[3].health.deferred > reports[0].health.deferred,
        "the strongest burst must actually defer more than the weakest"
    );
    for report in &reports {
        assert_eq!(report.health.shed, 0, "unbounded queues never shed");
        assert_eq!(report.result.requests, report.health.arrived);
    }

    let via_bursty = bounded(ArrivalConfig::bursty(SEED ^ 0xab, 0, 0));
    let via_identity = bounded(ArrivalConfig::none());
    assert_eq!(
        via_bursty, via_identity,
        "a zero-burst, zero-jitter process is the identity arrival process"
    );
}

/// Latency percentiles order within a run, and routing cost orders
/// across backends: forwarding backends pay their hop latencies on
/// fallbacks, so with identical arrivals and waits their percentiles
/// dominate the single server's pointwise — while the *answers* stay
/// bit-identical.
#[test]
fn latency_percentiles_order_within_and_across_backends() {
    let arena = arena();
    let run = |backend| {
        serve_arena_threads(
            arena,
            &ServeConfig::new(
                SimConfig::lru(LIST_SIZE)
                    .with_seed(SEED)
                    .with_backend(backend),
            ),
            2,
        )
    };
    let single = run(IndexBackend::SingleServer);
    let fed = run(IndexBackend::Federated { n_servers: 8 });
    let dht = run(IndexBackend::Dht { replication_k: 3 });
    for (name, report) in [("single", &single), ("federated8", &fed), ("dht_k3", &dht)] {
        let (p50, p99, p999) = report.latency.p50_p99_p999();
        assert!(p50 <= p99 && p99 <= p999, "{name}: {p50} {p99} {p999}");
        assert_eq!(report.latency.total(), report.health.served, "{name}");
    }
    assert_eq!(fed.result, single.result, "routing never changes answers");
    assert_eq!(dht.result, single.result, "routing never changes answers");
    assert!(fed.health.search.forwarded > 0);
    assert!(dht.health.search.dht_hops > 0);
    assert!(fed.latency.percentile(0.999) >= single.latency.percentile(0.999));
    assert!(dht.latency.percentile(0.999) >= single.latency.percentile(0.999));
}

/// Renders the golden fixture: one seeded bursty run against a bounded
/// serving plane on the DHT backend — the full serving ledger, latency
/// percentiles, per-shard load/depth vectors, and every non-empty
/// histogram bucket.
fn golden_fixture() -> String {
    let config = ServeConfig::new(
        SimConfig::lru(LIST_SIZE)
            .with_seed(SEED)
            .with_backend(IndexBackend::Dht { replication_k: 3 }),
    )
    .with_arrival(ArrivalConfig::bursty(SEED ^ 0x5e, 800, 40))
    .with_service(20, 12, 2);
    let report = serve_arena_threads(arena(), &config, 2);
    assert!(
        report.health.shed > 0 && report.health.deferred > 0,
        "the pinned run must exercise both shedding and deferral"
    );

    let mut out = String::from(
        "# service latency golden fixture v1 — bless with EDONKEY_BLESS=1\n\
         # one bursty LRU run on dht_k3: burst=800 jitter=40 tick=20 queue=12 service=2\n",
    );
    writeln!(
        out,
        "run\tdht_k3\tseed={SEED}\tlist_size={LIST_SIZE}\tshards={}",
        report.shard_load.len()
    )
    .unwrap();
    let h = &report.health;
    writeln!(
        out,
        "serve\tarrived={}\tserved={}\tshed={}\tdeferred={}\tdeferred_ticks={}\tmax_depth={}",
        h.arrived, h.served, h.shed, h.deferred, h.deferred_ticks, h.max_queue_depth
    )
    .unwrap();
    let s = &h.search;
    writeln!(
        out,
        "search\tattempted={}\tanswered={}\tserver_fallback={}\tforwarded={}\tdht_hops={}",
        s.attempted, s.answered, s.server_fallback, s.forwarded, s.dht_hops
    )
    .unwrap();
    let (p50, p99, p999) = report.latency.p50_p99_p999();
    writeln!(
        out,
        "latency\ttotal={}\tp50={p50}\tp99={p99}\tp999={p999}",
        report.latency.total()
    )
    .unwrap();
    for (label, values) in [
        ("shard_load", &report.shard_load),
        ("shard_max_depth", &report.shard_max_depth),
        ("shard_last_tick", &report.shard_last_tick),
    ] {
        let joined: Vec<String> = values.iter().map(u64::to_string).collect();
        writeln!(out, "{label}\t{}", joined.join(" ")).unwrap();
    }
    let buckets: Vec<String> = report
        .latency
        .nonzero()
        .map(|(idx, count)| format!("{idx}:{count}"))
        .collect();
    writeln!(out, "buckets\t{}", buckets.join(" ")).unwrap();
    out
}

/// The checked-in fixture must keep matching what the code produces —
/// any drift in arrival jitter, tick scheduling, queue accounting or
/// latency bucketing of the pinned run is an intentional-change gate.
#[test]
fn golden_fixture_pins_the_bursty_run() {
    let rendered = golden_fixture();
    if std::env::var("EDONKEY_BLESS").is_ok() {
        std::fs::write(FIXTURE, &rendered).expect("bless fixture");
    }
    let expected = std::fs::read_to_string(FIXTURE).expect("read checked-in fixture");
    assert_eq!(
        rendered, expected,
        "service latency ledger drifted from the blessed fixture — \
         if intentional, regenerate with EDONKEY_BLESS=1"
    );
}
