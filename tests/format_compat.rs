//! Format-compatibility pin: a tiny, fully deterministic trace is
//! checked into `tests/data/golden_v1.etrc` as written by format
//! version 1. Decoding the fixture must keep producing the expected
//! trace for as long as version 1 is readable (backward compatibility),
//! and encoding the expected trace must keep producing the fixture
//! byte-for-byte (writers must not silently change the wire image
//! without bumping the version byte).
//!
//! Regenerate with `EDONKEY_BLESS=1 cargo test --test format_compat`
//! after an *intentional* format change — which must also bump
//! [`FORMAT_VERSION`] and extend the reader to keep accepting old
//! fixtures.

use edonkey_repro::proto::md4::Md4;
use edonkey_repro::proto::query::FileKind;
use edonkey_repro::trace::io::bin::{FORMAT_VERSION, MAGIC};
use edonkey_repro::trace::io::{from_bin, to_bin};
use edonkey_repro::trace::model::{CountryCode, FileInfo, PeerInfo, Trace, TraceBuilder};

const FIXTURE: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/data/golden_v1.etrc");

/// The golden trace: three peers (two sharing one DHCP address, one
/// free-rider), four files across distinct kinds, two non-contiguous
/// days. Every identity is derived from a fixed string, so this
/// function is bit-stable across platforms and releases.
fn golden_trace() -> Trace {
    let mut b = TraceBuilder::new();
    let alice = b.intern_peer(PeerInfo {
        uid: Md4::digest(b"golden-alice"),
        ip: 0x0a00_0001,
        country: CountryCode::new("FR"),
        asn: 3215,
    });
    let bob = b.intern_peer(PeerInfo {
        uid: Md4::digest(b"golden-bob"),
        ip: 0x0a00_0001, // alice's address, reassigned by DHCP
        country: CountryCode::new("DE"),
        asn: 3320,
    });
    let carol = b.intern_peer(PeerInfo {
        uid: Md4::digest(b"golden-carol"),
        ip: 0x0a00_0002,
        country: CountryCode::new("ES"),
        asn: 12479,
    });
    let files: Vec<_> = [
        ("golden-song", 4_000_000, FileKind::Audio),
        ("golden-movie", 700_000_000, FileKind::Video),
        ("golden-tool", 15_000_000, FileKind::Program),
        ("golden-scan", 2_000_000, FileKind::Image),
    ]
    .into_iter()
    .map(|(name, size, kind)| {
        b.intern_file(FileInfo {
            id: Md4::digest(name.as_bytes()),
            size,
            kind,
        })
    })
    .collect();
    b.observe(340, alice, vec![files[0], files[1]]);
    b.observe(340, bob, vec![files[1], files[2]]);
    b.observe(340, carol, vec![]); // the free-rider
    b.observe(343, alice, vec![files[0], files[3]]);
    b.observe(343, carol, vec![]);
    b.finish()
}

#[test]
fn golden_fixture_decodes_to_the_expected_trace() {
    if std::env::var("EDONKEY_BLESS").is_ok() {
        std::fs::write(FIXTURE, to_bin(&golden_trace())).expect("bless fixture");
    }
    let bytes = std::fs::read(FIXTURE).expect("read checked-in fixture");
    let decoded = from_bin(&bytes).expect("decode checked-in fixture");
    assert_eq!(
        decoded,
        golden_trace(),
        "version-1 fixture no longer decodes correctly"
    );
}

#[test]
fn encoder_reproduces_the_golden_fixture_byte_for_byte() {
    let bytes = std::fs::read(FIXTURE).expect("read checked-in fixture");
    assert_eq!(
        to_bin(&golden_trace()),
        bytes,
        "wire image changed — bump FORMAT_VERSION and add a new fixture \
         instead of mutating version 1"
    );
}

#[test]
fn golden_fixture_declares_format_version_1() {
    let bytes = std::fs::read(FIXTURE).expect("read checked-in fixture");
    assert_eq!(&bytes[..MAGIC.len()], &MAGIC);
    assert_eq!(bytes[MAGIC.len()], 1, "fixture must stay a version-1 file");
    assert_eq!(
        FORMAT_VERSION, 1,
        "version bump requires a new golden fixture"
    );
}
