//! `edonkey-repro`: reproduction of *"Peer Sharing Behaviour in the
//! eDonkey Network, and Implications for the Design of Server-less File
//! Sharing Systems"* (Handurukande, Kermarrec, Le Fessant, Massoulié,
//! Patarin — EuroSys 2006).
//!
//! This facade crate re-exports the workspace so examples and downstream
//! users need a single dependency:
//!
//! * [`proto`] — the eDonkey protocol substrate (MD4, ed2k hashing,
//!   tags, wire messages, the search-query language);
//! * [`netsim`] — the network + crawler simulation;
//! * [`trace`] — the trace model, filtering/extrapolation pipeline, and
//!   the appendix randomization algorithm;
//! * [`workload`] — the calibrated synthetic population generator;
//! * [`analysis`] — every Section 2–4 statistic;
//! * [`semsearch`] — the Section 5 semantic-neighbour search simulation
//!   (the paper's contribution).
//!
//! # Quickstart
//!
//! ```
//! use edonkey_repro::prelude::*;
//!
//! // A small synthetic world, its observed trace, and a hit-rate sweep.
//! let mut config = WorkloadConfig::test_scale(42);
//! config.peers = 300;
//! config.files = 2_000;
//! config.days = 10;
//! config.cache_max = 500;
//! let (population, trace) = generate_trace(config);
//! let filtered = filter(&trace);
//! let caches = filtered.trace.static_caches();
//! let result = simulate(&caches, trace.files.len(), &SimConfig::lru(20));
//! assert!(result.requests > 0);
//! let _ = population; // ground truth stays available for calibration
//! ```

pub use edonkey_analysis as analysis;
pub use edonkey_netsim as netsim;
pub use edonkey_proto as proto;
pub use edonkey_semsearch as semsearch;
pub use edonkey_trace as trace;
pub use edonkey_workload as workload;

/// The most common imports, for examples and quick experiments.
pub mod prelude {
    pub use edonkey_analysis::{summarize, Cdf, TraceSummary};
    pub use edonkey_netsim::{
        run_crawl, run_crawl_full, CrawlHealth, CrawlReport, CrawlerConfig, FaultConfig, NetConfig,
        RetryPolicy,
    };
    pub use edonkey_proto::query::FileKind;
    pub use edonkey_semsearch::{simulate, PolicyKind, SimConfig, SimResult, PAPER_LIST_SIZES};
    pub use edonkey_trace::{
        extrapolate, filter, randomize_caches, ExtrapolateConfig, FileRef, PeerId, Trace,
    };
    pub use edonkey_workload::{generate_trace, Population, WorkloadConfig};
}
