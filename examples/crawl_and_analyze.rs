//! Crawl a simulated eDonkey network with the paper's crawler and run
//! the Section 2–4 measurement analyses on what it observed.
//!
//! This is the full mechanistic path: population → live network (churn,
//! firewalls, browse denial, DHCP/reinstall aliases) → nickname-sweep
//! crawler under a declining bandwidth budget → trace → pipeline →
//! statistics.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example crawl_and_analyze
//! ```

use edonkey_repro::analysis::{contribution, daily, geo_clustering, geography};
use edonkey_repro::netsim::run_crawl_streaming;
use edonkey_repro::prelude::*;
use edonkey_repro::trace::io;
use edonkey_repro::trace::pipeline::filter_streaming;
use edonkey_repro::trace::TraceWriter;

fn main() {
    let mut config = WorkloadConfig::test_scale(7);
    config.peers = 3_000;
    config.files = 20_000;
    config.days = 21;
    let peers = config.peers;
    println!(
        "generating {} peers / {} files…",
        config.peers, config.files
    );
    let population = Population::generate(config);

    println!("crawling for 21 days (outage on days 3–4)…");
    let (trace, stats) = run_crawl(
        &population,
        NetConfig::default(),
        CrawlerConfig::default().budget_for(peers, 1.0, 0.4),
    );

    println!("\nper-day crawl coverage (Fig. 1 mechanics):");
    for s in stats.iter().step_by(4) {
        println!(
            "  day +{:<2} known {:>5}  attempts {:>5}  browsed {:>5}",
            s.day_offset, s.known_users, s.attempts, s.browsed
        );
    }

    // Table 1.
    let summary = summarize(&trace);
    println!(
        "\ntrace: {} clients ({:.0}% free-riders), {} snapshots, {} files, {:.1} GB",
        summary.clients,
        100.0 * summary.free_rider_fraction(),
        summary.snapshots,
        summary.distinct_files,
        summary.distinct_bytes as f64 / (1u64 << 30) as f64,
    );

    // Fig. 2: discovery keeps finding new files.
    let discovery = daily::file_discovery_per_day(&trace);
    if let (Some(first), Some(last)) = (discovery.get(1), discovery.last()) {
        println!(
            "new files/day: {} early vs {} late (total {})",
            first.new_files, last.new_files, last.total_files
        );
    }

    // Fig. 4 / Table 2.
    println!("\nclients per country (Fig. 4):");
    for (cc, n, share) in geography::clients_per_country(&trace).into_iter().take(5) {
        println!("  {cc}: {n:>5} ({:.0}%)", 100.0 * share);
    }
    println!("top ASes (Table 2):");
    for row in geography::top_autonomous_systems(&trace, 5) {
        println!(
            "  AS{:<6} {:>4.0}% global {:>4.0}% national ({})",
            row.asn,
            100.0 * row.global_share,
            100.0 * row.national_share,
            row.country
        );
    }

    // Filtered stage + contribution skew (Fig. 7).
    let filtered = filter(&trace);
    let top15 = contribution::generosity_concentration(&filtered.trace, 0.15);
    println!(
        "\nfiltered: {} clients; top 15% of sharers hold {:.0}% of files",
        filtered.trace.peers.len(),
        100.0 * top15
    );

    // Fig. 11: geographic clustering, by popularity band.
    let cdfs = geo_clustering::concentration_cdfs(
        &filtered.trace,
        geo_clustering::Level::Country,
        &[1.0, 5.0],
    );
    for (threshold, cdf) in cdfs {
        if cdf.is_empty() {
            continue;
        }
        let all_home = 1.0 - cdf.fraction_at_most(99.9);
        println!(
            "files with avg popularity ≥ {threshold}: {:.0}% fully home-country ({} files)",
            100.0 * all_home,
            cdf.len()
        );
    }

    // Extrapolated stage (the dynamic-analysis input).
    let extrapolated = extrapolate(&filtered.trace, ExtrapolateConfig::default());
    println!(
        "extrapolated: {} regular clients over {} days",
        extrapolated.trace.peers.len(),
        extrapolated.trace.days.len()
    );

    // The same crawl, streamed: each completed day goes straight to the
    // binary columnar writer, and the full → filtered pass streams
    // day-at-a-time too — peak memory is the intern tables plus ONE day,
    // which is what makes paper scale (1.16 M caches × 56 days) fit.
    println!("\nstreaming the crawl to disk (binary columnar format)…");
    let dir = std::env::temp_dir().join("edonkey_crawl_example");
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    let full_path = dir.join("full.etrc");
    let filtered_path = dir.join("filtered.etrc");
    let writer = TraceWriter::create(&full_path).expect("create trace file");
    let (_, _) = run_crawl_streaming(
        &population,
        NetConfig::default(),
        CrawlerConfig::default().budget_for(peers, 1.0, 0.4),
        writer,
    )
    .expect("streaming crawl");
    let outcome = filter_streaming(&full_path, &filtered_path).expect("streaming filter");
    let reloaded = io::load_auto(&filtered_path).expect("reload filtered trace");
    assert_eq!(
        reloaded, filtered.trace,
        "streamed pipeline must match in-memory"
    );
    println!(
        "  {} -> {} ({} days, {} kept peers); reloaded via load_auto: identical",
        full_path.display(),
        filtered_path.display(),
        outcome.days,
        outcome.kept.len()
    );
    let _ = std::fs::remove_dir_all(&dir);
}
