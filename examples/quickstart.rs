//! Quickstart: generate a synthetic eDonkey world, derive the paper's
//! trace stages, and measure semantic-neighbour search.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use edonkey_repro::prelude::*;

fn main() {
    // 1. A synthetic population calibrated to the paper's marginals.
    //    (test_scale keeps this example fast; see WorkloadConfig::
    //    repro_scale for figure-quality runs.)
    let mut config = WorkloadConfig::test_scale(42);
    config.peers = 2_000;
    config.files = 15_000;
    config.days = 14;
    println!(
        "generating population: {} peers, {} files…",
        config.peers, config.files
    );
    let (_population, trace) = generate_trace(config);

    // 2. The pipeline of Section 2.3: full → filtered → extrapolated.
    let summary = summarize(&trace);
    println!(
        "full trace:        {} clients, {:.0}% free-riders, {} snapshots, {} files",
        summary.clients,
        100.0 * summary.free_rider_fraction(),
        summary.snapshots,
        summary.distinct_files,
    );
    let filtered = filter(&trace);
    let extrapolated = extrapolate(&filtered.trace, ExtrapolateConfig::default());
    println!(
        "filtered trace:    {} clients; extrapolated trace: {} clients",
        filtered.trace.peers.len(),
        extrapolated.trace.peers.len(),
    );

    // 3. Section 5: server-less search via semantic neighbours.
    let caches = filtered.trace.static_caches();
    let n_files = filtered.trace.files.len();
    println!("\nhit rates (trace-driven simulation, Section 5):");
    println!(
        "{:>10} {:>8} {:>8} {:>8}",
        "neighbours", "LRU", "History", "Random"
    );
    for &size in &[5usize, 10, 20, 50] {
        let lru = simulate(&caches, n_files, &SimConfig::lru(size));
        let history = simulate(&caches, n_files, &SimConfig::history(size));
        let random = simulate(&caches, n_files, &SimConfig::random(size));
        println!(
            "{size:>10} {:>7.1}% {:>7.1}% {:>7.1}%",
            100.0 * lru.hit_rate(),
            100.0 * history.hit_rate(),
            100.0 * random.hit_rate(),
        );
    }

    // 4. Two-hop search (Fig. 23): neighbours-of-neighbours help.
    let one = simulate(&caches, n_files, &SimConfig::lru(20));
    let two = simulate(&caches, n_files, &SimConfig::lru(20).with_two_hop());
    println!(
        "\ntwo-hop search, 20 neighbours: {:.1}% → {:.1}%",
        100.0 * one.hit_rate(),
        100.0 * two.hit_rate(),
    );
}
