//! Build a server-less search overlay and stress it the way Section 5
//! does: policy comparison, generous-uploader removal, query-load
//! distribution, and the randomized-trace control.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example semantic_overlay
//! ```

use edonkey_repro::prelude::*;
use edonkey_repro::semsearch::experiment;
use edonkey_repro::trace::randomize::recommended_iterations;

fn main() {
    let mut config = WorkloadConfig::test_scale(2024);
    config.peers = 2_500;
    config.files = 18_000;
    config.days = 10;
    let (_population, trace) = generate_trace(config);
    let filtered = filter(&trace);
    let caches = filtered.trace.static_caches();
    let n_files = filtered.trace.files.len();

    // Fig. 18: LRU vs History vs Random.
    println!("policy comparison (Fig. 18):");
    let sizes = [5usize, 10, 20, 50, 100];
    for (policy, sweep) in experiment::policy_comparison(&caches, n_files, &sizes, 1) {
        print!("  {:<8}", policy.name());
        for point in &sweep {
            print!(
                " {:>3}:{:>5.1}%",
                point.list_size,
                100.0 * point.result.hit_rate()
            );
        }
        println!();
    }

    // Fig. 19: remove the most generous uploaders.
    println!("\nLRU after removing top uploaders (Fig. 19):");
    for (q, sweep) in
        experiment::uploader_removal_grid(&caches, n_files, &[0.0, 0.05, 0.15], &[20], 1)
    {
        let p = &sweep[0];
        println!(
            "  top {:>2.0}% removed: {:>5.1}% hit rate over {} requests",
            100.0 * q,
            100.0 * p.result.hit_rate(),
            p.result.requests
        );
    }

    // Fig. 22: load distribution with and without generous uploaders.
    println!("\nquery load, LRU-5 (Fig. 22):");
    for (q, sweep) in experiment::uploader_removal_grid(&caches, n_files, &[0.0, 0.10], &[5], 1) {
        let r = &sweep[0].result;
        println!(
            "  top {:>2.0}% removed: mean {:>6.1} msgs/client, max {:>7}",
            100.0 * q,
            r.mean_load(),
            r.max_load()
        );
    }

    // Fig. 21: the randomized-trace control. Whatever hit rate survives
    // full randomization is attributable to generosity + popularity, not
    // semantic structure.
    let replicas: usize = caches.iter().map(Vec::len).sum();
    let full = recommended_iterations(replicas);
    let sweep =
        experiment::randomization_sweep(&caches, n_files, 10, &[0, full / 10, full / 2, full], 7);
    println!("\nhit rate vs randomization (Fig. 21, LRU-10):");
    for point in sweep {
        println!(
            "  {:>9} swaps: {:>5.1}%",
            point.swaps,
            100.0 * point.hit_rate
        );
    }
}
