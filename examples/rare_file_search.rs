//! The paper's sharpest finding: semantic clustering is *strongest for
//! rare files* — exactly the files flooding and server indexes struggle
//! with. This example reproduces that story end to end:
//!
//! 1. the clustering correlation is higher for low-popularity files
//!    (Fig. 13/14);
//! 2. removing popular files *raises* semantic hit rates (Fig. 20);
//! 3. two-hop search widens the gain, most at small lists (Fig. 23).
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example rare_file_search
//! ```

use edonkey_repro::analysis::{semantic, view};
use edonkey_repro::prelude::*;
use edonkey_repro::semsearch::experiment;

fn main() {
    let mut config = WorkloadConfig::test_scale(99);
    config.peers = 2_500;
    config.files = 18_000;
    config.days = 10;
    let (_population, trace) = generate_trace(config);
    let filtered = filter(&trace);
    let caches = filtered.trace.static_caches();
    let n_files = filtered.trace.files.len();

    // 1. Clustering correlation, all files vs rare files (Fig. 13/14).
    let popularity = view::popularity_of_caches(&caches, n_files);
    let all = semantic::clustering_correlation(&caches, n_files, |_| true, Some(500));
    let rare = semantic::clustering_correlation(
        &caches,
        n_files,
        |f| (2..=6).contains(&popularity[f.index()]),
        None,
    );
    println!("P(one more common file | k in common):");
    println!("{:>4} {:>10} {:>12}", "k", "all files", "rare (2..6)");
    for k in [1u32, 2, 3, 5, 8] {
        let at = |curve: &[semantic::CorrelationPoint]| {
            curve
                .iter()
                .find(|p| p.common == k)
                .map(|p| format!("{:>9.1}%", p.probability_percent))
                .unwrap_or_else(|| "        –".into())
        };
        println!("{k:>4} {} {}", at(&all), at(&rare));
    }

    // 2. Removing popular files raises the hit rate (Fig. 20).
    println!("\nLRU hit rate after removing popular files (Fig. 20):");
    for (q, sweep) in
        experiment::file_removal_grid(&caches, n_files, &[0.0, 0.05, 0.15, 0.30], &[5, 20], 3)
    {
        println!(
            "  top {:>2.0}% files removed: size-5 {:>5.1}%  size-20 {:>5.1}%  ({} requests)",
            100.0 * q,
            100.0 * sweep[0].result.hit_rate(),
            100.0 * sweep[1].result.hit_rate(),
            sweep[0].result.requests,
        );
    }

    // 3. Two-hop search (Fig. 23).
    println!("\none-hop vs two-hop (LRU):");
    for size in [5usize, 20, 50] {
        let one = simulate(&caches, n_files, &SimConfig::lru(size));
        let two = simulate(&caches, n_files, &SimConfig::lru(size).with_two_hop());
        println!(
            "  {size:>3} neighbours: {:>5.1}% → {:>5.1}%",
            100.0 * one.hit_rate(),
            100.0 * two.hit_rate()
        );
    }
}
