//! Simulated eDonkey clients.
//!
//! A client wraps one peer of the synthetic population with the mutable
//! network-level state the measurement study cares about: the current
//! user hash (changes on reinstall), the current IP (changes under
//! DHCP), online/offline state, whether it sits behind a firewall, and
//! whether it answers *browse* requests (the user-disableable feature
//! the crawler depends on).

use edonkey_proto::md4::Digest;
use edonkey_proto::tags::{SpecialTag, Tag, TagValue};
use edonkey_proto::wire::{Message, PublishedFile};
use edonkey_trace::model::FileRef;
use edonkey_workload::population::Population;

/// Mutable network state of one client.
#[derive(Clone, Debug)]
pub struct Client {
    /// Index of the backing peer in the population.
    pub peer_idx: usize,
    /// Current user hash; reinstalls replace it.
    pub uid: Digest,
    /// Current IPv4 address; DHCP renewals replace it.
    pub ip: u32,
    /// Listening port.
    pub port: u16,
    /// Whether the client is connected today.
    pub online: bool,
    /// Firewalled clients cannot accept inbound connections (the
    /// crawler skips them: "filtered to keep only reachable clients").
    pub firewalled: bool,
    /// Whether the client answers browse requests.
    pub browsable: bool,
    /// Long-run probability of being online on a given day.
    pub availability: f64,
    /// Times this client reinstalled (uid history length).
    pub reinstalls: u32,
}

impl Client {
    /// Creates the day-zero state for a population peer.
    pub fn new(
        population: &Population,
        peer_idx: usize,
        firewalled: bool,
        browsable: bool,
        availability: f64,
    ) -> Self {
        let info = &population.peers[peer_idx].info;
        Client {
            peer_idx,
            uid: info.uid,
            ip: info.ip,
            port: 4662,
            online: false,
            firewalled,
            browsable,
            availability,
            reinstalls: 0,
        }
    }

    /// Whether the crawler can open a connection to this client today.
    pub fn reachable(&self) -> bool {
        self.online && !self.firewalled
    }

    /// Applies a reinstall: a fresh user hash derived from the previous
    /// one (deterministic, collision-free). The derivation is shared
    /// with the ideal observer's alias model so both paths produce the
    /// same uid chains.
    pub fn reinstall(&mut self) {
        self.reinstalls += 1;
        self.uid = edonkey_workload::dynamics::reinstall_uid(&self.uid, self.reinstalls);
    }

    /// Handles a client-to-client message against the client's current
    /// cache, exactly as the real client would on its TCP socket.
    ///
    /// `cache` is the client's current shared-file list (owned by the
    /// dynamics layer); `population` supplies file metadata.
    pub fn handle(
        &self,
        msg: &Message,
        cache: &[FileRef],
        population: &Population,
    ) -> Option<Message> {
        match msg {
            Message::Hello { .. } => Some(Message::HelloReply {
                uid: self.uid,
                nick: population.peers[self.peer_idx].nick.clone(),
            }),
            Message::BrowseRequest => {
                if !self.browsable {
                    return Some(Message::BrowseDenied);
                }
                let files = cache
                    .iter()
                    .map(|&f| {
                        let info = &population.files[f.index()].info;
                        PublishedFile {
                            file_id: info.id,
                            ip: if self.firewalled { 0 } else { self.ip },
                            port: self.port,
                            // Size and type tags only: the crawler needs
                            // content identity and metadata, not display
                            // names (the released trace is anonymized
                            // anyway).
                            tags: [
                                Tag::special(
                                    SpecialTag::Size,
                                    TagValue::U32(info.size.min(u32::MAX as u64) as u32),
                                ),
                                Tag::special(
                                    SpecialTag::Type,
                                    TagValue::String(info.kind.as_str().into()),
                                ),
                            ]
                            .into_iter()
                            .collect(),
                        }
                    })
                    .collect();
                Some(Message::BrowseResult(files))
            }
            Message::QueryFile { file_id } => {
                let shared = cache
                    .iter()
                    .any(|&f| population.files[f.index()].info.id == *file_id);
                shared.then(|| {
                    // Every verified part is available in our model.
                    Message::FileStatus {
                        file_id: *file_id,
                        parts: vec![0xff],
                    }
                })
            }
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use edonkey_workload::WorkloadConfig;

    fn pop() -> Population {
        let mut c = WorkloadConfig::test_scale(5);
        c.peers = 50;
        c.files = 400;
        c.cache_max = 100;
        Population::generate(c)
    }

    #[test]
    fn reinstall_changes_uid_deterministically() {
        let population = pop();
        let mut a = Client::new(&population, 0, false, true, 0.9);
        let mut b = Client::new(&population, 0, false, true, 0.9);
        let original = a.uid;
        a.reinstall();
        b.reinstall();
        assert_ne!(a.uid, original);
        assert_eq!(a.uid, b.uid, "deterministic");
        a.reinstall();
        assert_ne!(a.uid, b.uid);
        assert_eq!(a.reinstalls, 2);
    }

    #[test]
    fn browse_respects_the_toggle() {
        let population = pop();
        let open = Client::new(&population, 1, false, true, 0.9);
        let closed = Client::new(&population, 1, false, false, 0.9);
        let cache = vec![FileRef(0), FileRef(1)];
        match open.handle(&Message::BrowseRequest, &cache, &population) {
            Some(Message::BrowseResult(files)) => {
                assert_eq!(files.len(), 2);
                assert_eq!(files[0].file_id, population.files[0].info.id);
                assert_eq!(
                    files[0].tags.get_str(SpecialTag::Type),
                    Some(population.files[0].info.kind.as_str())
                );
            }
            other => panic!("expected BrowseResult, got {other:?}"),
        }
        assert_eq!(
            closed.handle(&Message::BrowseRequest, &cache, &population),
            Some(Message::BrowseDenied)
        );
    }

    #[test]
    fn firewalled_clients_publish_null_source_ip() {
        let population = pop();
        let fw = Client::new(&population, 2, true, true, 0.9);
        let Some(Message::BrowseResult(files)) =
            fw.handle(&Message::BrowseRequest, &[FileRef(3)], &population)
        else {
            panic!()
        };
        assert_eq!(files[0].ip, 0);
    }

    #[test]
    fn hello_and_query_file() {
        let population = pop();
        let client = Client::new(&population, 3, false, true, 0.9);
        let hello = Message::Hello {
            uid: Digest([9; 16]),
            nick: "crawler".into(),
            port: 1,
        };
        match client.handle(&hello, &[], &population) {
            Some(Message::HelloReply { uid, nick }) => {
                assert_eq!(uid, client.uid);
                assert_eq!(nick, population.peers[3].nick);
            }
            other => panic!("unexpected {other:?}"),
        }
        let wanted = population.files[7].info.id;
        let q = Message::QueryFile { file_id: wanted };
        assert!(client.handle(&q, &[FileRef(7)], &population).is_some());
        assert!(client.handle(&q, &[FileRef(8)], &population).is_none());
    }
}
