//! `edonkey-netsim`: a discrete-event simulation of the eDonkey network
//! and the paper's measurement crawler.
//!
//! Where `edonkey-workload` *generates* a plausible trace directly, this
//! crate *earns* one: servers index what online clients publish, the
//! crawler discovers users through capped `query-users` nickname sweeps,
//! browses reachable clients under a declining bandwidth budget, and
//! every measurement artefact the paper mentions — firewalled blind
//! spots, browse denial, DHCP/reinstall aliases, outage gaps, coverage
//! decline — emerges from the mechanics.
//!
//! Modules:
//! * [`event`] — the discrete-event queue;
//! * [`server`] — index servers speaking `edonkey_proto` messages;
//! * [`client`] — per-client network state and message handling;
//! * [`network`] — the day-level network loop (churn, sessions);
//! * [`crawler`] — the measurement crawler and trace assembly;
//! * [`fault`] — seeded deterministic fault injection ([`FaultConfig`]
//!   / [`fault::FaultPlan`]) and the crawler's counter-measures
//!   ([`RetryPolicy`], [`CrawlHealth`]);
//! * [`download`] — multi-source block downloads with MD4 part
//!   verification, corruption banning and partial sharing.
//!
//! # Examples
//!
//! ```
//! use edonkey_netsim::crawler::{run_crawl, CrawlerConfig};
//! use edonkey_netsim::network::NetConfig;
//! use edonkey_workload::{Population, WorkloadConfig};
//!
//! let mut config = WorkloadConfig::test_scale(1);
//! config.peers = 60;
//! config.files = 400;
//! config.days = 3;
//! config.cache_max = 200;
//! let population = Population::generate(config);
//! let (trace, stats) = run_crawl(
//!     &population,
//!     NetConfig::default(),
//!     CrawlerConfig { outage_days: vec![], ..Default::default() }.budget_for(60, 1.5, 1.5),
//! );
//! assert_eq!(trace.check_invariants(), Ok(()));
//! assert_eq!(stats.len(), 3);
//! ```

pub mod client;
pub mod crawler;
pub mod download;
pub mod event;
pub mod fault;
pub mod network;
pub mod server;

pub use crawler::{
    run_crawl, run_crawl_full, run_crawl_streaming, CrawlDayStats, CrawlReport, Crawler,
    CrawlerConfig,
};
pub use fault::{CrawlHealth, FaultConfig, RetryPolicy};
pub use network::{NetConfig, Network};
pub use server::Server;
