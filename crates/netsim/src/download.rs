//! Multi-source block downloads with corruption detection.
//!
//! Section 2.1 of the paper lists the eDonkey features that made it
//! dominant for large files: *"concurrent downloads of a file from
//! different sources, partial sharing of downloads and corruption
//! detection"*, with files split into 9.5 MB parts, an MD4 checksum per
//! part, and parts shared *"as soon as at least one block has been
//! downloaded and its checksum verified"*.
//!
//! This module simulates exactly that client-side machinery on the
//! discrete-event clock: a [`Download`] schedules part requests across
//! several sources with different bandwidths and reliabilities, verifies
//! every completed part against the file's hashset, re-requests corrupt
//! parts from *other* sources (banning repeat offenders), and reports
//! which parts are shareable at any moment.

use edonkey_proto::hash::{PartHashes, PART_SIZE};
use edonkey_proto::md4::Digest;

use crate::event::EventQueue;

/// The state of one part of an in-progress download.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PartState {
    /// Not yet requested.
    Missing,
    /// Requested from the source with the given index.
    InFlight {
        /// Which source is serving the part.
        source: usize,
    },
    /// Downloaded and checksum-verified — shareable.
    Verified,
}

/// A simulated source: bandwidth and a corruption model.
#[derive(Clone, Debug)]
pub struct Source {
    /// Peer label (for reports).
    pub name: String,
    /// Seconds to deliver one full part.
    pub seconds_per_part: u64,
    /// Every `corrupt_every`-th part from this source is corrupt
    /// (`0` = never). Deterministic so tests are exact; a flaky NIC or a
    /// poisoning peer both look like this from the downloader's side.
    pub corrupt_every: u32,
    served: u32,
}

impl Source {
    /// Creates a well-behaved source.
    pub fn new(name: impl Into<String>, seconds_per_part: u64) -> Self {
        Source {
            name: name.into(),
            seconds_per_part,
            corrupt_every: 0,
            served: 0,
        }
    }

    /// Makes every `n`-th served part corrupt.
    pub fn with_corruption(mut self, n: u32) -> Self {
        self.corrupt_every = n;
        self
    }

    /// Whether the next served part is corrupt, advancing the counter.
    fn serve(&mut self) -> bool {
        self.served += 1;
        self.corrupt_every != 0 && self.served.is_multiple_of(self.corrupt_every)
    }
}

/// Events on the download's clock.
#[derive(Clone, Copy, Debug)]
enum DownloadEvent {
    /// A part transfer completes (possibly corrupt).
    PartDone {
        part: usize,
        source: usize,
        corrupt: bool,
    },
}

/// Statistics of a finished (or stuck) download.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct DownloadReport {
    /// Seconds of simulated time until completion (or stall).
    pub elapsed: u64,
    /// Parts fetched in total, including corrupt re-fetches.
    pub transfers: u64,
    /// Corrupt parts detected and discarded.
    pub corrupt: u64,
    /// Per-source verified-part counts, indexed like the source list.
    pub per_source: Vec<u64>,
    /// Whether every part verified.
    pub complete: bool,
}

/// A multi-source download of one file.
pub struct Download {
    hashes: PartHashes,
    parts: Vec<PartState>,
    sources: Vec<Source>,
    banned: Vec<bool>,
    queue: EventQueue<DownloadEvent>,
    report: DownloadReport,
}

impl Download {
    /// Starts a download of the file described by `hashes` from the
    /// given sources.
    ///
    /// # Panics
    ///
    /// Panics if `sources` is empty — a download with no sources is a
    /// caller bug (the paper's clients re-query the server for sources
    /// every twenty minutes precisely to avoid this state).
    pub fn new(hashes: PartHashes, sources: Vec<Source>) -> Self {
        assert!(!sources.is_empty(), "a download needs at least one source");
        let n_parts = hashes.part_count();
        let n_sources = sources.len();
        Download {
            hashes,
            parts: vec![PartState::Missing; n_parts],
            banned: vec![false; n_sources],
            report: DownloadReport {
                per_source: vec![0; n_sources],
                ..DownloadReport::default()
            },
            sources,
            queue: EventQueue::new(),
        }
    }

    /// The file's hashset (what [`edonkey_proto::wire::Message::Hashset`]
    /// would carry to a peer asking to verify parts).
    pub fn hashes(&self) -> &PartHashes {
        &self.hashes
    }

    /// Parts currently shareable (verified), in part order — the
    /// *partial sharing* capability.
    pub fn shareable_parts(&self) -> Vec<usize> {
        self.parts
            .iter()
            .enumerate()
            .filter(|(_, s)| **s == PartState::Verified)
            .map(|(i, _)| i)
            .collect()
    }

    /// The part-availability bitmap a [`edonkey_proto::wire::Message::FileStatus`]
    /// reply would carry (bit `i` of byte `i / 8` = part `i` verified).
    pub fn status_bitmap(&self) -> Vec<u8> {
        let mut bits = vec![0u8; self.parts.len().div_ceil(8)];
        for (i, state) in self.parts.iter().enumerate() {
            if *state == PartState::Verified {
                bits[i / 8] |= 1 << (i % 8);
            }
        }
        bits
    }

    /// Runs the download to completion (or stall), returning the report.
    ///
    /// Scheduling policy: every idle, non-banned source is assigned the
    /// lowest-index missing part (rarest-first would need swarm-level
    /// knowledge; the classic client fetched mostly in order).
    pub fn run(mut self) -> DownloadReport {
        self.dispatch();
        while let Some((_, event)) = self.queue.pop() {
            let DownloadEvent::PartDone {
                part,
                source,
                corrupt,
            } = event;
            self.report.transfers += 1;
            if corrupt {
                // Checksum mismatch: discard and ban the offender (a
                // single corrupt part is enough — the real client keeps a
                // per-IP ban list for exactly this).
                self.report.corrupt += 1;
                self.banned[source] = true;
                self.parts[part] = PartState::Missing;
            } else {
                self.parts[part] = PartState::Verified;
                self.report.per_source[source] += 1;
            }
            self.dispatch();
        }
        self.report.elapsed = self.queue.now();
        self.report.complete = self.parts.iter().all(|s| *s == PartState::Verified);
        self.report
    }

    /// Assigns missing parts to idle sources.
    fn dispatch(&mut self) {
        for source_idx in 0..self.sources.len() {
            if self.banned[source_idx] || self.source_busy(source_idx) {
                continue;
            }
            let Some(part) = self.parts.iter().position(|s| *s == PartState::Missing) else {
                return;
            };
            self.parts[part] = PartState::InFlight { source: source_idx };
            let corrupt = self.sources[source_idx].serve();
            let delay = self.sources[source_idx].seconds_per_part;
            self.queue.schedule_in(
                delay,
                DownloadEvent::PartDone {
                    part,
                    source: source_idx,
                    corrupt,
                },
            );
        }
    }

    fn source_busy(&self, source: usize) -> bool {
        self.parts
            .iter()
            .any(|s| matches!(s, PartState::InFlight { source: f } if *f == source))
    }
}

/// Convenience: the hashset of a synthetic file of `n_parts` full parts
/// (content derived from `seed`), without allocating the file itself.
///
/// Simulated transfers don't move real bytes, but the *hashes* must be a
/// consistent hashset, so this builds one from per-part digests.
pub fn synthetic_hashset(seed: u64, n_parts: usize) -> PartHashes {
    assert!(n_parts > 0, "files have at least one part");
    let parts: Vec<Digest> = (0..n_parts)
        .map(|i| {
            let mut h = edonkey_proto::md4::Md4::new();
            h.update(&seed.to_le_bytes());
            h.update(&(i as u64).to_le_bytes());
            h.finalize()
        })
        .collect();
    // Rebuild through the public API so the file id follows the ed2k
    // rule regardless of part count.
    let file_id = PartHashes::file_id_of_parts(&parts).expect("non-empty");
    // PART_SIZE-sized parts except a notional 1-byte tail keeps sizes
    // plausible without special-casing the exact-multiple rule.
    let size = (n_parts as u64 - 1) * PART_SIZE + 1;
    PartHashesParts {
        parts,
        file_id,
        size,
    }
    .into()
}

/// Internal constructor bridge (PartHashes' fields are private).
struct PartHashesParts {
    parts: Vec<Digest>,
    file_id: Digest,
    size: u64,
}

impl From<PartHashesParts> for PartHashes {
    fn from(p: PartHashesParts) -> PartHashes {
        PartHashes::from_raw_parts(p.parts, p.file_id, p.size)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sources(specs: &[(u64, u32)]) -> Vec<Source> {
        specs
            .iter()
            .enumerate()
            .map(|(i, &(speed, corrupt))| {
                let s = Source::new(format!("s{i}"), speed);
                if corrupt > 0 {
                    s.with_corruption(corrupt)
                } else {
                    s
                }
            })
            .collect()
    }

    #[test]
    fn single_source_downloads_in_order() {
        let hashes = synthetic_hashset(1, 4);
        let report = Download::new(hashes, sources(&[(10, 0)])).run();
        assert!(report.complete);
        assert_eq!(report.transfers, 4);
        assert_eq!(report.corrupt, 0);
        assert_eq!(report.elapsed, 40, "serial transfer of 4 parts at 10s");
        assert_eq!(report.per_source, vec![4]);
    }

    #[test]
    fn concurrent_sources_split_the_work() {
        let hashes = synthetic_hashset(2, 6);
        let report = Download::new(hashes, sources(&[(10, 0), (10, 0)])).run();
        assert!(report.complete);
        assert_eq!(report.elapsed, 30, "two equal sources halve the time");
        assert_eq!(report.per_source, vec![3, 3]);
    }

    #[test]
    fn faster_source_serves_more() {
        let hashes = synthetic_hashset(3, 9);
        let report = Download::new(hashes, sources(&[(5, 0), (20, 0)])).run();
        assert!(report.complete);
        assert!(report.per_source[0] > report.per_source[1]);
    }

    #[test]
    fn corrupt_source_is_detected_and_banned() {
        let hashes = synthetic_hashset(4, 5);
        // Source 0 corrupts every 2nd part; source 1 is clean but slow.
        let report = Download::new(hashes, sources(&[(5, 2), (50, 0)])).run();
        assert!(report.complete, "the clean source must finish the job");
        assert_eq!(report.corrupt, 1, "one corrupt part before the ban");
        assert!(report.per_source[1] > 0);
        assert_eq!(report.transfers as usize, 5 + 1);
    }

    #[test]
    fn all_sources_corrupt_stalls_incomplete() {
        let hashes = synthetic_hashset(5, 3);
        let report = Download::new(hashes, sources(&[(5, 1)])).run();
        assert!(!report.complete, "a download with only poisoners stalls");
        assert_eq!(report.corrupt, 1);
        assert_eq!(report.per_source, vec![0]);
    }

    #[test]
    fn partial_sharing_exposes_verified_parts() {
        let hashes = synthetic_hashset(6, 10);
        let mut download = Download::new(hashes, sources(&[(7, 0)]));
        assert!(download.shareable_parts().is_empty());
        // Drive three completions by hand.
        download.dispatch();
        for _ in 0..3 {
            let (_, event) = download.queue.pop().expect("event pending");
            let DownloadEvent::PartDone {
                part,
                source,
                corrupt,
            } = event;
            assert!(!corrupt);
            download.parts[part] = PartState::Verified;
            download.report.per_source[source] += 1;
            download.dispatch();
        }
        assert_eq!(download.shareable_parts(), vec![0, 1, 2]);
        let bitmap = download.status_bitmap();
        assert_eq!(bitmap[0], 0b0000_0111);
        assert_eq!(bitmap.len(), 2);
    }

    #[test]
    fn hashset_accessor_matches_input() {
        let hashes = synthetic_hashset(9, 2);
        let expected_id = hashes.file_id();
        let download = Download::new(hashes, sources(&[(1, 0)]));
        assert_eq!(download.hashes().file_id(), expected_id);
    }

    #[test]
    fn synthetic_hashset_is_consistent() {
        let h = synthetic_hashset(7, 3);
        assert_eq!(h.part_count(), 3);
        assert_eq!(
            PartHashes::file_id_of_parts(h.parts()),
            Some(h.file_id()),
            "file id follows the ed2k rule"
        );
        let single = synthetic_hashset(7, 1);
        assert_eq!(single.file_id(), single.parts()[0]);
    }

    #[test]
    #[should_panic(expected = "at least one source")]
    fn no_sources_rejected() {
        let _ = Download::new(synthetic_hashset(8, 1), vec![]);
    }
}
