//! The measurement crawler (Section 2.2), rebuilt mechanistically.
//!
//! The crawler:
//!
//! 1. connects to every known server and retrieves server lists;
//! 2. repeatedly issues `query-users` nickname queries (a fixed set of
//!    three-letter patterns, `aaa` … `zzz`) against the servers that
//!    still support the feature, each reply capped at 200 users;
//! 3. filters the discovered users to *reachable* (non-firewalled)
//!    clients;
//! 4. browses known clients daily under a bandwidth budget — each
//!    connection costs seconds on the crawl clock, and the budget
//!    tightens over the trace (the paper's coverage fell from 65 k to
//!    35 k clients/day for exactly this reason);
//! 5. records every successful browse as a `(day, peer, cache)`
//!    observation.
//!
//! The output is an [`edonkey_trace::Trace`] whose measurement biases
//! (name-collision shadowing, firewalled blind spots, browse-denial,
//! churn aliases, missed days) all arise from the mechanics above.

use std::collections::HashMap;
use std::io::{Seek, Write};

use edonkey_proto::md4::Digest;
use edonkey_proto::tags::SpecialTag;
use edonkey_proto::wire::Message;
use edonkey_trace::io::bin::TraceWriter;
use edonkey_trace::io::TraceIoError;
use edonkey_trace::model::{DaySnapshot, FileInfo, PeerInfo, Trace, TraceBuilder};
use edonkey_workload::population::Population;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::event::EventQueue;
use crate::network::{NetConfig, Network};

/// Crawler parameters.
#[derive(Clone, Debug)]
pub struct CrawlerConfig {
    /// Number of three-letter nickname patterns per sweep. The default
    /// is the full `26³ = 17 576` space — the paper's "263 different
    /// queries, starting with 'aaa' and ending with 'zzz'" is read as a
    /// typeset `26³`; 263 evenly spaced trigrams would discover almost
    /// nobody against realistic nicknames.
    pub patterns: usize,
    /// Crawl-clock cost of one browse attempt, in seconds.
    pub seconds_per_browse: u64,
    /// Daily browse budget (seconds) on the first day.
    pub budget_start: u64,
    /// Daily browse budget (seconds) on the last day — smaller, because
    /// the crawler's bandwidth allowance tightened over the campaign.
    pub budget_end: u64,
    /// Day *offsets* (from the trace start) on which the crawler was
    /// down — the two-day network failure visible in Fig. 2.
    pub outage_days: Vec<u32>,
    /// RNG seed for browse-order shuffling.
    pub seed: u64,
}

impl Default for CrawlerConfig {
    fn default() -> Self {
        CrawlerConfig {
            patterns: 26 * 26 * 26,
            seconds_per_browse: 2,
            budget_start: 86_400,
            budget_end: 30_000,
            outage_days: vec![3, 4],
            seed: 0xc4a1,
        }
    }
}

impl CrawlerConfig {
    /// Scales the budgets so that roughly `coverage_start`/`coverage_end`
    /// fractions of `peers` can be browsed per day — convenient when the
    /// population size varies.
    pub fn budget_for(mut self, peers: usize, coverage_start: f64, coverage_end: f64) -> Self {
        self.budget_start = (peers as f64 * coverage_start * self.seconds_per_browse as f64) as u64;
        self.budget_end = (peers as f64 * coverage_end * self.seconds_per_browse as f64) as u64;
        self
    }
}

/// A discovered user in the crawler's address book.
#[derive(Clone, Debug)]
struct KnownUser {
    /// Client index in the network (resolved once at discovery).
    client_idx: usize,
}

/// Per-day crawl statistics.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CrawlDayStats {
    /// Day offset from the trace start.
    pub day_offset: u32,
    /// Users known after today's discovery sweep.
    pub known_users: usize,
    /// Browse attempts made (bounded by the budget).
    pub attempts: usize,
    /// Successful browses (observations recorded).
    pub browsed: usize,
}

/// The crawler state.
pub struct Crawler {
    /// Configuration.
    pub config: CrawlerConfig,
    /// Address book: uid → resolved client.
    known: HashMap<Digest, KnownUser>,
    builder: TraceBuilder,
    stats: Vec<CrawlDayStats>,
    rng: StdRng,
}

impl Crawler {
    /// Creates an idle crawler.
    pub fn new(config: CrawlerConfig) -> Self {
        let rng = StdRng::seed_from_u64(config.seed);
        Crawler {
            config,
            known: HashMap::new(),
            builder: TraceBuilder::new(),
            stats: Vec::new(),
            rng,
        }
    }

    /// The fixed pattern list: `patterns` trigrams evenly spaced through
    /// `aaa`…`zzz`.
    pub fn patterns(count: usize) -> Vec<String> {
        let total = 26 * 26 * 26;
        (0..count)
            .map(|i| {
                let v = (i * total / count.max(1)) % total;
                let bytes = [
                    b'a' + (v / (26 * 26)) as u8,
                    b'a' + ((v / 26) % 26) as u8,
                    b'a' + (v % 26) as u8,
                ];
                String::from_utf8(bytes.to_vec()).expect("ascii")
            })
            .collect()
    }

    /// Runs one crawl day against the network.
    pub fn crawl_day(&mut self, net: &mut Network<'_>, day_offset: u32, total_days: u32) {
        let mut stats = CrawlDayStats {
            day_offset,
            ..Default::default()
        };
        if self.config.outage_days.contains(&day_offset) {
            stats.known_users = self.known.len();
            self.stats.push(stats);
            return;
        }

        self.discover(net);
        stats.known_users = self.known.len();

        // Browse under the day's budget, on a seconds clock.
        let t = if total_days <= 1 {
            0.0
        } else {
            day_offset as f64 / (total_days - 1) as f64
        };
        let budget = (self.config.budget_start as f64
            + t * (self.config.budget_end as f64 - self.config.budget_start as f64))
            as u64;

        // Shuffled browse order (the crawler cycles its user list; the
        // shuffle models which slice fits today's budget).
        let mut order: Vec<Digest> = self.known.keys().copied().collect();
        order.sort_unstable(); // determinism before shuffling
        shuffle(&mut order, &mut self.rng);

        let mut queue: EventQueue<Digest> = EventQueue::new();
        let mut next_time = 0u64;
        for uid in order {
            queue.schedule(next_time, uid);
            next_time += self.config.seconds_per_browse;
        }
        let mut stale: Vec<Digest> = Vec::new();
        while let Some((_, uid)) = queue.pop_until(budget) {
            stats.attempts += 1;
            let Some(user) = self.known.get(&uid) else {
                continue;
            };
            let client_idx = user.client_idx;
            // Reinstalls invalidate the address-book entry.
            if net.clients[client_idx].uid != uid {
                stale.push(uid);
                continue;
            }
            if let Some(Message::BrowseResult(files)) =
                net.deliver_to_idx(client_idx, &Message::BrowseRequest)
            {
                stats.browsed += 1;
                self.record(net, client_idx, &files);
            }
        }
        for uid in stale {
            self.known.remove(&uid);
        }
        self.stats.push(stats);
    }

    /// The discovery sweep: connect to each server, fetch its server
    /// list, and run the nickname queries where supported.
    fn discover(&mut self, net: &mut Network<'_>) {
        let patterns = Self::patterns(self.config.patterns);
        let crawler_uid = Digest([0xCC; 16]);
        // Collect discoveries first (the server borrow must end before
        // uid resolution walks the client table).
        let mut discovered: Vec<edonkey_proto::wire::UserRecord> = Vec::new();
        for server in &mut net.servers {
            let login = Message::Login {
                uid: crawler_uid,
                nick: "crawler".into(),
                port: 4662,
                tags: Default::default(),
            };
            let (_, session) = server.connect(&login, 0x7f00_0001);
            // Server list exchange (kept for fidelity; all servers are
            // already known in this simulation).
            let _ = server.handle(session, &Message::GetServerList);
            for pattern in &patterns {
                let Some(Message::FoundUsers(users)) = server.handle(
                    session,
                    &Message::QueryUsers {
                        pattern: pattern.clone(),
                    },
                ) else {
                    break; // Server without query-users: skip its sweep.
                };
                // Firewalled users are unreachable: filtered out.
                discovered.extend(users.into_iter().filter(|u| u.ip != 0));
            }
            server.disconnect(session);
        }
        for user in discovered {
            if self.known.contains_key(&user.uid) {
                continue;
            }
            // Resolve once; the network owns uid changes.
            if let Some(client_idx) = net.client_by_uid(&user.uid) {
                self.known.insert(user.uid, KnownUser { client_idx });
            }
        }
    }

    /// Records a successful browse as a trace observation.
    fn record(
        &mut self,
        net: &Network<'_>,
        client_idx: usize,
        files: &[edonkey_proto::wire::PublishedFile],
    ) {
        let client = &net.clients[client_idx];
        let peer_info = &net.population.peers[client.peer_idx].info;
        let peer = self.builder.intern_peer(PeerInfo {
            uid: client.uid,
            ip: client.ip,
            country: peer_info.country,
            asn: peer_info.asn,
        });
        let day = net.day();
        if self.builder.observed_on(day, peer) {
            // The same client can surface twice in one day via nickname
            // collisions; one observation per day is what the trace keeps.
            return;
        }
        let cache = files
            .iter()
            .map(|f| {
                self.builder.intern_file(FileInfo {
                    id: f.file_id,
                    size: f.tags.get_u32(SpecialTag::Size).map(u64::from).unwrap_or(0),
                    kind: f
                        .tags
                        .get_str(SpecialTag::Type)
                        .and_then(edonkey_proto::query::FileKind::from_str_ci)
                        .unwrap_or(edonkey_proto::query::FileKind::Document),
                })
            })
            .collect();
        self.builder.observe(day, peer, cache);
    }

    /// Per-day statistics so far.
    pub fn stats(&self) -> &[CrawlDayStats] {
        &self.stats
    }

    /// Removes and returns a completed day's observations, if any were
    /// recorded — the streaming hook for feeding a
    /// [`TraceWriter`] day-by-day instead of accumulating the whole
    /// trace (outage days record nothing and return `None`).
    pub fn take_day(&mut self, day: u32) -> Option<DaySnapshot> {
        self.builder.take_day(day)
    }

    /// The intern tables accumulated so far, for [`TraceWriter::finish`].
    pub fn tables(&self) -> (&[FileInfo], &[PeerInfo]) {
        (self.builder.files(), self.builder.peers())
    }

    /// Finishes the crawl, returning the trace.
    pub fn finish(self) -> Trace {
        self.builder.finish()
    }
}

fn shuffle<T>(items: &mut [T], rng: &mut impl Rng) {
    for i in (1..items.len()).rev() {
        let j = rng.gen_range(0..=i);
        items.swap(i, j);
    }
}

/// End-to-end convenience: generate network dynamics for `population`
/// and crawl it for the configured number of days.
///
/// Returns the trace and the per-day crawl statistics.
pub fn run_crawl(
    population: &Population,
    net_config: NetConfig,
    crawler_config: CrawlerConfig,
) -> (Trace, Vec<CrawlDayStats>) {
    let total_days = population.config.days;
    let mut net = Network::new(population, net_config);
    let mut crawler = Crawler::new(crawler_config);
    net.refresh_sessions();
    crawler.crawl_day(&mut net, 0, total_days);
    for offset in 1..total_days {
        net.step_day();
        crawler.crawl_day(&mut net, offset, total_days);
    }
    let stats = crawler.stats().to_vec();
    (crawler.finish(), stats)
}

/// [`run_crawl`], streaming: each day's snapshot is emitted to `writer`
/// the moment its crawl day completes, so the crawl never holds more
/// than one day of observations (plus the intern tables) in memory.
///
/// The written trace is identical to what [`run_crawl`] + `save_bin`
/// would produce. Returns the per-day statistics and the finished sink.
pub fn run_crawl_streaming<W: Write + Seek>(
    population: &Population,
    net_config: NetConfig,
    crawler_config: CrawlerConfig,
    mut writer: TraceWriter<W>,
) -> Result<(Vec<CrawlDayStats>, W), TraceIoError> {
    let total_days = population.config.days;
    let mut net = Network::new(population, net_config);
    let mut crawler = Crawler::new(crawler_config);
    net.refresh_sessions();
    crawler.crawl_day(&mut net, 0, total_days);
    if let Some(snapshot) = crawler.take_day(net.day()) {
        writer.write_day(&snapshot)?;
    }
    for offset in 1..total_days {
        net.step_day();
        crawler.crawl_day(&mut net, offset, total_days);
        if let Some(snapshot) = crawler.take_day(net.day()) {
            writer.write_day(&snapshot)?;
        }
    }
    let (files, peers) = crawler.tables();
    let sink = writer.finish(files, peers)?;
    Ok((crawler.stats().to_vec(), sink))
}

#[cfg(test)]
mod tests {
    use super::*;
    use edonkey_workload::WorkloadConfig;

    fn pop(days: u32) -> Population {
        let mut c = WorkloadConfig::test_scale(13);
        c.peers = 200;
        c.files = 1_500;
        c.days = days;
        c.cache_max = 300;
        Population::generate(c)
    }

    #[test]
    fn pattern_generation() {
        let p = Crawler::patterns(26 * 26 * 26);
        assert_eq!(p.len(), 26 * 26 * 26);
        assert_eq!(p[0], "aaa");
        assert_eq!(p.last().unwrap(), "zzz");
        assert!(p.iter().all(|s| s.len() == 3));
        let distinct: std::collections::HashSet<_> = p.iter().collect();
        assert_eq!(distinct.len(), 26 * 26 * 26, "patterns must be distinct");
        // A reduced sweep stays evenly spaced and distinct.
        let few = Crawler::patterns(100);
        assert_eq!(few.len(), 100);
        assert_eq!(few[0], "aaa");
    }

    #[test]
    fn crawl_produces_a_valid_trace() {
        let population = pop(5);
        let (trace, stats) = run_crawl(
            &population,
            NetConfig::default(),
            CrawlerConfig {
                outage_days: vec![],
                ..Default::default()
            }
            .budget_for(200, 1.2, 1.2),
        );
        assert_eq!(trace.check_invariants(), Ok(()));
        assert_eq!(stats.len(), 5);
        assert!(
            trace.peers.len() > 50,
            "crawler found {} peers",
            trace.peers.len()
        );
        assert!(trace.days.len() >= 4);
        // Firewalled clients never appear: every observed peer is
        // reachable. (~25% of population is firewalled.)
        assert!(trace.peers.len() < 200);
    }

    #[test]
    fn outage_days_produce_no_observations() {
        let population = pop(4);
        let (trace, stats) = run_crawl(
            &population,
            NetConfig::default(),
            CrawlerConfig {
                outage_days: vec![1],
                ..Default::default()
            }
            .budget_for(200, 1.2, 1.2),
        );
        assert_eq!(stats[1].attempts, 0);
        let day1 = population.config.start_day + 1;
        assert!(
            trace.snapshot(day1).is_none(),
            "no snapshot on the outage day"
        );
    }

    #[test]
    fn tighter_budget_reduces_coverage() {
        let population = pop(6);
        let (_, stats) = run_crawl(
            &population,
            NetConfig::default(),
            CrawlerConfig {
                outage_days: vec![],
                ..Default::default()
            }
            .budget_for(200, 1.5, 0.2),
        );
        let first = stats[1].browsed; // day 0 has a cold address book
        let last = stats.last().unwrap().browsed;
        assert!(
            last < first,
            "coverage should decline with the budget: first {first}, last {last}"
        );
    }

    #[test]
    fn streaming_crawl_equals_batch_crawl() {
        let population = pop(5);
        let config = CrawlerConfig {
            outage_days: vec![2],
            ..Default::default()
        }
        .budget_for(200, 1.2, 1.2);
        let (batch, batch_stats) = run_crawl(&population, NetConfig::default(), config.clone());
        let writer = TraceWriter::new(std::io::Cursor::new(Vec::new())).unwrap();
        let (stream_stats, sink) =
            run_crawl_streaming(&population, NetConfig::default(), config, writer).unwrap();
        let streamed = edonkey_trace::io::bin::from_bin(&sink.into_inner()).unwrap();
        assert_eq!(streamed, batch, "streaming and batch crawls must agree");
        assert_eq!(stream_stats, batch_stats);
    }

    #[test]
    fn browse_denial_and_firewalls_hide_clients() {
        let population = pop(3);
        let net_config = NetConfig {
            browse_disabled_prob: 1.0, // nobody answers browses
            ..Default::default()
        };
        let (trace, stats) = run_crawl(
            &population,
            net_config,
            CrawlerConfig {
                outage_days: vec![],
                ..Default::default()
            }
            .budget_for(200, 1.2, 1.2),
        );
        assert_eq!(trace.peers.len(), 0, "all browses denied");
        assert!(stats.iter().all(|s| s.browsed == 0));
        assert!(stats[0].known_users > 0, "discovery still works");
    }
}
