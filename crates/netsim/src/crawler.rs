//! The measurement crawler (Section 2.2), rebuilt mechanistically.
//!
//! The crawler:
//!
//! 1. connects to every known server and retrieves server lists;
//! 2. repeatedly issues `query-users` nickname queries (a fixed set of
//!    three-letter patterns, `aaa` … `zzz`) against the servers that
//!    still support the feature, each reply capped at 200 users;
//! 3. filters the discovered users to *reachable* (non-firewalled)
//!    clients;
//! 4. browses known clients daily under a bandwidth budget — each
//!    connection costs seconds on the crawl clock, and the budget
//!    tightens over the trace (the paper's coverage fell from 65 k to
//!    35 k clients/day for exactly this reason);
//! 5. records every successful browse as a `(day, peer, cache)`
//!    observation.
//!
//! The output is an [`edonkey_trace::Trace`] whose measurement biases
//! (name-collision shadowing, firewalled blind spots, browse-denial,
//! churn aliases, missed days) all arise from the mechanics above.

use std::collections::{HashMap, HashSet};
use std::io::{Seek, Write};

use edonkey_proto::md4::Digest;
use edonkey_proto::tags::SpecialTag;
use edonkey_proto::wire::Message;
use edonkey_trace::io::bin::TraceWriter;
use edonkey_trace::io::TraceIoError;
use edonkey_trace::model::{DaySnapshot, FileInfo, PeerInfo, Trace, TraceBuilder};
use edonkey_workload::population::Population;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::event::EventQueue;
use crate::fault::{CrawlHealth, FaultConfig, FaultPlan, RetryPolicy};
use crate::network::{NetConfig, Network};

/// Crawler parameters.
#[derive(Clone, Debug)]
pub struct CrawlerConfig {
    /// Number of three-letter nickname patterns per sweep. The default
    /// is the full `26³ = 17 576` space — the paper's "263 different
    /// queries, starting with 'aaa' and ending with 'zzz'" is read as a
    /// typeset `26³`; 263 evenly spaced trigrams would discover almost
    /// nobody against realistic nicknames.
    pub patterns: usize,
    /// Crawl-clock cost of one browse attempt, in seconds.
    pub seconds_per_browse: u64,
    /// Daily browse budget (seconds) on the first day.
    pub budget_start: u64,
    /// Daily browse budget (seconds) on the last day — smaller, because
    /// the crawler's bandwidth allowance tightened over the campaign.
    pub budget_end: u64,
    /// Day *offsets* (from the trace start) on which the crawler was
    /// down — the two-day network failure visible in Fig. 2.
    pub outage_days: Vec<u32>,
    /// RNG seed for browse-order shuffling.
    pub seed: u64,
    /// The fault schedule injected into the run. Quiet by default, in
    /// which case the crawl is identical to a run without fault
    /// injection.
    pub fault: FaultConfig,
    /// The crawler's retry/timeout/quarantine policy. Defaults to
    /// [`RetryPolicy::no_retry`], the seed crawler's behaviour.
    pub retry: RetryPolicy,
}

impl Default for CrawlerConfig {
    fn default() -> Self {
        CrawlerConfig {
            patterns: 26 * 26 * 26,
            seconds_per_browse: 2,
            budget_start: 86_400,
            budget_end: 30_000,
            outage_days: vec![3, 4],
            seed: 0xc4a1,
            fault: FaultConfig::none(),
            retry: RetryPolicy::no_retry(),
        }
    }
}

impl CrawlerConfig {
    /// Scales the budgets so that roughly `coverage_start`/`coverage_end`
    /// fractions of `peers` can be browsed per day — convenient when the
    /// population size varies.
    pub fn budget_for(mut self, peers: usize, coverage_start: f64, coverage_end: f64) -> Self {
        self.budget_start = (peers as f64 * coverage_start * self.seconds_per_browse as f64) as u64;
        self.budget_end = (peers as f64 * coverage_end * self.seconds_per_browse as f64) as u64;
        self
    }
}

/// A discovered user in the crawler's address book.
#[derive(Clone, Debug)]
struct KnownUser {
    /// Client index in the network (resolved once at discovery).
    client_idx: usize,
}

/// Per-day crawl statistics.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CrawlDayStats {
    /// Day offset from the trace start.
    pub day_offset: u32,
    /// Users known after today's discovery sweep.
    pub known_users: usize,
    /// Browse attempts made (bounded by the budget).
    pub attempts: usize,
    /// Successful browses (observations recorded).
    pub browsed: usize,
}

/// The crawler state.
pub struct Crawler {
    /// Configuration.
    pub config: CrawlerConfig,
    /// The fault schedule (derived from `config.fault`).
    plan: FaultPlan,
    /// Address book: uid → resolved client.
    known: HashMap<Digest, KnownUser>,
    /// Consecutive fully-failed days per client (quarantine accounting).
    fail_streak: HashMap<usize, u32>,
    /// Clients currently quarantined: probed once per day, no retries,
    /// paroled on the first successful connection.
    quarantined: HashSet<usize>,
    builder: TraceBuilder,
    stats: Vec<CrawlDayStats>,
    health: CrawlHealth,
    rng: StdRng,
}

impl Crawler {
    /// Creates an idle crawler.
    pub fn new(config: CrawlerConfig) -> Self {
        let rng = StdRng::seed_from_u64(config.seed);
        let plan = FaultPlan::new(config.fault.clone());
        Crawler {
            config,
            plan,
            known: HashMap::new(),
            fail_streak: HashMap::new(),
            quarantined: HashSet::new(),
            builder: TraceBuilder::new(),
            stats: Vec::new(),
            health: CrawlHealth::default(),
            rng,
        }
    }

    /// The fault schedule this crawler runs against.
    pub fn fault_plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// The fixed pattern list: `patterns` trigrams evenly spaced through
    /// `aaa`…`zzz`.
    pub fn patterns(count: usize) -> Vec<String> {
        let total = 26 * 26 * 26;
        (0..count)
            .map(|i| {
                let v = (i * total / count.max(1)) % total;
                let bytes = [
                    b'a' + (v / (26 * 26)) as u8,
                    b'a' + ((v / 26) % 26) as u8,
                    b'a' + (v % 26) as u8,
                ];
                String::from_utf8(bytes.to_vec()).expect("ascii")
            })
            .collect()
    }

    /// Runs one crawl day against the network.
    pub fn crawl_day(&mut self, net: &mut Network<'_>, day_offset: u32, total_days: u32) {
        let mut stats = CrawlDayStats {
            day_offset,
            ..Default::default()
        };
        if self.config.outage_days.contains(&day_offset) {
            stats.known_users = self.known.len();
            self.stats.push(stats);
            return;
        }

        self.discover(net, day_offset);
        stats.known_users = self.known.len();

        // Browse under the day's budget, on a seconds clock.
        let t = if total_days <= 1 {
            0.0
        } else {
            day_offset as f64 / (total_days - 1) as f64
        };
        let budget = (self.config.budget_start as f64
            + t * (self.config.budget_end as f64 - self.config.budget_start as f64))
            as u64;

        // Shuffled browse order (the crawler cycles its user list; the
        // shuffle models which slice fits today's budget).
        let mut order: Vec<Digest> = self.known.keys().copied().collect();
        order.sort_unstable(); // determinism before shuffling
        shuffle(&mut order, &mut self.rng);

        // Events carry the attempt number so retries share the crawl
        // clock with first tries; `clock` tracks time actually spent,
        // which outruns the pre-scheduled slots when timeouts cost more
        // than a browse slot.
        let policy = self.config.retry;
        let mut queue: EventQueue<(Digest, u32)> = EventQueue::new();
        let mut next_time = 0u64;
        for uid in order {
            queue.schedule(next_time, (uid, 0));
            next_time += self.config.seconds_per_browse;
        }
        let mut stale: Vec<Digest> = Vec::new();
        // client → did any attempt connect today? (quarantine input)
        let mut connected_today: HashMap<usize, bool> = HashMap::new();
        let mut clock = 0u64;
        while let Some((due, (uid, attempt))) = queue.pop() {
            let start = due.max(clock);
            if start > budget {
                self.health.abandoned += 1 + queue.clear() as u64;
                break;
            }
            let Some(user) = self.known.get(&uid) else {
                continue;
            };
            let client_idx = user.client_idx;
            stats.attempts += 1;
            self.health.attempted += 1;
            if attempt > 0 {
                self.health.retries += 1;
            }
            // Reinstalls invalidate the address-book entry.
            if net.clients[client_idx].uid != uid {
                self.health.stale += 1;
                stale.push(uid);
                clock = start + self.config.seconds_per_browse;
                continue;
            }
            let timed_out = self.plan.natted(client_idx)
                || self.plan.connect_timeout(client_idx, day_offset, attempt);
            let reply = if timed_out {
                None
            } else {
                net.deliver_to_idx(client_idx, &Message::BrowseRequest)
            };
            match reply {
                Some(Message::BrowseResult(mut files)) => {
                    self.health.connected += 1;
                    connected_today.insert(client_idx, true);
                    if self.plan.mid_browse_cut(client_idx, day_offset, attempt) {
                        let keep =
                            self.plan
                                .truncated_len(files.len(), client_idx, day_offset, attempt);
                        files.truncate(keep);
                        self.health.truncated += 1;
                    }
                    stats.browsed += 1;
                    if self.record(net, client_idx, &files) {
                        self.health.recorded += 1;
                    } else {
                        self.health.duplicates += 1;
                    }
                    clock = start + self.config.seconds_per_browse;
                }
                Some(_) => {
                    // Browse denied: the connection itself succeeded.
                    self.health.connected += 1;
                    self.health.denied += 1;
                    connected_today.insert(client_idx, true);
                    clock = start + self.config.seconds_per_browse;
                }
                None => {
                    self.health.timeouts += 1;
                    connected_today.entry(client_idx).or_insert(false);
                    clock = start + policy.browse_timeout;
                    // Quarantined peers get the single probe only.
                    let allowed = if self.quarantined.contains(&client_idx) {
                        0
                    } else {
                        policy.max_retries
                    };
                    if attempt < allowed {
                        let at = clock + policy.backoff_for(attempt);
                        queue.schedule(at.max(queue.now()), (uid, attempt + 1));
                    }
                }
            }
        }
        for uid in stale {
            self.known.remove(&uid);
        }
        // Quarantine bookkeeping: a connection paroles the client and
        // clears its streak; a fully-dead day extends the streak.
        for (client_idx, connected) in connected_today {
            if connected {
                self.fail_streak.remove(&client_idx);
                self.quarantined.remove(&client_idx);
            } else {
                let streak = self.fail_streak.entry(client_idx).or_insert(0);
                *streak += 1;
                if *streak >= policy.quarantine_after && self.quarantined.insert(client_idx) {
                    self.health.quarantined += 1;
                }
            }
        }
        self.stats.push(stats);
    }

    /// The discovery sweep: connect to each server, fetch its server
    /// list, and run the nickname queries where supported.
    fn discover(&mut self, net: &mut Network<'_>, day_offset: u32) {
        let patterns = Self::patterns(self.config.patterns);
        let crawler_uid = Digest([0xCC; 16]);
        // Collect discoveries first (the server borrow must end before
        // uid resolution walks the client table).
        let mut discovered: Vec<edonkey_proto::wire::UserRecord> = Vec::new();
        for (server_idx, server) in net.servers.iter_mut().enumerate() {
            let login = Message::Login {
                uid: crawler_uid,
                nick: "crawler".into(),
                port: 4662,
                tags: Default::default(),
            };
            let (_, session) = server.connect(&login, 0x7f00_0001);
            // Server list exchange (kept for fidelity; all servers are
            // already known in this simulation).
            let _ = server.handle(session, &Message::GetServerList);
            for (pattern_idx, pattern) in patterns.iter().enumerate() {
                // A dropped reply is indistinguishable from a slow
                // server, so the crawler re-asks within its retry
                // budget; a server *without* query-users answers (with
                // a refusal) and ends the sweep as before.
                enum Outcome {
                    Found(Vec<edonkey_proto::wire::UserRecord>),
                    Unsupported,
                    Dropped,
                }
                let mut outcome = Outcome::Dropped;
                for attempt in 0..=self.config.retry.max_retries {
                    if self
                        .plan
                        .query_dropped(server_idx, pattern_idx, day_offset, attempt)
                    {
                        self.health.query_drops += 1;
                        continue;
                    }
                    outcome = match server.handle(
                        session,
                        &Message::QueryUsers {
                            pattern: pattern.clone(),
                        },
                    ) {
                        Some(Message::FoundUsers(users)) => Outcome::Found(users),
                        _ => Outcome::Unsupported,
                    };
                    break;
                }
                match outcome {
                    Outcome::Found(users) => {
                        // Firewalled users are unreachable: filtered out.
                        discovered.extend(users.into_iter().filter(|u| u.ip != 0));
                    }
                    Outcome::Unsupported => break, // skip this server's sweep
                    Outcome::Dropped => continue,  // every ask was dropped
                }
            }
            server.disconnect(session);
        }
        for user in discovered {
            if self.known.contains_key(&user.uid) {
                continue;
            }
            // Resolve once; the network owns uid changes.
            if let Some(client_idx) = net.client_by_uid(&user.uid) {
                self.known.insert(user.uid, KnownUser { client_idx });
            }
        }
    }

    /// Records a successful browse as a trace observation. Returns
    /// `false` when the peer was already observed today (the browse
    /// succeeded but added nothing to the trace).
    fn record(
        &mut self,
        net: &Network<'_>,
        client_idx: usize,
        files: &[edonkey_proto::wire::PublishedFile],
    ) -> bool {
        let client = &net.clients[client_idx];
        let peer_info = &net.population.peers[client.peer_idx].info;
        let peer = self.builder.intern_peer(PeerInfo {
            uid: client.uid,
            ip: client.ip,
            country: peer_info.country,
            asn: peer_info.asn,
        });
        let day = net.day();
        if self.builder.observed_on(day, peer) {
            // The same client can surface twice in one day via nickname
            // collisions; one observation per day is what the trace keeps.
            return false;
        }
        let cache = files
            .iter()
            .map(|f| {
                self.builder.intern_file(FileInfo {
                    id: f.file_id,
                    size: f.tags.get_u32(SpecialTag::Size).map(u64::from).unwrap_or(0),
                    kind: f
                        .tags
                        .get_str(SpecialTag::Type)
                        .and_then(edonkey_proto::query::FileKind::from_str_ci)
                        .unwrap_or(edonkey_proto::query::FileKind::Document),
                })
            })
            .collect();
        self.builder.observe(day, peer, cache);
        true
    }

    /// Per-day statistics so far.
    pub fn stats(&self) -> &[CrawlDayStats] {
        &self.stats
    }

    /// The graceful-degradation counters so far.
    pub fn health(&self) -> CrawlHealth {
        self.health
    }

    /// Removes and returns a completed day's observations, if any were
    /// recorded — the streaming hook for feeding a
    /// [`TraceWriter`] day-by-day instead of accumulating the whole
    /// trace (outage days record nothing and return `None`).
    pub fn take_day(&mut self, day: u32) -> Option<DaySnapshot> {
        self.builder.take_day(day)
    }

    /// The intern tables accumulated so far, for [`TraceWriter::finish`].
    pub fn tables(&self) -> (&[FileInfo], &[PeerInfo]) {
        (self.builder.files(), self.builder.peers())
    }

    /// Finishes the crawl, returning the trace.
    pub fn finish(self) -> Trace {
        self.builder.finish()
    }
}

fn shuffle<T>(items: &mut [T], rng: &mut impl Rng) {
    for i in (1..items.len()).rev() {
        let j = rng.gen_range(0..=i);
        items.swap(i, j);
    }
}

/// Everything a crawl reports besides the trace itself.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CrawlReport {
    /// Per-day statistics.
    pub stats: Vec<CrawlDayStats>,
    /// Graceful-degradation counters, reconcilable against the trace.
    pub health: CrawlHealth,
}

/// End-to-end convenience: generate network dynamics for `population`
/// and crawl it for the configured number of days.
///
/// Returns the trace and the per-day crawl statistics. See
/// [`run_crawl_full`] for the [`CrawlHealth`] counters as well.
pub fn run_crawl(
    population: &Population,
    net_config: NetConfig,
    crawler_config: CrawlerConfig,
) -> (Trace, Vec<CrawlDayStats>) {
    let (trace, report) = run_crawl_full(population, net_config, crawler_config);
    (trace, report.stats)
}

/// [`run_crawl`], also returning the [`CrawlHealth`] report.
pub fn run_crawl_full(
    population: &Population,
    net_config: NetConfig,
    crawler_config: CrawlerConfig,
) -> (Trace, CrawlReport) {
    let total_days = population.config.days;
    let mut net = Network::new(population, net_config);
    let mut crawler = Crawler::new(crawler_config);
    net.set_fault_plan(crawler.fault_plan().clone());
    net.refresh_sessions();
    crawler.crawl_day(&mut net, 0, total_days);
    for offset in 1..total_days {
        net.step_day();
        crawler.crawl_day(&mut net, offset, total_days);
    }
    let report = CrawlReport {
        stats: crawler.stats().to_vec(),
        health: crawler.health(),
    };
    (crawler.finish(), report)
}

/// [`run_crawl`], streaming: each day's snapshot is emitted to `writer`
/// the moment its crawl day completes, so the crawl never holds more
/// than one day of observations (plus the intern tables) in memory.
///
/// The written trace is identical to what [`run_crawl`] + `save_bin`
/// would produce. Returns the crawl report and the finished sink.
pub fn run_crawl_streaming<W: Write + Seek>(
    population: &Population,
    net_config: NetConfig,
    crawler_config: CrawlerConfig,
    mut writer: TraceWriter<W>,
) -> Result<(CrawlReport, W), TraceIoError> {
    let total_days = population.config.days;
    let mut net = Network::new(population, net_config);
    let mut crawler = Crawler::new(crawler_config);
    net.set_fault_plan(crawler.fault_plan().clone());
    net.refresh_sessions();
    crawler.crawl_day(&mut net, 0, total_days);
    if let Some(snapshot) = crawler.take_day(net.day()) {
        writer.write_day(&snapshot)?;
    }
    for offset in 1..total_days {
        net.step_day();
        crawler.crawl_day(&mut net, offset, total_days);
        if let Some(snapshot) = crawler.take_day(net.day()) {
            writer.write_day(&snapshot)?;
        }
    }
    let (files, peers) = crawler.tables();
    let sink = writer.finish(files, peers)?;
    let report = CrawlReport {
        stats: crawler.stats().to_vec(),
        health: crawler.health(),
    };
    Ok((report, sink))
}

#[cfg(test)]
mod tests {
    use super::*;
    use edonkey_workload::WorkloadConfig;

    fn pop(days: u32) -> Population {
        let mut c = WorkloadConfig::test_scale(13);
        c.peers = 200;
        c.files = 1_500;
        c.days = days;
        c.cache_max = 300;
        Population::generate(c)
    }

    #[test]
    fn pattern_generation() {
        let p = Crawler::patterns(26 * 26 * 26);
        assert_eq!(p.len(), 26 * 26 * 26);
        assert_eq!(p[0], "aaa");
        assert_eq!(p.last().unwrap(), "zzz");
        assert!(p.iter().all(|s| s.len() == 3));
        let distinct: std::collections::HashSet<_> = p.iter().collect();
        assert_eq!(distinct.len(), 26 * 26 * 26, "patterns must be distinct");
        // A reduced sweep stays evenly spaced and distinct.
        let few = Crawler::patterns(100);
        assert_eq!(few.len(), 100);
        assert_eq!(few[0], "aaa");
    }

    #[test]
    fn crawl_produces_a_valid_trace() {
        let population = pop(5);
        let (trace, stats) = run_crawl(
            &population,
            NetConfig::default(),
            CrawlerConfig {
                outage_days: vec![],
                ..Default::default()
            }
            .budget_for(200, 1.2, 1.2),
        );
        assert_eq!(trace.check_invariants(), Ok(()));
        assert_eq!(stats.len(), 5);
        assert!(
            trace.peers.len() > 50,
            "crawler found {} peers",
            trace.peers.len()
        );
        assert!(trace.days.len() >= 4);
        // Firewalled clients never appear: every observed peer is
        // reachable. (~25% of population is firewalled.)
        assert!(trace.peers.len() < 200);
    }

    #[test]
    fn outage_days_produce_no_observations() {
        let population = pop(4);
        let (trace, stats) = run_crawl(
            &population,
            NetConfig::default(),
            CrawlerConfig {
                outage_days: vec![1],
                ..Default::default()
            }
            .budget_for(200, 1.2, 1.2),
        );
        assert_eq!(stats[1].attempts, 0);
        let day1 = population.config.start_day + 1;
        assert!(
            trace.snapshot(day1).is_none(),
            "no snapshot on the outage day"
        );
    }

    #[test]
    fn tighter_budget_reduces_coverage() {
        let population = pop(6);
        let (_, stats) = run_crawl(
            &population,
            NetConfig::default(),
            CrawlerConfig {
                outage_days: vec![],
                ..Default::default()
            }
            .budget_for(200, 1.5, 0.2),
        );
        let first = stats[1].browsed; // day 0 has a cold address book
        let last = stats.last().unwrap().browsed;
        assert!(
            last < first,
            "coverage should decline with the budget: first {first}, last {last}"
        );
    }

    #[test]
    fn streaming_crawl_equals_batch_crawl() {
        let population = pop(5);
        let config = CrawlerConfig {
            outage_days: vec![2],
            ..Default::default()
        }
        .budget_for(200, 1.2, 1.2);
        let (batch, batch_report) =
            run_crawl_full(&population, NetConfig::default(), config.clone());
        let writer = TraceWriter::new(std::io::Cursor::new(Vec::new())).unwrap();
        let (stream_report, sink) =
            run_crawl_streaming(&population, NetConfig::default(), config, writer).unwrap();
        let streamed = edonkey_trace::io::bin::from_bin(&sink.into_inner()).unwrap();
        assert_eq!(streamed, batch, "streaming and batch crawls must agree");
        assert_eq!(stream_report, batch_report);
    }

    #[test]
    fn quiet_fault_plan_reproduces_the_plain_crawl() {
        let population = pop(5);
        let config = CrawlerConfig {
            outage_days: vec![2],
            ..Default::default()
        }
        .budget_for(200, 1.2, 1.2);
        let (plain, plain_stats) = run_crawl(&population, NetConfig::default(), config.clone());
        let quiet = CrawlerConfig {
            fault: FaultConfig {
                seed: 77, // a seed alone must change nothing
                ..FaultConfig::none()
            },
            retry: RetryPolicy::no_retry(),
            ..config
        };
        let (faulted, report) = run_crawl_full(&population, NetConfig::default(), quiet);
        assert_eq!(faulted, plain, "a quiet plan must be invisible");
        assert_eq!(report.stats, plain_stats);
        assert_eq!(report.health.check_invariants(), Ok(()));
        assert_eq!(report.health.recorded, faulted.snapshot_count() as u64);
        assert_eq!(report.health.truncated, 0);
        assert_eq!(report.health.query_drops, 0);
    }

    #[test]
    fn transient_faults_cost_coverage_and_retries_recover_it() {
        let population = pop(6);
        let base = CrawlerConfig {
            outage_days: vec![],
            ..Default::default()
        }
        .budget_for(200, 3.0, 3.0);
        let fault = FaultConfig {
            seed: 5,
            transient_rate: 0.25,
            ..FaultConfig::none()
        };
        let (clean, _) = run_crawl(&population, NetConfig::default(), base.clone());
        let (no_retry, nr_report) = run_crawl_full(
            &population,
            NetConfig::default(),
            CrawlerConfig {
                fault: fault.clone(),
                retry: RetryPolicy::no_retry(),
                ..base.clone()
            },
        );
        let (retry, r_report) = run_crawl_full(
            &population,
            NetConfig::default(),
            CrawlerConfig {
                fault,
                retry: RetryPolicy::backoff(),
                ..base
            },
        );
        assert_eq!(nr_report.health.check_invariants(), Ok(()));
        assert_eq!(r_report.health.check_invariants(), Ok(()));
        assert!(nr_report.health.timeouts > 0);
        assert!(r_report.health.retries > 0);
        let (clean_n, nr_n, r_n) = (
            clean.snapshot_count(),
            no_retry.snapshot_count(),
            retry.snapshot_count(),
        );
        assert!(
            nr_n < clean_n,
            "faults must cost the no-retry crawler coverage: {nr_n} vs {clean_n}"
        );
        assert!(
            r_n > nr_n,
            "retries must win coverage back: {r_n} vs {nr_n}"
        );
    }

    #[test]
    fn nat_quarantine_stops_wasting_attempts() {
        let population = pop(8);
        let fault = FaultConfig {
            seed: 9,
            nat_prob: 0.4,
            ..FaultConfig::none()
        };
        // A generous budget so no day is truncated: with the budget as
        // the binding constraint, quarantine would *raise* per-day
        // attempts (freed time admits browses that were being abandoned).
        let config = CrawlerConfig {
            outage_days: vec![],
            fault,
            retry: RetryPolicy::backoff(),
            ..Default::default()
        }
        .budget_for(200, 12.0, 3.0);
        let (_, report) = run_crawl_full(&population, NetConfig::default(), config);
        assert!(report.health.quarantined > 0, "NATed peers must be caught");
        // Quarantined peers keep one probe per day, so attempts fall off
        // once the NATed cohort is caught. The address book also grows
        // over the first days (each day discovers only that day's online
        // peers), so the comparison baseline is the peak day, not day 0.
        let peak = report
            .stats
            .iter()
            .map(|d| d.attempts)
            .max()
            .expect("stats non-empty");
        let late = report.stats.last().unwrap().attempts;
        assert!(
            late < peak,
            "quarantine must shed attempts: peak {peak}, last {late}"
        );
        assert_eq!(report.health.check_invariants(), Ok(()));
    }

    #[test]
    fn truncated_browses_are_kept_as_partial_snapshots() {
        let population = pop(4);
        let config = CrawlerConfig {
            outage_days: vec![],
            fault: FaultConfig {
                seed: 3,
                disconnect_rate: 0.5,
                ..FaultConfig::none()
            },
            ..Default::default()
        }
        .budget_for(200, 1.5, 1.5);
        let (trace, report) = run_crawl_full(&population, NetConfig::default(), config);
        assert!(report.health.truncated > 0);
        assert_eq!(trace.check_invariants(), Ok(()));
        assert_eq!(report.health.recorded, trace.snapshot_count() as u64);
    }

    #[test]
    fn burst_days_thin_the_observed_population() {
        let population = pop(6);
        let base = CrawlerConfig {
            outage_days: vec![],
            ..Default::default()
        }
        .budget_for(200, 2.0, 2.0);
        let (clean, _) = run_crawl(&population, NetConfig::default(), base.clone());
        let burst_day = population.config.start_day + 3;
        let config = CrawlerConfig {
            fault: FaultConfig {
                seed: 21,
                burst_days: vec![3],
                burst_offline_prob: 0.9,
                ..FaultConfig::none()
            },
            ..base
        };
        let (trace, report) = run_crawl_full(&population, NetConfig::default(), config);
        let clean_day = clean.snapshot(burst_day).map_or(0, |s| s.peer_count());
        let burst = trace.snapshot(burst_day).map_or(0, |s| s.peer_count());
        assert!(
            burst < clean_day / 2,
            "burst day must lose most peers: {burst} vs {clean_day}"
        );
        assert_eq!(report.health.check_invariants(), Ok(()));
    }

    #[test]
    fn browse_denial_and_firewalls_hide_clients() {
        let population = pop(3);
        let net_config = NetConfig {
            browse_disabled_prob: 1.0, // nobody answers browses
            ..Default::default()
        };
        let (trace, stats) = run_crawl(
            &population,
            net_config,
            CrawlerConfig {
                outage_days: vec![],
                ..Default::default()
            }
            .budget_for(200, 1.2, 1.2),
        );
        assert_eq!(trace.peers.len(), 0, "all browses denied");
        assert!(stats.iter().all(|s| s.browsed == 0));
        assert!(stats[0].known_users > 0, "discovery still works");
    }
}
