//! An eDonkey index server.
//!
//! Servers form the first tier of the hybrid architecture (Section 2.1):
//! they index the files their connected clients publish, answer keyword
//! searches and source queries, exchange only server lists among
//! themselves, and — crucially for the paper — some of them implement
//! the `query-users` nickname search the crawler exploits, capped at
//! [`Server::MAX_USER_REPLY`] records per reply.
//!
//! The server speaks actual [`edonkey_proto::wire::Message`] values, so
//! the protocol substrate is exercised end-to-end by the simulation.

use std::collections::HashMap;

use edonkey_proto::hash::FileId;
use edonkey_proto::query::{FileMeta, Query};
use edonkey_proto::tags::SpecialTag;
use edonkey_proto::wire::{Message, PublishedFile, SourceAddr, UserRecord};

/// A connected client's registration state.
#[derive(Clone, Debug)]
struct Session {
    uid: edonkey_proto::wire::UserId,
    nick: String,
    ip: u32,
    port: u16,
    client_id: u32,
    /// Files this session has published (for cleanup on disconnect).
    published: Vec<FileId>,
}

/// One index server.
pub struct Server {
    /// The server's address (for server lists).
    pub addr: SourceAddr,
    /// Whether this server supports the legacy `query-users` feature
    /// ("some old servers support the query-users functionality").
    pub supports_query_users: bool,
    sessions: HashMap<u32, Session>,
    /// file → (source address, metadata) entries.
    index: HashMap<FileId, Vec<(u32, PublishedFile)>>,
    /// nickname trigram → client ids, for `query-users` at crawl scale
    /// (the crawler sweeps every `aaa`…`zzz` pattern; a linear scan per
    /// pattern would be quadratic in practice).
    nick_index: HashMap<[u8; 3], Vec<u32>>,
    /// Known other servers.
    server_list: Vec<SourceAddr>,
    next_low_id: u32,
}

/// The lowercase trigrams of a nickname, deduplicated.
fn trigrams(nick: &str) -> Vec<[u8; 3]> {
    let lower = nick.to_ascii_lowercase();
    let bytes = lower.as_bytes();
    let mut grams: Vec<[u8; 3]> = bytes.windows(3).map(|w| [w[0], w[1], w[2]]).collect();
    grams.sort_unstable();
    grams.dedup();
    grams
}

impl Server {
    /// Reply cap for `query-users`, matching real servers ("server
    /// replies are limited to 200 users per query").
    pub const MAX_USER_REPLY: usize = 200;

    /// Creates a server at `addr`.
    pub fn new(addr: SourceAddr, supports_query_users: bool) -> Self {
        Server {
            addr,
            supports_query_users,
            sessions: HashMap::new(),
            index: HashMap::new(),
            nick_index: HashMap::new(),
            server_list: Vec::new(),
            next_low_id: 1,
        }
    }

    /// Number of connected clients.
    pub fn user_count(&self) -> usize {
        self.sessions.len()
    }

    /// Number of distinct indexed files.
    pub fn file_count(&self) -> usize {
        self.index.len()
    }

    /// Teaches this server about another server (server-to-server
    /// exchange is *only* the server list, per the paper).
    pub fn learn_server(&mut self, addr: SourceAddr) {
        if addr != self.addr && !self.server_list.contains(&addr) {
            self.server_list.push(addr);
        }
    }

    /// Handles a client connection: a `Login` message from a client at
    /// `ip` (0 marks a firewalled client that cannot accept inbound
    /// connections and therefore gets a *low id*).
    ///
    /// Returns the reply and the session key the caller must use for
    /// subsequent messages.
    pub fn connect(&mut self, msg: &Message, ip: u32) -> (Message, u32) {
        let Message::Login {
            uid, nick, port, ..
        } = msg
        else {
            panic!("connect expects a Login message, got {msg:?}");
        };
        // High-id clients are addressed by IP; firewalled clients get a
        // small sequential id.
        let client_id = if ip != 0 {
            ip
        } else {
            let id = self.next_low_id;
            self.next_low_id += 1;
            id
        };
        self.sessions.insert(
            client_id,
            Session {
                uid: *uid,
                nick: nick.clone(),
                ip,
                port: *port,
                client_id,
                published: Vec::new(),
            },
        );
        for gram in trigrams(nick) {
            self.nick_index.entry(gram).or_default().push(client_id);
        }
        (Message::IdChange { client_id }, client_id)
    }

    /// Handles a client disconnect: unindexes its published files.
    pub fn disconnect(&mut self, client_id: u32) {
        let Some(session) = self.sessions.remove(&client_id) else {
            return;
        };
        for gram in trigrams(&session.nick) {
            if let Some(ids) = self.nick_index.get_mut(&gram) {
                ids.retain(|&id| id != client_id);
                if ids.is_empty() {
                    self.nick_index.remove(&gram);
                }
            }
        }
        for file_id in session.published {
            if let Some(entry) = self.index.get_mut(&file_id) {
                entry.retain(|(cid, _)| *cid != client_id);
                if entry.is_empty() {
                    self.index.remove(&file_id);
                }
            }
        }
    }

    /// Handles an in-session message, returning the reply (if any).
    ///
    /// # Panics
    ///
    /// Panics if `client_id` has no session (a caller bug: the network
    /// layer owns connection state).
    pub fn handle(&mut self, client_id: u32, msg: &Message) -> Option<Message> {
        assert!(
            self.sessions.contains_key(&client_id),
            "message from unconnected client {client_id}"
        );
        match msg {
            Message::PublishFiles(files) => {
                for file in files {
                    let session = self.sessions.get_mut(&client_id).expect("checked");
                    session.published.push(file.file_id);
                    let sources = self.index.entry(file.file_id).or_default();
                    if !sources.iter().any(|(cid, _)| *cid == client_id) {
                        sources.push((client_id, file.clone()));
                    }
                }
                None
            }
            Message::Search(query) => Some(Message::SearchResults(self.search(query))),
            Message::QueryUsers { pattern } => {
                if !self.supports_query_users {
                    // New servers silently drop the query ("a server
                    // either does not reply…").
                    return None;
                }
                Some(Message::FoundUsers(self.query_users(pattern)))
            }
            Message::QuerySources { file_id } => {
                let sources = self
                    .index
                    .get(file_id)
                    .map(|entries| {
                        entries
                            .iter()
                            .filter(|(_, f)| f.ip != 0)
                            .map(|(_, f)| SourceAddr {
                                ip: f.ip,
                                port: f.port,
                            })
                            .collect()
                    })
                    .unwrap_or_default();
                Some(Message::FoundSources {
                    file_id: *file_id,
                    sources,
                })
            }
            Message::GetServerList => Some(Message::ServerList(self.server_list.clone())),
            other => panic!("server cannot handle {other:?}"),
        }
    }

    /// Evaluates a metadata search against the index.
    fn search(&self, query: &Query) -> Vec<PublishedFile> {
        let mut results = Vec::new();
        for sources in self.index.values() {
            let Some((_, file)) = sources.first() else {
                continue;
            };
            if query.matches(&meta_of(file, sources.len() as u32)) {
                results.push(file.clone());
            }
        }
        // Deterministic order for tests and reproducibility.
        results.sort_by_key(|f| f.file_id);
        results
    }

    /// Nickname substring search, capped at [`Self::MAX_USER_REPLY`].
    ///
    /// Three-letter patterns (the crawler's whole query space) go
    /// through the trigram index; anything else falls back to a scan.
    fn query_users(&self, pattern: &str) -> Vec<UserRecord> {
        let record = |s: &Session| UserRecord {
            uid: s.uid,
            client_id: s.client_id,
            nick: s.nick.clone(),
            ip: s.ip,
            port: s.port,
        };
        let mut users: Vec<UserRecord> = if pattern.len() == 3 {
            let key = {
                let lower = pattern.to_ascii_lowercase();
                let b = lower.as_bytes();
                [b[0], b[1], b[2]]
            };
            self.nick_index
                .get(&key)
                .map(|ids| ids.iter().map(|id| record(&self.sessions[id])).collect())
                .unwrap_or_default()
        } else {
            self.sessions
                .values()
                .filter(|s| s.nick.contains(pattern))
                .map(record)
                .collect()
        };
        users.sort_by_key(|u| u.client_id);
        users.truncate(Self::MAX_USER_REPLY);
        users
    }
}

/// Reconstructs searchable metadata from a published file's tags.
fn meta_of(file: &PublishedFile, availability: u32) -> FileMeta {
    let name = file
        .tags
        .get_str(SpecialTag::Name)
        .unwrap_or("")
        .to_string();
    let size = file
        .tags
        .get_u32(SpecialTag::Size)
        .map(u64::from)
        .unwrap_or(0);
    let kind = file
        .tags
        .get_str(SpecialTag::Type)
        .and_then(edonkey_proto::query::FileKind::from_str_ci)
        .unwrap_or(edonkey_proto::query::FileKind::Document);
    let mut meta = FileMeta::new(name, size, kind);
    meta.bitrate = file.tags.get_u32(SpecialTag::Bitrate);
    meta.availability = availability;
    meta
}

#[cfg(test)]
mod tests {
    use super::*;
    use edonkey_proto::md4::Digest;
    use edonkey_proto::tags::{Tag, TagValue};

    fn addr(ip: u32) -> SourceAddr {
        SourceAddr { ip, port: 4661 }
    }

    fn login(n: u8, nick: &str) -> Message {
        Message::Login {
            uid: Digest([n; 16]),
            nick: nick.into(),
            port: 4662,
            tags: Default::default(),
        }
    }

    fn published(n: u8, name: &str, size: u32, kind: &str, ip: u32) -> PublishedFile {
        PublishedFile {
            file_id: Digest([n; 16]),
            ip,
            port: 4662,
            tags: [
                Tag::special(SpecialTag::Name, TagValue::String(name.into())),
                Tag::special(SpecialTag::Size, TagValue::U32(size)),
                Tag::special(SpecialTag::Type, TagValue::String(kind.into())),
            ]
            .into_iter()
            .collect(),
        }
    }

    #[test]
    fn login_assigns_ids() {
        let mut s = Server::new(addr(1), true);
        let (reply, cid) = s.connect(&login(1, "alice"), 0x0a00_0001);
        assert_eq!(
            reply,
            Message::IdChange {
                client_id: 0x0a00_0001
            }
        );
        assert_eq!(cid, 0x0a00_0001);
        // Firewalled client gets a low id.
        let (_, low) = s.connect(&login(2, "bob"), 0);
        assert!(low < 1000);
        assert_eq!(s.user_count(), 2);
    }

    #[test]
    fn publish_search_and_sources() {
        let mut s = Server::new(addr(1), true);
        let (_, cid) = s.connect(&login(1, "alice"), 77);
        s.handle(
            cid,
            &Message::PublishFiles(vec![
                published(1, "beatles - help.mp3", 4_000_000, "Audio", 77),
                published(2, "some movie.avi", 700_000_000, "Video", 77),
            ]),
        );
        assert_eq!(s.file_count(), 2);

        let q = Query::parse("beatles AND type:Audio").unwrap();
        let Some(Message::SearchResults(results)) = s.handle(cid, &Message::Search(q)) else {
            panic!("expected results");
        };
        assert_eq!(results.len(), 1);
        assert_eq!(results[0].file_id, Digest([1; 16]));

        let Some(Message::FoundSources { sources, .. }) = s.handle(
            cid,
            &Message::QuerySources {
                file_id: Digest([2; 16]),
            },
        ) else {
            panic!("expected sources");
        };
        assert_eq!(sources, vec![SourceAddr { ip: 77, port: 4662 }]);

        // Unknown file: empty source list, not an error.
        let Some(Message::FoundSources { sources, .. }) = s.handle(
            cid,
            &Message::QuerySources {
                file_id: Digest([9; 16]),
            },
        ) else {
            panic!("expected sources");
        };
        assert!(sources.is_empty());
    }

    #[test]
    fn firewalled_sources_are_not_advertised() {
        let mut s = Server::new(addr(1), true);
        let (_, cid) = s.connect(&login(1, "x"), 0);
        s.handle(
            cid,
            &Message::PublishFiles(vec![published(1, "f", 1, "Audio", 0)]),
        );
        let Some(Message::FoundSources { sources, .. }) = s.handle(
            cid,
            &Message::QuerySources {
                file_id: Digest([1; 16]),
            },
        ) else {
            panic!()
        };
        assert!(sources.is_empty(), "low-id sources need a server relay");
    }

    #[test]
    fn query_users_cap_and_matching() {
        let mut s = Server::new(addr(1), true);
        for i in 0..250u32 {
            let nick = format!("aaa{i}");
            let (_, _cid) = s.connect(&login((i % 256) as u8, &nick), 1000 + i);
        }
        let Some(Message::FoundUsers(users)) = s.handle(
            1000,
            &Message::QueryUsers {
                pattern: "aaa".into(),
            },
        ) else {
            panic!()
        };
        assert_eq!(users.len(), Server::MAX_USER_REPLY);
        let Some(Message::FoundUsers(users)) = s.handle(
            1000,
            &Message::QueryUsers {
                pattern: "aaa7".into(),
            },
        ) else {
            panic!()
        };
        assert_eq!(users.len(), 11, "aaa7, aaa7x, aaa17x…");
        assert!(users.iter().all(|u| u.nick.contains("aaa7")));
    }

    #[test]
    fn query_users_unsupported_drops() {
        let mut s = Server::new(addr(1), false);
        let (_, cid) = s.connect(&login(1, "alice"), 5);
        assert_eq!(
            s.handle(
                cid,
                &Message::QueryUsers {
                    pattern: "ali".into()
                }
            ),
            None
        );
    }

    #[test]
    fn disconnect_unindexes() {
        let mut s = Server::new(addr(1), true);
        let (_, cid) = s.connect(&login(1, "x"), 5);
        s.handle(
            cid,
            &Message::PublishFiles(vec![published(1, "f", 1, "Audio", 5)]),
        );
        assert_eq!(s.file_count(), 1);
        s.disconnect(cid);
        assert_eq!(s.user_count(), 0);
        assert_eq!(s.file_count(), 0);
        // Idempotent.
        s.disconnect(cid);
    }

    #[test]
    fn server_lists_propagate() {
        let mut s = Server::new(addr(1), true);
        s.learn_server(addr(2));
        s.learn_server(addr(2));
        s.learn_server(addr(1)); // self, ignored
        let (_, cid) = s.connect(&login(1, "x"), 5);
        let Some(Message::ServerList(list)) = s.handle(cid, &Message::GetServerList) else {
            panic!()
        };
        assert_eq!(list, vec![addr(2)]);
    }

    #[test]
    #[should_panic(expected = "unconnected client")]
    fn unconnected_client_panics() {
        let mut s = Server::new(addr(1), true);
        s.handle(42, &Message::GetServerList);
    }
}
