//! A minimal discrete-event scheduler.
//!
//! The network simulation is day-structured, but *within* a crawl day
//! the crawler's connection attempts are scheduled on a seconds
//! timeline against its bandwidth budget — that is what makes the
//! coverage decline of Fig. 1 mechanistic rather than assumed. This
//! queue is the only scheduling primitive either layer needs.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// A time-ordered event queue with FIFO tie-breaking.
///
/// # Examples
///
/// ```
/// use edonkey_netsim::event::EventQueue;
///
/// let mut q = EventQueue::new();
/// q.schedule(10, "b");
/// q.schedule(5, "a");
/// q.schedule(10, "c");
/// assert_eq!(q.pop(), Some((5, "a")));
/// assert_eq!(q.pop(), Some((10, "b")), "FIFO among equal times");
/// assert_eq!(q.pop(), Some((10, "c")));
/// assert_eq!(q.pop(), None);
/// ```
pub struct EventQueue<E> {
    heap: BinaryHeap<Reverse<Entry<E>>>,
    seq: u64,
    now: u64,
}

struct Entry<E> {
    time: u64,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}

impl<E> Eq for Entry<E> {}

impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.time, self.seq).cmp(&(other.time, other.seq))
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue at time 0.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            seq: 0,
            now: 0,
        }
    }

    /// The time of the most recently popped event (0 initially).
    pub fn now(&self) -> u64 {
        self.now
    }

    /// Schedules `event` at absolute `time`.
    ///
    /// # Panics
    ///
    /// Panics if `time` is in the past (before the last popped event) —
    /// a scheduling bug that would silently reorder causality otherwise.
    pub fn schedule(&mut self, time: u64, event: E) {
        assert!(
            time >= self.now,
            "scheduling into the past: {time} < {}",
            self.now
        );
        self.heap.push(Reverse(Entry {
            time,
            seq: self.seq,
            event,
        }));
        self.seq += 1;
    }

    /// Schedules `event` `delay` ticks from now.
    pub fn schedule_in(&mut self, delay: u64, event: E) {
        self.schedule(self.now + delay, event);
    }

    /// Pops the earliest event, advancing the clock.
    pub fn pop(&mut self) -> Option<(u64, E)> {
        let Reverse(entry) = self.heap.pop()?;
        self.now = entry.time;
        Some((entry.time, entry.event))
    }

    /// Pops the earliest event only if it is due at or before `deadline`.
    pub fn pop_until(&mut self, deadline: u64) -> Option<(u64, E)> {
        match self.heap.peek() {
            Some(Reverse(e)) if e.time <= deadline => self.pop(),
            _ => None,
        }
    }

    /// Drops every pending event, returning how many were discarded —
    /// the crawler's abandoned-attempt accounting when a budget expires.
    pub fn clear(&mut self) -> usize {
        let n = self.heap.len();
        self.heap.clear();
        n
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn orders_by_time_then_fifo() {
        let mut q = EventQueue::new();
        q.schedule(3, 'c');
        q.schedule(1, 'a');
        q.schedule(3, 'd');
        q.schedule(2, 'b');
        let order: Vec<char> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec!['a', 'b', 'c', 'd']);
    }

    #[test]
    fn clock_advances_with_pops() {
        let mut q = EventQueue::new();
        assert_eq!(q.now(), 0);
        q.schedule(7, ());
        q.schedule_in(2, ());
        assert_eq!(q.pop().unwrap().0, 2);
        assert_eq!(q.now(), 2);
        q.schedule_in(1, ());
        assert_eq!(q.pop().unwrap().0, 3);
        assert_eq!(q.pop().unwrap().0, 7);
    }

    #[test]
    fn pop_until_respects_deadline() {
        let mut q = EventQueue::new();
        q.schedule(5, 'x');
        q.schedule(10, 'y');
        assert_eq!(q.pop_until(4), None);
        assert_eq!(q.pop_until(5), Some((5, 'x')));
        assert_eq!(q.pop_until(9), None);
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
        assert_eq!(q.clear(), 1);
        assert!(q.is_empty());
    }

    #[test]
    #[should_panic(expected = "scheduling into the past")]
    fn past_scheduling_panics() {
        let mut q = EventQueue::new();
        q.schedule(5, ());
        q.pop();
        q.schedule(3, ());
    }
}
