//! Deterministic fault injection for the crawl path.
//!
//! The paper's measurement infrastructure was shaped by failure: the
//! scan rate fell from 65 k to 35 k clients/day (Fig. 1), firewalled
//! and NATed clients never answered browse requests, and the
//! extrapolation stage exists only because caches were *missed* on some
//! days. This module makes those failures injectable — and, crucially,
//! **reproducible**:
//!
//! * a [`FaultConfig`] holds the rates (NAT, transient connect
//!   timeouts, mid-browse disconnects, server query drops, day-scoped
//!   churn bursts);
//! * a [`FaultPlan`] turns the config into a pure function of
//!   `(seed, fault kind, keys)` via a splitmix64-style hash, so the
//!   same seed always yields the same fault schedule — no RNG state is
//!   consumed, and a quiet plan leaves every other random stream
//!   bit-identical to a run without fault injection;
//! * each roll draws a uniform value *independent of the rate* and
//!   faults when the value falls below it, so the fault set at a lower
//!   rate is a **subset** of the fault set at any higher rate — this
//!   nesting is what makes "coverage degrades monotonically with the
//!   fault rate" a mechanical property rather than a statistical one;
//! * a [`RetryPolicy`] describes the crawler's counter-measures
//!   (per-peer retry budgets with exponential backoff in simulated
//!   seconds, browse timeouts, a dead-peer quarantine) and a
//!   [`CrawlHealth`] report accounts for every attempt so the emitted
//!   trace can be reconciled against it exactly.

/// Fault rates for one crawl run. All probabilities are per-roll and
/// independent; [`FaultConfig::none`] (the default) disables everything
/// and leaves the crawl byte-identical to a build without this module.
#[derive(Clone, Debug, PartialEq)]
pub struct FaultConfig {
    /// Seed of the fault schedule (independent of the crawler and
    /// network seeds, so fault patterns can be varied in isolation).
    pub seed: u64,
    /// Probability a client sits behind a NAT the crawler cannot
    /// traverse: it publishes a routable address (unlike the firewalled
    /// population, which the discovery sweep already filters out) but
    /// every inbound connection times out.
    pub nat_prob: f64,
    /// Per-attempt probability of a transient connection timeout.
    pub transient_rate: f64,
    /// Per-browse probability of a mid-browse disconnect; the snapshot
    /// is truncated to the prefix transferred before the cut.
    pub disconnect_rate: f64,
    /// Per-query probability a server silently drops a `query-users`
    /// sweep reply.
    pub query_drop_rate: f64,
    /// Day offsets (from the trace start) with a churn burst.
    pub burst_days: Vec<u32>,
    /// Probability an online client is knocked offline on a burst day.
    pub burst_offline_prob: f64,
}

impl FaultConfig {
    /// No faults at all — the ideal-observer substrate of the seed.
    pub fn none() -> Self {
        FaultConfig {
            seed: 0,
            nat_prob: 0.0,
            transient_rate: 0.0,
            disconnect_rate: 0.0,
            query_drop_rate: 0.0,
            burst_days: Vec::new(),
            burst_offline_prob: 0.0,
        }
    }

    /// Whether this config can never produce a fault.
    pub fn is_quiet(&self) -> bool {
        self.nat_prob <= 0.0
            && self.transient_rate <= 0.0
            && self.disconnect_rate <= 0.0
            && self.query_drop_rate <= 0.0
            && (self.burst_days.is_empty() || self.burst_offline_prob <= 0.0)
    }
}

impl Default for FaultConfig {
    fn default() -> Self {
        Self::none()
    }
}

// Salts separating the fault kinds' hash streams.
const SALT_NAT: u64 = 0x6e61_7400;
const SALT_TRANSIENT: u64 = 0x7472_616e;
const SALT_DISCONNECT: u64 = 0x6469_7363;
const SALT_TRUNCATE: u64 = 0x7472_756e;
const SALT_QUERY: u64 = 0x7175_6572;
const SALT_BURST: u64 = 0x6275_7273;

use edonkey_workload::mix::splitmix64 as mix;

/// The fault schedule: [`FaultConfig`] plus the stateless rolls.
///
/// Every method is a pure function of the config — cloning a plan or
/// querying it in a different order cannot change any outcome.
#[derive(Clone, Debug)]
pub struct FaultPlan {
    config: FaultConfig,
}

impl FaultPlan {
    /// Builds the schedule for a config.
    pub fn new(config: FaultConfig) -> Self {
        FaultPlan { config }
    }

    /// The underlying config.
    pub fn config(&self) -> &FaultConfig {
        &self.config
    }

    /// Whether this plan can never produce a fault.
    pub fn is_quiet(&self) -> bool {
        self.config.is_quiet()
    }

    /// A uniform draw in `[0, 1)` from `(seed, salt, keys)` — rate
    /// independence is what nests fault sets across rates.
    fn roll(&self, salt: u64, keys: [u64; 3]) -> f64 {
        let mut h = mix(self.config.seed ^ salt.wrapping_mul(0x9e37_79b9_7f4a_7c15));
        for key in keys {
            h = mix(h ^ key.wrapping_add(0x2545_f491_4f6c_dd1d));
        }
        (h >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Whether a client is NATed for the whole crawl (never connectable).
    pub fn natted(&self, client_idx: usize) -> bool {
        self.roll(SALT_NAT, [client_idx as u64, 0, 0]) < self.config.nat_prob
    }

    /// Whether one browse attempt hits a transient connect timeout.
    pub fn connect_timeout(&self, client_idx: usize, day_offset: u32, attempt: u32) -> bool {
        self.roll(
            SALT_TRANSIENT,
            [client_idx as u64, u64::from(day_offset), u64::from(attempt)],
        ) < self.config.transient_rate
    }

    /// Whether an answered browse is cut mid-transfer.
    pub fn mid_browse_cut(&self, client_idx: usize, day_offset: u32, attempt: u32) -> bool {
        self.roll(
            SALT_DISCONNECT,
            [client_idx as u64, u64::from(day_offset), u64::from(attempt)],
        ) < self.config.disconnect_rate
    }

    /// How many files of a `full_len`-entry browse reply survive a
    /// mid-browse cut: a strict prefix, possibly empty.
    pub fn truncated_len(
        &self,
        full_len: usize,
        client_idx: usize,
        day_offset: u32,
        attempt: u32,
    ) -> usize {
        let u = self.roll(
            SALT_TRUNCATE,
            [client_idx as u64, u64::from(day_offset), u64::from(attempt)],
        );
        ((u * full_len as f64) as usize).min(full_len.saturating_sub(1))
    }

    /// Whether a server silently drops one `query-users` reply.
    pub fn query_dropped(
        &self,
        server_idx: usize,
        pattern_idx: usize,
        day_offset: u32,
        attempt: u32,
    ) -> bool {
        self.roll(
            SALT_QUERY,
            [
                (server_idx as u64) << 32 | pattern_idx as u64,
                u64::from(day_offset),
                u64::from(attempt),
            ],
        ) < self.config.query_drop_rate
    }

    /// Whether a churn burst knocks an (otherwise online) client
    /// offline on `day_offset`.
    pub fn burst_offline(&self, client_idx: usize, day_offset: u32) -> bool {
        self.config.burst_days.contains(&day_offset)
            && self.roll(SALT_BURST, [client_idx as u64, u64::from(day_offset), 0])
                < self.config.burst_offline_prob
    }
}

/// The crawler's fault counter-measures. Times are simulated seconds on
/// the daily crawl clock (the same clock the browse budget bounds).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Retry attempts per peer per day beyond the first try.
    pub max_retries: u32,
    /// Backoff before the first retry, in crawl-clock seconds.
    pub backoff_base: u64,
    /// Backoff multiplier per further retry (exponential).
    pub backoff_factor: u64,
    /// Crawl-clock cost of an attempt that times out.
    pub browse_timeout: u64,
    /// Consecutive days on which *every* attempt at a peer timed out
    /// before the peer is quarantined. Quarantined peers get a single
    /// probe per day (no retries) and are paroled the moment one
    /// connects, so budget stops leaking into dead peers without
    /// abandoning the merely flaky ones.
    pub quarantine_after: u32,
}

impl RetryPolicy {
    /// The seed crawler's behaviour: one attempt, no quarantine, and a
    /// timeout costing exactly one browse slot — with a quiet
    /// [`FaultConfig`] this reproduces the pre-fault crawl verbatim.
    pub fn no_retry() -> Self {
        RetryPolicy {
            max_retries: 0,
            backoff_base: 0,
            backoff_factor: 1,
            browse_timeout: 2,
            quarantine_after: u32::MAX,
        }
    }

    /// The robust crawler: three retries at 30 s/120 s/480 s backoff, a
    /// 6 s connect timeout, quarantine after three dead days.
    pub fn backoff() -> Self {
        RetryPolicy {
            max_retries: 3,
            backoff_base: 30,
            backoff_factor: 4,
            browse_timeout: 6,
            quarantine_after: 3,
        }
    }

    /// The backoff before retry number `attempt + 1`, given that
    /// `attempt` attempts have already failed.
    pub fn backoff_for(&self, attempt: u32) -> u64 {
        self.backoff_base
            .saturating_mul(self.backoff_factor.saturating_pow(attempt))
    }
}

impl Default for RetryPolicy {
    fn default() -> Self {
        Self::no_retry()
    }
}

/// Graceful-degradation counters for one crawl, reconcilable against
/// the emitted trace (`recorded` equals the trace's snapshot count).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CrawlHealth {
    /// Browse attempts, including retries.
    pub attempted: u64,
    /// Attempts whose connection succeeded (browse answered or denied).
    pub connected: u64,
    /// Attempts that timed out (NAT, transient fault, or offline peer).
    pub timeouts: u64,
    /// Attempts voided by a stale address-book entry (peer reinstalled).
    pub stale: u64,
    /// Attempts beyond the first per peer per day.
    pub retries: u64,
    /// Connections answered with a browse denial.
    pub denied: u64,
    /// Browses cut mid-transfer (a truncated snapshot was kept).
    pub truncated: u64,
    /// Observations recorded into the trace.
    pub recorded: u64,
    /// Successful browses of a peer already observed that day.
    pub duplicates: u64,
    /// Scheduled attempts dropped when a day's budget ran out.
    pub abandoned: u64,
    /// Peers ever placed in quarantine (cumulative; parole does not
    /// decrement).
    pub quarantined: u64,
    /// `query-users` sweeps dropped by servers during discovery.
    pub query_drops: u64,
}

impl CrawlHealth {
    /// Checks that the counters account for every attempt exactly.
    pub fn check_invariants(&self) -> Result<(), String> {
        if self.attempted != self.connected + self.timeouts + self.stale {
            return Err(format!(
                "attempted {} != connected {} + timeouts {} + stale {}",
                self.attempted, self.connected, self.timeouts, self.stale
            ));
        }
        if self.connected != self.recorded + self.duplicates + self.denied {
            return Err(format!(
                "connected {} != recorded {} + duplicates {} + denied {}",
                self.connected, self.recorded, self.duplicates, self.denied
            ));
        }
        if self.truncated > self.recorded + self.duplicates {
            return Err(format!(
                "truncated {} exceeds successful browses {}",
                self.truncated,
                self.recorded + self.duplicates
            ));
        }
        if self.retries > self.attempted {
            return Err(format!(
                "retries {} exceed attempts {}",
                self.retries, self.attempted
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn plan(rate: f64) -> FaultPlan {
        FaultPlan::new(FaultConfig {
            seed: 99,
            nat_prob: rate,
            transient_rate: rate,
            disconnect_rate: rate,
            query_drop_rate: rate,
            burst_days: vec![2],
            burst_offline_prob: rate,
        })
    }

    #[test]
    fn quiet_plan_never_faults() {
        let p = FaultPlan::new(FaultConfig::none());
        assert!(p.is_quiet());
        for i in 0..500 {
            assert!(!p.natted(i));
            assert!(!p.connect_timeout(i, 3, 1));
            assert!(!p.mid_browse_cut(i, 3, 1));
            assert!(!p.query_dropped(i, i, 3, 1));
            assert!(!p.burst_offline(i, 3));
        }
    }

    #[test]
    fn rolls_are_deterministic_and_seed_sensitive() {
        let a = plan(0.3);
        let b = plan(0.3);
        let c = FaultPlan::new(FaultConfig {
            seed: 100,
            ..a.config().clone()
        });
        let hits_a: Vec<bool> = (0..200).map(|i| a.connect_timeout(i, 5, 0)).collect();
        let hits_b: Vec<bool> = (0..200).map(|i| b.connect_timeout(i, 5, 0)).collect();
        let hits_c: Vec<bool> = (0..200).map(|i| c.connect_timeout(i, 5, 0)).collect();
        assert_eq!(hits_a, hits_b, "same seed, same schedule");
        assert_ne!(hits_a, hits_c, "different seed, different schedule");
        let on_target = hits_a.iter().filter(|&&h| h).count();
        assert!(
            (30..90).contains(&on_target),
            "rate 0.3 should hit roughly 60/200, got {on_target}"
        );
    }

    #[test]
    fn fault_sets_nest_across_rates() {
        let lo = plan(0.15);
        let hi = plan(0.45);
        for i in 0..300 {
            for day in 0..4 {
                if lo.connect_timeout(i, day, 0) {
                    assert!(
                        hi.connect_timeout(i, day, 0),
                        "low-rate faults must be a subset of high-rate faults"
                    );
                }
                if lo.natted(i) {
                    assert!(hi.natted(i));
                }
            }
        }
    }

    #[test]
    fn fault_kinds_use_independent_streams() {
        let p = plan(0.5);
        let nat: Vec<bool> = (0..200).map(|i| p.natted(i)).collect();
        let transient: Vec<bool> = (0..200).map(|i| p.connect_timeout(i, 0, 0)).collect();
        assert_ne!(nat, transient, "kinds must not share a hash stream");
    }

    #[test]
    fn truncation_yields_a_strict_prefix() {
        let p = plan(1.0);
        for i in 0..100 {
            let len = p.truncated_len(40, i, 2, 0);
            assert!(len < 40);
        }
        assert_eq!(p.truncated_len(0, 7, 2, 0), 0);
        assert_eq!(p.truncated_len(1, 7, 2, 0), 0, "a 1-file cut loses it");
    }

    #[test]
    fn burst_scopes_to_its_days() {
        let p = plan(1.0); // burst on day 2 only
        assert!((0..50).all(|i| !p.burst_offline(i, 1)));
        assert!((0..50).all(|i| p.burst_offline(i, 2)));
        assert!((0..50).all(|i| !p.burst_offline(i, 3)));
    }

    #[test]
    fn retry_policy_backoff_grows_exponentially() {
        let p = RetryPolicy::backoff();
        assert_eq!(p.backoff_for(0), 30);
        assert_eq!(p.backoff_for(1), 120);
        assert_eq!(p.backoff_for(2), 480);
        let none = RetryPolicy::no_retry();
        assert_eq!(none.backoff_for(5), 0);
        assert_eq!(none, RetryPolicy::default());
    }

    #[test]
    fn health_invariants_catch_mismatches() {
        let mut h = CrawlHealth {
            attempted: 10,
            connected: 6,
            timeouts: 3,
            stale: 1,
            recorded: 4,
            duplicates: 1,
            denied: 1,
            truncated: 2,
            retries: 3,
            ..Default::default()
        };
        assert_eq!(h.check_invariants(), Ok(()));
        h.timeouts = 4;
        assert!(h.check_invariants().is_err());
        h.timeouts = 3;
        h.denied = 2;
        assert!(h.check_invariants().is_err());
        h.denied = 1;
        h.truncated = 6;
        assert!(h.check_invariants().is_err());
    }
}
