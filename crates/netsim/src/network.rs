//! The simulated eDonkey network: clients with churn, index servers,
//! and the day-level main loop that the crawler observes.
//!
//! This layer makes the paper's measurement *artefacts* mechanistic:
//!
//! * firewalled clients are unreachable (and silently missing from the
//!   trace);
//! * users disable browsing (browse-denied clients are contacted but
//!   yield nothing);
//! * DHCP renewals and client reinstalls create the IP/uid aliases the
//!   filtering stage removes;
//! * clients come and go (availability), so even a perfect crawler
//!   misses days — the gaps extrapolation must fill.

use edonkey_proto::wire::{Message, SourceAddr};
use edonkey_trace::model::FileRef;
use edonkey_workload::dynamics::Dynamics;
use edonkey_workload::population::Population;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::client::Client;
use crate::fault::FaultPlan;
use crate::server::Server;

/// Network-level parameters.
#[derive(Clone, Debug)]
pub struct NetConfig {
    /// RNG seed (independent of the population seed).
    pub seed: u64,
    /// Number of index servers.
    pub servers: usize,
    /// Fraction of servers still supporting `query-users` (the feature
    /// was disappearing; only "some old servers" kept it).
    pub query_users_fraction: f64,
    /// Probability a client is firewalled (low-id).
    pub firewalled_prob: f64,
    /// Probability a client has browsing disabled.
    pub browse_disabled_prob: f64,
    /// Per-day availability is drawn uniformly from this range.
    pub availability_range: (f64, f64),
    /// Daily probability of a DHCP address change.
    pub dhcp_daily_prob: f64,
    /// Daily probability of a reinstall (fresh user hash).
    pub reinstall_daily_prob: f64,
    /// Maximum files a client publishes to its server per day.
    pub publish_cap: usize,
}

impl Default for NetConfig {
    fn default() -> Self {
        NetConfig {
            seed: 0xed0e,
            servers: 5,
            query_users_fraction: 0.6,
            firewalled_prob: 0.25,
            browse_disabled_prob: 0.30,
            availability_range: (0.35, 0.95),
            dhcp_daily_prob: 0.02,
            reinstall_daily_prob: 0.002,
            publish_cap: 200,
        }
    }
}

/// The running network.
pub struct Network<'a> {
    /// The backing population.
    pub population: &'a Population,
    /// Network configuration.
    pub config: NetConfig,
    /// Per-client mutable state.
    pub clients: Vec<Client>,
    /// The servers (rebuilt session-wise each day; eDonkey clients
    /// reconnect constantly and servers only index connected clients).
    pub servers: Vec<Server>,
    /// Today's cache of every client (peer-indexed, sorted).
    caches: Vec<Vec<FileRef>>,
    dynamics: Dynamics<'a>,
    rng: StdRng,
    day_offset: u32,
    /// Fresh-IP counter for DHCP renewals (per-AS plan offset; starts
    /// beyond the population's static allocations).
    dhcp_counter: u32,
    /// Fault schedule for churn bursts; `None` (and any quiet plan)
    /// leaves the network byte-identical to a run without faults.
    fault_plan: Option<FaultPlan>,
}

impl<'a> Network<'a> {
    /// Brings up the network at the population's start day.
    pub fn new(population: &'a Population, config: NetConfig) -> Self {
        let mut rng = StdRng::seed_from_u64(config.seed);
        let clients: Vec<Client> = (0..population.peers.len())
            .map(|idx| {
                let firewalled = rng.gen_bool(config.firewalled_prob);
                let browsable = !rng.gen_bool(config.browse_disabled_prob);
                let (lo, hi) = config.availability_range;
                let availability = rng.gen_range(lo..hi);
                Client::new(population, idx, firewalled, browsable, availability)
            })
            .collect();
        let servers: Vec<Server> = (0..config.servers)
            .map(|i| {
                let addr = SourceAddr {
                    ip: 0xC0A8_0000 + i as u32,
                    port: 4661,
                };
                let supports = (i as f64) < config.query_users_fraction * config.servers as f64;
                Server::new(addr, supports)
            })
            .collect();
        let mut dyn_rng = StdRng::seed_from_u64(config.seed ^ 0x00d1_ce5e);
        let dynamics = Dynamics::new(population, &mut dyn_rng);
        let caches = dynamics.snapshot();
        let mut network = Network {
            population,
            config,
            clients,
            servers,
            caches,
            dynamics,
            rng,
            day_offset: 0,
            dhcp_counter: 1 << 19, // above any static host index
            fault_plan: None,
        };
        network.interconnect_servers();
        network
    }

    /// Installs the fault schedule (churn bursts are applied by the
    /// network; everything else is crawler-side). Call before the first
    /// [`Network::refresh_sessions`].
    pub fn set_fault_plan(&mut self, plan: FaultPlan) {
        self.fault_plan = Some(plan);
    }

    fn interconnect_servers(&mut self) {
        let addrs: Vec<SourceAddr> = self.servers.iter().map(|s| s.addr).collect();
        for server in &mut self.servers {
            for &addr in &addrs {
                server.learn_server(addr);
            }
        }
    }

    /// The current absolute day.
    pub fn day(&self) -> u32 {
        self.population.config.start_day + self.day_offset
    }

    /// Today's cache of a client (sorted file refs).
    pub fn cache_of(&self, peer_idx: usize) -> &[FileRef] {
        &self.caches[peer_idx]
    }

    /// Advances to the next day: cache churn, availability, DHCP and
    /// reinstall events, server sessions and publishing.
    pub fn step_day(&mut self) {
        self.day_offset += 1;
        let mut dyn_rng =
            StdRng::seed_from_u64(self.config.seed ^ 0x00d1_ce5e ^ u64::from(self.day_offset));
        self.dynamics.step(&mut dyn_rng);
        self.caches = self.dynamics.snapshot();
        self.refresh_sessions();
    }

    /// (Re)connects today's online clients to servers and publishes
    /// their caches. Also called for day zero.
    pub fn refresh_sessions(&mut self) {
        // Fresh servers each day: sessions are daily in this model.
        for server in &mut self.servers {
            *server = Server::new(server.addr, server.supports_query_users);
        }
        self.interconnect_servers();
        let n_servers = self.servers.len();
        for idx in 0..self.clients.len() {
            // Churn events.
            if self.rng.gen_bool(self.config.dhcp_daily_prob) {
                let asn = self.population.peers[idx].info.asn;
                self.clients[idx].ip = self.population.geography.ip_for(asn, self.dhcp_counter);
                self.dhcp_counter += 1;
            }
            if self.rng.gen_bool(self.config.reinstall_daily_prob) {
                self.clients[idx].reinstall();
            }
            let mut online = self.rng.gen_bool(self.clients[idx].availability);
            // Churn bursts strike *after* the availability roll so a
            // quiet plan leaves the rng stream untouched.
            if online {
                if let Some(plan) = &self.fault_plan {
                    if plan.burst_offline(idx, self.day_offset) {
                        online = false;
                    }
                }
            }
            self.clients[idx].online = online;
            if !online {
                continue;
            }
            // Connect to a random server and publish (a prefix of) the
            // cache, exactly as a client would on login.
            let server_idx = self.rng.gen_range(0..n_servers);
            let client = &self.clients[idx];
            let login = Message::Login {
                uid: client.uid,
                nick: self.population.peers[idx].nick.clone(),
                port: client.port,
                tags: Default::default(),
            };
            let wire_ip = if client.firewalled { 0 } else { client.ip };
            let (_, client_id) = self.servers[server_idx].connect(&login, wire_ip);
            let cache = &self.caches[idx];
            if !cache.is_empty() {
                let publish = cache
                    .iter()
                    .take(self.config.publish_cap)
                    .map(|&f| {
                        let info = &self.population.files[f.index()].info;
                        edonkey_proto::wire::PublishedFile {
                            file_id: info.id,
                            ip: wire_ip,
                            port: client.port,
                            tags: Default::default(),
                        }
                    })
                    .collect();
                self.servers[server_idx].handle(client_id, &Message::PublishFiles(publish));
            }
        }
    }

    /// Sends a client-to-client message to the client currently owning
    /// `uid`, as the crawler does. Returns `None` when the client is
    /// offline, unknown, or ignores the message.
    pub fn deliver(&self, uid: &edonkey_proto::md4::Digest, msg: &Message) -> Option<Message> {
        let client = self.clients.iter().find(|c| c.uid == *uid)?;
        if !client.reachable() {
            return None;
        }
        client.handle(msg, &self.caches[client.peer_idx], self.population)
    }

    /// Index lookup used by the crawler: which client currently holds
    /// this uid (linear scan is fine for the crawler's rate; the
    /// hot-path lookups go through [`Network::deliver_to_idx`]).
    pub fn client_by_uid(&self, uid: &edonkey_proto::md4::Digest) -> Option<usize> {
        self.clients.iter().position(|c| c.uid == *uid)
    }

    /// Fast-path delivery when the caller already resolved the client
    /// index.
    pub fn deliver_to_idx(&self, idx: usize, msg: &Message) -> Option<Message> {
        let client = &self.clients[idx];
        if !client.reachable() {
            return None;
        }
        client.handle(msg, &self.caches[client.peer_idx], self.population)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use edonkey_workload::WorkloadConfig;

    fn pop() -> Population {
        let mut c = WorkloadConfig::test_scale(7);
        c.peers = 120;
        c.files = 800;
        c.days = 6;
        c.cache_max = 200;
        Population::generate(c)
    }

    #[test]
    fn network_boots_and_steps() {
        let population = pop();
        let mut net = Network::new(&population, NetConfig::default());
        net.refresh_sessions();
        let day0 = net.day();
        let online0 = net.clients.iter().filter(|c| c.online).count();
        assert!(online0 > 0, "some clients must be online");
        let sessions: usize = net.servers.iter().map(|s| s.user_count()).sum();
        assert_eq!(sessions, online0, "every online client holds one session");
        net.step_day();
        assert_eq!(net.day(), day0 + 1);
    }

    #[test]
    fn churn_creates_aliases_eventually() {
        let population = pop();
        let config = NetConfig {
            dhcp_daily_prob: 0.5,
            reinstall_daily_prob: 0.3,
            ..Default::default()
        };
        let mut net = Network::new(&population, config);
        let uids_before: Vec<_> = net.clients.iter().map(|c| c.uid).collect();
        let ips_before: Vec<_> = net.clients.iter().map(|c| c.ip).collect();
        for _ in 0..3 {
            net.step_day();
        }
        let uid_changes = net
            .clients
            .iter()
            .zip(&uids_before)
            .filter(|(c, old)| c.uid != **old)
            .count();
        let ip_changes = net
            .clients
            .iter()
            .zip(&ips_before)
            .filter(|(c, old)| c.ip != **old)
            .count();
        assert!(uid_changes > 10, "reinstalls: {uid_changes}");
        assert!(ip_changes > 30, "dhcp churn: {ip_changes}");
    }

    #[test]
    fn deliver_respects_reachability() {
        let population = pop();
        let mut net = Network::new(&population, NetConfig::default());
        net.refresh_sessions();
        // Find an online, reachable, browsable client.
        let Some(idx) = net
            .clients
            .iter()
            .position(|c| c.online && !c.firewalled && c.browsable)
        else {
            panic!("expected at least one reachable client")
        };
        let uid = net.clients[idx].uid;
        let reply = net.deliver(&uid, &Message::BrowseRequest);
        assert!(matches!(reply, Some(Message::BrowseResult(_))));
        // Unknown uid.
        assert_eq!(
            net.deliver(
                &edonkey_proto::md4::Digest([0xEE; 16]),
                &Message::BrowseRequest
            ),
            None
        );
        // Offline client.
        let mut net = net;
        net.clients[idx].online = false;
        assert_eq!(net.deliver(&uid, &Message::BrowseRequest), None);
    }

    #[test]
    fn servers_index_published_files() {
        let population = pop();
        let mut net = Network::new(&population, NetConfig::default());
        net.refresh_sessions();
        let indexed: usize = net.servers.iter().map(|s| s.file_count()).sum();
        assert!(indexed > 0, "online sharers must publish something");
    }
}
