//! Pluggable index backends for the final-miss fallback (DESIGN.md §10).
//!
//! The paper evaluates server-less search against a *single* fallback
//! index server, but the deployed eDonkey network ran a federation of
//! servers ("Ten weeks in the life of an eDonkey server", PAPERS.md)
//! and its descendants replaced the server with a Kademlia DHT. This
//! module extracts the simulator's index-server surface — "is the index
//! reachable for this request?" plus the routing cost of asking it —
//! behind the [`IndexRoute`] trait, with three deterministic
//! implementations:
//!
//! * [`SingleServerRoute`] — the paper's implicit backend, bit-identical
//!   to the pre-trait simulator: reachable unless `outage_days` covers
//!   the day, zero routing cost.
//! * [`FederatedRoute`] — `n_servers` index servers. Peers home onto
//!   servers by splitmix64 hash (an eDonkey client holds one server
//!   connection); file records live on a per-file aggregation server and
//!   queries forward server-to-server around the ring, each hop costing
//!   [`FED_HOP_LATENCY_MD`] simulated milli-days. On an outage day one
//!   server — `(churn_seed, day)`-drawn — is down: queries homed on it
//!   strand, everyone else routes around the hole.
//! * [`DhtRoute`] — Kademlia-style XOR-distance routing over a stateless
//!   ID space of [`DHT_NODES`] virtual index nodes with per-key
//!   `replication_k` replication. Replicas are tried in XOR-closeness
//!   order, so a lookup survives any `replication_k - 1` concurrent
//!   node outages.
//!
//! # Keying rule
//!
//! Every routing draw is a stateless splitmix64 hash — the sequential
//! simulation RNG never moves, so results are thread-count- and
//! schedule-invariant like the rest of the repo:
//!
//! * persistent assignments (server homes, file record servers, DHT
//!   node IDs, lookup entry points) are keyed by `(sim_seed, entity)`;
//! * the per-request uploader pick stays the caller's
//!   `fallback_index(seed, t, len)` draw, keyed by `(sim_seed, t)` —
//!   shared by *all* backends so zero-outage runs agree bit-for-bit;
//! * outage victims (which server / DHT node a `ChurnConfig` outage day
//!   takes down) are keyed by `(churn_seed, day)`, the schedule's
//!   domain.

use edonkey_trace::model::FileRef;
use edonkey_workload::churn::ChurnSchedule;
use edonkey_workload::mix::splitmix64;

use crate::neighbours::Peer;

/// Per-hop inter-server forwarding latency of the federated backend, in
/// simulated milli-days (~3 minutes). Latency is real simulated time: a
/// forwarded lookup arrives `hops × latency` later, and the *arrival*
/// day decides whether the record server is up.
pub const FED_HOP_LATENCY_MD: u64 = 2;

/// Per-hop XOR-routing latency of the DHT backend, in simulated
/// milli-days (~1.5 minutes — one UDP round trip per routing step,
/// cheaper than an inter-server forward). The simulator's hop *count*
/// model predates this constant and is unchanged; the serving engine
/// multiplies it in when converting a lookup's `dht_hops` into
/// simulated query latency.
pub const DHT_HOP_LATENCY_MD: u64 = 1;

/// Size of the DHT's virtual node ring. 64 nodes on a 6-bit Kademlia
/// ID space: each routing step resolves one more prefix bit, so a
/// lookup costs at most 6 hops.
pub const DHT_NODES: usize = 64;

/// Domain-separation salts (same scheme as `edonkey_workload::churn`).
const SALT_FED_HOME: u64 = 0x1d38_a7c2_90f1_0001;
const SALT_FED_RECORD: u64 = 0x1d38_a7c2_90f1_0002;
const SALT_FED_VICTIM: u64 = 0x1d38_a7c2_90f1_0003;
const SALT_DHT_NODE: u64 = 0x1d38_a7c2_90f1_0004;
const SALT_DHT_KEY: u64 = 0x1d38_a7c2_90f1_0005;
const SALT_DHT_START: u64 = 0x1d38_a7c2_90f1_0006;
const SALT_DHT_VICTIM: u64 = 0x1d38_a7c2_90f1_0007;

/// splitmix64 finalizer chained over `(seed ^ salt, key)` — the same
/// construction the churn schedule uses for its stateless draws.
fn route_hash(seed: u64, salt: u64, key: u64) -> u64 {
    let z = splitmix64(seed ^ salt);
    splitmix64(z ^ key.wrapping_mul(0x9e37_79b9_7f4a_7c15))
}

/// Which index backend resolves final overlay misses. Carried by
/// `AvailabilityConfig`; [`IndexBackend::router`] builds the matching
/// [`IndexRouter`] for a run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum IndexBackend {
    /// One fallback server — the paper's implicit backend and the
    /// bit-identity baseline.
    #[default]
    SingleServer,
    /// A federation of `n_servers` index servers (clamped to ≥ 1).
    Federated {
        /// Federation size; peers hash-home onto one server each.
        n_servers: u32,
    },
    /// A Kademlia-style DHT storing each file key on `replication_k`
    /// XOR-closest virtual nodes (clamped to `1..=DHT_NODES`).
    Dht {
        /// Replicas per key; a lookup survives `replication_k - 1`
        /// concurrent node outages.
        replication_k: u32,
    },
}

impl IndexBackend {
    /// Builds the run-scoped router (precomputes the DHT node table).
    pub fn router(&self, seed: u64) -> IndexRouter {
        match *self {
            IndexBackend::SingleServer => IndexRouter::Single(SingleServerRoute),
            IndexBackend::Federated { n_servers } => IndexRouter::Federated(FederatedRoute {
                seed,
                n_servers: n_servers.max(1),
            }),
            IndexBackend::Dht { replication_k } => IndexRouter::Dht(DhtRoute::new(
                seed,
                replication_k.clamp(1, DHT_NODES as u32),
            )),
        }
    }

    /// True for backends whose lookups forward between index nodes.
    /// Forwarding backends are excluded from the split-cell scheduler:
    /// their outage stranding is per-(querier, day), which breaks the
    /// arrival-rank policy-independence `SweepPrecomp` rests on, and
    /// their hop accounting would have to be duplicated into the quiet
    /// interval-settled mirror (see `split_eligible`).
    pub fn forwards(&self) -> bool {
        !matches!(self, IndexBackend::SingleServer)
    }

    /// How many index replicas can carry a poisoned source record —
    /// the adversary plan's pollution exposure (see
    /// `edonkey_workload::adversary::AdversaryPlan::polluter`). The
    /// single server holds one record; a federation holds it on the
    /// aggregation server plus the ring neighbour that gossip mirrors
    /// it to; the DHT holds one per replica. Replication, the very
    /// mechanism that buys outage survival, is what amplifies
    /// pollution.
    pub fn pollution_exposure(&self) -> u32 {
        match *self {
            IndexBackend::SingleServer => 1,
            IndexBackend::Federated { .. } => 2,
            IndexBackend::Dht { replication_k } => replication_k.max(1),
        }
    }

    /// Short stable name for reports and fixtures.
    pub fn name(&self) -> String {
        match *self {
            IndexBackend::SingleServer => "single".to_string(),
            IndexBackend::Federated { n_servers } => format!("federated{n_servers}"),
            IndexBackend::Dht { replication_k } => format!("dht_k{replication_k}"),
        }
    }
}

/// Outcome of one index lookup. The uploader *pick* is not part of the
/// outcome: all backends share the caller's stateless
/// `fallback_index(seed, t, len)` draw, which is what makes zero-outage
/// runs agree across backends bit-for-bit.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Lookup {
    /// Did the index answer? `false` strands the request.
    pub resolved: bool,
    /// Inter-server forward hops taken (federated backend only).
    pub forwarded: u64,
    /// XOR-routing hops taken (DHT backend only; dead replicas tried
    /// along the way still cost their hops).
    pub dht_hops: u64,
}

impl Lookup {
    fn resolved(forwarded: u64, dht_hops: u64) -> Self {
        Lookup {
            resolved: true,
            forwarded,
            dht_hops,
        }
    }

    fn stranded(forwarded: u64, dht_hops: u64) -> Self {
        Lookup {
            resolved: false,
            forwarded,
            dht_hops,
        }
    }
}

/// One index backend's routing behaviour: resolve a final-miss lookup
/// by `querier` for `file` at `(day, milli)` under `schedule`'s outage
/// days. Implementations must be pure functions of their arguments (no
/// interior state, no RNG) — the whole-cell simulator calls this from
/// arbitrary thread interleavings and replays must agree bit-for-bit.
pub trait IndexRoute {
    /// Resolves one lookup; see [`Lookup`].
    fn lookup(
        &self,
        schedule: &ChurnSchedule,
        querier: Peer,
        file: FileRef,
        day: u32,
        milli: u32,
    ) -> Lookup;
}

/// The single fallback server: reachable unless the day is an outage
/// day, zero routing cost. Byte-for-byte the pre-trait miss path.
#[derive(Clone, Copy, Debug)]
pub struct SingleServerRoute;

impl IndexRoute for SingleServerRoute {
    fn lookup(
        &self,
        schedule: &ChurnSchedule,
        _querier: Peer,
        _file: FileRef,
        day: u32,
        _milli: u32,
    ) -> Lookup {
        if schedule.server_out(day) {
            Lookup::stranded(0, 0)
        } else {
            Lookup::resolved(0, 0)
        }
    }
}

/// The server federation. `outage_days` here means "one federation
/// member is down that day" — which one is a `(churn_seed, day)` draw —
/// so a blanket outage schedule that blacks out the single server only
/// dims one shard of the federation at a time.
#[derive(Clone, Copy, Debug)]
pub struct FederatedRoute {
    seed: u64,
    n_servers: u32,
}

impl FederatedRoute {
    /// The server `peer` is connected to (registers its files with,
    /// sends its queries through).
    pub fn home(&self, peer: Peer) -> u32 {
        (route_hash(self.seed, SALT_FED_HOME, u64::from(peer)) % u64::from(self.n_servers)) as u32
    }

    /// The server aggregating `file`'s source records (inter-server
    /// gossip pushes every announce there).
    pub fn record_server(&self, file: FileRef) -> u32 {
        (route_hash(self.seed, SALT_FED_RECORD, u64::from(file.0)) % u64::from(self.n_servers))
            as u32
    }

    /// Which server is down on `day` — `None` outside outage days.
    pub fn victim(&self, schedule: &ChurnSchedule, day: u32) -> Option<u32> {
        if !schedule.server_out(day) {
            return None;
        }
        let churn_seed = schedule.config().seed;
        Some(
            (route_hash(churn_seed, SALT_FED_VICTIM, u64::from(day)) % u64::from(self.n_servers))
                as u32,
        )
    }

    fn down(&self, schedule: &ChurnSchedule, server: u32, day: u32) -> bool {
        self.victim(schedule, day) == Some(server)
    }
}

impl IndexRoute for FederatedRoute {
    fn lookup(
        &self,
        schedule: &ChurnSchedule,
        querier: Peer,
        file: FileRef,
        day: u32,
        milli: u32,
    ) -> Lookup {
        let home = self.home(querier);
        // A client holds exactly one server connection: its home server
        // down means the whole federation is dark for it. This is the
        // *only* way a federated lookup strands — the homed shard.
        if self.down(schedule, home, day) {
            return Lookup::stranded(0, 0);
        }
        let record = self.record_server(file);
        let n = u64::from(self.n_servers);
        let mut hops = (u64::from(record) + n - u64::from(home)) % n;
        let mut server = record;
        let mut now = u64::from(day) * 1000 + u64::from(milli) + hops * FED_HOP_LATENCY_MD;
        // The record server must be up when the forwarded query
        // *arrives*. If the hop latency carried the query into a day
        // that takes that server down, the next ring server holds the
        // gossiped records too: route around the hole (at most one
        // server is down per day, so the walk ends quickly; the bound
        // is a guard, not a path length).
        for _ in 0..self.n_servers {
            if !self.down(schedule, server, (now / 1000) as u32) {
                return Lookup::resolved(hops, 0);
            }
            server = (server + 1) % self.n_servers;
            hops += 1;
            now += FED_HOP_LATENCY_MD;
        }
        Lookup::stranded(hops, 0)
    }
}

/// The Kademlia-style DHT: [`DHT_NODES`] virtual index nodes on a
/// 64-bit ID ring, each file key stored on its `replication_k`
/// XOR-closest nodes. An outage day takes down one `(churn_seed, day)`-
/// drawn node; replicas are tried in XOR-closeness order, so the lookup
/// only strands when *every* replica is down at once.
#[derive(Clone, Debug)]
pub struct DhtRoute {
    seed: u64,
    replication_k: u32,
    /// Node IDs, precomputed once per run (pure function of the seed).
    node_ids: Vec<u64>,
}

impl DhtRoute {
    fn new(seed: u64, replication_k: u32) -> Self {
        let node_ids = (0..DHT_NODES as u64)
            .map(|i| route_hash(seed, SALT_DHT_NODE, i))
            .collect();
        DhtRoute {
            seed,
            replication_k,
            node_ids,
        }
    }

    /// The node `querier` enters the DHT through.
    pub fn start_node(&self, querier: Peer) -> u32 {
        (route_hash(self.seed, SALT_DHT_START, u64::from(querier)) % DHT_NODES as u64) as u32
    }

    /// `file`'s replica holders in XOR-closeness order (ties broken by
    /// node index; `replication_k` entries).
    pub fn replicas(&self, file: FileRef) -> Vec<u32> {
        let key = route_hash(self.seed, SALT_DHT_KEY, u64::from(file.0));
        let mut by_dist: Vec<(u64, u32)> = self
            .node_ids
            .iter()
            .enumerate()
            .map(|(i, &id)| (id ^ key, i as u32))
            .collect();
        by_dist.sort_unstable();
        by_dist
            .into_iter()
            .take(self.replication_k as usize)
            .map(|(_, i)| i)
            .collect()
    }

    /// Which node is down on `day` — `None` outside outage days.
    pub fn victim(&self, schedule: &ChurnSchedule, day: u32) -> Option<u32> {
        if !schedule.server_out(day) {
            return None;
        }
        let churn_seed = schedule.config().seed;
        Some((route_hash(churn_seed, SALT_DHT_VICTIM, u64::from(day)) % DHT_NODES as u64) as u32)
    }

    /// Kademlia hop count from node index `from` to node index `to`:
    /// each step resolves one more prefix bit of the 6-bit XOR
    /// distance, so the cost is the distance's bit length (0 when the
    /// entry node already holds the key).
    pub fn hops_between(from: u32, to: u32) -> u64 {
        u64::from(u32::BITS - (from ^ to).leading_zeros())
    }
}

impl IndexRoute for DhtRoute {
    fn lookup(
        &self,
        schedule: &ChurnSchedule,
        querier: Peer,
        file: FileRef,
        day: u32,
        _milli: u32,
    ) -> Lookup {
        let start = self.start_node(querier);
        let victim = self.victim(schedule, day);
        let key = route_hash(self.seed, SALT_DHT_KEY, u64::from(file.0));
        // Walk the replicas in XOR-closeness order (ties by node index,
        // like [`Self::replicas`]) via repeated min-scans over a
        // visited bitmask: the lookup sits on the simulator's final-
        // miss path, where the sorted-Vec selection used to be the last
        // per-query allocation churn. `k ≤ DHT_NODES = 64`, so the
        // k·64 scan is cheaper than the sort it replaces.
        let mut visited = 0u64;
        let mut hops = 0u64;
        for _ in 0..self.replication_k {
            let mut best: Option<(u64, u32)> = None;
            for (i, &id) in self.node_ids.iter().enumerate() {
                if visited & (1u64 << i) != 0 {
                    continue;
                }
                let dist = id ^ key;
                if best.is_none_or(|(d, _)| dist < d) {
                    best = Some((dist, i as u32));
                }
            }
            let Some((_, replica)) = best else { break };
            visited |= 1u64 << replica;
            // Routing to a dead replica still walks the ring (the
            // timeout is discovered at the end of the path).
            hops += Self::hops_between(start, replica);
            if victim != Some(replica) {
                return Lookup::resolved(0, hops);
            }
        }
        Lookup::stranded(0, hops)
    }
}

/// The run-scoped router: one enum over the three backends so the
/// simulator dispatches statically. Build via [`IndexBackend::router`].
#[derive(Clone, Debug)]
pub enum IndexRouter {
    /// See [`SingleServerRoute`].
    Single(SingleServerRoute),
    /// See [`FederatedRoute`].
    Federated(FederatedRoute),
    /// See [`DhtRoute`].
    Dht(DhtRoute),
}

impl IndexRoute for IndexRouter {
    fn lookup(
        &self,
        schedule: &ChurnSchedule,
        querier: Peer,
        file: FileRef,
        day: u32,
        milli: u32,
    ) -> Lookup {
        match self {
            IndexRouter::Single(r) => r.lookup(schedule, querier, file, day, milli),
            IndexRouter::Federated(r) => r.lookup(schedule, querier, file, day, milli),
            IndexRouter::Dht(r) => r.lookup(schedule, querier, file, day, milli),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use edonkey_workload::churn::ChurnConfig;

    fn schedule(outage_days: Vec<u32>) -> ChurnSchedule {
        ChurnSchedule::new(ChurnConfig {
            seed: 0xc4c4,
            churn_permille: 0,
            outage_days,
        })
    }

    #[test]
    fn single_server_mirrors_outage_days() {
        let router = IndexBackend::SingleServer.router(7);
        let s = schedule(vec![3, 4]);
        for day in 0..8 {
            let l = router.lookup(&s, 5, FileRef(9), day, 500);
            assert_eq!(l.resolved, !(day == 3 || day == 4));
            assert_eq!((l.forwarded, l.dht_hops), (0, 0));
        }
    }

    #[test]
    fn lookups_are_deterministic_and_seed_sensitive() {
        let s = schedule(vec![2]);
        for backend in [
            IndexBackend::Federated { n_servers: 8 },
            IndexBackend::Dht { replication_k: 3 },
        ] {
            let a = backend.router(7);
            let b = backend.router(7);
            let c = backend.router(8);
            let mut differs = false;
            for q in 0..64u32 {
                for f in 0..16u32 {
                    for day in 0..4 {
                        let la = a.lookup(&s, q, FileRef(f), day, 100);
                        assert_eq!(la, b.lookup(&s, q, FileRef(f), day, 100));
                        if la != c.lookup(&s, q, FileRef(f), day, 100) {
                            differs = true;
                        }
                    }
                }
            }
            assert!(
                differs,
                "{backend:?}: different seeds must route differently"
            );
        }
    }

    #[test]
    fn federated_strands_exactly_the_homed_shard() {
        let router = IndexBackend::Federated { n_servers: 4 }.router(11);
        let IndexRouter::Federated(fed) = &router else {
            panic!("federated backend builds a federated router");
        };
        let s = schedule((0..30).collect());
        let mut stranded = 0u32;
        for day in 0..30 {
            let victim = fed.victim(&s, day).expect("every day is an outage day");
            for q in 0..200u32 {
                let l = router.lookup(&s, q, FileRef(q % 7), day, 100);
                // The mechanical shard property: a lookup strands iff
                // the querier's home server is the day's victim.
                assert_eq!(l.resolved, fed.home(q) != victim, "day {day} querier {q}");
                stranded += u32::from(!l.resolved);
            }
        }
        assert!(stranded > 0, "some shard must be homed on each victim");
        // Quiet days never strand and forwarding stays ring-bounded.
        let quiet = schedule(vec![]);
        for q in 0..50u32 {
            let l = router.lookup(&quiet, q, FileRef(q), 2, 900);
            assert!(l.resolved);
            assert!(l.forwarded < 4);
        }
    }

    #[test]
    fn federated_single_member_degenerates_to_single_server() {
        let router = IndexBackend::Federated { n_servers: 1 }.router(3);
        let single = IndexBackend::SingleServer.router(3);
        let s = schedule(vec![1, 5]);
        for q in 0..40u32 {
            for day in 0..8 {
                assert_eq!(
                    router.lookup(&s, q, FileRef(q), day, 0),
                    single.lookup(&s, q, FileRef(q), day, 0)
                );
            }
        }
    }

    #[test]
    fn dht_survives_with_replication_and_strands_without() {
        let s = schedule((0..400).collect());
        let replicated = IndexBackend::Dht { replication_k: 2 }.router(9);
        let solo = IndexBackend::Dht { replication_k: 1 }.router(9);
        let mut solo_stranded = 0u32;
        for day in 0..400 {
            for q in 0..16u32 {
                let l = replicated.lookup(&s, q, FileRef(q % 11), day, 0);
                assert!(
                    l.resolved,
                    "k=2 survives the one concurrent node outage (day {day})"
                );
                assert!(l.dht_hops <= 12, "two replicas cost at most 2 × 6 hops");
                solo_stranded += u32::from(!solo.lookup(&s, q, FileRef(q % 11), day, 0).resolved);
            }
        }
        assert!(
            solo_stranded > 0,
            "k=1 must strand when its only replica dies"
        );
    }

    #[test]
    fn dht_replicas_are_distinct_and_closest_first() {
        let backend = IndexBackend::Dht { replication_k: 5 };
        let IndexRouter::Dht(dht) = backend.router(13) else {
            panic!("dht backend builds a dht router");
        };
        for f in 0..32u32 {
            let replicas = dht.replicas(FileRef(f));
            assert_eq!(replicas.len(), 5);
            let mut sorted = replicas.clone();
            sorted.sort_unstable();
            sorted.dedup();
            assert_eq!(sorted.len(), 5, "replica holders are distinct nodes");
        }
        assert_eq!(DhtRoute::hops_between(5, 5), 0);
        assert_eq!(DhtRoute::hops_between(0, 1), 1);
        assert_eq!(DhtRoute::hops_between(0, 63), 6);
    }

    #[test]
    fn clamps_degenerate_parameters() {
        // n_servers = 0 and replication_k = 0 would divide by zero /
        // never resolve; the router clamps both to 1.
        let fed = IndexBackend::Federated { n_servers: 0 }.router(1);
        let dht = IndexBackend::Dht { replication_k: 0 }.router(1);
        let quiet = schedule(vec![]);
        assert!(fed.lookup(&quiet, 0, FileRef(0), 0, 0).resolved);
        assert!(dht.lookup(&quiet, 0, FileRef(0), 0, 0).resolved);
        let over = IndexBackend::Dht {
            replication_k: 10_000,
        }
        .router(1);
        assert!(over.lookup(&quiet, 0, FileRef(0), 0, 0).resolved);
    }

    #[test]
    fn backend_names_and_forwarding_flags() {
        assert_eq!(IndexBackend::SingleServer.name(), "single");
        assert_eq!(
            IndexBackend::Federated { n_servers: 8 }.name(),
            "federated8"
        );
        assert_eq!(IndexBackend::Dht { replication_k: 3 }.name(), "dht_k3");
        assert!(!IndexBackend::SingleServer.forwards());
        assert!(IndexBackend::Federated { n_servers: 2 }.forwards());
        assert!(IndexBackend::Dht { replication_k: 1 }.forwards());
        assert_eq!(IndexBackend::default(), IndexBackend::SingleServer);
    }

    #[test]
    fn pollution_exposure_scales_with_replication() {
        assert_eq!(IndexBackend::SingleServer.pollution_exposure(), 1);
        assert_eq!(
            IndexBackend::Federated { n_servers: 8 }.pollution_exposure(),
            2
        );
        assert_eq!(
            IndexBackend::Dht { replication_k: 3 }.pollution_exposure(),
            3
        );
        assert_eq!(
            IndexBackend::Dht { replication_k: 0 }.pollution_exposure(),
            1,
            "degenerate replication clamps like the router does"
        );
    }
}
