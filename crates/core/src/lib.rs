//! `edonkey-semsearch`: the paper's primary contribution — server-less
//! file search through *semantic neighbours*, evaluated by trace-driven
//! simulation (Section 5).
//!
//! The idea: peers that uploaded files to you in the past are likely to
//! hold what you search for next (that is exactly the clustering
//! correlation of Fig. 13), so each peer keeps a short list of recent
//! uploaders and queries them before falling back to a server. The
//! simulator replays a trace's caches as a request stream, maintains
//! per-peer neighbour lists under the [`neighbours::PolicyKind`]
//! policies, and reports hit rates and per-peer query load.
//!
//! Modules:
//! * [`index`] — pluggable index backends for the final-miss fallback
//!   (single server, federated servers, Kademlia-style DHT);
//! * [`neighbours`] — LRU, History (frequency) and Random list policies;
//! * [`sim`] — the Section 5.1 request-replay simulator (one- and
//!   two-hop);
//! * [`filters`] — top-uploader and popular-file removal (Figs. 19/20);
//! * [`experiment`] — sweeps, removal grids and the Fig. 21
//!   randomization sweep, with a parallel runner;
//! * [`serve`] — the always-on query-serving mode: the trace replayed
//!   as a continuous arrival stream through a sharded neighbour store,
//!   with bounded ingress queues and latency percentiles;
//! * [`overlay`] — the paper's announced next step: a *live* semantic
//!   overlay maintained across days of cache churn;
//! * [`gossip`] — the epidemic alternative (related work [31]): views
//!   converged proactively by cache-overlap gossip.
//!
//! # Examples
//!
//! ```
//! use edonkey_semsearch::{SimConfig, simulate};
//! use edonkey_trace::model::FileRef;
//!
//! // Two mirrored peers: after the first exchange the second request
//! // hits the semantic neighbour.
//! let caches = vec![
//!     vec![FileRef(0), FileRef(1)],
//!     vec![FileRef(0), FileRef(1)],
//! ];
//! let result = simulate(&caches, 2, &SimConfig::lru(5));
//! assert!(result.hits() >= 1);
//! ```

pub mod experiment;
pub mod filters;
pub mod gossip;
pub mod index;
pub mod neighbours;
pub mod overlay;
pub mod serve;
pub mod sim;

pub use experiment::{
    adversary_grid, churn_grid, policy_comparison, randomization_sweep, sweep_cells,
    sweep_cells_threads, sweep_cells_threads_profiled, sweep_configs, sweep_list_sizes,
    sweep_list_sizes_arena, AdversaryCell, ChurnCell, RandomizationPoint, SweepPoint, SweepStages,
    CHURN_POLICIES, PAPER_LIST_SIZES,
};
pub use filters::{remove_top_files, remove_top_uploaders};
pub use gossip::{build_overlay, overlay_hit_rate, GossipConfig, SemanticOverlay};
pub use index::{IndexBackend, IndexRoute, IndexRouter, Lookup};
pub use neighbours::{
    AnyPolicy, History, Lru, NeighbourPolicy, PolicyKind, RandomList, RareLru, StaleReaction,
};
pub use overlay::{
    simulate_overlay, simulate_overlay_health, simulate_overlay_reference, OverlayConfig,
    OverlayDayStats,
};
pub use serve::{
    serve_arena, serve_arena_threads, ArrivalConfig, ArrivalProcess, LatencyHistogram, ServeConfig,
    ServeHealth, ServeReport, QUERY_RTT_MD,
};
pub use sim::{
    simulate, simulate_health, split_eligible, AdversaryConfig, AdversaryPlan, AvailabilityConfig,
    ChurnConfig, ChurnSchedule, QueryPolicy, SearchHealth, SimConfig, SimResult, SweepPrecomp,
};
