//! Semantic-neighbour list policies: LRU, History and Random.
//!
//! Each peer maintains a short list of *semantic neighbours* — peers that
//! uploaded files to it — and queries them first on every search
//! (Section 5.2):
//!
//! * **LRU**: the most recent uploader moves to the head; the tail is
//!   evicted at capacity. One parameter: the list length.
//! * **History** (frequency-based, [Voulgaris et al.]): counts successful
//!   uploads per peer and keeps the highest counters.
//! * **Random**: the benchmark — a list of uniformly random peers.
//!
//! All policies expose the same trait so the simulator is generic; they
//! also maintain a membership set so "is this sharer one of my
//! neighbours?" is O(1) during simulation.

use std::collections::{HashMap, HashSet};

use rand::Rng;

/// A peer index in the simulation (dense, like `edonkey_trace::PeerId`).
pub type Peer = u32;

/// How a policy reacted to a *stale* neighbour — one whose query timed
/// out because the peer is offline (see `edonkey_workload::churn`).
/// Each policy has a defined reaction, dispatched by
/// [`AnyPolicy::handle_stale`]:
///
/// * LRU / RareLRU **evict** the entry (recency information is dead);
/// * History **probes**: the counter is halved and the entry demoted,
///   so a flaky uploader must re-earn its rank;
/// * Random **replaces** the slot from the sharer pool (the list is
///   semantics-free, so any peer is as good as any other).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StaleReaction {
    /// The entry was removed.
    Evicted,
    /// The entry was removed and a replacement inserted.
    Replaced,
    /// The entry was kept but demoted (History's probe).
    Probed,
    /// No structural change (the peer was not a list member, or no
    /// valid replacement existed).
    Kept,
}

/// The interface every neighbour-list policy implements.
pub trait NeighbourPolicy {
    /// Records a successful upload received *from* `uploader`.
    fn record_upload(&mut self, uploader: Peer);

    /// Records an upload along with the uploaded file's current source
    /// count. Popularity-aware policies use it to skip popular-file
    /// uploads; the default ignores the hint.
    fn record_upload_with_popularity(&mut self, uploader: Peer, _sources: u32) {
        self.record_upload(uploader);
    }

    /// The current neighbour list, highest-priority first.
    fn neighbours(&self) -> &[Peer];

    /// O(1) membership test.
    fn contains(&self, peer: Peer) -> bool;

    /// The configured maximum list length.
    fn capacity(&self) -> usize;
}

/// Least-recently-used neighbour list.
///
/// # Examples
///
/// ```
/// use edonkey_semsearch::neighbours::{Lru, NeighbourPolicy};
///
/// let mut list = Lru::new(2);
/// list.record_upload(7);
/// list.record_upload(8);
/// list.record_upload(7); // moves 7 back to the head
/// assert_eq!(list.neighbours(), &[7, 8]);
/// list.record_upload(9); // evicts 8, the least recently used
/// assert_eq!(list.neighbours(), &[9, 7]);
/// assert!(!list.contains(8));
/// ```
#[derive(Clone, Debug)]
pub struct Lru {
    /// Head = most recently used. Small lists: a Vec beats pointer
    /// structures for every capacity the paper uses (≤ 200).
    list: Vec<Peer>,
    members: HashSet<Peer>,
    capacity: usize,
}

impl Lru {
    /// Creates an empty list with the given capacity.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "neighbour list capacity must be positive");
        Lru {
            list: Vec::with_capacity(capacity),
            members: HashSet::new(),
            capacity,
        }
    }

    /// Removes `peer` from the list (the staleness reaction: a
    /// timed-out neighbour is dropped). Returns whether it was present.
    pub fn evict(&mut self, peer: Peer) -> bool {
        if let Some(pos) = self.list.iter().position(|&p| p == peer) {
            self.list.remove(pos);
            self.members.remove(&peer);
            true
        } else {
            false
        }
    }

    /// Clears the list in place to the empty state of `Lru::new
    /// (capacity)`, keeping the allocations — the pooled-scratch sweeps
    /// renew one instance per querier instead of constructing one per
    /// peer.
    pub fn reset(&mut self, capacity: usize) {
        assert!(capacity > 0, "neighbour list capacity must be positive");
        self.list.clear();
        self.members.clear();
        self.capacity = capacity;
    }

    /// [`NeighbourPolicy::record_upload`] that also reports the
    /// membership delta `(added, removed)` — the hook the sweeps'
    /// interval-based message accounting needs to know when a peer
    /// enters or leaves the list without re-walking it.
    pub fn record_upload_delta(&mut self, uploader: Peer) -> (Option<Peer>, Option<Peer>) {
        let mut delta = (None, None);
        if let Some(pos) = self.list.iter().position(|&p| p == uploader) {
            self.list.remove(pos);
        } else {
            self.members.insert(uploader);
            delta.0 = Some(uploader);
            if self.list.len() == self.capacity {
                let evicted = self.list.pop().expect("list is at capacity > 0");
                self.members.remove(&evicted);
                delta.1 = Some(evicted);
            }
        }
        self.list.insert(0, uploader);
        delta
    }
}

impl NeighbourPolicy for Lru {
    fn record_upload(&mut self, uploader: Peer) {
        let _ = self.record_upload_delta(uploader);
    }

    fn neighbours(&self) -> &[Peer] {
        &self.list
    }

    fn contains(&self, peer: Peer) -> bool {
        self.members.contains(&peer)
    }

    fn capacity(&self) -> usize {
        self.capacity
    }
}

/// Frequency-based ("History") neighbour list: keeps the peers with the
/// most successful uploads.
///
/// Ties are broken by recency (the newer uploader wins), which keeps the
/// early simulation from ossifying on arbitrary first-comers.
///
/// # Examples
///
/// ```
/// use edonkey_semsearch::neighbours::{History, NeighbourPolicy};
///
/// let mut list = History::new(2);
/// list.record_upload(1);
/// list.record_upload(2);
/// list.record_upload(2);
/// list.record_upload(3); // count 1: ties with peer 1, newer wins
/// assert_eq!(list.neighbours(), &[2, 3]);
/// ```
#[derive(Clone, Debug)]
pub struct History {
    /// Upload counters for every peer ever seen (the "history").
    counts: HashMap<Peer, u64>,
    /// Logical clock for recency tie-breaks.
    clock: u64,
    last_seen: HashMap<Peer, u64>,
    /// Current top-`capacity` list, sorted by (count, recency) desc.
    list: Vec<Peer>,
    members: HashSet<Peer>,
    capacity: usize,
}

impl History {
    /// Creates an empty list with the given capacity.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "neighbour list capacity must be positive");
        History {
            counts: HashMap::new(),
            clock: 0,
            last_seen: HashMap::new(),
            list: Vec::with_capacity(capacity),
            members: HashSet::new(),
            capacity,
        }
    }

    fn key(&self, peer: Peer) -> (u64, u64) {
        (
            self.counts.get(&peer).copied().unwrap_or(0),
            self.last_seen.get(&peer).copied().unwrap_or(0),
        )
    }

    /// The staleness reaction: a timed-out neighbour is *probed*, not
    /// dropped — its upload counter is halved and the entry re-sorted,
    /// so it must re-earn its rank but its history is not erased.
    /// Returns whether the peer was a list member.
    pub fn demote(&mut self, peer: Peer) -> bool {
        if !self.members.contains(&peer) {
            return false;
        }
        let pos = self.list.iter().position(|&p| p == peer).expect("member");
        self.list.remove(pos);
        if let Some(count) = self.counts.get_mut(&peer) {
            *count /= 2;
        }
        let key = self.key(peer);
        let pos = self
            .list
            .iter()
            .position(|&p| self.key(p) < key)
            .unwrap_or(self.list.len());
        self.list.insert(pos, peer);
        true
    }

    /// Removes `peer` outright — list membership, upload counter and
    /// recency all erased, so re-admission must be earned from zero.
    /// This is the *reputation* reaction, deliberately harsher than the
    /// staleness [`History::demote`]: a flaky-but-honest uploader keeps
    /// (half) its history, an exposed adversary keeps nothing —
    /// otherwise its inflated counter would re-admit it on the very
    /// next hijacked record. Returns whether the peer was a member.
    pub fn remove(&mut self, peer: Peer) -> bool {
        if !self.members.remove(&peer) {
            return false;
        }
        let pos = self.list.iter().position(|&p| p == peer).expect("member");
        self.list.remove(pos);
        self.counts.remove(&peer);
        self.last_seen.remove(&peer);
        true
    }

    /// Clears all history in place to the empty state of `History::new
    /// (capacity)`, keeping the allocations (see [`Lru::reset`]).
    pub fn reset(&mut self, capacity: usize) {
        assert!(capacity > 0, "neighbour list capacity must be positive");
        self.counts.clear();
        self.clock = 0;
        self.last_seen.clear();
        self.list.clear();
        self.members.clear();
        self.capacity = capacity;
    }

    /// [`NeighbourPolicy::record_upload`] reporting the membership
    /// delta `(added, removed)` (see [`Lru::record_upload_delta`]).
    /// Note the counter and recency updates happen even when the
    /// newcomer is rejected — rejection only skips the *list* change.
    pub fn record_upload_delta(&mut self, uploader: Peer) -> (Option<Peer>, Option<Peer>) {
        self.clock += 1;
        *self.counts.entry(uploader).or_insert(0) += 1;
        self.last_seen.insert(uploader, self.clock);
        let mut delta = (None, None);
        if self.members.contains(&uploader) {
            // Re-sort its position upward.
            let pos = self
                .list
                .iter()
                .position(|&p| p == uploader)
                .expect("member");
            self.list.remove(pos);
        } else if self.list.len() == self.capacity {
            // Replace the tail only if the newcomer now outranks it.
            let tail = *self.list.last().expect("at capacity > 0");
            if self.key(uploader) <= self.key(tail) {
                return delta;
            }
            self.list.pop();
            self.members.remove(&tail);
            self.members.insert(uploader);
            delta = (Some(uploader), Some(tail));
        } else {
            self.members.insert(uploader);
            delta = (Some(uploader), None);
        }
        let key = self.key(uploader);
        let pos = self
            .list
            .iter()
            .position(|&p| self.key(p) < key)
            .unwrap_or(self.list.len());
        self.list.insert(pos, uploader);
        delta
    }
}

impl NeighbourPolicy for History {
    fn record_upload(&mut self, uploader: Peer) {
        let _ = self.record_upload_delta(uploader);
    }

    fn neighbours(&self) -> &[Peer] {
        &self.list
    }

    fn contains(&self, peer: Peer) -> bool {
        self.members.contains(&peer)
    }

    fn capacity(&self) -> usize {
        self.capacity
    }
}

/// The random benchmark: a fixed list of uniformly chosen peers.
///
/// `record_upload` is a no-op — the whole point of the benchmark is that
/// the list carries no semantic information.
#[derive(Clone, Debug)]
pub struct RandomList {
    list: Vec<Peer>,
    members: HashSet<Peer>,
    owner: Peer,
    capacity: usize,
}

impl RandomList {
    /// Draws a fixed list of up to `capacity` distinct peers from
    /// `candidates` (e.g. all sharers), excluding `owner`.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize, owner: Peer, candidates: &[Peer], rng: &mut impl Rng) -> Self {
        assert!(capacity > 0, "neighbour list capacity must be positive");
        let mut fresh = RandomList {
            list: Vec::with_capacity(capacity),
            members: HashSet::new(),
            owner,
            capacity,
        };
        fresh.refill(capacity, owner, candidates, rng);
        fresh
    }

    /// Re-draws the list in place with exactly the RNG draw sequence of
    /// `RandomList::new(capacity, owner, candidates, rng)`, keeping the
    /// allocations — the pooled-scratch sweeps renew instances across
    /// runs instead of constructing fresh ones.
    pub fn refill(
        &mut self,
        capacity: usize,
        owner: Peer,
        candidates: &[Peer],
        rng: &mut impl Rng,
    ) {
        assert!(capacity > 0, "neighbour list capacity must be positive");
        self.list.clear();
        self.members.clear();
        self.owner = owner;
        self.capacity = capacity;
        // Rejection sampling; candidate pools are far larger than lists
        // in every experiment, so this terminates fast. Bounded anyway.
        let mut guard = 0usize;
        while self.list.len() < capacity.min(candidates.len().saturating_sub(1))
            && guard < 100 * capacity + 1000
        {
            guard += 1;
            let pick = candidates[rng.gen_range(0..candidates.len())];
            if pick != owner && self.members.insert(pick) {
                self.list.push(pick);
            }
        }
    }

    /// The staleness reaction: a timed-out entry is removed and — the
    /// list being semantics-free — refilled with `replacement` when one
    /// is offered and valid (not the owner, not already listed).
    /// Returns what happened; `replacement` is ignored unless the stale
    /// entry was actually a member.
    pub fn replace_stale(&mut self, stale: Peer, replacement: Option<Peer>) -> StaleReaction {
        if !self.members.remove(&stale) {
            return StaleReaction::Kept;
        }
        let pos = self.list.iter().position(|&p| p == stale).expect("member");
        self.list.remove(pos);
        match replacement {
            Some(r) if r != self.owner && !self.members.contains(&r) => {
                self.members.insert(r);
                self.list.push(r);
                StaleReaction::Replaced
            }
            _ => StaleReaction::Evicted,
        }
    }
}

impl NeighbourPolicy for RandomList {
    fn record_upload(&mut self, _uploader: Peer) {}

    fn neighbours(&self) -> &[Peer] {
        &self.list
    }

    fn contains(&self, peer: Peer) -> bool {
        self.members.contains(&peer)
    }

    fn capacity(&self) -> usize {
        self.capacity
    }
}

/// LRU restricted to *rare-file* uploads — the "popularity" algorithm
/// the paper points at (Section 5.3.2, citing Voulgaris et al.) for
/// keeping lists uncontaminated by links to peers that merely served
/// popular files.
///
/// Uploads of files with more than `max_sources` known sources are not
/// recorded; everything else behaves like [`Lru`].
///
/// # Examples
///
/// ```
/// use edonkey_semsearch::neighbours::{NeighbourPolicy, RareLru};
///
/// let mut list = RareLru::new(2, 3);
/// list.record_upload_with_popularity(7, 2); // rare: recorded
/// list.record_upload_with_popularity(8, 50); // popular: ignored
/// assert_eq!(list.neighbours(), &[7]);
/// ```
#[derive(Clone, Debug)]
pub struct RareLru {
    inner: Lru,
    max_sources: u32,
}

impl RareLru {
    /// Creates the policy: capacity plus the rare-file source cutoff.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize, max_sources: u32) -> Self {
        RareLru {
            inner: Lru::new(capacity),
            max_sources,
        }
    }

    /// The staleness reaction: same as [`Lru::evict`].
    pub fn evict(&mut self, peer: Peer) -> bool {
        self.inner.evict(peer)
    }

    /// Clears the list in place (see [`Lru::reset`]).
    pub fn reset(&mut self, capacity: usize, max_sources: u32) {
        self.inner.reset(capacity);
        self.max_sources = max_sources;
    }

    /// Membership-delta recording (see [`Lru::record_upload_delta`]);
    /// popular uploads change nothing.
    pub fn record_upload_delta(
        &mut self,
        uploader: Peer,
        sources: u32,
    ) -> (Option<Peer>, Option<Peer>) {
        if sources <= self.max_sources {
            self.inner.record_upload_delta(uploader)
        } else {
            (None, None)
        }
    }
}

impl NeighbourPolicy for RareLru {
    fn record_upload(&mut self, uploader: Peer) {
        // Without a popularity hint the upload is assumed rare.
        self.inner.record_upload(uploader);
    }

    fn record_upload_with_popularity(&mut self, uploader: Peer, sources: u32) {
        if sources <= self.max_sources {
            self.inner.record_upload(uploader);
        }
    }

    fn neighbours(&self) -> &[Peer] {
        self.inner.neighbours()
    }

    fn contains(&self, peer: Peer) -> bool {
        self.inner.contains(peer)
    }

    fn capacity(&self) -> usize {
        self.inner.capacity()
    }
}

/// Which policy to instantiate — the simulator's configuration surface.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum PolicyKind {
    /// Least-recently-used (the paper's main policy).
    Lru,
    /// Frequency-based.
    History,
    /// Random benchmark.
    Random,
    /// LRU that only records rare-file uploads (at most this many
    /// sources at download time).
    RareLru {
        /// Source-count cutoff for "rare".
        max_sources: u32,
    },
}

impl PolicyKind {
    /// Human-readable name for reports.
    pub fn name(&self) -> &'static str {
        match self {
            PolicyKind::Lru => "LRU",
            PolicyKind::History => "History",
            PolicyKind::Random => "Random",
            PolicyKind::RareLru { .. } => "RareLRU",
        }
    }
}

/// A boxed policy instance, one per simulated peer.
#[derive(Clone, Debug)]
pub enum AnyPolicy {
    /// LRU instance.
    Lru(Lru),
    /// History instance.
    History(History),
    /// Random instance.
    Random(RandomList),
    /// Rare-file LRU instance.
    RareLru(RareLru),
}

impl AnyPolicy {
    /// Instantiates a policy of the given kind.
    pub fn new(
        kind: PolicyKind,
        capacity: usize,
        owner: Peer,
        candidates: &[Peer],
        rng: &mut impl Rng,
    ) -> Self {
        match kind {
            PolicyKind::Lru => AnyPolicy::Lru(Lru::new(capacity)),
            PolicyKind::History => AnyPolicy::History(History::new(capacity)),
            PolicyKind::Random => {
                AnyPolicy::Random(RandomList::new(capacity, owner, candidates, rng))
            }
            PolicyKind::RareLru { max_sources } => {
                AnyPolicy::RareLru(RareLru::new(capacity, max_sources))
            }
        }
    }

    /// Re-initializes this instance to exactly the state
    /// `AnyPolicy::new(kind, capacity, owner, candidates, rng)` would
    /// produce — including the RNG draw sequence for Random lists — but
    /// reusing the existing allocations whenever the policy kind is
    /// unchanged. This is what lets a sweep worker keep one pooled
    /// policy (or one pooled per-peer vector) across runs instead of
    /// re-allocating per peer per cell.
    pub fn renew(
        &mut self,
        kind: PolicyKind,
        capacity: usize,
        owner: Peer,
        candidates: &[Peer],
        rng: &mut impl Rng,
    ) {
        match (self, kind) {
            (AnyPolicy::Lru(p), PolicyKind::Lru) => p.reset(capacity),
            (AnyPolicy::History(p), PolicyKind::History) => p.reset(capacity),
            (AnyPolicy::Random(p), PolicyKind::Random) => {
                p.refill(capacity, owner, candidates, rng)
            }
            (AnyPolicy::RareLru(p), PolicyKind::RareLru { max_sources }) => {
                p.reset(capacity, max_sources)
            }
            (other, kind) => *other = AnyPolicy::new(kind, capacity, owner, candidates, rng),
        }
    }

    /// [`AnyPolicy::new`] for the adaptive kinds, which ignore the
    /// owner, candidate pool and RNG — the constructor the split-cell
    /// sweep path uses (it excludes the Random policy precisely so no
    /// sequential RNG draws are needed).
    ///
    /// # Panics
    ///
    /// Panics if `kind` is [`PolicyKind::Random`].
    pub fn new_adaptive(kind: PolicyKind, capacity: usize) -> Self {
        match kind {
            PolicyKind::Lru => AnyPolicy::Lru(Lru::new(capacity)),
            PolicyKind::History => AnyPolicy::History(History::new(capacity)),
            PolicyKind::RareLru { max_sources } => {
                AnyPolicy::RareLru(RareLru::new(capacity, max_sources))
            }
            PolicyKind::Random => panic!("random lists need the construction RNG"),
        }
    }

    /// [`AnyPolicy::renew`] for the adaptive kinds (see
    /// [`AnyPolicy::new_adaptive`]).
    ///
    /// # Panics
    ///
    /// Panics if `kind` is [`PolicyKind::Random`].
    pub fn renew_adaptive(&mut self, kind: PolicyKind, capacity: usize) {
        match (self, kind) {
            (AnyPolicy::Lru(p), PolicyKind::Lru) => p.reset(capacity),
            (AnyPolicy::History(p), PolicyKind::History) => p.reset(capacity),
            (AnyPolicy::RareLru(p), PolicyKind::RareLru { max_sources }) => {
                p.reset(capacity, max_sources)
            }
            (other, kind) => *other = AnyPolicy::new_adaptive(kind, capacity),
        }
    }

    /// [`NeighbourPolicy::record_upload_with_popularity`] reporting the
    /// membership delta `(added, removed)` — see
    /// [`Lru::record_upload_delta`]. Random lists never change.
    pub fn record_upload_with_popularity_delta(
        &mut self,
        uploader: Peer,
        sources: u32,
    ) -> (Option<Peer>, Option<Peer>) {
        match self {
            AnyPolicy::Lru(p) => p.record_upload_delta(uploader),
            AnyPolicy::History(p) => p.record_upload_delta(uploader),
            AnyPolicy::Random(p) => {
                p.record_upload_with_popularity(uploader, sources);
                (None, None)
            }
            AnyPolicy::RareLru(p) => p.record_upload_delta(uploader, sources),
        }
    }

    /// Owned copy of the current neighbour list, in list order — the
    /// "final policy state" unit the service-mode differential tests
    /// compare (a serving replay and a batch run must leave every peer
    /// with the identical list).
    pub fn snapshot(&self) -> Vec<Peer> {
        self.neighbours().to_vec()
    }

    /// Hard-removes a neighbour whose reputation collapsed (see
    /// [`ReputationBook`]). Unlike the staleness reaction — which may
    /// merely demote (History) — every policy drops the peer outright:
    /// the defense only fires on members that were *recorded through an
    /// attack* and then answered nothing, and a demotion would leave
    /// the captured slot in place. `replacement` is only consulted by
    /// the Random policy (same contract as [`AnyPolicy::handle_stale`]).
    /// Returns whether the list changed.
    pub fn expel(&mut self, peer: Peer, replacement: Option<Peer>) -> bool {
        match self {
            AnyPolicy::Lru(p) => p.evict(peer),
            AnyPolicy::History(p) => p.remove(peer),
            AnyPolicy::Random(p) => {
                !matches!(p.replace_stale(peer, replacement), StaleReaction::Kept)
            }
            AnyPolicy::RareLru(p) => p.evict(peer),
        }
    }

    /// Applies the policy's staleness reaction to a timed-out
    /// neighbour. `replacement` is only consulted by the Random policy;
    /// pass `None` for the others (a deterministic draw from the sharer
    /// pool — never the simulation's main RNG — supplies it).
    pub fn handle_stale(&mut self, stale: Peer, replacement: Option<Peer>) -> StaleReaction {
        match self {
            AnyPolicy::Lru(p) => {
                if p.evict(stale) {
                    StaleReaction::Evicted
                } else {
                    StaleReaction::Kept
                }
            }
            AnyPolicy::History(p) => {
                if p.demote(stale) {
                    StaleReaction::Probed
                } else {
                    StaleReaction::Kept
                }
            }
            AnyPolicy::Random(p) => p.replace_stale(stale, replacement),
            AnyPolicy::RareLru(p) => {
                if p.evict(stale) {
                    StaleReaction::Evicted
                } else {
                    StaleReaction::Kept
                }
            }
        }
    }
}

impl NeighbourPolicy for AnyPolicy {
    fn record_upload(&mut self, uploader: Peer) {
        match self {
            AnyPolicy::Lru(p) => p.record_upload(uploader),
            AnyPolicy::History(p) => p.record_upload(uploader),
            AnyPolicy::Random(p) => p.record_upload(uploader),
            AnyPolicy::RareLru(p) => p.record_upload(uploader),
        }
    }

    fn record_upload_with_popularity(&mut self, uploader: Peer, sources: u32) {
        match self {
            AnyPolicy::Lru(p) => p.record_upload_with_popularity(uploader, sources),
            AnyPolicy::History(p) => p.record_upload_with_popularity(uploader, sources),
            AnyPolicy::Random(p) => p.record_upload_with_popularity(uploader, sources),
            AnyPolicy::RareLru(p) => p.record_upload_with_popularity(uploader, sources),
        }
    }

    fn neighbours(&self) -> &[Peer] {
        match self {
            AnyPolicy::Lru(p) => p.neighbours(),
            AnyPolicy::History(p) => p.neighbours(),
            AnyPolicy::Random(p) => p.neighbours(),
            AnyPolicy::RareLru(p) => p.neighbours(),
        }
    }

    fn contains(&self, peer: Peer) -> bool {
        match self {
            AnyPolicy::Lru(p) => p.contains(peer),
            AnyPolicy::History(p) => p.contains(peer),
            AnyPolicy::Random(p) => p.contains(peer),
            AnyPolicy::RareLru(p) => p.contains(peer),
        }
    }

    fn capacity(&self) -> usize {
        match self {
            AnyPolicy::Lru(p) => p.capacity(),
            AnyPolicy::History(p) => p.capacity(),
            AnyPolicy::Random(p) => p.capacity(),
            AnyPolicy::RareLru(p) => p.capacity(),
        }
    }
}

/// How many broken promises a suspect survives before the defense
/// expels it (see [`ReputationBook::on_query`]). Suspicion only ever
/// attaches to adversarially recorded peers, so the probation window
/// is short: it exists to absorb coincidence (a genuinely recorded
/// peer sharing a suspect's identity is redeemed on its next upload),
/// not to hedge against honest false positives.
const REPUTATION_FIRE_AT: u32 = 3;

/// One querier's reputation ledger over its *suspect* neighbours — the
/// eDonkey-shaped defense against slot capture (DESIGN.md §12).
///
/// A suspect is a neighbour whose recording the querier has reason to
/// distrust: the download it was recorded for failed content
/// verification (pollution — eDonkey hashes every chunk) or arrived
/// from someone else entirely (a sybil impersonation). Suspicion is
/// probation, not proof: the entry stays listed, but every subsequent
/// query it leaves unanswered raises a *promised-but-never-served*
/// score — decayed exponentially (`p - p/8 + 1`) so old sins fade —
/// and at [`REPUTATION_FIRE_AT`] the defense fires: the slot is
/// hard-reclaimed ([`AnyPolicy::expel`]) and the peer is *banned* —
/// the querier refuses to ever record it again. The ban is the real
/// defense: expulsion alone barely moves the hit rate, because an
/// attacker re-enters the list at the same capture rate it entered the
/// first time; refusing re-admission is what starves it out. A suspect
/// that genuinely serves an upload first is redeemed and leaves the
/// book unbanned.
///
/// Only suspects are ever tracked: an honest run inserts nothing,
/// consumes no RNG, and is bit-identical with the defense armed or
/// not — the property `bench_report`'s `honest_defense_noop` gate
/// pins.
#[derive(Clone, Debug, Default)]
pub struct ReputationBook {
    /// `(suspect, promised-but-never-served score)` — a handful of
    /// entries at most, so a Vec beats a map.
    suspects: Vec<(Peer, u32)>,
    /// Peers whose probation fired: never recorded again.
    banned: Vec<Peer>,
}

impl ReputationBook {
    /// An empty book.
    pub fn new() -> Self {
        Self::default()
    }

    /// True iff nobody is under suspicion or banned.
    pub fn is_empty(&self) -> bool {
        self.suspects.is_empty() && self.banned.is_empty()
    }

    /// O(n) membership test over the (tiny) suspect set.
    pub fn contains(&self, peer: Peer) -> bool {
        self.suspects.iter().any(|&(p, _)| p == peer)
    }

    /// Has `peer`'s probation fired? Banned peers must never be
    /// recorded again — the caller drops the record on the floor.
    pub fn banned(&self, peer: Peer) -> bool {
        self.banned.contains(&peer)
    }

    /// Puts `peer` under suspicion. A *repeat* capture while already
    /// on probation is corroboration, not coincidence: the entry moves
    /// straight to the ban list and `true` is returned — the caller
    /// must then reclaim the slot via [`AnyPolicy::expel`]. Bounding an
    /// attacker to one miscredited record per probation is what keeps
    /// cumulative-count policies (History) recoverable: unlike LRU,
    /// frequency lists never age the stolen credit out.
    pub fn suspect(&mut self, peer: Peer) -> bool {
        if self.banned(peer) {
            return false;
        }
        if let Some(i) = self.suspects.iter().position(|&(p, _)| p == peer) {
            self.suspects.remove(i);
            self.banned.push(peer);
            true
        } else {
            self.suspects.push((peer, 0));
            false
        }
    }

    /// Scores one unanswered query to `peer`. Non-suspects are
    /// untouched (returns `false`). A suspect's score decays then
    /// increments; when it reaches [`REPUTATION_FIRE_AT`] the entry
    /// moves to the ban list and `true` is returned — the caller must
    /// then reclaim the slot via [`AnyPolicy::expel`], and the banned
    /// peer is never recorded again.
    pub fn on_query(&mut self, peer: Peer) -> bool {
        let Some(i) = self.suspects.iter().position(|&(p, _)| p == peer) else {
            return false;
        };
        let p = self.suspects[i].1;
        let p = p - p / 8 + 1;
        if p >= REPUTATION_FIRE_AT {
            self.suspects.remove(i);
            self.banned.push(peer);
            true
        } else {
            self.suspects[i].1 = p;
            false
        }
    }

    /// Clears `peer`'s suspicion — it genuinely served an upload.
    pub fn redeem(&mut self, peer: Peer) {
        self.remove(peer);
    }

    /// Drops `peer` from the suspect set (it left the neighbour list
    /// by other means, so there is no slot left to defend). A ban, if
    /// any, persists — leaving the list is not rehabilitation.
    pub fn remove(&mut self, peer: Peer) {
        self.suspects.retain(|&(p, _)| p != peer);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn check_invariants(p: &impl NeighbourPolicy) {
        let list = p.neighbours();
        assert!(list.len() <= p.capacity());
        let set: HashSet<Peer> = list.iter().copied().collect();
        assert_eq!(set.len(), list.len(), "list must be duplicate-free");
        for &n in list {
            assert!(p.contains(n));
        }
    }

    #[test]
    fn lru_ordering_and_eviction() {
        let mut lru = Lru::new(3);
        for p in [1, 2, 3] {
            lru.record_upload(p);
        }
        assert_eq!(lru.neighbours(), &[3, 2, 1]);
        lru.record_upload(1); // refresh
        assert_eq!(lru.neighbours(), &[1, 3, 2]);
        lru.record_upload(4); // evict 2
        assert_eq!(lru.neighbours(), &[4, 1, 3]);
        assert!(!lru.contains(2));
        check_invariants(&lru);
    }

    #[test]
    fn lru_repeated_uploader_does_not_grow() {
        let mut lru = Lru::new(2);
        for _ in 0..10 {
            lru.record_upload(5);
        }
        assert_eq!(lru.neighbours(), &[5]);
        check_invariants(&lru);
    }

    #[test]
    fn history_prefers_frequent_uploaders() {
        let mut h = History::new(2);
        for _ in 0..5 {
            h.record_upload(1);
        }
        for _ in 0..3 {
            h.record_upload(2);
        }
        h.record_upload(3); // count 1 < tail's 3 → not admitted
        assert_eq!(h.neighbours(), &[1, 2]);
        for _ in 0..3 {
            h.record_upload(3); // count reaches 4 > peer 2's 3
        }
        assert_eq!(h.neighbours(), &[1, 3]);
        assert!(!h.contains(2));
        check_invariants(&h);
    }

    #[test]
    fn history_list_is_sorted_by_count() {
        let mut h = History::new(5);
        let uploads = [1u32, 2, 2, 3, 3, 3, 4, 1, 2];
        for u in uploads {
            h.record_upload(u);
        }
        // counts: 1→2, 2→3, 3→3, 4→1; 2 is more recent than 3.
        assert_eq!(h.neighbours(), &[2, 3, 1, 4]);
        check_invariants(&h);
    }

    #[test]
    fn random_list_fixed_and_distinct() {
        let mut rng = StdRng::seed_from_u64(1);
        let candidates: Vec<Peer> = (0..100).collect();
        let r = RandomList::new(10, 5, &candidates, &mut rng);
        assert_eq!(r.neighbours().len(), 10);
        assert!(!r.neighbours().contains(&5), "owner excluded");
        check_invariants(&r);
        let before = r.neighbours().to_vec();
        let mut r = r;
        r.record_upload(42);
        assert_eq!(r.neighbours(), &before[..], "random list never adapts");
    }

    #[test]
    fn random_list_small_candidate_pool() {
        let mut rng = StdRng::seed_from_u64(2);
        let r = RandomList::new(10, 0, &[0, 1, 2], &mut rng);
        assert_eq!(
            r.neighbours().len(),
            2,
            "only two non-owner candidates exist"
        );
    }

    #[test]
    fn any_policy_dispatch() {
        let mut rng = StdRng::seed_from_u64(3);
        let candidates: Vec<Peer> = (0..50).collect();
        for kind in [PolicyKind::Lru, PolicyKind::History, PolicyKind::Random] {
            let mut p = AnyPolicy::new(kind, 4, 0, &candidates, &mut rng);
            p.record_upload(7);
            p.record_upload(9);
            check_invariants(&p);
            assert_eq!(p.capacity(), 4);
            assert!(!kind.name().is_empty());
        }
    }

    #[test]
    fn rare_lru_filters_popular_uploads() {
        let mut p = RareLru::new(3, 5);
        p.record_upload_with_popularity(1, 3);
        p.record_upload_with_popularity(2, 6); // too popular
        p.record_upload_with_popularity(3, 5); // boundary: recorded
        p.record_upload(4); // no hint: treated as rare
        assert_eq!(p.neighbours(), &[4, 3, 1]);
        assert!(!p.contains(2));
        check_invariants(&p);
    }

    #[test]
    fn default_hint_ignores_popularity() {
        let mut lru = Lru::new(2);
        lru.record_upload_with_popularity(9, 1_000_000);
        assert_eq!(lru.neighbours(), &[9], "plain LRU records regardless");
    }

    #[test]
    fn any_policy_rare_lru_dispatch() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut p = AnyPolicy::new(PolicyKind::RareLru { max_sources: 2 }, 3, 0, &[], &mut rng);
        p.record_upload_with_popularity(5, 1);
        p.record_upload_with_popularity(6, 10);
        assert_eq!(p.neighbours(), &[5]);
        assert_eq!(PolicyKind::RareLru { max_sources: 2 }.name(), "RareLRU");
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_rejected() {
        let _ = Lru::new(0);
    }

    #[test]
    fn lru_staleness_evicts() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut p = AnyPolicy::new(PolicyKind::Lru, 3, 0, &[], &mut rng);
        p.record_upload(1);
        p.record_upload(2);
        assert_eq!(p.handle_stale(1, None), StaleReaction::Evicted);
        assert_eq!(p.neighbours(), &[2]);
        assert!(!p.contains(1));
        assert_eq!(p.handle_stale(1, None), StaleReaction::Kept, "already gone");
        check_invariants(&p);
    }

    #[test]
    fn history_staleness_probes_and_demotes() {
        let mut rng = StdRng::seed_from_u64(6);
        let mut p = AnyPolicy::new(PolicyKind::History, 4, 0, &[], &mut rng);
        for _ in 0..4 {
            p.record_upload(1);
        }
        for _ in 0..3 {
            p.record_upload(2);
        }
        assert_eq!(p.neighbours(), &[1, 2]);
        // Halving 1's count (4 → 2) drops it below 2's count of 3.
        assert_eq!(p.handle_stale(1, None), StaleReaction::Probed);
        assert_eq!(p.neighbours(), &[2, 1], "demoted, not evicted");
        assert!(p.contains(1), "probed entries stay members");
        assert_eq!(p.handle_stale(9, None), StaleReaction::Kept);
        check_invariants(&p);
    }

    #[test]
    fn random_staleness_replaces_from_pool() {
        let mut rng = StdRng::seed_from_u64(7);
        let candidates: Vec<Peer> = (0..50).collect();
        let mut p = AnyPolicy::new(PolicyKind::Random, 5, 0, &candidates, &mut rng);
        let stale = p.neighbours()[0];
        let fresh = (0..50)
            .find(|&c| c != 0 && !p.contains(c))
            .expect("pool larger than list");
        assert_eq!(p.handle_stale(stale, Some(fresh)), StaleReaction::Replaced);
        assert!(!p.contains(stale));
        assert!(p.contains(fresh));
        assert_eq!(p.neighbours().len(), 5);
        check_invariants(&p);
        // Invalid replacements degrade to plain eviction.
        let stale = p.neighbours()[0];
        assert_eq!(p.handle_stale(stale, Some(0)), StaleReaction::Evicted);
        assert_eq!(p.neighbours().len(), 4);
        // Non-members are untouched even with a replacement on offer.
        assert_eq!(p.handle_stale(stale, Some(fresh)), StaleReaction::Kept);
        check_invariants(&p);
    }

    #[test]
    fn lru_delta_reports_membership_changes() {
        let mut lru = Lru::new(2);
        assert_eq!(lru.record_upload_delta(1), (Some(1), None));
        assert_eq!(lru.record_upload_delta(2), (Some(2), None));
        // Refresh: no membership change.
        assert_eq!(lru.record_upload_delta(1), (None, None));
        // At capacity: newcomer in, LRU tail out.
        assert_eq!(lru.record_upload_delta(3), (Some(3), Some(2)));
        assert_eq!(lru.neighbours(), &[3, 1]);
    }

    #[test]
    fn history_delta_reports_membership_changes() {
        let mut h = History::new(2);
        for _ in 0..3 {
            h.record_upload(1);
        }
        for _ in 0..2 {
            h.record_upload(2);
        }
        // Rejected newcomer: counters move, membership does not.
        assert_eq!(h.record_upload_delta(3), (None, None));
        assert_eq!(h.neighbours(), &[1, 2]);
        // Its count now reaches 2's count with newer recency: replaces.
        assert_eq!(h.record_upload_delta(3), (Some(3), Some(2)));
        assert!(h.contains(3) && !h.contains(2));
        // Member re-sort: no membership change.
        assert_eq!(h.record_upload_delta(3), (None, None));
    }

    #[test]
    fn reset_matches_fresh_instance() {
        let mut lru = Lru::new(3);
        for p in [1, 2, 3, 4] {
            lru.record_upload(p);
        }
        lru.reset(2);
        assert!(lru.neighbours().is_empty());
        assert!(!lru.contains(4));
        lru.record_upload(9);
        assert_eq!((lru.neighbours(), lru.capacity()), (&[9][..], 2));

        let mut h = History::new(3);
        for p in [1, 1, 2] {
            h.record_upload(p);
        }
        h.reset(3);
        let mut fresh = History::new(3);
        // Same uploads replayed into reset and fresh must agree exactly
        // (a leaked count or clock would reorder the tie-break).
        for p in [5, 6, 6, 5] {
            h.record_upload(p);
            fresh.record_upload(p);
        }
        assert_eq!(h.neighbours(), fresh.neighbours());

        let mut rare = RareLru::new(2, 5);
        rare.record_upload_with_popularity(1, 2);
        rare.reset(2, 0);
        assert!(rare.neighbours().is_empty());
        assert_eq!(rare.record_upload_delta(1, 1), (None, None), "cutoff 0");
    }

    #[test]
    fn renew_replays_the_construction_draw_sequence() {
        let candidates: Vec<Peer> = (0..80).collect();
        for kind in [
            PolicyKind::Lru,
            PolicyKind::History,
            PolicyKind::Random,
            PolicyKind::RareLru { max_sources: 4 },
        ] {
            // A dirtied pooled instance renewed with rng state R must
            // equal a fresh instance built from the same R — including
            // which draws Random consumes.
            let mut pooled = AnyPolicy::new(kind, 6, 1, &candidates, &mut StdRng::seed_from_u64(9));
            pooled.record_upload_with_popularity(7, 1);
            pooled.record_upload_with_popularity(8, 1);
            let mut rng_a = StdRng::seed_from_u64(42);
            let mut rng_b = StdRng::seed_from_u64(42);
            pooled.renew(kind, 5, 2, &candidates, &mut rng_a);
            let fresh = AnyPolicy::new(kind, 5, 2, &candidates, &mut rng_b);
            assert_eq!(pooled.neighbours(), fresh.neighbours(), "{kind:?}");
            assert_eq!(pooled.capacity(), fresh.capacity(), "{kind:?}");
            // And the rng must end in the same state.
            use rand::RngCore;
            assert_eq!(rng_a.next_u64(), rng_b.next_u64(), "{kind:?}");
        }
        // Kind changes fall back to fresh construction.
        let mut p = AnyPolicy::new(
            PolicyKind::Lru,
            3,
            0,
            &candidates,
            &mut StdRng::seed_from_u64(1),
        );
        p.renew(
            PolicyKind::History,
            4,
            0,
            &candidates,
            &mut StdRng::seed_from_u64(1),
        );
        assert!(matches!(p, AnyPolicy::History(_)));
        assert_eq!(p.capacity(), 4);
    }

    #[test]
    fn rare_lru_staleness_evicts() {
        let mut rng = StdRng::seed_from_u64(8);
        let mut p = AnyPolicy::new(PolicyKind::RareLru { max_sources: 5 }, 3, 0, &[], &mut rng);
        p.record_upload_with_popularity(4, 1);
        assert_eq!(p.handle_stale(4, None), StaleReaction::Evicted);
        assert!(p.neighbours().is_empty());
    }

    #[test]
    fn history_remove_erases_the_whole_record() {
        let mut h = History::new(2);
        for _ in 0..5 {
            h.record_upload(1);
        }
        h.record_upload(2);
        assert!(h.remove(1), "member removal succeeds");
        assert!(!h.contains(1));
        assert_eq!(h.neighbours(), &[2]);
        assert!(!h.remove(1), "already gone");
        // The counter is erased too: unlike demote, one new upload does
        // not restore the old rank.
        h.record_upload(2);
        h.record_upload(2);
        h.record_upload(1);
        assert_eq!(h.neighbours(), &[2, 1], "peer 1 re-enters at count 1");
        check_invariants(&h);
    }

    #[test]
    fn expel_hard_removes_under_every_policy() {
        let mut rng = StdRng::seed_from_u64(10);
        let candidates: Vec<Peer> = (0..60).collect();
        for kind in [
            PolicyKind::Lru,
            PolicyKind::History,
            PolicyKind::RareLru { max_sources: 9 },
        ] {
            let mut p = AnyPolicy::new(kind, 4, 0, &candidates, &mut rng);
            for _ in 0..3 {
                p.record_upload_with_popularity(7, 1);
            }
            assert!(p.expel(7, None), "{kind:?}");
            assert!(!p.contains(7), "{kind:?}: expelled outright, not demoted");
            assert!(!p.expel(7, None), "{kind:?}: already gone");
        }
        let mut p = AnyPolicy::new(PolicyKind::Random, 5, 0, &candidates, &mut rng);
        let target = p.neighbours()[0];
        let fresh = (0..60)
            .find(|&c| c != 0 && !p.contains(c))
            .expect("pool larger than list");
        assert!(p.expel(target, Some(fresh)));
        assert!(!p.contains(target) && p.contains(fresh));
    }

    #[test]
    fn reputation_book_scores_only_suspects() {
        let mut book = ReputationBook::new();
        assert!(book.is_empty());
        // Non-suspects are never scored.
        for _ in 0..100 {
            assert!(!book.on_query(3));
        }
        assert!(!book.suspect(5), "first capture opens probation");
        assert!(book.contains(5) && !book.contains(3));
        // Scores below the threshold accumulate; the FIRE_AT-th
        // unanswered query fires.
        for _ in 0..REPUTATION_FIRE_AT - 1 {
            assert!(!book.on_query(5));
        }
        assert!(book.on_query(5), "probation exhausted");
        assert!(!book.contains(5), "firing clears the suspect entry");
        assert!(book.banned(5), "firing bans the peer");
        assert!(!book.banned(3), "non-suspects are never banned");
        assert!(!book.on_query(5), "no double firing");
        assert!(!book.is_empty(), "the ban persists");
        book.remove(5);
        assert!(book.banned(5), "leaving the list is not rehabilitation");
    }

    #[test]
    fn reputation_book_redeems_and_removes() {
        let mut book = ReputationBook::new();
        book.suspect(1);
        book.suspect(2);
        assert!(!book.on_query(1));
        book.redeem(1);
        assert!(!book.contains(1), "a genuine upload clears suspicion");
        book.remove(2);
        assert!(book.is_empty());
    }

    #[test]
    fn reputation_book_bans_on_repeat_capture() {
        let mut book = ReputationBook::new();
        assert!(!book.suspect(9), "first capture: probation only");
        assert!(book.contains(9) && !book.banned(9));
        assert!(book.suspect(9), "a second capture on probation fires");
        assert!(book.banned(9) && !book.contains(9));
        assert!(!book.suspect(9), "a banned peer never re-enters probation");
        assert!(!book.contains(9), "and stays out of the suspect set");
        // Redemption before the repeat capture resets probation.
        assert!(!book.suspect(4));
        book.redeem(4);
        assert!(!book.suspect(4), "post-redemption capture starts fresh");
    }
}
