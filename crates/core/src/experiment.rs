//! Experiment harnesses: list-size sweeps, removal grids, the
//! randomization sweep of Fig. 21 — with a parallel runner for the
//! embarrassingly parallel sweeps.

use edonkey_trace::compact::CacheArena;
use edonkey_trace::model::FileRef;
use edonkey_trace::randomize::{ArenaShuffler, ShuffleCheckpoint, Shuffler};
use rand::rngs::StdRng;
use rand::SeedableRng;

use std::time::Instant;

use crate::filters::{remove_top_files, remove_top_uploaders};
use crate::index::IndexBackend;
use crate::neighbours::PolicyKind;
use crate::sim::{
    merge_partials, simulate_arena_health_with_scratch, simulate_arena_with_scratch,
    simulate_cell_range, split_eligible, AdversaryConfig, AvailabilityConfig, CellPartial,
    QueryPolicy, SearchHealth, SimConfig, SimResult, SimScratch, SplitScratch, SweepPrecomp,
};

/// One sweep point: a list size and its simulation result.
#[derive(Clone, Debug)]
pub struct SweepPoint {
    /// Neighbour-list length.
    pub list_size: usize,
    /// Full simulation result.
    pub result: SimResult,
}

/// The paper's canonical sweep sizes (x-axes of Figs. 18–20, 23).
pub const PAPER_LIST_SIZES: [usize; 8] = [5, 10, 20, 40, 60, 100, 150, 200];

/// Wall-clock spent per stage of a profiled sweep
/// ([`sweep_cells_threads_profiled`]), for the benchmark report's
/// per-stage breakdown. Worker stage times are summed across subtasks
/// (they overlap in wall-clock when threads > 1); the merge is timed on
/// the orchestrating thread.
#[derive(Clone, Copy, Debug, Default)]
pub struct SweepStages {
    /// Hit checks (sharer-prefix scans / member-major probes / mark
    /// walks), milliseconds.
    pub intersect_ms: f64,
    /// Policy updates and message settling, milliseconds.
    pub update_ms: f64,
    /// Deterministic partial merge, milliseconds.
    pub merge_ms: f64,
}

/// One schedulable unit of a sweep: either a whole split-ineligible
/// cell, or one querier range of a split-eligible cell.
enum SweepTask {
    Whole {
        cell: usize,
    },
    Split {
        cell: usize,
        pre: usize,
        lo: u32,
        hi: u32,
    },
}

enum SweepTaskOut {
    Whole(Box<(SimResult, SearchHealth)>),
    Part(CellPartial),
}

/// Per-worker scratch covering both task kinds.
#[derive(Default)]
struct SweepWorker {
    whole: SimScratch,
    split: SplitScratch,
}

/// Runs a batch of simulation cells over one arena with cell-splitting
/// work stealing: split-eligible cells (see
/// [`crate::sim::split_eligible`]) are cut into querier-range subtasks
/// that any worker can steal, so a single expensive cell (list size
/// 200) no longer serializes the sweep tail; ineligible cells run
/// whole. Results are merged deterministically and are bit-identical to
/// running every cell sequentially, for any thread count.
///
/// Uses `available_parallelism` threads; see [`sweep_cells_threads`].
pub fn sweep_cells(arena: &CacheArena, configs: &[SimConfig]) -> Vec<(SimResult, SearchHealth)> {
    let threads = std::thread::available_parallelism().map_or(4, |n| n.get());
    sweep_cells_threads(arena, configs, threads)
}

/// [`sweep_cells`] with an explicit worker count — the hook the
/// determinism tests use.
pub fn sweep_cells_threads(
    arena: &CacheArena,
    configs: &[SimConfig],
    threads: usize,
) -> Vec<(SimResult, SearchHealth)> {
    run_sweep_cells(arena, configs, threads, false).0
}

/// [`sweep_cells_threads`] that additionally meters per-stage time.
/// The metering reads two clocks per request, so benchmark headline
/// timings should come from the unmetered variant.
pub fn sweep_cells_threads_profiled(
    arena: &CacheArena,
    configs: &[SimConfig],
    threads: usize,
) -> (Vec<(SimResult, SearchHealth)>, SweepStages) {
    run_sweep_cells(arena, configs, threads, true)
}

fn run_sweep_cells(
    arena: &CacheArena,
    configs: &[SimConfig],
    threads: usize,
    profile: bool,
) -> (Vec<(SimResult, SearchHealth)>, SweepStages) {
    // One precomputation per distinct seed serves every split-eligible
    // cell of the batch (the shuffled stream and arrival ranks are
    // policy- and list-size-independent).
    let mut precomps: Vec<(u64, SweepPrecomp)> = Vec::new();
    for config in configs.iter().filter(|c| split_eligible(c)) {
        if !precomps.iter().any(|(s, _)| *s == config.seed) {
            precomps.push((config.seed, SweepPrecomp::new(arena, config.seed)));
        }
    }

    // Cut each eligible cell into roughly request-balanced querier
    // ranges; a couple of subtasks per worker keeps the stealing queue
    // busy without drowning in merge overhead.
    let chunks = (threads * 2).max(2);
    let mut tasks: Vec<SweepTask> = Vec::new();
    let mut weights: Vec<u64> = Vec::new();
    for (cell, config) in configs.iter().enumerate() {
        match precomps.iter().position(|(s, _)| *s == config.seed) {
            Some(pre) if split_eligible(config) => {
                for (lo, hi) in precomps[pre].1.peer_ranges(chunks) {
                    weights.push(precomps[pre].1.requests_in(lo, hi).max(1));
                    tasks.push(SweepTask::Split { cell, pre, lo, hi });
                }
            }
            _ => {
                weights.push(arena.replica_count() as u64 * 2);
                tasks.push(SweepTask::Whole { cell });
            }
        }
    }

    let outs = parallel_map_weighted(
        &tasks,
        &weights,
        threads,
        SweepWorker::default,
        |worker, task| match *task {
            SweepTask::Whole { cell } => SweepTaskOut::Whole(Box::new(
                simulate_arena_health_with_scratch(arena, &configs[cell], &mut worker.whole),
            )),
            SweepTask::Split { cell, pre, lo, hi } => SweepTaskOut::Part(simulate_cell_range(
                arena,
                &precomps[pre].1,
                &configs[cell],
                (lo, hi),
                &mut worker.split,
                profile,
            )),
        },
    );

    // Deterministic merge: partials regroup per cell in subtask order
    // (every merged quantity is a plain sum over disjoint querier sets,
    // so any order reproduces the sequential run bit-for-bit).
    let merge_start = Instant::now();
    let mut stages = SweepStages::default();
    let mut parts: Vec<Vec<CellPartial>> = configs.iter().map(|_| Vec::new()).collect();
    let mut results: Vec<Option<(SimResult, SearchHealth)>> =
        configs.iter().map(|_| None).collect();
    for (task, out) in tasks.iter().zip(outs) {
        match (task, out) {
            (SweepTask::Whole { cell }, SweepTaskOut::Whole(whole)) => {
                results[*cell] = Some(*whole);
            }
            (SweepTask::Split { cell, .. }, SweepTaskOut::Part(part)) => {
                stages.intersect_ms += part.intersect_ns as f64 / 1e6;
                stages.update_ms += part.update_ns as f64 / 1e6;
                parts[*cell].push(part);
            }
            _ => unreachable!("task and output kinds always agree"),
        }
    }
    for (cell, config) in configs.iter().enumerate() {
        if results[cell].is_none() {
            let pre = precomps
                .iter()
                .position(|(s, _)| *s == config.seed)
                .expect("split cells built a precomp above");
            results[cell] = Some(merge_partials(&precomps[pre].1, &parts[cell]));
        }
    }
    stages.merge_ms = merge_start.elapsed().as_secs_f64() * 1e3;
    let results = results
        .into_iter()
        .map(|r| r.expect("every cell produced a result"))
        .collect();
    (results, stages)
}

/// Bounded-working-set sweep — the out-of-core paper tier's simulator
/// driver (DESIGN.md §13).
///
/// [`sweep_cells`] fans every cell's querier ranges out to a
/// work-stealing pool and holds one [`CellPartial`] per subtask until
/// the merge — at paper scale that is dozens of per-peer message
/// vectors alive at once. This driver instead walks each
/// split-eligible cell as a sequence of `window`-sized querier windows
/// against the explicitly loaded window of the precomputed query
/// stream, folding every window into a single running partial
/// ([`CellPartial::absorb`]) before the next one loads: peak memory is
/// the precomputation plus *two* per-peer vectors and one pooled
/// scratch, independent of the window count. Ineligible cells run
/// whole with pooled scratch, exactly as the work-stealing sweep runs
/// them.
///
/// Because every merged quantity is a plain sum over disjoint querier
/// sets, the result is bit-identical to [`sweep_cells`] (and therefore
/// to the sequential oracle) for any window size.
pub fn sweep_cells_windowed(
    arena: &CacheArena,
    configs: &[SimConfig],
    window: usize,
) -> Vec<(SimResult, SearchHealth)> {
    let window = window.max(1) as u32;
    let n_peers = arena.n_peers() as u32;
    let mut precomps: Vec<(u64, SweepPrecomp)> = Vec::new();
    let mut whole = SimScratch::new();
    let mut split = SplitScratch::new();
    configs
        .iter()
        .map(|config| {
            if !split_eligible(config) {
                return simulate_arena_health_with_scratch(arena, config, &mut whole);
            }
            let pre = match precomps.iter().position(|(s, _)| *s == config.seed) {
                Some(i) => i,
                None => {
                    precomps.push((config.seed, SweepPrecomp::new(arena, config.seed)));
                    precomps.len() - 1
                }
            };
            let pre = &precomps[pre].1;
            let mut acc = CellPartial::empty(arena.n_peers());
            let mut lo = 0u32;
            while lo < n_peers {
                let hi = lo.saturating_add(window).min(n_peers);
                let part = simulate_cell_range(arena, pre, config, (lo, hi), &mut split, false);
                acc.absorb(&part);
                lo = hi;
            }
            merge_partials(pre, std::slice::from_ref(&acc))
        })
        .collect()
}

/// The cell configurations of a list-size sweep.
pub fn sweep_configs(
    policy: PolicyKind,
    list_sizes: &[usize],
    two_hop: bool,
    seed: u64,
) -> Vec<SimConfig> {
    list_sizes
        .iter()
        .map(|&list_size| SimConfig {
            list_size,
            policy,
            two_hop,
            seed,
            availability: AvailabilityConfig::none(),
        })
        .collect()
}

/// Runs one policy across several list sizes via the split-cell
/// work-stealing scheduler ([`sweep_cells`]).
pub fn sweep_list_sizes(
    caches: &[Vec<FileRef>],
    n_files: usize,
    policy: PolicyKind,
    list_sizes: &[usize],
    two_hop: bool,
    seed: u64,
) -> Vec<SweepPoint> {
    // Pack the caches once; every sweep point reads the same arena.
    let arena = CacheArena::from_caches(caches, n_files);
    sweep_list_sizes_arena(&arena, policy, list_sizes, two_hop, seed)
}

/// Arena-native [`sweep_list_sizes`].
pub fn sweep_list_sizes_arena(
    arena: &CacheArena,
    policy: PolicyKind,
    list_sizes: &[usize],
    two_hop: bool,
    seed: u64,
) -> Vec<SweepPoint> {
    let configs = sweep_configs(policy, list_sizes, two_hop, seed);
    sweep_cells(arena, &configs)
        .into_iter()
        .zip(list_sizes)
        .map(|((result, _), &list_size)| SweepPoint { list_size, result })
        .collect()
}

/// Sequential oracle for [`sweep_list_sizes`]: same cells, one thread,
/// one scratch. The bench harness diffs the two to prove the parallel
/// sweep is bit-identical.
pub fn sweep_list_sizes_seq(
    caches: &[Vec<FileRef>],
    n_files: usize,
    policy: PolicyKind,
    list_sizes: &[usize],
    two_hop: bool,
    seed: u64,
) -> Vec<SweepPoint> {
    let arena = CacheArena::from_caches(caches, n_files);
    let mut scratch = SimScratch::new();
    list_sizes
        .iter()
        .map(|&list_size| {
            let config = SimConfig {
                list_size,
                policy,
                two_hop,
                seed,
                availability: AvailabilityConfig::none(),
            };
            SweepPoint {
                list_size,
                result: simulate_arena_with_scratch(&arena, &config, &mut scratch),
            }
        })
        .collect()
}

/// Fig. 18: LRU vs History vs Random across list sizes.
pub fn policy_comparison(
    caches: &[Vec<FileRef>],
    n_files: usize,
    list_sizes: &[usize],
    seed: u64,
) -> Vec<(PolicyKind, Vec<SweepPoint>)> {
    [PolicyKind::Lru, PolicyKind::History, PolicyKind::Random]
        .into_iter()
        .map(|p| {
            (
                p,
                sweep_list_sizes(caches, n_files, p, list_sizes, false, seed),
            )
        })
        .collect()
}

/// Fig. 19 / Fig. 22: LRU sweeps after removing top uploaders.
///
/// Returns `(fraction_removed, sweep)` per requested fraction (0.0 =
/// baseline).
pub fn uploader_removal_grid(
    caches: &[Vec<FileRef>],
    n_files: usize,
    fractions: &[f64],
    list_sizes: &[usize],
    seed: u64,
) -> Vec<(f64, Vec<SweepPoint>)> {
    fractions
        .iter()
        .map(|&q| {
            let (reduced, _) = remove_top_uploaders(caches, q);
            (
                q,
                sweep_list_sizes(&reduced, n_files, PolicyKind::Lru, list_sizes, false, seed),
            )
        })
        .collect()
}

/// Fig. 20: LRU sweeps after removing top popular files.
pub fn file_removal_grid(
    caches: &[Vec<FileRef>],
    n_files: usize,
    fractions: &[f64],
    list_sizes: &[usize],
    seed: u64,
) -> Vec<(f64, Vec<SweepPoint>)> {
    fractions
        .iter()
        .map(|&q| {
            let (reduced, _) = remove_top_files(caches, n_files, q);
            (
                q,
                sweep_list_sizes(&reduced, n_files, PolicyKind::Lru, list_sizes, false, seed),
            )
        })
        .collect()
}

/// Table 3: the combined removal grid — uploader fraction × file
/// fraction, LRU, a few list sizes.
pub fn combined_removal_table(
    caches: &[Vec<FileRef>],
    n_files: usize,
    grid: &[(f64, f64)],
    list_sizes: &[usize],
    seed: u64,
) -> Vec<((f64, f64), Vec<SweepPoint>)> {
    grid.iter()
        .map(|&(uploaders, files)| {
            let (reduced, _) = remove_top_uploaders(caches, uploaders);
            let (reduced, _) = remove_top_files(&reduced, n_files, files);
            (
                (uploaders, files),
                sweep_list_sizes(&reduced, n_files, PolicyKind::Lru, list_sizes, false, seed),
            )
        })
        .collect()
}

/// One checkpoint of the Fig. 21 randomization sweep.
#[derive(Clone, Debug)]
pub struct RandomizationPoint {
    /// Swap *attempts* applied so far.
    pub swaps: u64,
    /// Hit rate at this degree of randomization.
    pub hit_rate: f64,
}

/// Fig. 21: progressively randomizes the caches and measures the LRU
/// hit rate at each checkpoint.
///
/// `checkpoints` are cumulative swap-attempt counts (must be
/// non-decreasing); point 0 is the untouched trace when `checkpoints`
/// starts at 0.
pub fn randomization_sweep(
    caches: &[Vec<FileRef>],
    n_files: usize,
    list_size: usize,
    checkpoints: &[u64],
    seed: u64,
) -> Vec<RandomizationPoint> {
    assert!(
        checkpoints.windows(2).all(|w| w[0] <= w[1]),
        "checkpoints must be non-decreasing"
    );
    let mut rng = StdRng::seed_from_u64(seed);
    let mut shuffler = Shuffler::new(caches.to_vec());
    let mut applied = 0u64;
    // Shuffle sequentially, collecting the cache set at each checkpoint,
    // then simulate the checkpoints in parallel.
    let mut snapshots: Vec<(u64, Vec<Vec<FileRef>>)> = Vec::with_capacity(checkpoints.len());
    for &target in checkpoints {
        shuffler.run(target - applied, &mut rng);
        applied = target;
        let mut caches = shuffler.caches().to_vec();
        for cache in &mut caches {
            cache.sort_unstable();
        }
        snapshots.push((target, caches));
    }
    parallel_map_init(&snapshots, SimScratch::new, |scratch, (swaps, caches)| {
        let arena = CacheArena::from_caches(caches, n_files);
        let result = simulate_arena_with_scratch(
            &arena,
            &SimConfig::lru(list_size).with_seed(seed),
            scratch,
        );
        RandomizationPoint {
            swaps: *swaps,
            hit_rate: result.hit_rate(),
        }
    })
}

/// A finished (or partial) arena randomization sweep: the measured
/// points plus a [`ShuffleCheckpoint`] at the last applied swap count,
/// from which [`randomization_sweep_resume`] extends the sweep without
/// re-shuffling the prefix.
#[derive(Clone, Debug)]
pub struct RandomizationRun {
    /// One point per requested checkpoint, in order.
    pub points: Vec<RandomizationPoint>,
    /// Swap state frozen after the last checkpoint.
    pub checkpoint: ShuffleCheckpoint,
}

/// Arena-native [`randomization_sweep`]: same RNG draw sequence and
/// byte-identical shuffled caches, but swap state lives in a flat CSR
/// arena ([`ArenaShuffler`]) and each checkpoint snapshot is a flat
/// buffer copy instead of a per-peer `Vec` clone + re-sort.
///
/// Returns the points plus a resumable checkpoint — the decay sweep can
/// extend its x-axis later without replaying the shared prefix.
pub fn randomization_sweep_arena(
    arena: &CacheArena,
    list_size: usize,
    checkpoints: &[u64],
    seed: u64,
) -> RandomizationRun {
    let mut rng = StdRng::seed_from_u64(seed);
    let shuffler = ArenaShuffler::new(arena);
    sweep_from(shuffler, &mut rng, list_size, checkpoints, seed)
}

/// Continues an arena sweep from a [`ShuffleCheckpoint`]: `checkpoints`
/// are cumulative swap-attempt counts and must start at or after the
/// checkpoint's own count. Producing points `[a, b]` here after a run
/// that ended at `a` is byte-identical to one uninterrupted sweep over
/// `[..., a, b]`.
pub fn randomization_sweep_resume(
    from: &ShuffleCheckpoint,
    list_size: usize,
    checkpoints: &[u64],
    seed: u64,
) -> RandomizationRun {
    let (shuffler, mut rng) = from.resume();
    if let Some(&first) = checkpoints.first() {
        assert!(
            first >= shuffler.stats().attempted,
            "cannot rewind a checkpoint: first target {} < {} already applied",
            first,
            shuffler.stats().attempted
        );
    }
    sweep_from(shuffler, &mut rng, list_size, checkpoints, seed)
}

fn sweep_from(
    mut shuffler: ArenaShuffler,
    rng: &mut StdRng,
    list_size: usize,
    checkpoints: &[u64],
    seed: u64,
) -> RandomizationRun {
    assert!(
        checkpoints.windows(2).all(|w| w[0] <= w[1]),
        "checkpoints must be non-decreasing"
    );
    let mut applied = shuffler.stats().attempted;
    let mut snapshots: Vec<(u64, CacheArena)> = Vec::with_capacity(checkpoints.len());
    for &target in checkpoints {
        shuffler.run(target - applied, rng);
        applied = target;
        snapshots.push((target, shuffler.snapshot_arena()));
    }
    let checkpoint = shuffler.checkpoint(rng);
    let points = parallel_map_init(&snapshots, SimScratch::new, |scratch, (swaps, arena)| {
        let result =
            simulate_arena_with_scratch(arena, &SimConfig::lru(list_size).with_seed(seed), scratch);
        RandomizationPoint {
            swaps: *swaps,
            hit_rate: result.hit_rate(),
        }
    });
    RandomizationRun { points, checkpoint }
}

/// One cell of the churn ablation grid: a churn rate × policy × query
/// policy combination with its result and availability ledger.
#[derive(Clone, Debug)]
pub struct ChurnCell {
    /// Offline window length per peer per day, in milli-days.
    pub churn_permille: u32,
    /// Neighbour-list policy.
    pub policy: PolicyKind,
    /// The querier's timeout reaction.
    pub query: QueryPolicy,
    /// Full simulation result.
    pub result: SimResult,
    /// The availability ledger (already reconciled against `result`).
    pub health: SearchHealth,
}

/// The four policies the churn ablation compares (Fig. 18's three plus
/// the rare-file LRU of Section 5.3.2).
pub const CHURN_POLICIES: [PolicyKind; 4] = [
    PolicyKind::Lru,
    PolicyKind::History,
    PolicyKind::Random,
    PolicyKind::RareLru { max_sources: 10 },
];

/// The churn ablation: every churn rate × [`CHURN_POLICIES`] × query
/// policy cell at one list size under one index backend, in parallel.
/// Each cell's [`SearchHealth`] is reconciled against its [`SimResult`]
/// before returning — a violation in any configuration panics, naming
/// the cell (seed, list size, churn rate).
#[allow(clippy::too_many_arguments)]
pub fn churn_grid(
    caches: &[Vec<FileRef>],
    n_files: usize,
    list_size: usize,
    permilles: &[u32],
    queries: &[QueryPolicy],
    outage_days: &[u32],
    backend: IndexBackend,
    churn_seed: u64,
    seed: u64,
) -> Vec<ChurnCell> {
    let arena = CacheArena::from_caches(caches, n_files);
    let mut cells: Vec<(u32, PolicyKind, QueryPolicy)> = Vec::new();
    for &rate in permilles {
        for policy in CHURN_POLICIES {
            for &query in queries {
                cells.push((rate, policy, query));
            }
        }
    }
    // Adaptive-policy cells without outages under the single server
    // ride the split-cell scheduler; Random, outage and forwarding-
    // backend cells fall back to whole-cell runs inside the same
    // work-stealing pass.
    let configs: Vec<SimConfig> = cells
        .iter()
        .map(|&(rate, policy, query)| SimConfig {
            list_size,
            policy,
            two_hop: false,
            seed,
            availability: AvailabilityConfig::churn(churn_seed, rate)
                .with_query(query)
                .with_outages(outage_days.to_vec())
                .with_backend(backend),
        })
        .collect();
    cells
        .into_iter()
        .zip(configs.iter().zip(sweep_cells(&arena, &configs)))
        .map(|((rate, policy, query), (config, (result, health)))| {
            health.expect_reconciled(&result, config);
            ChurnCell {
                churn_permille: rate,
                policy,
                query,
                result,
                health,
            }
        })
        .collect()
}

/// One cell of the adversary ablation grid: an attack mix × policy ×
/// defense combination with its result and ledger.
#[derive(Clone, Debug)]
pub struct AdversaryCell {
    /// The injected attack mix.
    pub adversary: AdversaryConfig,
    /// Neighbour-list policy.
    pub policy: PolicyKind,
    /// Whether the reputation defense was armed.
    pub defended: bool,
    /// Full simulation result.
    pub result: SimResult,
    /// The ledger (already reconciled against `result`).
    pub health: SearchHealth,
}

/// The adversary ablation: every attack mix × [`CHURN_POLICIES`] ×
/// {undefended, defended} cell at one list size under one index
/// backend, in parallel. Adversarial cells are split-ineligible, so
/// they run whole inside the same work-stealing pass; quiet mixes
/// (including [`AdversaryConfig::none`] baselines) still split. Each
/// cell's [`SearchHealth`] is reconciled against its [`SimResult`]
/// before returning — a violation panics, naming the cell.
pub fn adversary_grid(
    caches: &[Vec<FileRef>],
    n_files: usize,
    list_size: usize,
    adversaries: &[AdversaryConfig],
    query: QueryPolicy,
    backend: IndexBackend,
    seed: u64,
) -> Vec<AdversaryCell> {
    let arena = CacheArena::from_caches(caches, n_files);
    let mut cells: Vec<(AdversaryConfig, PolicyKind, bool)> = Vec::new();
    for adversary in adversaries {
        for policy in CHURN_POLICIES {
            for defended in [false, true] {
                cells.push((adversary.clone(), policy, defended));
            }
        }
    }
    let configs: Vec<SimConfig> = cells
        .iter()
        .map(|(adversary, policy, defended)| {
            let mut availability = AvailabilityConfig::none()
                .with_query(query)
                .with_backend(backend)
                .with_adversary(adversary.clone());
            if *defended {
                availability = availability.with_reputation();
            }
            SimConfig {
                list_size,
                policy: *policy,
                two_hop: false,
                seed,
                availability,
            }
        })
        .collect();
    cells
        .into_iter()
        .zip(configs.iter().zip(sweep_cells(&arena, &configs)))
        .map(
            |((adversary, policy, defended), (config, (result, health)))| {
                health.expect_reconciled(&result, config);
                AdversaryCell {
                    adversary,
                    policy,
                    defended,
                    result,
                    health,
                }
            },
        )
        .collect()
}

// The parallel runner lives in `edonkey_trace::par` since the derivation
// pipeline needs it too; re-exported here for the sweeps (and for the
// callers that always imported it from this module).
pub use edonkey_trace::par::{
    parallel_map, parallel_map_init, parallel_map_init_threads, parallel_map_weighted,
};

#[cfg(test)]
mod tests {
    use super::*;

    fn f(i: u32) -> FileRef {
        FileRef(i)
    }

    /// Clustered communities plus a few generous super-peers.
    fn workload() -> (Vec<Vec<FileRef>>, usize) {
        let mut caches = Vec::new();
        for c in 0..12u32 {
            for _ in 0..5 {
                caches.push((0..12).map(|k| f(c * 12 + k)).collect());
            }
        }
        // Super-peers holding a bit of everything.
        for start in [0u32, 48] {
            caches.push((start..start + 60).map(f).collect());
        }
        (caches, 12 * 12 + 60)
    }

    #[test]
    fn parallel_map_preserves_order() {
        let items: Vec<usize> = (0..100).collect();
        let out = parallel_map(&items, |&x| x * 2);
        assert_eq!(out, (0..100).map(|x| x * 2).collect::<Vec<_>>());
        assert!(parallel_map(&[] as &[usize], |&x| x).is_empty());
    }

    #[test]
    fn parallel_map_init_reuses_worker_state() {
        let items: Vec<usize> = (0..64).collect();
        let out = parallel_map_init(&items, Vec::new, |scratch: &mut Vec<usize>, &x| {
            scratch.push(x);
            // State persists across calls on the same worker, so the
            // scratch length grows monotonically per thread.
            (x, scratch.len())
        });
        assert_eq!(out.len(), 64);
        for (i, (x, seen)) in out.iter().enumerate() {
            assert_eq!(*x, i);
            assert!(*seen >= 1);
        }
    }

    #[test]
    fn parallel_map_propagates_worker_panics() {
        let items: Vec<usize> = (0..64).collect();
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            parallel_map(&items, |&x| {
                if x == 13 {
                    panic!("boom at {x}");
                }
                x
            })
        }));
        // Must re-raise the worker's panic (not deadlock on a poisoned
        // slot, not swallow it into a partial result).
        assert!(result.is_err(), "worker panic must propagate to the caller");
    }

    #[test]
    fn sweep_monotonicity_in_list_size() {
        let (caches, n) = workload();
        let sweep = sweep_list_sizes(&caches, n, PolicyKind::Lru, &[2, 8, 32], false, 1);
        assert_eq!(sweep.len(), 3);
        assert!(
            sweep[2].result.hit_rate() >= sweep[0].result.hit_rate() - 0.02,
            "bigger lists should not hurt: {:?}",
            sweep
                .iter()
                .map(|p| p.result.hit_rate())
                .collect::<Vec<_>>()
        );
    }

    #[test]
    fn policy_comparison_orders_policies() {
        let (caches, n) = workload();
        let cmp = policy_comparison(&caches, n, &[8], 1);
        let rate = |k: PolicyKind| {
            cmp.iter().find(|(p, _)| *p == k).unwrap().1[0]
                .result
                .hit_rate()
        };
        assert!(rate(PolicyKind::Lru) > rate(PolicyKind::Random));
        assert!(rate(PolicyKind::History) > rate(PolicyKind::Random));
    }

    #[test]
    fn uploader_removal_reduces_requests_and_flattens_load() {
        let (caches, n) = workload();
        let grid = uploader_removal_grid(&caches, n, &[0.0, 0.15], &[5], 1);
        let baseline = &grid[0].1[0].result;
        let reduced = &grid[1].1[0].result;
        assert!(reduced.requests < baseline.requests);
        assert!(reduced.max_load() <= baseline.max_load());
    }

    #[test]
    fn file_removal_raises_hit_rate_here() {
        // With super-peers and popular files removed, the tight
        // communities dominate: hit rate should not collapse.
        let (caches, n) = workload();
        let grid = file_removal_grid(&caches, n, &[0.0, 0.15], &[5], 1);
        let baseline = grid[0].1[0].result.hit_rate();
        let reduced = grid[1].1[0].result.hit_rate();
        assert!(
            reduced > baseline * 0.8,
            "baseline {baseline}, reduced {reduced}"
        );
    }

    #[test]
    fn combined_table_runs_all_cells() {
        let (caches, n) = workload();
        let table = combined_removal_table(&caches, n, &[(0.05, 0.05), (0.15, 0.15)], &[5, 10], 1);
        assert_eq!(table.len(), 2);
        assert_eq!(table[0].1.len(), 2);
    }

    #[test]
    fn randomization_decays_hit_rate() {
        let (caches, n) = workload();
        let replicas: u64 = caches.iter().map(|c| c.len() as u64).sum();
        let full = edonkey_trace::randomize::recommended_iterations(replicas as usize);
        let sweep = randomization_sweep(&caches, n, 8, &[0, full / 4, full, full * 3], 2);
        assert_eq!(sweep.len(), 4);
        assert_eq!(sweep[0].swaps, 0);
        let initial = sweep[0].hit_rate;
        let final_rate = sweep[3].hit_rate;
        assert!(
            final_rate < initial - 0.1,
            "randomization must destroy most clustering: {initial} → {final_rate}"
        );
    }

    #[test]
    #[should_panic(expected = "non-decreasing")]
    fn decreasing_checkpoints_rejected() {
        let (caches, n) = workload();
        let _ = randomization_sweep(&caches, n, 5, &[10, 5], 1);
    }

    fn points_equal(a: &[RandomizationPoint], b: &[RandomizationPoint]) -> bool {
        a.len() == b.len()
            && a.iter()
                .zip(b)
                .all(|(x, y)| x.swaps == y.swaps && x.hit_rate == y.hit_rate)
    }

    #[test]
    fn arena_sweep_matches_row_sweep_exactly() {
        let (caches, n) = workload();
        let checkpoints = [0u64, 500, 2000, 8000];
        let row = randomization_sweep(&caches, n, 8, &checkpoints, 2);
        let arena = CacheArena::from_caches(&caches, n);
        let run = randomization_sweep_arena(&arena, 8, &checkpoints, 2);
        assert!(
            points_equal(&row, &run.points),
            "row {row:?} vs arena {:?}",
            run.points
        );
        assert_eq!(run.checkpoint.stats().attempted, 8000);
    }

    #[test]
    fn resumed_sweep_matches_uninterrupted_sweep() {
        let (caches, n) = workload();
        let arena = CacheArena::from_caches(&caches, n);
        let full = randomization_sweep_arena(&arena, 8, &[0, 500, 2000, 8000], 2);
        let prefix = randomization_sweep_arena(&arena, 8, &[0, 500], 2);
        let suffix = randomization_sweep_resume(&prefix.checkpoint, 8, &[2000, 8000], 2);
        let stitched: Vec<RandomizationPoint> = prefix
            .points
            .iter()
            .chain(&suffix.points)
            .cloned()
            .collect();
        assert!(
            points_equal(&full.points, &stitched),
            "full {:?} vs stitched {stitched:?}",
            full.points
        );
        assert_eq!(suffix.checkpoint.stats(), full.checkpoint.stats());
    }

    #[test]
    #[should_panic(expected = "cannot rewind")]
    fn resume_rejects_rewinding_targets() {
        let (caches, n) = workload();
        let arena = CacheArena::from_caches(&caches, n);
        let run = randomization_sweep_arena(&arena, 5, &[1000], 1);
        let _ = randomization_sweep_resume(&run.checkpoint, 5, &[10], 1);
    }

    #[test]
    fn sequential_sweep_is_bit_identical_to_parallel() {
        let (caches, n) = workload();
        let sizes = [2usize, 5, 8, 16, 32];
        let par = sweep_list_sizes(&caches, n, PolicyKind::Lru, &sizes, false, 1);
        let seq = sweep_list_sizes_seq(&caches, n, PolicyKind::Lru, &sizes, false, 1);
        assert_eq!(par.len(), seq.len());
        for (p, s) in par.iter().zip(&seq) {
            assert_eq!(p.list_size, s.list_size);
            assert_eq!(p.result, s.result);
        }
    }

    #[test]
    fn split_cells_match_whole_cells_for_any_thread_count() {
        let (caches, n) = workload();
        let arena = CacheArena::from_caches(&caches, n);
        // A mixed batch: quiet adaptive cells (split, both hit-check
        // modes), a Random cell (whole), churn cells with and without
        // retries (split), and an outage cell (whole).
        let configs = vec![
            SimConfig::lru(3).with_seed(7),
            SimConfig::history(16).with_seed(7),
            SimConfig::rare_lru(5, 3).with_seed(7),
            SimConfig::random(5).with_seed(7),
            SimConfig::lru(5)
                .with_seed(7)
                .with_availability(AvailabilityConfig::churn(11, 250)),
            SimConfig::history(5).with_seed(7).with_availability(
                AvailabilityConfig::churn(11, 250).with_query(QueryPolicy::retry_evict()),
            ),
            SimConfig::lru(5).with_seed(7).with_availability(
                AvailabilityConfig::churn(11, 250)
                    .with_query(QueryPolicy::retry_evict())
                    .with_outages(vec![2, 3]),
            ),
        ];
        let mut scratch = SimScratch::new();
        let oracle: Vec<(SimResult, SearchHealth)> = configs
            .iter()
            .map(|c| simulate_arena_health_with_scratch(&arena, c, &mut scratch))
            .collect();
        for threads in [1, 2, 3, 8] {
            let (split, stages) = sweep_cells_threads_profiled(&arena, &configs, threads);
            assert_eq!(split, oracle, "threads = {threads}");
            assert!(stages.merge_ms >= 0.0);
        }
        // The unprofiled path must agree too (profiling only meters).
        assert_eq!(sweep_cells_threads(&arena, &configs, 2), oracle);
    }

    #[test]
    fn windowed_sweep_is_bit_identical_to_the_work_stealing_sweep() {
        let (caches, n) = workload();
        let arena = CacheArena::from_caches(&caches, n);
        // Split cells (quiet + churn), a whole Random cell and a whole
        // forwarding-backend cell — every path the windowed driver has.
        let configs = vec![
            SimConfig::lru(3).with_seed(7),
            SimConfig::history(16).with_seed(7),
            SimConfig::random(5).with_seed(7),
            SimConfig::lru(5)
                .with_seed(7)
                .with_availability(AvailabilityConfig::churn(11, 250)),
            SimConfig::lru(5)
                .with_seed(7)
                .with_backend(IndexBackend::Dht { replication_k: 3 }),
        ];
        let reference = sweep_cells_threads(&arena, &configs, 4);
        for window in [1, 7, 64, usize::MAX] {
            assert_eq!(
                sweep_cells_windowed(&arena, &configs, window),
                reference,
                "window = {window}"
            );
        }
    }

    #[test]
    fn adversary_grid_covers_the_matrix_and_reconciles() {
        let (caches, n) = workload();
        let mixes = [
            AdversaryConfig::none(),
            AdversaryConfig::sybils(21, 150).with_polluters(150),
        ];
        let grid = adversary_grid(
            &caches,
            n,
            5,
            &mixes,
            QueryPolicy::no_retry(),
            IndexBackend::SingleServer,
            1,
        );
        assert_eq!(grid.len(), 2 * CHURN_POLICIES.len() * 2);
        for policy in CHURN_POLICIES {
            let cell = |mix: &AdversaryConfig, defended: bool| {
                grid.iter()
                    .find(|c| c.adversary == *mix && c.policy == policy && c.defended == defended)
                    .unwrap()
            };
            // An armed defense on an honest run is a bitwise no-op.
            let honest = cell(&mixes[0], false);
            let honest_armed = cell(&mixes[0], true);
            assert_eq!(honest.result, honest_armed.result, "{policy:?}");
            assert_eq!(honest.health, honest_armed.health, "{policy:?}");
            assert_eq!(honest.health.wasted_queries, 0);
            // The attacked cell actually exercises the adversary, and
            // the defense only fires when armed.
            let attacked = cell(&mixes[1], false);
            assert!(attacked.health.sybil_slots_held > 0, "{policy:?}");
            assert_eq!(attacked.health.reputation_evictions, 0);
            assert!(
                attacked.result.one_hop_hits <= honest.result.one_hop_hits,
                "{policy:?}"
            );
        }
    }

    #[test]
    fn churn_grid_rides_the_split_scheduler_unchanged() {
        let (caches, n) = workload();
        // The grid result must be independent of the machine's thread
        // count: cross-check one cell against a direct simulation.
        let grid = churn_grid(
            &caches,
            n,
            5,
            &[0, 250],
            &[QueryPolicy::no_retry()],
            &[],
            IndexBackend::SingleServer,
            13,
            1,
        );
        assert_eq!(grid.len(), 2 * CHURN_POLICIES.len());
        for cell in &grid {
            cell.health.check_against(&cell.result).unwrap();
        }
        let direct = simulate_arena_health_with_scratch(
            &CacheArena::from_caches(&caches, n),
            &SimConfig {
                list_size: 5,
                policy: PolicyKind::Lru,
                two_hop: false,
                seed: 1,
                availability: AvailabilityConfig::churn(13, 250),
            },
            &mut SimScratch::new(),
        );
        let cell = grid
            .iter()
            .find(|c| c.churn_permille == 250 && c.policy == PolicyKind::Lru)
            .unwrap();
        assert_eq!((cell.result.clone(), cell.health), direct);
    }
}
