//! Experiment harnesses: list-size sweeps, removal grids, the
//! randomization sweep of Fig. 21 — with a parallel runner for the
//! embarrassingly parallel sweeps.

use edonkey_trace::compact::CacheArena;
use edonkey_trace::model::FileRef;
use edonkey_trace::randomize::Shuffler;
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::filters::{remove_top_files, remove_top_uploaders};
use crate::neighbours::PolicyKind;
use crate::sim::{
    simulate_arena_health_with_scratch, simulate_arena_with_scratch, AvailabilityConfig,
    QueryPolicy, SearchHealth, SimConfig, SimResult, SimScratch,
};

/// One sweep point: a list size and its simulation result.
#[derive(Clone, Debug)]
pub struct SweepPoint {
    /// Neighbour-list length.
    pub list_size: usize,
    /// Full simulation result.
    pub result: SimResult,
}

/// The paper's canonical sweep sizes (x-axes of Figs. 18–20, 23).
pub const PAPER_LIST_SIZES: [usize; 8] = [5, 10, 20, 40, 60, 100, 150, 200];

/// Runs one policy across several list sizes, in parallel (one thread
/// per point, capped by the machine).
pub fn sweep_list_sizes(
    caches: &[Vec<FileRef>],
    n_files: usize,
    policy: PolicyKind,
    list_sizes: &[usize],
    two_hop: bool,
    seed: u64,
) -> Vec<SweepPoint> {
    // Pack the caches once; every sweep point reads the same arena and
    // each worker thread reuses one set of simulation buffers.
    let arena = CacheArena::from_caches(caches, n_files);
    parallel_map_init(list_sizes, SimScratch::new, |scratch, &list_size| {
        let config = SimConfig {
            list_size,
            policy,
            two_hop,
            seed,
            availability: AvailabilityConfig::none(),
        };
        SweepPoint {
            list_size,
            result: simulate_arena_with_scratch(&arena, &config, scratch),
        }
    })
}

/// Fig. 18: LRU vs History vs Random across list sizes.
pub fn policy_comparison(
    caches: &[Vec<FileRef>],
    n_files: usize,
    list_sizes: &[usize],
    seed: u64,
) -> Vec<(PolicyKind, Vec<SweepPoint>)> {
    [PolicyKind::Lru, PolicyKind::History, PolicyKind::Random]
        .into_iter()
        .map(|p| {
            (
                p,
                sweep_list_sizes(caches, n_files, p, list_sizes, false, seed),
            )
        })
        .collect()
}

/// Fig. 19 / Fig. 22: LRU sweeps after removing top uploaders.
///
/// Returns `(fraction_removed, sweep)` per requested fraction (0.0 =
/// baseline).
pub fn uploader_removal_grid(
    caches: &[Vec<FileRef>],
    n_files: usize,
    fractions: &[f64],
    list_sizes: &[usize],
    seed: u64,
) -> Vec<(f64, Vec<SweepPoint>)> {
    fractions
        .iter()
        .map(|&q| {
            let (reduced, _) = remove_top_uploaders(caches, q);
            (
                q,
                sweep_list_sizes(&reduced, n_files, PolicyKind::Lru, list_sizes, false, seed),
            )
        })
        .collect()
}

/// Fig. 20: LRU sweeps after removing top popular files.
pub fn file_removal_grid(
    caches: &[Vec<FileRef>],
    n_files: usize,
    fractions: &[f64],
    list_sizes: &[usize],
    seed: u64,
) -> Vec<(f64, Vec<SweepPoint>)> {
    fractions
        .iter()
        .map(|&q| {
            let (reduced, _) = remove_top_files(caches, n_files, q);
            (
                q,
                sweep_list_sizes(&reduced, n_files, PolicyKind::Lru, list_sizes, false, seed),
            )
        })
        .collect()
}

/// Table 3: the combined removal grid — uploader fraction × file
/// fraction, LRU, a few list sizes.
pub fn combined_removal_table(
    caches: &[Vec<FileRef>],
    n_files: usize,
    grid: &[(f64, f64)],
    list_sizes: &[usize],
    seed: u64,
) -> Vec<((f64, f64), Vec<SweepPoint>)> {
    grid.iter()
        .map(|&(uploaders, files)| {
            let (reduced, _) = remove_top_uploaders(caches, uploaders);
            let (reduced, _) = remove_top_files(&reduced, n_files, files);
            (
                (uploaders, files),
                sweep_list_sizes(&reduced, n_files, PolicyKind::Lru, list_sizes, false, seed),
            )
        })
        .collect()
}

/// One checkpoint of the Fig. 21 randomization sweep.
#[derive(Clone, Debug)]
pub struct RandomizationPoint {
    /// Swap *attempts* applied so far.
    pub swaps: u64,
    /// Hit rate at this degree of randomization.
    pub hit_rate: f64,
}

/// Fig. 21: progressively randomizes the caches and measures the LRU
/// hit rate at each checkpoint.
///
/// `checkpoints` are cumulative swap-attempt counts (must be
/// non-decreasing); point 0 is the untouched trace when `checkpoints`
/// starts at 0.
pub fn randomization_sweep(
    caches: &[Vec<FileRef>],
    n_files: usize,
    list_size: usize,
    checkpoints: &[u64],
    seed: u64,
) -> Vec<RandomizationPoint> {
    assert!(
        checkpoints.windows(2).all(|w| w[0] <= w[1]),
        "checkpoints must be non-decreasing"
    );
    let mut rng = StdRng::seed_from_u64(seed);
    let mut shuffler = Shuffler::new(caches.to_vec());
    let mut applied = 0u64;
    // Shuffle sequentially, collecting the cache set at each checkpoint,
    // then simulate the checkpoints in parallel.
    let mut snapshots: Vec<(u64, Vec<Vec<FileRef>>)> = Vec::with_capacity(checkpoints.len());
    for &target in checkpoints {
        shuffler.run(target - applied, &mut rng);
        applied = target;
        let mut caches = shuffler.caches().to_vec();
        for cache in &mut caches {
            cache.sort_unstable();
        }
        snapshots.push((target, caches));
    }
    parallel_map_init(&snapshots, SimScratch::new, |scratch, (swaps, caches)| {
        let arena = CacheArena::from_caches(caches, n_files);
        let result = simulate_arena_with_scratch(
            &arena,
            &SimConfig::lru(list_size).with_seed(seed),
            scratch,
        );
        RandomizationPoint {
            swaps: *swaps,
            hit_rate: result.hit_rate(),
        }
    })
}

/// One cell of the churn ablation grid: a churn rate × policy × query
/// policy combination with its result and availability ledger.
#[derive(Clone, Debug)]
pub struct ChurnCell {
    /// Offline window length per peer per day, in milli-days.
    pub churn_permille: u32,
    /// Neighbour-list policy.
    pub policy: PolicyKind,
    /// The querier's timeout reaction.
    pub query: QueryPolicy,
    /// Full simulation result.
    pub result: SimResult,
    /// The availability ledger (already reconciled against `result`).
    pub health: SearchHealth,
}

/// The four policies the churn ablation compares (Fig. 18's three plus
/// the rare-file LRU of Section 5.3.2).
pub const CHURN_POLICIES: [PolicyKind; 4] = [
    PolicyKind::Lru,
    PolicyKind::History,
    PolicyKind::Random,
    PolicyKind::RareLru { max_sources: 10 },
];

/// The churn ablation: every churn rate × [`CHURN_POLICIES`] × query
/// policy cell at one list size, in parallel. Each cell's
/// [`SearchHealth`] is reconciled against its [`SimResult`] before
/// returning — a violation in any configuration panics.
#[allow(clippy::too_many_arguments)]
pub fn churn_grid(
    caches: &[Vec<FileRef>],
    n_files: usize,
    list_size: usize,
    permilles: &[u32],
    queries: &[QueryPolicy],
    outage_days: &[u32],
    churn_seed: u64,
    seed: u64,
) -> Vec<ChurnCell> {
    let arena = CacheArena::from_caches(caches, n_files);
    let mut cells: Vec<(u32, PolicyKind, QueryPolicy)> = Vec::new();
    for &rate in permilles {
        for policy in CHURN_POLICIES {
            for &query in queries {
                cells.push((rate, policy, query));
            }
        }
    }
    parallel_map_init(
        &cells,
        SimScratch::new,
        |scratch, &(rate, policy, query)| {
            let config = SimConfig {
                list_size,
                policy,
                two_hop: false,
                seed,
                availability: AvailabilityConfig::churn(churn_seed, rate)
                    .with_query(query)
                    .with_outages(outage_days.to_vec()),
            };
            let (result, health) = simulate_arena_health_with_scratch(&arena, &config, scratch);
            health
                .check_against(&result)
                .expect("SearchHealth must reconcile in every churn cell");
            ChurnCell {
                churn_permille: rate,
                policy,
                query,
                result,
                health,
            }
        },
    )
}

/// Maps `items` in parallel with scoped threads, preserving order.
///
/// The sweeps here are CPU-bound and independent; a simple chunked
/// fan-out over `available_parallelism` threads is all that is needed.
pub fn parallel_map<T: Sync, R: Send>(items: &[T], f: impl Fn(&T) -> R + Sync) -> Vec<R> {
    parallel_map_init(items, || (), |(), item| f(item))
}

/// [`parallel_map`] with per-worker state: `init` runs once on each
/// worker thread and the resulting value is threaded through every call
/// that worker makes, so scratch allocations (e.g. simulation buffers)
/// are reused across sweep points instead of rebuilt per item.
///
/// Threads are spawned once and pull work off a shared atomic cursor in
/// small chunks; results carry their item index, so output order always
/// matches input order regardless of scheduling. A panic in `f` is
/// re-raised on the caller's thread (after remaining workers drain)
/// rather than poisoning a lock or deadlocking.
pub fn parallel_map_init<T: Sync, S, R: Send>(
    items: &[T],
    init: impl Fn() -> S + Sync,
    f: impl Fn(&mut S, &T) -> R + Sync,
) -> Vec<R> {
    if items.is_empty() {
        return Vec::new();
    }
    let threads = std::thread::available_parallelism()
        .map_or(4, |n| n.get())
        .min(items.len());
    // Chunked claiming keeps cursor contention negligible for large item
    // counts while still load-balancing uneven per-item cost.
    let chunk = (items.len() / (threads * 8)).max(1);
    let next = std::sync::atomic::AtomicUsize::new(0);
    let partials: Vec<Vec<(usize, R)>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                scope.spawn(|| {
                    let mut state = init();
                    let mut out = Vec::new();
                    loop {
                        let start = next.fetch_add(chunk, std::sync::atomic::Ordering::Relaxed);
                        if start >= items.len() {
                            break;
                        }
                        let end = (start + chunk).min(items.len());
                        for (i, item) in items[start..end].iter().enumerate() {
                            out.push((start + i, f(&mut state, item)));
                        }
                    }
                    out
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| match h.join() {
                Ok(v) => v,
                // Re-raise the worker's panic payload; the enclosing scope
                // still joins the remaining workers on unwind.
                Err(payload) => std::panic::resume_unwind(payload),
            })
            .collect()
    });
    let mut slots: Vec<Option<R>> = (0..items.len()).map(|_| None).collect();
    for (i, r) in partials.into_iter().flatten() {
        slots[i] = Some(r);
    }
    slots
        .into_iter()
        .map(|r| r.expect("cursor covers every index"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn f(i: u32) -> FileRef {
        FileRef(i)
    }

    /// Clustered communities plus a few generous super-peers.
    fn workload() -> (Vec<Vec<FileRef>>, usize) {
        let mut caches = Vec::new();
        for c in 0..12u32 {
            for _ in 0..5 {
                caches.push((0..12).map(|k| f(c * 12 + k)).collect());
            }
        }
        // Super-peers holding a bit of everything.
        for start in [0u32, 48] {
            caches.push((start..start + 60).map(f).collect());
        }
        (caches, 12 * 12 + 60)
    }

    #[test]
    fn parallel_map_preserves_order() {
        let items: Vec<usize> = (0..100).collect();
        let out = parallel_map(&items, |&x| x * 2);
        assert_eq!(out, (0..100).map(|x| x * 2).collect::<Vec<_>>());
        assert!(parallel_map(&[] as &[usize], |&x| x).is_empty());
    }

    #[test]
    fn parallel_map_init_reuses_worker_state() {
        let items: Vec<usize> = (0..64).collect();
        let out = parallel_map_init(&items, Vec::new, |scratch: &mut Vec<usize>, &x| {
            scratch.push(x);
            // State persists across calls on the same worker, so the
            // scratch length grows monotonically per thread.
            (x, scratch.len())
        });
        assert_eq!(out.len(), 64);
        for (i, (x, seen)) in out.iter().enumerate() {
            assert_eq!(*x, i);
            assert!(*seen >= 1);
        }
    }

    #[test]
    fn parallel_map_propagates_worker_panics() {
        let items: Vec<usize> = (0..64).collect();
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            parallel_map(&items, |&x| {
                if x == 13 {
                    panic!("boom at {x}");
                }
                x
            })
        }));
        // Must re-raise the worker's panic (not deadlock on a poisoned
        // slot, not swallow it into a partial result).
        assert!(result.is_err(), "worker panic must propagate to the caller");
    }

    #[test]
    fn sweep_monotonicity_in_list_size() {
        let (caches, n) = workload();
        let sweep = sweep_list_sizes(&caches, n, PolicyKind::Lru, &[2, 8, 32], false, 1);
        assert_eq!(sweep.len(), 3);
        assert!(
            sweep[2].result.hit_rate() >= sweep[0].result.hit_rate() - 0.02,
            "bigger lists should not hurt: {:?}",
            sweep
                .iter()
                .map(|p| p.result.hit_rate())
                .collect::<Vec<_>>()
        );
    }

    #[test]
    fn policy_comparison_orders_policies() {
        let (caches, n) = workload();
        let cmp = policy_comparison(&caches, n, &[8], 1);
        let rate = |k: PolicyKind| {
            cmp.iter().find(|(p, _)| *p == k).unwrap().1[0]
                .result
                .hit_rate()
        };
        assert!(rate(PolicyKind::Lru) > rate(PolicyKind::Random));
        assert!(rate(PolicyKind::History) > rate(PolicyKind::Random));
    }

    #[test]
    fn uploader_removal_reduces_requests_and_flattens_load() {
        let (caches, n) = workload();
        let grid = uploader_removal_grid(&caches, n, &[0.0, 0.15], &[5], 1);
        let baseline = &grid[0].1[0].result;
        let reduced = &grid[1].1[0].result;
        assert!(reduced.requests < baseline.requests);
        assert!(reduced.max_load() <= baseline.max_load());
    }

    #[test]
    fn file_removal_raises_hit_rate_here() {
        // With super-peers and popular files removed, the tight
        // communities dominate: hit rate should not collapse.
        let (caches, n) = workload();
        let grid = file_removal_grid(&caches, n, &[0.0, 0.15], &[5], 1);
        let baseline = grid[0].1[0].result.hit_rate();
        let reduced = grid[1].1[0].result.hit_rate();
        assert!(
            reduced > baseline * 0.8,
            "baseline {baseline}, reduced {reduced}"
        );
    }

    #[test]
    fn combined_table_runs_all_cells() {
        let (caches, n) = workload();
        let table = combined_removal_table(&caches, n, &[(0.05, 0.05), (0.15, 0.15)], &[5, 10], 1);
        assert_eq!(table.len(), 2);
        assert_eq!(table[0].1.len(), 2);
    }

    #[test]
    fn randomization_decays_hit_rate() {
        let (caches, n) = workload();
        let replicas: u64 = caches.iter().map(|c| c.len() as u64).sum();
        let full = edonkey_trace::randomize::recommended_iterations(replicas as usize);
        let sweep = randomization_sweep(&caches, n, 8, &[0, full / 4, full, full * 3], 2);
        assert_eq!(sweep.len(), 4);
        assert_eq!(sweep[0].swaps, 0);
        let initial = sweep[0].hit_rate;
        let final_rate = sweep[3].hit_rate;
        assert!(
            final_rate < initial - 0.1,
            "randomization must destroy most clustering: {initial} → {final_rate}"
        );
    }

    #[test]
    #[should_panic(expected = "non-decreasing")]
    fn decreasing_checkpoints_rejected() {
        let (caches, n) = workload();
        let _ = randomization_sweep(&caches, n, 5, &[10, 5], 1);
    }
}
