//! A gossip-built semantic overlay (the epidemic alternative).
//!
//! The paper's related work highlights a two-tier epidemic design
//! (Voulgaris & van Steen, evaluated on this very trace): a bottom
//! random-peer-sampling protocol keeps the overlay connected, and a top
//! protocol clusters peers by *cache-overlap proximity* — each peer
//! keeps the `S` peers whose caches overlap its own the most, improving
//! its view by gossiping candidates with neighbours every cycle.
//!
//! Where the LRU/History lists of [`crate::sim`] learn *reactively* from
//! downloads, this overlay converges *proactively*, before any search is
//! issued. Comparing the two (see `bin/gossip`) answers a design
//! question the paper leaves open: how much of the semantic-search gain
//! needs download history, and how much can be bootstrapped by gossip
//! alone?

use edonkey_trace::model::FileRef;
use edonkey_trace::pipeline::sorted_intersection_len;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashSet;

use crate::neighbours::Peer;

/// Gossip protocol parameters.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct GossipConfig {
    /// Semantic view size `S` (the neighbour list the search will use).
    pub semantic_view: usize,
    /// Random view size `R` (peer-sampling tier).
    pub random_view: usize,
    /// Gossip cycles to run.
    pub cycles: u32,
    /// RNG seed.
    pub seed: u64,
}

impl Default for GossipConfig {
    fn default() -> Self {
        GossipConfig {
            semantic_view: 20,
            random_view: 15,
            cycles: 25,
            seed: 0x905_51b,
        }
    }
}

/// The converged overlay: per-peer semantic views.
pub struct SemanticOverlay {
    /// `views[p]` = peer `p`'s semantic neighbours, best-overlap first.
    pub views: Vec<Vec<Peer>>,
    /// Gossip cycles actually run.
    pub cycles: u32,
}

/// Builds semantic views by gossip over a static cache set.
///
/// Free-riders participate in the random tier (they gossip) but are
/// never *kept* in semantic views — an empty cache overlaps nothing, so
/// proximity selection drops them naturally.
pub fn build_overlay(caches: &[Vec<FileRef>], config: &GossipConfig) -> SemanticOverlay {
    let n = caches.len();
    let mut rng = StdRng::seed_from_u64(config.seed);
    if n == 0 {
        return SemanticOverlay {
            views: Vec::new(),
            cycles: 0,
        };
    }

    // Bootstrap random views uniformly (in a deployment this is the
    // peer-sampling service; sampling uniformly is its steady state).
    let mut random_views: Vec<Vec<Peer>> = (0..n)
        .map(|p| {
            let mut view = Vec::with_capacity(config.random_view);
            let mut guard = 0;
            while view.len() < config.random_view.min(n.saturating_sub(1)) && guard < 10_000 {
                guard += 1;
                let pick = rng.gen_range(0..n) as Peer;
                if pick as usize != p && !view.contains(&pick) {
                    view.push(pick);
                }
            }
            view
        })
        .collect();

    let mut semantic_views: Vec<Vec<Peer>> = vec![Vec::new(); n];

    let overlap = |a: usize, b: usize| -> usize { sorted_intersection_len(&caches[a], &caches[b]) };

    for cycle in 0..config.cycles {
        for p in 0..n {
            // --- bottom tier: shuffle the random view (CYCLON-style) ---
            if !random_views[p].is_empty() {
                let partner = random_views[p][rng.gen_range(0..random_views[p].len())] as usize;
                // Exchange a random half of each view.
                let take_p: Vec<Peer> = sample_half(&random_views[p], &mut rng);
                let take_q: Vec<Peer> = sample_half(&random_views[partner], &mut rng);
                merge_view(&mut random_views[p], &take_q, p as Peer, config.random_view);
                merge_view(
                    &mut random_views[partner],
                    &take_p,
                    partner as Peer,
                    config.random_view,
                );
            }

            // --- top tier: improve the semantic view ---
            if caches[p].is_empty() {
                continue; // Free-riders have no proximity to optimize.
            }
            // Candidate set: current semantic view, the partner's
            // semantic view (neighbours-of-neighbours carry the gradient
            // toward the cluster), and fresh random peers.
            let mut candidates: HashSet<Peer> = semantic_views[p].iter().copied().collect();
            if let Some(&q) = semantic_views[p].first() {
                candidates.extend(semantic_views[q as usize].iter().copied());
            }
            candidates.extend(random_views[p].iter().copied());
            candidates.remove(&(p as Peer));
            let mut scored: Vec<(usize, Peer)> = candidates
                .into_iter()
                .filter(|&c| !caches[c as usize].is_empty())
                .map(|c| (overlap(p, c as usize), c))
                .filter(|&(score, _)| score > 0)
                .collect();
            scored.sort_unstable_by_key(|&(score, c)| (std::cmp::Reverse(score), c));
            scored.truncate(config.semantic_view);
            semantic_views[p] = scored.into_iter().map(|(_, c)| c).collect();
        }
        let _ = cycle;
    }

    SemanticOverlay {
        views: semantic_views,
        cycles: config.cycles,
    }
}

/// Takes up to half of a view, uniformly, without replacement.
fn sample_half(view: &[Peer], rng: &mut impl Rng) -> Vec<Peer> {
    let want = view.len().div_ceil(2);
    let mut pool: Vec<Peer> = view.to_vec();
    for i in (1..pool.len()).rev() {
        let j = rng.gen_range(0..=i);
        pool.swap(i, j);
    }
    pool.truncate(want);
    pool
}

/// Merges incoming entries into a bounded view (dedup, drop self,
/// evict oldest entries beyond capacity).
fn merge_view(view: &mut Vec<Peer>, incoming: &[Peer], owner: Peer, capacity: usize) {
    for &peer in incoming {
        if peer != owner && !view.contains(&peer) {
            view.insert(0, peer);
        }
    }
    view.truncate(capacity);
}

/// Measures the converged overlay with the Section 5.1 replay, using the
/// *fixed* gossip views as each peer's neighbour list (no reactive
/// updates — this isolates the proactive tier's contribution).
pub fn overlay_hit_rate(
    caches: &[Vec<FileRef>],
    n_files: usize,
    overlay: &SemanticOverlay,
    seed: u64,
) -> f64 {
    let mut rng = StdRng::seed_from_u64(seed);
    let view_sets: Vec<HashSet<Peer>> = overlay
        .views
        .iter()
        .map(|v| v.iter().copied().collect())
        .collect();
    let mut stream: Vec<(u32, FileRef)> = caches
        .iter()
        .enumerate()
        .flat_map(|(p, cache)| cache.iter().map(move |&f| (p as u32, f)))
        .collect();
    for i in (1..stream.len()).rev() {
        let j = rng.gen_range(0..=i);
        stream.swap(i, j);
    }
    let mut sharers: Vec<Vec<Peer>> = vec![Vec::new(); n_files];
    let (mut requests, mut hits) = (0u64, 0u64);
    for (peer, file) in stream {
        let current = &sharers[file.index()];
        if current.is_empty() {
            sharers[file.index()].push(peer);
            continue;
        }
        requests += 1;
        if current.iter().any(|s| view_sets[peer as usize].contains(s)) {
            hits += 1;
        }
        sharers[file.index()].push(peer);
    }
    if requests == 0 {
        return 0.0;
    }
    hits as f64 / requests as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn f(i: u32) -> FileRef {
        FileRef(i)
    }

    /// Communities of 6 peers with heavily overlapping caches, plus
    /// free-riders.
    fn clustered_caches() -> Vec<Vec<FileRef>> {
        let mut caches = Vec::new();
        for c in 0..8u32 {
            for p in 0..6u32 {
                let base = c * 20;
                caches.push((0..12).map(|k| f(base + (k + p) % 20)).collect());
            }
        }
        for _ in 0..10 {
            caches.push(Vec::new());
        }
        caches
    }

    #[test]
    fn views_converge_to_own_community() {
        let caches = clustered_caches();
        let overlay = build_overlay(&caches, &GossipConfig::default());
        // Peer 0 is in community 0 (peers 0..6); after convergence its
        // semantic view must be dominated by community members.
        let mut in_community = 0;
        for &n in &overlay.views[0] {
            if (n as usize) < 6 {
                in_community += 1;
            }
        }
        assert!(
            in_community >= overlay.views[0].len().saturating_sub(1).max(3),
            "view {:?} should be community 0",
            overlay.views[0]
        );
    }

    #[test]
    fn views_never_contain_self_free_riders_or_duplicates() {
        let caches = clustered_caches();
        let overlay = build_overlay(&caches, &GossipConfig::default());
        for (p, view) in overlay.views.iter().enumerate() {
            assert!(!view.contains(&(p as Peer)), "peer {p} lists itself");
            let set: HashSet<_> = view.iter().collect();
            assert_eq!(set.len(), view.len(), "peer {p} has duplicates");
            for &n in view {
                assert!(!caches[n as usize].is_empty(), "free-rider in view of {p}");
            }
        }
        // Free-riders end with empty semantic views.
        assert!(overlay.views[48].is_empty());
    }

    #[test]
    fn gossip_views_beat_random_views_on_replay() {
        let caches = clustered_caches();
        let n_files = 8 * 20;
        let gossip = build_overlay(&caches, &GossipConfig::default());
        let gossip_rate = overlay_hit_rate(&caches, n_files, &gossip, 7);
        // Random baseline: one gossip cycle only, before clustering bites.
        let cold = build_overlay(
            &caches,
            &GossipConfig {
                cycles: 0,
                ..GossipConfig::default()
            },
        );
        let cold_rate = overlay_hit_rate(&caches, n_files, &cold, 7);
        assert!(
            gossip_rate > cold_rate + 0.2,
            "converged {gossip_rate} vs cold {cold_rate}"
        );
        assert!(
            gossip_rate > 0.6,
            "communities are near-duplicates: {gossip_rate}"
        );
    }

    #[test]
    fn more_cycles_never_hurt_much() {
        let caches = clustered_caches();
        let n_files = 8 * 20;
        let short = build_overlay(
            &caches,
            &GossipConfig {
                cycles: 3,
                ..GossipConfig::default()
            },
        );
        let long = build_overlay(
            &caches,
            &GossipConfig {
                cycles: 40,
                ..GossipConfig::default()
            },
        );
        let short_rate = overlay_hit_rate(&caches, n_files, &short, 3);
        let long_rate = overlay_hit_rate(&caches, n_files, &long, 3);
        assert!(long_rate >= short_rate - 0.05, "{short_rate} → {long_rate}");
    }

    #[test]
    fn empty_inputs() {
        let overlay = build_overlay(&[], &GossipConfig::default());
        assert!(overlay.views.is_empty());
        assert_eq!(overlay_hit_rate(&[], 0, &overlay, 1), 0.0);
        // All free-riders: no requests, rate 0.
        let caches = vec![Vec::new(); 5];
        let overlay = build_overlay(&caches, &GossipConfig::default());
        assert_eq!(overlay_hit_rate(&caches, 0, &overlay, 1), 0.0);
    }

    #[test]
    fn determinism() {
        let caches = clustered_caches();
        let a = build_overlay(&caches, &GossipConfig::default());
        let b = build_overlay(&caches, &GossipConfig::default());
        assert_eq!(a.views, b.views);
    }
}
