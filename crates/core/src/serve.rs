//! Always-on query serving: the Section 5 batch simulator replayed as
//! a continuous, timed query stream through a sharded neighbour-list
//! store.
//!
//! The batch simulator ([`crate::sim`]) consumes the request stream in
//! one pass and reports totals; the real system it models — one live
//! eDonkey index serving tens of millions of queries ("Ten weeks in
//! the life of an eDonkey server", PAPERS.md) — serves *arrivals*:
//! queries land at simulated instants, wait in bounded ingress queues,
//! and observe latency. This module adds that serving plane without
//! giving up any of the repo's bit-identity guarantees:
//!
//! * **Sharding by querier.** [`SweepPrecomp`] proves request ranks and
//!   candidate uploader sets policy-independent (no outages, no
//!   two-hop), so each querier's replay is self-contained. Shards are
//!   contiguous querier ranges balanced by request count; any shard
//!   count and any thread count produce the same answers.
//! * **Tick-batched queues.** Arrivals enqueue into a bounded
//!   per-shard ingress queue; each simulated tick serves at most
//!   `service_per_tick` queries. A full queue *sheds* the arrival (the
//!   query never reaches the overlay plane: the acquisition is already
//!   pinned by the trace, but nothing is queried, recorded, or
//!   learned); a backlogged queue *defers* it (latency only). Both are
//!   accounted in a [`ServeHealth`] ledger that reconciles exactly.
//! * **Deterministic arrivals.** The nominal instant is the batch
//!   path's `t · span / len` milli-days; burst compression and
//!   `(seed, querier, tick)`-keyed splitmix64 jitter come from
//!   [`ArrivalProcess`] — no sequential RNG, so any shard can compute
//!   its own arrivals.
//! * **Latency accounting.** Simulated query latency = queue wait +
//!   one overlay round trip per attempt ([`QUERY_RTT_MD`]) + retry
//!   backoff (the PR 4 timing model, under churn) + index routing cost
//!   on final misses ([`FED_HOP_LATENCY_MD`] per federation forward,
//!   [`DHT_HOP_LATENCY_MD`] per DHT hop) — recorded in a log-bucketed
//!   [`LatencyHistogram`] (HDR-style: exact below 16 md, then 16
//!   sub-buckets per octave, ≤ 6.25 % relative error).
//!
//! **Differential contract** (pinned by `tests/service_mode.rs` and
//! the service proptest): with unbounded queues and the identity
//! arrival process, a serving replay is bit-identical to
//! [`simulate_arena_health_with_scratch`] — same [`SimResult`], same
//! [`SearchHealth`], same final neighbour lists — for every policy
//! (including Random: the engine replays the batch path's
//! policy-construction draws) and, because service instants then equal
//! the batch path's query instants, even under churn — and under an
//! adversarial plan, whose refusals, hijacks, pollution and reputation
//! defense replay the batch path's exact sequence.

use std::collections::VecDeque;
use std::sync::Mutex;

use edonkey_trace::compact::CacheArena;
use edonkey_trace::par::parallel_map_init_threads;
pub use edonkey_workload::arrivals::{ArrivalConfig, ArrivalProcess};
use edonkey_workload::churn::ChurnSchedule;

use crate::index::{IndexRoute, DHT_HOP_LATENCY_MD, FED_HOP_LATENCY_MD};
use crate::neighbours::{
    AnyPolicy, NeighbourPolicy, Peer, PolicyKind, ReputationBook, StaleReaction,
};
use crate::sim::{
    fallback_index, AdversaryPlan, QueryRec, SearchHealth, SimConfig, SimResult, SweepPrecomp,
    MEMBER_MAJOR_CUTOFF,
};

/// One overlay query round trip (ask the neighbours, hear back), in
/// simulated milli-days. Every attempt pays one; it is the latency
/// floor of an uncontended quiet hit.
pub const QUERY_RTT_MD: u64 = 1;

/// The serving engine's knobs on top of a [`SimConfig`].
///
/// The defaults are the *unconstrained* service: unbounded queues,
/// unbounded per-tick capacity, identity arrivals — the configuration
/// under which serving is bit-identical to the batch simulator.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ServeConfig {
    /// The simulation cell being served. Two-hop and server-outage
    /// configs are rejected ([`serve_arena`] panics): two-hop reads
    /// other queriers' lists across shards, and outages break the
    /// arrival-invariance that sharding rests on.
    pub sim: SimConfig,
    /// How arrivals deviate from the uniform schedule.
    pub arrival: ArrivalConfig,
    /// Shard count (contiguous querier ranges; `peer_ranges` may merge
    /// underfull ones). Part of the cell identity: results are
    /// *thread*-invariant, while queue metrics naturally depend on how
    /// arrivals are partitioned.
    pub n_shards: usize,
    /// Tick width in simulated milli-days.
    pub tick_md: u64,
    /// Bounded ingress queue: arrivals beyond this many waiting
    /// queries are shed.
    pub queue_capacity: usize,
    /// Queries served per shard per tick.
    pub service_per_tick: usize,
}

impl ServeConfig {
    /// Unconstrained service for `sim` (the differential baseline).
    pub fn new(sim: SimConfig) -> Self {
        ServeConfig {
            sim,
            arrival: ArrivalConfig::none(),
            n_shards: 8,
            tick_md: 1,
            queue_capacity: usize::MAX,
            service_per_tick: usize::MAX,
        }
    }

    /// Replaces the arrival process.
    pub fn with_arrival(mut self, arrival: ArrivalConfig) -> Self {
        self.arrival = arrival;
        self
    }

    /// Replaces the shard count.
    pub fn with_shards(mut self, n_shards: usize) -> Self {
        self.n_shards = n_shards;
        self
    }

    /// Bounds the serving plane: `tick_md`-wide ticks, at most
    /// `queue_capacity` waiting queries, `service_per_tick` served per
    /// tick per shard.
    pub fn with_service(
        mut self,
        tick_md: u64,
        queue_capacity: usize,
        service_per_tick: usize,
    ) -> Self {
        self.tick_md = tick_md;
        self.queue_capacity = queue_capacity;
        self.service_per_tick = service_per_tick;
        self
    }

    /// Panics unless the cell is servable (no two-hop, no outages).
    fn validate(&self) {
        assert!(
            !self.sim.two_hop,
            "service mode shards by querier; two-hop reads other shards' lists"
        );
        assert!(
            self.sim.availability.churn.outage_days.is_empty(),
            "service mode requires arrival invariance; server outages break it"
        );
    }
}

/// Log-bucketed latency histogram (HDR-style): values below 16 md are
/// exact; above, each power-of-two octave splits into 16 sub-buckets,
/// so any recorded value lands in a bucket whose floor is within
/// 1/16 ≈ 6.25 % of it. Buckets merge across shards by addition, and
/// percentiles report the bucket floor — both deterministic.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LatencyHistogram {
    counts: Vec<u64>,
    total: u64,
}

/// 16 linear buckets + 16 sub-buckets for each octave `2^4 ..= 2^63`.
const HISTOGRAM_BUCKETS: usize = 16 + 60 * 16;

impl LatencyHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        LatencyHistogram {
            counts: vec![0; HISTOGRAM_BUCKETS],
            total: 0,
        }
    }

    /// The bucket index of a latency value.
    #[inline]
    fn bucket_index(v: u64) -> usize {
        if v < 16 {
            v as usize
        } else {
            let msb = 63 - u64::from(v.leading_zeros());
            let sub = (v >> (msb - 4)) & 15;
            ((msb - 3) * 16 + sub) as usize
        }
    }

    /// The smallest value that lands in bucket `idx` (percentiles
    /// report this floor).
    pub fn bucket_floor(idx: usize) -> u64 {
        if idx < 16 {
            idx as u64
        } else {
            let octave = (idx / 16) as u64;
            let sub = (idx % 16) as u64;
            (16 + sub) << (octave - 1)
        }
    }

    /// Records one latency sample (milli-days).
    #[inline]
    pub fn record(&mut self, v: u64) {
        self.counts[Self::bucket_index(v)] += 1;
        self.total += 1;
    }

    /// Adds another histogram's counts (shard merge).
    pub fn merge(&mut self, other: &LatencyHistogram) {
        for (dst, &src) in self.counts.iter_mut().zip(&other.counts) {
            *dst += src;
        }
        self.total += other.total;
    }

    /// Number of recorded samples.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// The bucket floor at quantile `q ∈ (0, 1]` — the latency that at
    /// least `⌈q · total⌉` samples are at or below (up to bucket
    /// granularity). 0 on an empty histogram.
    pub fn percentile(&self, q: f64) -> u64 {
        if self.total == 0 {
            return 0;
        }
        let rank = ((q * self.total as f64).ceil() as u64).clamp(1, self.total);
        let mut seen = 0u64;
        for (idx, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return Self::bucket_floor(idx);
            }
        }
        Self::bucket_floor(HISTOGRAM_BUCKETS - 1)
    }

    /// p50 / p99 / p999 in one call (the report triple).
    pub fn p50_p99_p999(&self) -> (u64, u64, u64) {
        (
            self.percentile(0.50),
            self.percentile(0.99),
            self.percentile(0.999),
        )
    }

    /// Non-empty buckets as `(index, count)`, in index order — the
    /// golden fixture's pinned representation.
    pub fn nonzero(&self) -> impl Iterator<Item = (usize, u64)> + '_ {
        self.counts
            .iter()
            .enumerate()
            .filter(|&(_, &c)| c > 0)
            .map(|(i, &c)| (i, c))
    }
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self::new()
    }
}

/// The serving-plane ledger: every arrival of a service run, accounted
/// once, on top of the overlay plane's [`SearchHealth`]. Identities
/// (checked by [`ServeHealth::reconcile`]):
///
/// * `arrived == requests` (every request arrives exactly once)
/// * `served + shed == arrived`
/// * the embedded [`SearchHealth`] reconciles against `served` (shed
///   queries never reach the overlay plane), with `stranded == 0` —
///   service mode admits no server outages
/// * `deferred <= served`, `deferred_ticks >= deferred`, and
///   `deferred_ticks == 0` exactly when `deferred == 0`
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ServeHealth {
    /// The overlay plane's ledger over the served queries.
    pub search: SearchHealth,
    /// Queries that arrived at an ingress queue.
    pub arrived: u64,
    /// Queries dequeued and served.
    pub served: u64,
    /// Arrivals dropped at a full ingress queue.
    pub shed: u64,
    /// Served queries that waited at least one tick.
    pub deferred: u64,
    /// Total ticks waited across all served queries.
    pub deferred_ticks: u64,
    /// Deepest any ingress queue got (max over shards after a merge).
    pub max_queue_depth: u64,
}

impl ServeHealth {
    /// Checks the serving identities against raw totals. Returns a
    /// description of the first violated identity, if any.
    pub fn reconcile(&self, requests: u64, one_hop_hits: u64) -> Result<(), String> {
        if self.arrived != requests {
            return Err(format!("arrived {} != requests {requests}", self.arrived));
        }
        if self.served + self.shed != self.arrived {
            return Err(format!(
                "served {} + shed {} != arrived {}",
                self.served, self.shed, self.arrived
            ));
        }
        if self.search.stranded != 0 {
            return Err(format!(
                "stranded {} != 0 (service mode admits no outages)",
                self.search.stranded
            ));
        }
        // The overlay plane sees exactly the served queries.
        self.search.reconcile(self.served, one_hop_hits, 0)?;
        if self.deferred > self.served {
            return Err(format!(
                "deferred {} > served {}",
                self.deferred, self.served
            ));
        }
        if self.deferred_ticks < self.deferred || (self.deferred == 0 && self.deferred_ticks != 0) {
            return Err(format!(
                "deferred_ticks {} inconsistent with deferred {}",
                self.deferred_ticks, self.deferred
            ));
        }
        Ok(())
    }

    /// [`ServeHealth::reconcile`], panicking with the full cell label on
    /// violation — the same `(seed, list_size, churn_rate, backend)`
    /// identity [`SearchHealth::expect_reconciled`] carries, plus the
    /// serving plane's own coordinates: which shard, and how far it had
    /// ticked. The engine checks every shard's partial ledger as the
    /// shard finishes; "which cell, which shard" is the first question
    /// a failure raises.
    pub fn expect_reconciled(
        &self,
        requests: u64,
        one_hop_hits: u64,
        sim: &SimConfig,
        shard: usize,
        tick: u64,
    ) {
        if let Err(e) = self.reconcile(requests, one_hop_hits) {
            panic!(
                "ServeHealth failed to reconcile: {e} \
                 (seed {}, list_size {}, churn_rate {}, backend {}, shard {shard}, tick {tick})",
                sim.seed,
                sim.list_size,
                sim.availability.churn.churn_permille,
                sim.availability.backend.name()
            );
        }
    }

    /// Accumulates a shard partial (`max_queue_depth` by maximum,
    /// everything else by sum).
    fn merge(&mut self, other: &ServeHealth) {
        let s = &mut self.search;
        let o = &other.search;
        s.attempted += o.attempted;
        s.answered += o.answered;
        s.timed_out += o.timed_out;
        s.retried += o.retried;
        s.evicted_stale += o.evicted_stale;
        s.probed_stale += o.probed_stale;
        s.server_fallback += o.server_fallback;
        s.stranded += o.stranded;
        s.recovered += o.recovered;
        s.forwarded += o.forwarded;
        s.dht_hops += o.dht_hops;
        s.wasted_queries += o.wasted_queries;
        s.sybil_slots_held += o.sybil_slots_held;
        s.polluted_acquisitions += o.polluted_acquisitions;
        s.reputation_evictions += o.reputation_evictions;
        self.arrived += other.arrived;
        self.served += other.served;
        self.shed += other.shed;
        self.deferred += other.deferred;
        self.deferred_ticks += other.deferred_ticks;
        self.max_queue_depth = self.max_queue_depth.max(other.max_queue_depth);
    }
}

/// What a service run reports: the batch-shaped result, the serving
/// ledger, the latency distribution, and per-shard load metrics.
#[derive(Clone, Debug, PartialEq)]
pub struct ServeReport {
    /// Batch-shaped totals ([`SimResult::requests`] counts *arrivals*;
    /// with sheds, hits can only come from the served subset).
    pub result: SimResult,
    /// The merged serving ledger.
    pub health: ServeHealth,
    /// Latency distribution over served queries, milli-days.
    pub latency: LatencyHistogram,
    /// Queries served per shard (the load vector).
    pub shard_load: Vec<u64>,
    /// Deepest ingress queue per shard.
    pub shard_max_depth: Vec<u64>,
    /// Last tick each shard served.
    pub shard_last_tick: Vec<u64>,
    /// Final neighbour list per peer — the policy state the
    /// differential tests compare against the batch run.
    pub lists: Vec<Vec<Peer>>,
}

/// One timed arrival: the resolved request plus its perturbed instant.
#[derive(Clone, Copy)]
struct Arrival {
    arr_md: u64,
    querier: u32,
    rec: QueryRec,
}

/// Quiet-path mirror of one querier's list: members sorted by id for
/// O(log L) membership, each carrying the querier-local request index
/// from which it has been queryable — the split path's interval
/// message accounting ([`crate::sim::SplitScratch`]), kept per querier
/// because a shard interleaves thousands of them.
#[derive(Clone, Debug, Default)]
struct QuerierState {
    members: Vec<Peer>,
    starts: Vec<u32>,
    served: u32,
    init: bool,
}

impl QuerierState {
    /// Adopts the policy's initial list (non-empty only for Random).
    fn ensure_init(&mut self, list: &[Peer]) {
        if !self.init {
            self.members = list.to_vec();
            self.members.sort_unstable();
            self.starts = vec![0; self.members.len()];
            self.init = true;
        }
    }

    #[inline]
    fn is_member(&self, p: Peer) -> bool {
        self.members.binary_search(&p).is_ok()
    }

    fn add(&mut self, p: Peer, start: u32) {
        let i = self.members.binary_search(&p).unwrap_err();
        self.members.insert(i, p);
        self.starts.insert(i, start);
    }

    fn remove(&mut self, p: Peer) -> u32 {
        let i = self
            .members
            .binary_search(&p)
            .expect("removed peer is a member");
        self.members.remove(i);
        self.starts.remove(i)
    }
}

/// Per-worker scratch (reused across the shards a worker claims).
#[derive(Default)]
struct ShardScratch {
    mark: Vec<u64>,
    generation: u64,
    query_buf: Vec<Peer>,
    stale_prev: Vec<(Peer, u32)>,
    stale_cur: Vec<(Peer, u32)>,
}

/// The adversary context a shard threads into every churn-path query:
/// the role plan, the quiet/defend flags resolved once per run, and the
/// backend's pollution exposure. Adversarial cells always take the
/// churn path — [`crate::sim::AvailabilityConfig::is_quiet`] covers the
/// adversary plan — so the quiet path never needs this.
struct AdversaryCtx<'a> {
    plan: &'a AdversaryPlan,
    quiet: bool,
    defend: bool,
    exposure: u32,
}

/// One shard's complete outcome; merging in shard order reproduces the
/// engine's report for any thread count.
struct ShardOutcome {
    one_hop_hits: u64,
    messages: Vec<u64>,
    health: ServeHealth,
    latency: LatencyHistogram,
    last_tick: u64,
    lists: Vec<Vec<Peer>>,
}

/// Serves one cell with `available_parallelism` worker threads.
pub fn serve_arena(arena: &CacheArena, config: &ServeConfig) -> ServeReport {
    let threads = std::thread::available_parallelism().map_or(4, |n| n.get());
    serve_arena_threads(arena, config, threads)
}

/// [`serve_arena`] with an explicit worker count — the hook the
/// determinism tests use to prove reports are thread-invariant.
///
/// # Panics
///
/// Panics if the cell is two-hop or has server-outage days (see
/// [`ServeConfig::sim`]).
pub fn serve_arena_threads(
    arena: &CacheArena,
    config: &ServeConfig,
    threads: usize,
) -> ServeReport {
    config.validate();
    let sim = &config.sim;
    let (pre, mut rng) = SweepPrecomp::new_with_rng(arena, sim.seed);
    let n_peers = pre.n_peers;

    // Construct every peer's policy in peer order from the post-shuffle
    // generator — the exact draw sequence of the batch simulator, so
    // Random lists come out identical — then split the pool into
    // contiguous per-shard partitions.
    let sharer_pool: Vec<Peer> = (0..n_peers)
        .filter(|&p| !arena.cache(p).is_empty())
        .map(|p| p as Peer)
        .collect();
    let mut policies: Vec<AnyPolicy> = Vec::with_capacity(n_peers);
    for p in 0..n_peers {
        policies.push(AnyPolicy::new(
            sim.policy,
            sim.list_size,
            p as Peer,
            &sharer_pool,
            &mut rng,
        ));
    }
    let ranges = pre.peer_ranges(config.n_shards.max(1));
    let mut partitions: Vec<Vec<AnyPolicy>> = Vec::with_capacity(ranges.len());
    for &(lo, _) in ranges.iter().rev() {
        partitions.push(policies.split_off(lo as usize));
    }
    partitions.reverse();

    // Hand each shard its owned input through a take-once slot; workers
    // claim shards through the same order-preserving scheduler the
    // sweeps use.
    type ShardTask = (usize, (u32, u32), Mutex<Option<Vec<AnyPolicy>>>);
    let tasks: Vec<ShardTask> = ranges
        .iter()
        .zip(partitions)
        .enumerate()
        .map(|(shard, (&range, policies))| (shard, range, Mutex::new(Some(policies))))
        .collect();
    let outcomes: Vec<ShardOutcome> = parallel_map_init_threads(
        &tasks,
        threads.max(1),
        ShardScratch::default,
        |scratch, (shard, range, slot)| {
            let policies = slot
                .lock()
                .expect("shard input lock")
                .take()
                .expect("each shard input is taken exactly once");
            run_shard(
                arena,
                &pre,
                config,
                &sharer_pool,
                *shard,
                *range,
                policies,
                scratch,
            )
        },
    );

    // Shard-order merge: disjoint querier sets, plain summation.
    let mut result = SimResult {
        requests: pre.requests,
        one_hop_hits: 0,
        two_hop_hits: 0,
        contributor_seeds: pre.contributor_seeds,
        messages_per_peer: vec![0; n_peers],
    };
    let mut health = ServeHealth::default();
    let mut latency = LatencyHistogram::new();
    let mut shard_load = Vec::with_capacity(outcomes.len());
    let mut shard_max_depth = Vec::with_capacity(outcomes.len());
    let mut shard_last_tick = Vec::with_capacity(outcomes.len());
    let mut lists = Vec::with_capacity(n_peers);
    for out in &outcomes {
        result.one_hop_hits += out.one_hop_hits;
        for (dst, &src) in result.messages_per_peer.iter_mut().zip(&out.messages) {
            *dst += src;
        }
        health.merge(&out.health);
        latency.merge(&out.latency);
        shard_load.push(out.health.served);
        shard_max_depth.push(out.health.max_queue_depth);
        shard_last_tick.push(out.last_tick);
        lists.extend(out.lists.iter().cloned());
    }
    debug_assert!(health
        .reconcile(result.requests, result.one_hop_hits)
        .is_ok());
    ServeReport {
        result,
        health,
        latency,
        shard_load,
        shard_max_depth,
        shard_last_tick,
        lists,
    }
}

/// Replays one shard: builds its timed arrivals, runs the tick loop,
/// and reconciles the shard's partial ledger before returning it.
#[allow(clippy::too_many_arguments)]
fn run_shard(
    arena: &CacheArena,
    pre: &SweepPrecomp,
    config: &ServeConfig,
    sharer_pool: &[Peer],
    shard: usize,
    (lo, hi): (u32, u32),
    mut policies: Vec<AnyPolicy>,
    scratch: &mut ShardScratch,
) -> ShardOutcome {
    let sim = &config.sim;
    let tick_md = config.tick_md.max(1);
    let process = ArrivalProcess::new(config.arrival);
    let span_millis = u64::from(sim.availability.virtual_days.max(1)) * 1000;
    let stream_len = pre.stream.len().max(1) as u64;

    // Timed arrivals for this shard's queriers, in service order:
    // `(arrival instant, stream position)` — the position tie-break
    // keeps the order total and deterministic.
    let mut arrivals: Vec<Arrival> = Vec::new();
    for p in lo..hi {
        let qlo = pre.queries_off[p as usize] as usize;
        let qhi = pre.queries_off[p as usize + 1] as usize;
        for &rec in &pre.queries[qlo..qhi] {
            let base_md = u64::from(rec.t) * span_millis / stream_len;
            let arr_md = process.arrival_md(p, base_md / tick_md, base_md);
            arrivals.push(Arrival {
                arr_md,
                querier: p,
                rec,
            });
        }
    }
    arrivals.sort_unstable_by_key(|a| (a.arr_md, a.rec.t));

    let mut out = ShardOutcome {
        one_hop_hits: 0,
        messages: vec![0; pre.n_peers],
        health: ServeHealth::default(),
        latency: LatencyHistogram::new(),
        last_tick: 0,
        lists: Vec::new(),
    };
    let quiet = sim.availability.is_quiet();
    let schedule = ChurnSchedule::new(sim.availability.churn.clone());
    let router = sim.availability.backend.router(sim.seed);
    let plan = AdversaryPlan::new(sim.availability.adversary.clone());
    let adv = AdversaryCtx {
        quiet: plan.is_quiet(),
        defend: sim.availability.reputation && !plan.is_quiet(),
        exposure: sim.availability.backend.pollution_exposure(),
        plan: &plan,
    };
    // Reputation books are querier-local (like the policies), so the
    // shard partition carries the whole defense state.
    let mut books: Vec<ReputationBook> = if adv.defend {
        vec![ReputationBook::default(); (hi - lo) as usize]
    } else {
        Vec::new()
    };
    let mut states: Vec<QuerierState> = vec![QuerierState::default(); (hi - lo) as usize];
    if scratch.mark.len() < pre.n_peers {
        scratch.mark.resize(pre.n_peers, 0);
    }

    // The tick loop: enqueue this tick's arrivals (shedding past the
    // queue bound), then serve up to the per-tick capacity. An empty
    // queue fast-forwards to the next arrival's tick.
    let mut queue: VecDeque<Arrival> = VecDeque::new();
    let mut next = 0usize;
    let mut tick = 0u64;
    while next < arrivals.len() || !queue.is_empty() {
        tick = if queue.is_empty() {
            arrivals[next].arr_md / tick_md
        } else {
            tick + 1
        };
        while next < arrivals.len() && arrivals[next].arr_md / tick_md <= tick {
            out.health.arrived += 1;
            if queue.len() >= config.queue_capacity.max(1) {
                out.health.shed += 1;
            } else {
                queue.push_back(arrivals[next]);
            }
            next += 1;
        }
        out.health.max_queue_depth = out.health.max_queue_depth.max(queue.len() as u64);
        for _ in 0..config.service_per_tick.max(1) {
            let Some(arrival) = queue.pop_front() else {
                break;
            };
            let wait_ticks = tick - arrival.arr_md / tick_md;
            if wait_ticks > 0 {
                out.health.deferred += 1;
                out.health.deferred_ticks += wait_ticks;
            }
            let service_md = arrival.arr_md + wait_ticks * tick_md;
            let wait_md = wait_ticks * tick_md;
            let querier_state = &mut states[(arrival.querier - lo) as usize];
            let policy = &mut policies[(arrival.querier - lo) as usize];
            let walk_md = if quiet {
                serve_query_quiet(
                    arena,
                    pre,
                    &schedule,
                    &router,
                    &arrival,
                    service_md,
                    policy,
                    querier_state,
                    &mut out,
                )
            } else {
                let book = if adv.defend {
                    Some(&mut books[(arrival.querier - lo) as usize])
                } else {
                    None
                };
                serve_query_churn(
                    pre,
                    sim,
                    &schedule,
                    &router,
                    sharer_pool,
                    &arrival,
                    service_md,
                    policy,
                    &adv,
                    book,
                    scratch,
                    &mut out,
                )
            };
            out.health.served += 1;
            out.latency.record(wait_md + walk_md);
        }
    }
    out.last_tick = tick;

    // Settle members still listed at the end of every querier's served
    // stream (quiet-path interval accounting; no-op under churn, where
    // messages are immediate).
    for state in &states {
        for (m, &start) in state.members.iter().zip(&state.starts) {
            out.messages[*m as usize] += u64::from(state.served - start);
        }
    }
    out.lists = policies.iter().map(AnyPolicy::snapshot).collect();
    out.health
        .expect_reconciled(pre.requests_in(lo, hi), out.one_hop_hits, sim, shard, tick);
    out
}

/// Serves one quiet-regime query: rank-based hit check against the
/// querier's membership mirror, interval-settled messages, stateless
/// fallback. Returns the walk's latency contribution (everything but
/// the queue wait).
#[allow(clippy::too_many_arguments)]
fn serve_query_quiet(
    arena: &CacheArena,
    pre: &SweepPrecomp,
    schedule: &ChurnSchedule,
    router: &crate::index::IndexRouter,
    arrival: &Arrival,
    service_md: u64,
    policy: &mut AnyPolicy,
    state: &mut QuerierState,
    out: &mut ShardOutcome,
) -> u64 {
    state.ensure_init(policy.neighbours());
    let rec = arrival.rec;
    let r = rec.rank as usize;
    let prefix = &pre.arrivals[rec.off as usize..rec.off as usize + r];

    // One-hop hit: the member with the minimal arrival rank below `r`
    // — the same check as the split path's, with the mark array
    // replaced by the querier's sorted mirror (a shard interleaves
    // thousands of queriers, so a shared peer-indexed mark cannot
    // encode "member of *this* querier").
    let members = policy.neighbours();
    let uploader = if r > MEMBER_MAJOR_CUTOFF * members.len().max(1) {
        let (arena_files, arena_offsets) = arena.as_csr_parts();
        let mut best: Option<(u32, Peer)> = None;
        for &m in members {
            let row_lo = arena_offsets[m as usize] as usize;
            let row_hi = arena_offsets[m as usize + 1] as usize;
            if let Ok(pos) = arena_files[row_lo..row_hi].binary_search(&rec.file) {
                let rk = pre.rank_by[row_lo + pos];
                if (rk as usize) < r && best.is_none_or(|(b, _)| rk < b) {
                    best = Some((rk, m));
                }
            }
        }
        best.map(|(_, m)| m)
    } else {
        prefix.iter().copied().find(|&s| state.is_member(s))
    };

    out.health.search.attempted += 1;
    let (uploader, route_md) = match uploader {
        Some(u) => {
            out.one_hop_hits += 1;
            out.health.search.answered += 1;
            (u, 0)
        }
        None => {
            let day = (service_md / 1000) as u32;
            let milli = (service_md % 1000) as u32;
            let lookup = router.lookup(schedule, arrival.querier, rec.file, day, milli);
            out.health.search.forwarded += lookup.forwarded;
            out.health.search.dht_hops += lookup.dht_hops;
            debug_assert!(lookup.resolved, "no outages, so every lookup resolves");
            out.health.search.server_fallback += 1;
            (
                prefix[fallback_index(pre.seed, u64::from(rec.t), r)],
                lookup.forwarded * FED_HOP_LATENCY_MD + lookup.dht_hops * DHT_HOP_LATENCY_MD,
            )
        }
    };

    // Policy update + interval settling (the split path's accounting:
    // a member removed after this querier's `q`-th served query was
    // queried during `[start, q]`).
    let (added, removed) = policy.record_upload_with_popularity_delta(uploader, r as u32);
    if let Some(rm) = removed {
        let start = state.remove(rm);
        out.messages[rm as usize] += u64::from(state.served + 1 - start);
    }
    if let Some(ad) = added {
        state.add(ad, state.served + 1);
    }
    state.served += 1;
    QUERY_RTT_MD + route_md
}

/// Serves one churn-regime query: the batch path's timeout / retry /
/// staleness walk with immediate message accounting, clocked from the
/// *service* instant (equal to the batch instant exactly when the
/// query never waited). Adversarial cells ride this path too (refusals,
/// hijack, pollution, the reputation defense — the exact batch-path
/// sequence, so the differential contract extends to them). Returns the
/// walk's latency contribution: one round trip per attempt, the backoff
/// the retries slept, and the final miss's routing cost.
#[allow(clippy::too_many_arguments)]
fn serve_query_churn(
    pre: &SweepPrecomp,
    sim: &SimConfig,
    schedule: &ChurnSchedule,
    router: &crate::index::IndexRouter,
    sharer_pool: &[Peer],
    arrival: &Arrival,
    service_md: u64,
    policy: &mut AnyPolicy,
    adv: &AdversaryCtx,
    mut book: Option<&mut ReputationBook>,
    scratch: &mut ShardScratch,
    out: &mut ShardOutcome,
) -> u64 {
    let rec = arrival.rec;
    let r = rec.rank as usize;
    let prefix = &pre.arrivals[rec.off as usize..rec.off as usize + r];
    let query = sim.availability.query;

    let mut elapsed = 0u64;
    let mut attempt = 0u32;
    scratch.stale_prev.clear();

    let (uploader, day, milli) = loop {
        out.health.search.attempted += 1;
        if attempt > 0 {
            out.health.search.retried += 1;
        }
        let now = service_md + elapsed;
        let day = (now / 1000) as u32;
        let milli = (now % 1000) as u32;

        scratch.generation += 1;
        let mut saw_timeout = false;
        scratch.query_buf.clear();
        scratch.query_buf.extend_from_slice(policy.neighbours());
        scratch.stale_cur.clear();
        for &n in scratch.query_buf.iter() {
            if schedule.offline(n, day, milli) {
                saw_timeout = true;
                out.health.search.timed_out += 1;
                if query.handle_stale {
                    let streak = scratch
                        .stale_prev
                        .iter()
                        .find(|&&(p, _)| p == n)
                        .map_or(1, |&(_, s)| s + 1);
                    scratch.stale_cur.push((n, streak));
                    if streak >= query.stale_after.max(1) {
                        // Only the Random policy draws a replacement,
                        // statelessly — same as the batch path.
                        let replacement = match sim.policy {
                            PolicyKind::Random if !sharer_pool.is_empty() => {
                                let i = schedule.replacement_index(
                                    arrival.querier,
                                    n,
                                    day,
                                    sharer_pool.len(),
                                );
                                Some(sharer_pool[i])
                            }
                            _ => None,
                        };
                        match policy.handle_stale(n, replacement) {
                            StaleReaction::Evicted | StaleReaction::Replaced => {
                                out.health.search.evicted_stale += 1;
                            }
                            StaleReaction::Probed => out.health.search.probed_stale += 1,
                            StaleReaction::Kept => {}
                        }
                    }
                }
            } else if !adv.quiet && adv.plan.answers_nothing(n) {
                // Refused: the adversary is online and the query costs
                // a message, but no answer comes back and no mark is
                // stamped. Not a timeout — no retry or staleness fires;
                // only the reputation score can clear the slot.
                out.messages[n as usize] += 1;
                out.health.search.wasted_queries += 1;
                if adv.defend
                    && book
                        .as_deref_mut()
                        .expect("defense books exist when defending")
                        .on_query(n)
                {
                    let replacement = match sim.policy {
                        PolicyKind::Random if !sharer_pool.is_empty() => {
                            let i = schedule.replacement_index(
                                arrival.querier,
                                n,
                                day,
                                sharer_pool.len(),
                            );
                            Some(sharer_pool[i])
                        }
                        _ => None,
                    };
                    if policy.expel(n, replacement) {
                        out.health.search.reputation_evictions += 1;
                    }
                }
            } else {
                out.messages[n as usize] += 1;
                scratch.mark[n as usize] = scratch.generation;
            }
        }
        std::mem::swap(&mut scratch.stale_prev, &mut scratch.stale_cur);
        let uploader: Option<Peer> = prefix
            .iter()
            .copied()
            .find(|&s| scratch.mark[s as usize] == scratch.generation);

        if uploader.is_some() || !saw_timeout || attempt >= query.max_retries {
            break (uploader, day, milli);
        }
        elapsed += query.backoff_for(attempt);
        attempt += 1;
    };

    let route_md = match uploader {
        Some(u) => {
            out.one_hop_hits += 1;
            out.health.search.answered += 1;
            record_after_walk(
                adv,
                pre.n_peers,
                arrival.querier,
                rec,
                u,
                false,
                policy,
                book,
                &mut out.health.search,
            );
            0
        }
        None => {
            let lookup = router.lookup(schedule, arrival.querier, rec.file, day, milli);
            out.health.search.forwarded += lookup.forwarded;
            out.health.search.dht_hops += lookup.dht_hops;
            debug_assert!(lookup.resolved, "no outages, so every lookup resolves");
            out.health.search.server_fallback += 1;
            let pick = prefix[fallback_index(pre.seed, u64::from(rec.t), r)];
            record_after_walk(
                adv,
                pre.n_peers,
                arrival.querier,
                rec,
                pick,
                true,
                policy,
                book,
                &mut out.health.search,
            );
            lookup.forwarded * FED_HOP_LATENCY_MD + lookup.dht_hops * DHT_HOP_LATENCY_MD
        }
    };
    u64::from(attempt + 1) * QUERY_RTT_MD + elapsed + route_md
}

/// The record step at the end of a churn-path walk, mirroring the batch
/// simulator's adversarial record exactly: pollution is checked first
/// and only on fallback records, sybil hijack applies to anything the
/// pollution left alone, a banned peer is never recorded again, and the
/// defense book learns from the record's membership delta. Quiet plans
/// reduce to the plain record.
#[allow(clippy::too_many_arguments)]
fn record_after_walk(
    adv: &AdversaryCtx,
    n_peers: usize,
    querier: u32,
    rec: QueryRec,
    uploader: Peer,
    fell_back: bool,
    policy: &mut AnyPolicy,
    book: Option<&mut ReputationBook>,
    health: &mut SearchHealth,
) {
    if adv.quiet {
        let _ = policy.record_upload_with_popularity_delta(uploader, rec.rank);
        return;
    }
    let mut recorded = uploader;
    let mut polluted = false;
    let mut hijacked = false;
    if fell_back {
        if let Some(pol) = adv
            .plan
            .polluter(rec.file.index() as u64, adv.exposure, n_peers)
        {
            recorded = pol;
            polluted = true;
        }
    }
    if !polluted {
        if let Some(syb) = adv.plan.hijacker(querier, u64::from(rec.t), n_peers) {
            recorded = syb;
            hijacked = true;
        }
    }
    if adv.defend && (polluted || hijacked) && book.as_ref().is_some_and(|b| b.banned(recorded)) {
        // A banned peer's claim is void: the querier ignores it and
        // credits the peer it actually downloaded from — exactly as in
        // the batch path.
        recorded = uploader;
        polluted = false;
        hijacked = false;
    }
    if adv.defend && book.as_ref().is_some_and(|b| b.banned(recorded)) {
        // The genuine uploader itself is banned (a fallback pick can
        // land on an attacker): nothing is recorded.
    } else {
        if polluted {
            health.polluted_acquisitions += 1;
        } else if hijacked {
            health.sybil_slots_held += 1;
        }
        let (added, removed) = policy.record_upload_with_popularity_delta(recorded, rec.rank);
        if adv.defend {
            let b = book.expect("defense books exist when defending");
            if polluted || hijacked {
                if (added == Some(recorded) || policy.contains(recorded))
                    && b.suspect(recorded)
                    && policy.expel(recorded, None)
                {
                    health.reputation_evictions += 1;
                }
            } else if b.contains(recorded) {
                b.redeem(recorded);
            }
            if let Some(rm) = removed {
                b.remove(rm);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::{simulate_arena_health_with_scratch, AvailabilityConfig, SimScratch};
    use edonkey_trace::model::FileRef;
    use edonkey_workload::churn::QueryPolicy;

    /// A tight community: every peer shares the same files.
    fn community(n_peers: u32, n_files: u32) -> CacheArena {
        let caches: Vec<Vec<FileRef>> = (0..n_peers)
            .map(|_| (0..n_files).map(FileRef).collect())
            .collect();
        CacheArena::from_caches(&caches, n_files as usize)
    }

    #[test]
    fn histogram_buckets_are_exact_then_logarithmic() {
        for v in [0u64, 1, 15] {
            assert_eq!(LatencyHistogram::bucket_index(v), v as usize);
            assert_eq!(
                LatencyHistogram::bucket_floor(LatencyHistogram::bucket_index(v)),
                v
            );
        }
        // Above 16 the floor is within 1/16 of the value.
        for v in [16u64, 17, 100, 1_000, 123_456, u64::MAX / 3] {
            let floor = LatencyHistogram::bucket_floor(LatencyHistogram::bucket_index(v));
            assert!(floor <= v);
            assert!(v - floor <= v / 16, "{v} vs floor {floor}");
        }
        assert!(LatencyHistogram::bucket_index(u64::MAX) < HISTOGRAM_BUCKETS);
    }

    #[test]
    fn histogram_percentiles_walk_the_counts() {
        let mut h = LatencyHistogram::new();
        assert_eq!(h.percentile(0.5), 0);
        for v in 1..=100u64 {
            h.record(v);
        }
        assert_eq!(h.total(), 100);
        let (p50, p99, p999) = h.p50_p99_p999();
        assert_eq!(p50, 50);
        assert!((96..=99).contains(&p99), "p99 {p99}");
        assert!((96..=100).contains(&p999), "p999 {p999}");
        let mut other = LatencyHistogram::new();
        other.record(7);
        other.merge(&h);
        assert_eq!(other.total(), 101);
    }

    #[test]
    fn unconstrained_serve_matches_batch_for_every_policy() {
        let arena = community(12, 30);
        for sim in [
            SimConfig::lru(5),
            SimConfig::history(5),
            SimConfig::random(5),
            SimConfig::rare_lru(5, 10),
        ] {
            let mut scratch = SimScratch::new();
            let (batch, batch_health) =
                simulate_arena_health_with_scratch(&arena, &sim, &mut scratch);
            let report = serve_arena_threads(&arena, &ServeConfig::new(sim.clone()), 2);
            assert_eq!(report.result, batch, "{:?}", sim.policy);
            assert_eq!(report.health.search, batch_health, "{:?}", sim.policy);
            assert_eq!(report.lists, scratch.final_lists(), "{:?}", sim.policy);
            assert_eq!(report.health.shed, 0);
            assert_eq!(report.health.deferred, 0);
            assert_eq!(report.latency.total(), report.health.served);
        }
    }

    #[test]
    fn unconstrained_churn_serve_matches_batch() {
        // With zero queue wait the service instants equal the batch
        // instants, so even the churn walk is bit-identical — Random
        // included (construction draws + stateless replacements).
        let arena = community(12, 30);
        for policy in [SimConfig::lru(6), SimConfig::random(6)] {
            let sim = policy.with_seed(9).with_availability(
                AvailabilityConfig::churn(77, 250).with_query(QueryPolicy::retry_evict()),
            );
            let mut scratch = SimScratch::new();
            let (batch, batch_health) =
                simulate_arena_health_with_scratch(&arena, &sim, &mut scratch);
            let report = serve_arena_threads(&arena, &ServeConfig::new(sim.clone()), 3);
            assert_eq!(report.result, batch, "{:?}", sim.policy);
            assert_eq!(report.health.search, batch_health, "{:?}", sim.policy);
            assert_eq!(report.lists, scratch.final_lists(), "{:?}", sim.policy);
        }
    }

    #[test]
    fn unconstrained_adversarial_serve_matches_batch() {
        // Adversarial cells ride the churn path; with zero queue wait
        // the service instants equal the batch instants, so refusals,
        // hijacks, pollution and the reputation defense replay the
        // batch sequence bit-for-bit — result, full ledger and final
        // lists, for every policy.
        let arena = community(30, 60);
        let adversary = crate::sim::AdversaryConfig::sybils(21, 150)
            .with_polluters(150)
            .with_freeriders(150);
        for policy in [
            SimConfig::lru(4),
            SimConfig::history(4),
            SimConfig::random(4),
            SimConfig::rare_lru(4, 10),
        ] {
            let sim = policy.with_seed(9).with_availability(
                AvailabilityConfig::churn(77, 250)
                    .with_query(QueryPolicy::retry_evict())
                    .with_adversary(adversary.clone())
                    .with_reputation(),
            );
            let mut scratch = SimScratch::new();
            let (batch, batch_health) =
                simulate_arena_health_with_scratch(&arena, &sim, &mut scratch);
            assert!(
                batch_health.wasted_queries > 0,
                "{:?}: the cell must actually exercise the adversary",
                sim.policy
            );
            let report = serve_arena_threads(&arena, &ServeConfig::new(sim.clone()), 3);
            assert_eq!(report.result, batch, "{:?}", sim.policy);
            assert_eq!(report.health.search, batch_health, "{:?}", sim.policy);
            assert_eq!(report.lists, scratch.final_lists(), "{:?}", sim.policy);
        }
    }

    #[test]
    fn reports_are_shard_merge_deterministic_across_threads() {
        let arena = community(16, 40);
        let config = ServeConfig::new(SimConfig::lru(4))
            .with_arrival(ArrivalConfig::bursty(5, 400, 20))
            .with_service(10, 8, 2);
        let base = serve_arena_threads(&arena, &config, 1);
        for threads in [2usize, 8] {
            assert_eq!(serve_arena_threads(&arena, &config, threads), base);
        }
    }

    #[test]
    fn bounded_service_defers_and_bounded_queue_sheds() {
        let arena = community(16, 40);
        // One query per tick over wide ticks: the per-day request burst
        // must queue up behind the capacity.
        let deferring = ServeConfig::new(SimConfig::lru(4)).with_service(100, usize::MAX, 1);
        let report = serve_arena_threads(&arena, &deferring, 2);
        assert!(report.health.deferred > 0, "capacity 1 must defer");
        assert_eq!(report.health.shed, 0, "unbounded queue never sheds");
        assert_eq!(report.result.requests, report.health.arrived);

        let shedding = ServeConfig::new(SimConfig::lru(4)).with_service(100, 2, 1);
        let report = serve_arena_threads(&arena, &shedding, 2);
        assert!(report.health.shed > 0, "a 2-deep queue must shed");
        assert!(
            report.health.max_queue_depth <= 2 + 1,
            "depth is measured after the enqueue phase"
        );
        // Shed queries never reach the overlay plane, but the ledger
        // still reconciles exactly.
        report
            .health
            .reconcile(report.result.requests, report.result.one_hop_hits)
            .expect("shedding run must reconcile");
        assert!(report.health.served < report.health.arrived);
    }

    #[test]
    fn latency_counts_waits_backoffs_and_routing() {
        let arena = community(12, 30);
        // Quiet single server, no waits: every query costs exactly one
        // round trip.
        let quiet = serve_arena_threads(&arena, &ServeConfig::new(SimConfig::lru(5)), 2);
        assert_eq!(quiet.latency.percentile(1.0), QUERY_RTT_MD);

        // A forwarding backend adds routing cost to fallbacks only.
        let fed = serve_arena_threads(
            &arena,
            &ServeConfig::new(
                SimConfig::lru(5)
                    .with_backend(crate::index::IndexBackend::Federated { n_servers: 8 }),
            ),
            2,
        );
        assert_eq!(fed.result, quiet.result, "routing never changes answers");
        assert!(fed.health.search.forwarded > 0);
        assert!(fed.latency.percentile(1.0) > QUERY_RTT_MD);

        // Churn retries sleep through backoffs ≥ 60 md.
        let churn = serve_arena_threads(
            &arena,
            &ServeConfig::new(SimConfig::lru(5).with_availability(
                AvailabilityConfig::churn(3, 400).with_query(QueryPolicy::retry_evict()),
            )),
            2,
        );
        assert!(churn.health.search.retried > 0);
        assert!(churn.latency.percentile(1.0) >= 60);
    }

    #[test]
    #[should_panic(expected = "two-hop")]
    fn rejects_two_hop_cells() {
        let arena = community(4, 4);
        let config = ServeConfig::new(SimConfig::lru(2).with_two_hop());
        serve_arena_threads(&arena, &config, 1);
    }

    #[test]
    #[should_panic(
        expected = "(seed 42, list_size 5, churn_rate 250, backend dht_k3, shard 3, tick 99)"
    )]
    fn serve_health_panic_names_the_cell_shard_and_tick() {
        // A doctored ledger: one arrival went missing. The panic must
        // localize the full cell — seed, list size, churn rate and
        // backend kind, as the batch ledger's does — plus the serving
        // plane's own coordinates.
        let health = ServeHealth {
            arrived: 4,
            served: 5,
            shed: 0,
            ..ServeHealth::default()
        };
        let sim = SimConfig::lru(5).with_seed(42).with_availability(
            AvailabilityConfig::churn(7, 250)
                .with_backend(crate::index::IndexBackend::Dht { replication_k: 3 }),
        );
        health.expect_reconciled(5, 2, &sim, 3, 99);
    }

    #[test]
    fn serve_health_reconcile_rejects_each_violation() {
        let good = ServeHealth {
            search: SearchHealth {
                attempted: 5,
                answered: 3,
                server_fallback: 2,
                ..SearchHealth::default()
            },
            arrived: 6,
            served: 5,
            shed: 1,
            deferred: 2,
            deferred_ticks: 4,
            max_queue_depth: 3,
        };
        good.reconcile(6, 3).expect("the doctored-good ledger");
        assert!(good.reconcile(7, 3).unwrap_err().contains("arrived"));
        let bad = ServeHealth { shed: 2, ..good };
        assert!(bad.reconcile(6, 3).unwrap_err().contains("shed"));
        let bad = ServeHealth {
            search: SearchHealth {
                stranded: 1,
                ..good.search
            },
            ..good
        };
        assert!(bad.reconcile(6, 3).unwrap_err().contains("stranded"));
        let bad = ServeHealth {
            deferred: 6,
            deferred_ticks: 6,
            ..good
        };
        assert!(bad.reconcile(6, 3).unwrap_err().contains("deferred"));
        let bad = ServeHealth {
            deferred: 0,
            deferred_ticks: 1,
            ..good
        };
        assert!(bad.reconcile(6, 3).unwrap_err().contains("deferred_ticks"));
    }
}
