//! Trace surgery for the sensitivity experiments: removing generous
//! uploaders (Fig. 19) and popular files (Fig. 20, Table 3).

use edonkey_trace::model::FileRef;

/// Empties the caches of the top `fraction` most generous uploaders
/// (ranked by cache size among non-free-riders), returning the modified
/// caches and how many uploaders were removed.
///
/// The paper removes "the 5, 10 and 15 % most generous uploaders from
/// the non free-riders" — their files vanish from the system and they
/// issue no requests.
///
/// Ties at the cut boundary are broken by peer index for determinism.
pub fn remove_top_uploaders(caches: &[Vec<FileRef>], fraction: f64) -> (Vec<Vec<FileRef>>, usize) {
    assert!((0.0..=1.0).contains(&fraction), "fraction must be in [0,1]");
    let mut sharers: Vec<(usize, usize)> = caches
        .iter()
        .enumerate()
        .filter(|(_, c)| !c.is_empty())
        .map(|(p, c)| (p, c.len()))
        .collect();
    sharers.sort_unstable_by_key(|&(p, len)| (std::cmp::Reverse(len), p));
    let k = (sharers.len() as f64 * fraction).round() as usize;
    let mut out = caches.to_vec();
    for &(p, _) in &sharers[..k.min(sharers.len())] {
        out[p].clear();
    }
    (out, k.min(sharers.len()))
}

/// Removes the top `fraction` most popular files (by holder count) from
/// every cache, returning the modified caches and the removed files.
///
/// This shrinks the request stream exactly as the paper reports (67 %,
/// 48 % and 33 % of requests remain after removing 5 %, 15 % and 30 % of
/// the most popular files). Popularity ranks only count files with at
/// least one holder; ties break by file index.
pub fn remove_top_files(
    caches: &[Vec<FileRef>],
    n_files: usize,
    fraction: f64,
) -> (Vec<Vec<FileRef>>, Vec<FileRef>) {
    assert!((0.0..=1.0).contains(&fraction), "fraction must be in [0,1]");
    let mut counts = vec![0u32; n_files];
    for cache in caches {
        for f in cache {
            counts[f.index()] += 1;
        }
    }
    let mut ranked: Vec<u32> = (0..n_files as u32)
        .filter(|&i| counts[i as usize] > 0)
        .collect();
    ranked.sort_unstable_by_key(|&i| (std::cmp::Reverse(counts[i as usize]), i));
    let k = (ranked.len() as f64 * fraction).round() as usize;
    let removed: Vec<FileRef> = ranked[..k.min(ranked.len())]
        .iter()
        .map(|&i| FileRef(i))
        .collect();
    let mut dead = vec![false; n_files];
    for f in &removed {
        dead[f.index()] = true;
    }
    let out = caches
        .iter()
        .map(|cache| cache.iter().copied().filter(|f| !dead[f.index()]).collect())
        .collect();
    (out, removed)
}

/// Total replicas in a cache set — the request-stream size the paper
/// quotes when reporting how removals shrink the workload.
pub fn replica_count(caches: &[Vec<FileRef>]) -> u64 {
    caches.iter().map(|c| c.len() as u64).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn f(i: u32) -> FileRef {
        FileRef(i)
    }

    fn caches() -> Vec<Vec<FileRef>> {
        vec![
            (0..10).map(f).collect(), // generous: 10 files
            vec![f(0), f(1)],
            vec![f(0)],
            vec![],
        ]
    }

    #[test]
    fn top_uploader_removal() {
        let (out, removed) = remove_top_uploaders(&caches(), 0.34);
        assert_eq!(removed, 1, "one of three sharers");
        assert!(out[0].is_empty(), "the generous peer is emptied");
        assert_eq!(out[1].len(), 2);
        assert_eq!(replica_count(&out), 3);
    }

    #[test]
    fn uploader_removal_extremes() {
        let (out, removed) = remove_top_uploaders(&caches(), 0.0);
        assert_eq!(removed, 0);
        assert_eq!(out, caches());
        let (out, removed) = remove_top_uploaders(&caches(), 1.0);
        assert_eq!(removed, 3);
        assert_eq!(replica_count(&out), 0);
    }

    #[test]
    fn popular_file_removal() {
        // Popularity: f0 = 3, f1 = 2, rest 1. Remove top ~10% (1 of 10).
        let (out, removed) = remove_top_files(&caches(), 10, 0.1);
        assert_eq!(removed, vec![f(0)]);
        assert_eq!(out[2], Vec::<FileRef>::new());
        assert_eq!(out[0].len(), 9);
        assert_eq!(replica_count(&out), 10);
    }

    #[test]
    fn file_removal_only_counts_held_files() {
        // n_files = 100 but only 10 are held; fraction applies to the 10.
        let (_, removed) = remove_top_files(&caches(), 100, 0.2);
        assert_eq!(removed.len(), 2);
        assert_eq!(removed, vec![f(0), f(1)]);
    }

    #[test]
    #[should_panic(expected = "fraction must be in")]
    fn bad_fraction_rejected() {
        let _ = remove_top_uploaders(&caches(), 1.5);
    }
}
