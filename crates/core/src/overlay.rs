//! A live semantic overlay: the paper's announced next step.
//!
//! The conclusion of the paper: *"We have now started an implementation
//! of semantic links in an eDonkey client, MLdonkey, and will soon
//! report results on their efficiency."* This module is that system, in
//! simulation: instead of replaying a static trace (Section 5.1), peers
//! maintain their semantic lists **across days of real cache churn** —
//! every file a peer acquires on day `d` is a query issued against the
//! overlay as it existed that morning, answered by peers' *actual
//! day-`d` caches*, after which the uploader enters the requester's
//! list.
//!
//! This tests the claim behind Figs. 15–17 operationally: interest
//! proximity persists under ~5 replacements/client/day, so a neighbour
//! list learned yesterday keeps answering today. The per-day hit-rate
//! series shows the overlay warming up and then *staying* warm.

use edonkey_trace::compact::RowBits;
use edonkey_trace::model::FileRef;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashSet;

use crate::index::{IndexBackend, IndexRoute};
use crate::neighbours::{
    AnyPolicy, NeighbourPolicy, Peer, PolicyKind, ReputationBook, StaleReaction,
};
use crate::sim::{AdversaryPlan, AvailabilityConfig, ChurnSchedule, SearchHealth};

/// Live-overlay parameters.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct OverlayConfig {
    /// Neighbour list length.
    pub list_size: usize,
    /// List maintenance policy.
    pub policy: PolicyKind,
    /// RNG seed (request order within a day, fallback uploader picks).
    pub seed: u64,
    /// Peer-availability regime (quiet by default). Churn draws and
    /// outage days are keyed by the day *offset* from the start of the
    /// history, not the absolute day number.
    pub availability: AvailabilityConfig,
}

impl OverlayConfig {
    /// LRU with the given list size.
    pub fn lru(list_size: usize) -> Self {
        OverlayConfig {
            list_size,
            policy: PolicyKind::Lru,
            seed: 0x007e_51a7,
            availability: AvailabilityConfig::none(),
        }
    }

    /// Runs under the given availability regime.
    pub fn with_availability(mut self, availability: AvailabilityConfig) -> Self {
        self.availability = availability;
        self
    }

    /// Replaces the index backend (keeping the rest of the availability
    /// regime).
    pub fn with_backend(mut self, backend: IndexBackend) -> Self {
        self.availability.backend = backend;
        self
    }
}

/// One day of overlay operation.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct OverlayDayStats {
    /// Absolute day number.
    pub day: u32,
    /// Queries issued (files newly acquired that day by some peer).
    pub requests: u64,
    /// Queries answered by a semantic neighbour's live cache.
    pub hits: u64,
}

impl OverlayDayStats {
    /// The day's hit rate in `[0,1]`.
    pub fn hit_rate(&self) -> f64 {
        if self.requests == 0 {
            return 0.0;
        }
        self.hits as f64 / self.requests as f64
    }
}

/// Runs the live overlay over a ground-truth cache history.
///
/// `days[d][p]` is peer `p`'s sorted cache on day `start_day + d` (the
/// `edonkey_workload::GroundTruth` layout). Day 0 only warms the lists
/// (its acquisitions have no "yesterday"); days `1..` each replay the
/// day's acquisitions as queries against the *previous evening's*
/// caches, then record the uploads into the lists.
///
/// # Examples
///
/// ```
/// use edonkey_semsearch::overlay::{simulate_overlay, OverlayConfig};
/// use edonkey_trace::model::FileRef;
///
/// // Peer 1 acquires on day 1 a file peer 0 already shared on day 0:
/// // that is one overlay query. (Same-day co-acquirers are both
/// // original contributors — queries run against *yesterday's* caches.)
/// let day0 = vec![vec![FileRef(0)], vec![FileRef(1)]];
/// let day1 = vec![vec![FileRef(0)], vec![FileRef(0), FileRef(1)]];
/// let stats = simulate_overlay(&[day0, day1], 100, 2, &OverlayConfig::lru(5));
/// assert_eq!(stats.len(), 2);
/// assert_eq!(stats[1].requests, 1);
/// ```
pub fn simulate_overlay(
    days: &[Vec<Vec<FileRef>>],
    start_day: u32,
    n_files: usize,
    config: &OverlayConfig,
) -> Vec<OverlayDayStats> {
    simulate_overlay_health(days, start_day, n_files, config).0
}

/// [`simulate_overlay`], also returning the availability ledger
/// (`health.reconcile(total_requests, total_hits, 0)` holds for every
/// config).
///
/// Under a non-quiet [`AvailabilityConfig`] the day's acquisitions are
/// spread over the day in milli-days; queries to offline list members
/// time out (with the per-policy staleness reaction), the querier
/// retries per its `QueryPolicy` — backoff can carry an attempt into
/// the next day's schedule — and a holder must be online to answer.
/// Overlay misses during a server-outage day strand: the upload never
/// happens and nothing is recorded. (The *cache* still changes — the
/// ground-truth history is what it is — but the semantic link is lost.)
///
/// Under an adversarial plan the overlay behaves like the batch
/// simulator's: adversarial members swallow queries without answering
/// (wasted, not timed out), adversarial holders never answer, sybils
/// hijack record slots (keyed by a running acquisition number),
/// polluters poison fallback records, and the armed reputation defense
/// bans attackers out of the lists. Quiet plans change nothing, bit for
/// bit.
pub fn simulate_overlay_health(
    days: &[Vec<Vec<FileRef>>],
    start_day: u32,
    n_files: usize,
    config: &OverlayConfig,
) -> (Vec<OverlayDayStats>, SearchHealth) {
    let mut health = SearchHealth::default();
    let Some(first) = days.first() else {
        return (Vec::new(), health);
    };
    let n_peers = first.len();
    let mut rng = StdRng::seed_from_u64(config.seed);
    let sharer_pool: Vec<Peer> = first
        .iter()
        .enumerate()
        .filter(|(_, c)| !c.is_empty())
        .map(|(p, _)| p as Peer)
        .collect();
    let mut policies: Vec<AnyPolicy> = (0..n_peers)
        .map(|p| {
            AnyPolicy::new(
                config.policy,
                config.list_size,
                p as Peer,
                &sharer_pool,
                &mut rng,
            )
        })
        .collect();

    let schedule = ChurnSchedule::new(config.availability.churn.clone());
    let quiet = schedule.is_quiet();
    let query = config.availability.query;
    // Final misses route through the index backend; SingleServer is the
    // byte-identical pre-trait path (outage check + zero-cost resolve).
    let router = config.availability.backend.router(config.seed);
    let plan = AdversaryPlan::new(config.availability.adversary.clone());
    let adv_quiet = plan.is_quiet();
    let defend = config.availability.reputation && !adv_quiet;
    let exposure = config.availability.backend.pollution_exposure();
    let mut books: Vec<ReputationBook> = if defend {
        vec![ReputationBook::default(); n_peers]
    } else {
        Vec::new()
    };
    // Hijack draws are keyed by a running acquisition number — the
    // overlay's analogue of the batch simulator's stream position.
    let mut acq_no: u64 = 0;
    let mut query_buf: Vec<Peer> = Vec::new();
    // Per-request consecutive-timeout streaks (see `SimScratch`).
    let mut stale_prev: Vec<(Peer, u32)> = Vec::new();
    let mut stale_cur: Vec<(Peer, u32)> = Vec::new();
    // Reused bitset for the popular-file membership probe.
    let mut member_bits = RowBits::new();
    member_bits.ensure(n_peers);

    let mut stats = Vec::with_capacity(days.len());
    stats.push(OverlayDayStats {
        day: start_day,
        requests: 0,
        hits: 0,
    });

    // Yesterday's state: per-peer membership sets and per-file holders.
    let mut membership: Vec<HashSet<FileRef>> =
        first.iter().map(|c| c.iter().copied().collect()).collect();
    let mut holders: Vec<Vec<Peer>> = vec![Vec::new(); n_files];
    for (p, cache) in first.iter().enumerate() {
        for f in cache {
            holders[f.index()].push(p as Peer);
        }
    }

    for (offset, today) in days.iter().enumerate().skip(1) {
        let mut day_stats = OverlayDayStats {
            day: start_day + offset as u32,
            requests: 0,
            hits: 0,
        };
        // The day's acquisitions, shuffled across peers so no peer gets
        // systematic first-mover advantage.
        let mut acquisitions: Vec<(Peer, FileRef)> = Vec::new();
        for (p, cache) in today.iter().enumerate() {
            for &f in cache {
                if !membership[p].contains(&f) {
                    acquisitions.push((p as Peer, f));
                }
            }
        }
        for i in (1..acquisitions.len()).rev() {
            let j = rng.gen_range(0..=i);
            acquisitions.swap(i, j);
        }
        let day_len = acquisitions.len().max(1) as u64;

        for (j, &(peer, file)) in acquisitions.iter().enumerate() {
            let sources = &holders[file.index()];
            if sources.is_empty() {
                // Original contributor (file newly born or newly entering
                // circulation): nothing to query.
                continue;
            }
            day_stats.requests += 1;
            acq_no += 1;

            // Acquisition j of the day happens j/day_len through it.
            let base_millis = j as u64 * 1000 / day_len;
            let mut elapsed = 0u64;
            let mut attempt = 0u32;
            stale_prev.clear();

            let (found, day, milli) = loop {
                health.attempted += 1;
                if attempt > 0 {
                    health.retried += 1;
                }
                let now = base_millis + elapsed;
                let day = offset as u32 + (now / 1000) as u32;
                let milli = (now % 1000) as u32;

                // Offline list members time out (with the per-policy
                // staleness reaction); the list is copied out first
                // because the reaction mutates it mid-walk.
                let mut saw_timeout = false;
                if !quiet || !adv_quiet {
                    query_buf.clear();
                    query_buf.extend_from_slice(policies[peer as usize].neighbours());
                    stale_cur.clear();
                    for &n in query_buf.iter() {
                        if quiet || !schedule.offline(n, day, milli) {
                            // Online. An adversarial member swallows the
                            // query without answering — wasted, not
                            // timed out, so no retry or staleness fires;
                            // only the reputation score can clear it.
                            if !adv_quiet && plan.answers_nothing(n) {
                                health.wasted_queries += 1;
                                if defend && books[peer as usize].on_query(n) {
                                    let replacement = match config.policy {
                                        PolicyKind::Random if !sharer_pool.is_empty() => {
                                            let i = schedule.replacement_index(
                                                peer,
                                                n,
                                                day,
                                                sharer_pool.len(),
                                            );
                                            Some(sharer_pool[i])
                                        }
                                        _ => None,
                                    };
                                    if policies[peer as usize].expel(n, replacement) {
                                        health.reputation_evictions += 1;
                                    }
                                }
                            }
                            continue;
                        }
                        saw_timeout = true;
                        health.timed_out += 1;
                        if query.handle_stale {
                            let streak = stale_prev
                                .iter()
                                .find(|&&(p, _)| p == n)
                                .map_or(1, |&(_, s)| s + 1);
                            stale_cur.push((n, streak));
                            if streak < query.stale_after.max(1) {
                                continue;
                            }
                            let replacement = match config.policy {
                                PolicyKind::Random if !sharer_pool.is_empty() => {
                                    let i =
                                        schedule.replacement_index(peer, n, day, sharer_pool.len());
                                    Some(sharer_pool[i])
                                }
                                _ => None,
                            };
                            match policies[peer as usize].handle_stale(n, replacement) {
                                StaleReaction::Evicted | StaleReaction::Replaced => {
                                    health.evicted_stale += 1;
                                }
                                StaleReaction::Probed => health.probed_stale += 1,
                                StaleReaction::Kept => {}
                            }
                        }
                    }
                    std::mem::swap(&mut stale_prev, &mut stale_cur);
                }

                // Membership probe over the *post-staleness* list. For
                // popular files the list is stamped into a word-level
                // bitset once and each source probes a single bit; rare
                // files keep the direct membership test. The scan order
                // is the same either way, so the answer is too.
                let policy = &policies[peer as usize];
                let uploader = if sources.len() * 4 >= policy.neighbours().len() {
                    member_bits.clear();
                    for &m in policy.neighbours() {
                        member_bits.insert(m);
                    }
                    sources.iter().copied().find(|&s| {
                        member_bits.contains(s)
                            && (quiet || !schedule.offline(s, day, milli))
                            && (adv_quiet || !plan.answers_nothing(s))
                    })
                } else {
                    sources.iter().copied().find(|&s| {
                        policy.contains(s)
                            && (quiet || !schedule.offline(s, day, milli))
                            && (adv_quiet || !plan.answers_nothing(s))
                    })
                };

                if uploader.is_some() || !saw_timeout || attempt >= query.max_retries {
                    break (uploader, day, milli);
                }
                elapsed += query.backoff_for(attempt);
                attempt += 1;
            };

            let (uploader, fell_back) = match found {
                Some(u) => {
                    day_stats.hits += 1;
                    health.answered += 1;
                    if schedule.server_out(day) {
                        health.recovered += 1;
                    }
                    (u, false)
                }
                None => {
                    let lookup = router.lookup(&schedule, peer, file, day, milli);
                    health.forwarded += lookup.forwarded;
                    health.dht_hops += lookup.dht_hops;
                    if !lookup.resolved {
                        // Overlay miss with the index unreachable: the
                        // upload never happens and no link is recorded
                        // (the stranded path consumes no RNG, keeping
                        // SingleServer draws in lockstep with the
                        // reference).
                        health.stranded += 1;
                        continue;
                    }
                    health.server_fallback += 1;
                    (sources[rng.gen_range(0..sources.len())], true)
                }
            };
            if adv_quiet {
                policies[peer as usize].record_upload(uploader);
            } else {
                // Pollution replaces the *recorded* uploader only after
                // the fallback draw above, keeping the RNG sequence in
                // lockstep with the honest run. The rest mirrors the
                // batch simulator's record step: pollution (fallback
                // only) before hijack, banned peers never recorded,
                // and the defense book learning from the delta.
                let mut recorded = uploader;
                let mut polluted = false;
                let mut hijacked = false;
                if fell_back {
                    if let Some(pol) = plan.polluter(file.index() as u64, exposure, n_peers) {
                        recorded = pol;
                        polluted = true;
                    }
                }
                if !polluted {
                    if let Some(syb) = plan.hijacker(peer, acq_no, n_peers) {
                        recorded = syb;
                        hijacked = true;
                    }
                }
                if defend && (polluted || hijacked) && books[peer as usize].banned(recorded) {
                    // A banned peer's claim is void: the querier ignores
                    // it and credits the peer it actually downloaded
                    // from — the capture dies, the learning signal
                    // survives.
                    recorded = uploader;
                    polluted = false;
                    hijacked = false;
                }
                if defend && books[peer as usize].banned(recorded) {
                    // The genuine uploader itself is banned (a fallback
                    // pick can land on an attacker): nothing is
                    // recorded.
                } else {
                    if polluted {
                        health.polluted_acquisitions += 1;
                    } else if hijacked {
                        health.sybil_slots_held += 1;
                    }
                    // The overlay treats every upload as rare (no
                    // popularity hint), so a zero source count keeps
                    // RareLru's behaviour identical to `record_upload`.
                    let (added, removed) =
                        policies[peer as usize].record_upload_with_popularity_delta(recorded, 0);
                    if defend {
                        let book = &mut books[peer as usize];
                        if polluted || hijacked {
                            if (added == Some(recorded)
                                || policies[peer as usize].contains(recorded))
                                && book.suspect(recorded)
                                && policies[peer as usize].expel(recorded, None)
                            {
                                health.reputation_evictions += 1;
                            }
                        } else if book.contains(recorded) {
                            book.redeem(recorded);
                        }
                        if let Some(rm) = removed {
                            book.remove(rm);
                        }
                    }
                }
            }
        }

        // Roll the world forward to tonight's caches.
        for (p, cache) in today.iter().enumerate() {
            let today_set: HashSet<FileRef> = cache.iter().copied().collect();
            for &gone in membership[p].difference(&today_set) {
                holders[gone.index()].retain(|&h| h != p as Peer);
            }
            for &new in today_set.difference(&membership[p]) {
                holders[new.index()].push(p as Peer);
            }
            membership[p] = today_set;
        }
        stats.push(day_stats);
    }
    (stats, health)
}

/// The original (pre-availability) implementation, kept verbatim as a
/// correctness oracle: the zero-churn bit-identity tests compare
/// [`simulate_overlay`] under a quiet schedule against it.
pub fn simulate_overlay_reference(
    days: &[Vec<Vec<FileRef>>],
    start_day: u32,
    n_files: usize,
    config: &OverlayConfig,
) -> Vec<OverlayDayStats> {
    let Some(first) = days.first() else {
        return Vec::new();
    };
    let n_peers = first.len();
    let mut rng = StdRng::seed_from_u64(config.seed);
    let sharer_pool: Vec<Peer> = first
        .iter()
        .enumerate()
        .filter(|(_, c)| !c.is_empty())
        .map(|(p, _)| p as Peer)
        .collect();
    let mut policies: Vec<AnyPolicy> = (0..n_peers)
        .map(|p| {
            AnyPolicy::new(
                config.policy,
                config.list_size,
                p as Peer,
                &sharer_pool,
                &mut rng,
            )
        })
        .collect();

    let mut stats = Vec::with_capacity(days.len());
    stats.push(OverlayDayStats {
        day: start_day,
        requests: 0,
        hits: 0,
    });

    // Yesterday's state: per-peer membership sets and per-file holders.
    let mut membership: Vec<HashSet<FileRef>> =
        first.iter().map(|c| c.iter().copied().collect()).collect();
    let mut holders: Vec<Vec<Peer>> = vec![Vec::new(); n_files];
    for (p, cache) in first.iter().enumerate() {
        for f in cache {
            holders[f.index()].push(p as Peer);
        }
    }

    for (offset, today) in days.iter().enumerate().skip(1) {
        let mut day_stats = OverlayDayStats {
            day: start_day + offset as u32,
            requests: 0,
            hits: 0,
        };
        // The day's acquisitions, shuffled across peers so no peer gets
        // systematic first-mover advantage.
        let mut acquisitions: Vec<(Peer, FileRef)> = Vec::new();
        for (p, cache) in today.iter().enumerate() {
            for &f in cache {
                if !membership[p].contains(&f) {
                    acquisitions.push((p as Peer, f));
                }
            }
        }
        for i in (1..acquisitions.len()).rev() {
            let j = rng.gen_range(0..=i);
            acquisitions.swap(i, j);
        }

        for &(peer, file) in &acquisitions {
            let sources = &holders[file.index()];
            if sources.is_empty() {
                // Original contributor (file newly born or newly entering
                // circulation): nothing to query.
                continue;
            }
            day_stats.requests += 1;
            let policy = &policies[peer as usize];
            let uploader = sources.iter().copied().find(|&s| policy.contains(s));
            let uploader = match uploader {
                Some(u) => {
                    day_stats.hits += 1;
                    u
                }
                None => sources[rng.gen_range(0..sources.len())],
            };
            policies[peer as usize].record_upload(uploader);
        }

        // Roll the world forward to tonight's caches.
        for (p, cache) in today.iter().enumerate() {
            let today_set: HashSet<FileRef> = cache.iter().copied().collect();
            for &gone in membership[p].difference(&today_set) {
                holders[gone.index()].retain(|&h| h != p as Peer);
            }
            for &new in today_set.difference(&membership[p]) {
                holders[new.index()].push(p as Peer);
            }
            membership[p] = today_set;
        }
        stats.push(day_stats);
    }
    stats
}

/// Aggregates day stats into a single hit rate (warm-up days excluded).
pub fn steady_state_hit_rate(stats: &[OverlayDayStats], skip_days: usize) -> f64 {
    let tail = &stats[skip_days.min(stats.len())..];
    let requests: u64 = tail.iter().map(|s| s.requests).sum();
    let hits: u64 = tail.iter().map(|s| s.hits).sum();
    if requests == 0 {
        return 0.0;
    }
    hits as f64 / requests as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn f(i: u32) -> FileRef {
        FileRef(i)
    }

    /// Two disjoint communities of `per` peers churning through their
    /// own file pools: each day every peer adds the next pool file.
    fn community_history_n(days: usize, per: u32) -> (Vec<Vec<Vec<FileRef>>>, usize) {
        let pool = 40u32;
        let mut history = Vec::new();
        for d in 0..days {
            let mut day = Vec::new();
            for community in 0..2u32 {
                for peer in 0..per {
                    // A sliding window over the community pool, offset per
                    // peer so yesterday's neighbour already has today's
                    // file.
                    let base = community * pool;
                    let lo = d as u32 + peer;
                    let cache: Vec<FileRef> = (lo..lo + 6).map(|k| f(base + (k % pool))).collect();
                    let mut cache = cache;
                    cache.sort_unstable_by_key(|fr| fr.0);
                    cache.dedup();
                    day.push(cache);
                }
            }
            history.push(day);
        }
        (history, 80)
    }

    /// The two-communities-of-4 shape most tests use.
    fn community_history(days: usize) -> (Vec<Vec<Vec<FileRef>>>, usize) {
        community_history_n(days, 4)
    }

    #[test]
    fn overlay_warms_up_and_answers() {
        let (history, n_files) = community_history(12);
        let stats = simulate_overlay(&history, 0, n_files, &OverlayConfig::lru(4));
        assert_eq!(stats.len(), 12);
        assert_eq!(stats[0].requests, 0, "day zero only warms up");
        let early: u64 = stats[1..3].iter().map(|s| s.hits).sum();
        let late_rate = steady_state_hit_rate(&stats, 6);
        assert!(late_rate > 0.5, "steady-state hit rate {late_rate}");
        let _ = early;
    }

    #[test]
    fn lists_stay_within_communities() {
        // With disjoint pools, no query can be answered across the
        // boundary, so hits imply community-local neighbours.
        let (history, n_files) = community_history(10);
        let stats = simulate_overlay(&history, 5, n_files, &OverlayConfig::lru(3));
        let total_requests: u64 = stats.iter().map(|s| s.requests).sum();
        let total_hits: u64 = stats.iter().map(|s| s.hits).sum();
        assert!(total_requests > 0);
        assert!(total_hits <= total_requests);
        assert_eq!(stats[3].day, 8, "absolute day numbering");
    }

    #[test]
    fn empty_and_static_histories() {
        assert!(simulate_overlay(&[], 0, 10, &OverlayConfig::lru(3)).is_empty());
        // A static world generates no requests after day 0.
        let day: Vec<Vec<FileRef>> = vec![vec![f(0)], vec![f(1)]];
        let stats = simulate_overlay(
            &[day.clone(), day.clone(), day],
            0,
            2,
            &OverlayConfig::lru(3),
        );
        assert!(stats.iter().all(|s| s.requests == 0));
        assert_eq!(steady_state_hit_rate(&stats, 0), 0.0);
    }

    #[test]
    fn departed_holders_are_not_hit() {
        // Peer 1 holds f9 on day 0 but drops it on day 1; peer 0 acquires
        // f9 on day 2. Holders must reflect the drop: no sources remain,
        // so no request is even counted (original-contributor case).
        let day0 = vec![vec![f(0)], vec![f(9)]];
        let day1 = vec![vec![f(0)], vec![f(1)]];
        let day2 = vec![vec![f(0), f(9)], vec![f(1)]];
        let stats = simulate_overlay(&[day0, day1, day2], 0, 10, &OverlayConfig::lru(3));
        assert_eq!(stats[2].requests, 0);
    }

    #[test]
    fn quiet_adversary_overlay_is_bit_identical_to_reference() {
        // A zero-fraction plan with the defense armed must not perturb
        // a single draw: the availability path still mirrors the
        // pre-availability oracle exactly.
        let (history, n_files) = community_history(12);
        let config = OverlayConfig::lru(4).with_availability(
            AvailabilityConfig::none()
                .with_adversary(crate::sim::AdversaryConfig::sybils(0xfeed, 0))
                .with_reputation(),
        );
        let (stats, health) = simulate_overlay_health(&history, 0, n_files, &config);
        assert_eq!(
            stats,
            simulate_overlay_reference(&history, 0, n_files, &config)
        );
        assert_eq!(health.wasted_queries, 0);
        assert_eq!(health.sybil_slots_held + health.polluted_acquisitions, 0);
    }

    #[test]
    fn adversary_degrades_overlay_and_defense_recovers() {
        // Wide communities and a short list: a hijacked slot displaces
        // an honest member, so capture hurts and a ban can recover. A
        // pure sybil attack keeps the loss recoverable — a free-riding
        // *holder* simply never answers, and no list change fixes that.
        let (history, n_files) = community_history_n(14, 10);
        let adversary = crate::sim::AdversaryConfig::sybils(11, 250);
        let honest = OverlayConfig::lru(3);
        let attacked = OverlayConfig::lru(3)
            .with_availability(AvailabilityConfig::none().with_adversary(adversary.clone()));
        let defended = OverlayConfig::lru(3).with_availability(
            AvailabilityConfig::none()
                .with_adversary(adversary)
                .with_reputation(),
        );
        let h = |cfg: &OverlayConfig| {
            let (stats, health) = simulate_overlay_health(&history, 0, n_files, cfg);
            let total_requests: u64 = stats.iter().map(|s| s.requests).sum();
            let total_hits: u64 = stats.iter().map(|s| s.hits).sum();
            health
                .reconcile(total_requests, total_hits, 0)
                .expect("overlay ledger reconciles under attack");
            (steady_state_hit_rate(&stats, 6), health)
        };
        let (honest_rate, honest_health) = h(&honest);
        let (attacked_rate, attacked_health) = h(&attacked);
        let (defended_rate, defended_health) = h(&defended);
        assert_eq!(honest_health.wasted_queries, 0);
        assert!(attacked_health.wasted_queries > 0, "refusals must cost");
        assert!(attacked_health.sybil_slots_held > 0, "sybils must capture");
        assert!(
            attacked_rate < honest_rate,
            "attack must hurt: honest {honest_rate} vs attacked {attacked_rate}"
        );
        assert!(
            defended_health.reputation_evictions > 0,
            "defense must fire"
        );
        assert!(
            defended_rate > attacked_rate,
            "defense must recover: attacked {attacked_rate} vs defended {defended_rate}"
        );
    }

    #[test]
    fn history_policy_works_too() {
        let (history, n_files) = community_history(12);
        let config = OverlayConfig {
            list_size: 4,
            policy: PolicyKind::History,
            seed: 1,
            availability: AvailabilityConfig::none(),
        };
        let stats = simulate_overlay(&history, 0, n_files, &config);
        assert!(steady_state_hit_rate(&stats, 6) > 0.4);
    }
}
