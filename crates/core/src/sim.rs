//! The trace-driven search simulation of Section 5.1.
//!
//! The simulator replays a static cache set as a request stream:
//!
//! 1. Pick a uniformly random `(peer, pending file)` pair and remove it
//!    from the peer's pending list.
//! 2. If nobody currently shares the file, the peer is its *original
//!    contributor*: the file just enters the peer's (simulated) cache.
//! 3. Otherwise the peer *requests* the file: it queries its semantic
//!    neighbours (and, in two-hop mode, their neighbours); a **hit**
//!    means some queried peer currently shares the file. On a miss the
//!    peer falls back to the server. Either way it obtains the file,
//!    starts sharing it, and the uploader is recorded in its neighbour
//!    list (head of LRU / counter bump for History).
//!
//! Load accounting: every request sends one message to each of the
//! requester's (one-hop) semantic neighbours, which is how the paper's
//! Fig. 22 counts "messages per client".
//!
//! # Availability
//!
//! With a non-quiet [`AvailabilityConfig`] the simulator consults a
//! deterministic [`ChurnSchedule`]: the static request stream is spread
//! over `virtual_days` of simulated time, queries to offline neighbours
//! time out (no message delivered, no mark stamped), the querier
//! retries per its [`QueryPolicy`] with backoff in simulated time, and
//! stale entries get the per-policy reaction of
//! [`AnyPolicy::handle_stale`]. Day-scoped server outages strand final
//! misses: the file is not acquired and nothing is recorded. A
//! [`SearchHealth`] ledger accounts for every attempt and reconciles
//! exactly against the [`SimResult`] totals. When the schedule is quiet
//! the whole layer is a no-op and results are bit-identical to the
//! pre-availability simulator ([`simulate_reference`] is the pinned
//! oracle).

use edonkey_trace::compact::CacheArena;
use edonkey_trace::model::FileRef;
pub use edonkey_workload::churn::{ChurnConfig, ChurnSchedule, QueryPolicy};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashSet;

use crate::neighbours::{AnyPolicy, NeighbourPolicy, Peer, PolicyKind, StaleReaction};

/// The availability regime a simulation runs under.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AvailabilityConfig {
    /// Who is offline when, and which days the server is down.
    pub churn: ChurnConfig,
    /// The querier's timeout reaction (retries, backoff, staleness).
    pub query: QueryPolicy,
    /// How many simulated days the static request stream spans (the
    /// trace-driven stream has no timestamps of its own). Irrelevant —
    /// but still bit-identically harmless — when `churn` is quiet.
    pub virtual_days: u32,
}

/// Default span: the 14-day windows the Section 4 figures use.
const DEFAULT_VIRTUAL_DAYS: u32 = 14;

impl AvailabilityConfig {
    /// Always-on peers, always-up server, single attempts: the paper's
    /// implicit regime, and the bit-identity baseline.
    pub fn none() -> Self {
        AvailabilityConfig {
            churn: ChurnConfig::none(),
            query: QueryPolicy::no_retry(),
            virtual_days: DEFAULT_VIRTUAL_DAYS,
        }
    }

    /// Session churn at `churn_permille` (see [`ChurnConfig`]) under
    /// the given schedule seed, single attempts.
    pub fn churn(seed: u64, churn_permille: u32) -> Self {
        AvailabilityConfig {
            churn: ChurnConfig::with_rate(seed, churn_permille),
            ..Self::none()
        }
    }

    /// Replaces the query policy.
    pub fn with_query(mut self, query: QueryPolicy) -> Self {
        self.query = query;
        self
    }

    /// Adds server-outage days (offsets into the virtual span).
    pub fn with_outages(mut self, days: Vec<u32>) -> Self {
        self.churn.outage_days = days;
        self
    }

    /// True iff the availability layer cannot affect the simulation.
    pub fn is_quiet(&self) -> bool {
        self.churn.is_quiet()
    }
}

impl Default for AvailabilityConfig {
    fn default() -> Self {
        Self::none()
    }
}

/// Simulation parameters.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SimConfig {
    /// Neighbour list length (the paper sweeps 5–200).
    pub list_size: usize,
    /// Which policy maintains the lists.
    pub policy: PolicyKind,
    /// Also query neighbours' neighbours on a one-hop miss (Fig. 23).
    pub two_hop: bool,
    /// RNG seed for the request order and uploader picks.
    pub seed: u64,
    /// Peer-availability regime (quiet by default).
    pub availability: AvailabilityConfig,
}

impl SimConfig {
    /// LRU with the given list size — the paper's default setup.
    pub fn lru(list_size: usize) -> Self {
        SimConfig {
            list_size,
            policy: PolicyKind::Lru,
            two_hop: false,
            seed: 0x5eed,
            availability: AvailabilityConfig::none(),
        }
    }

    /// Same, with the History policy.
    pub fn history(list_size: usize) -> Self {
        SimConfig {
            policy: PolicyKind::History,
            ..Self::lru(list_size)
        }
    }

    /// Same, with the Random benchmark.
    pub fn random(list_size: usize) -> Self {
        SimConfig {
            policy: PolicyKind::Random,
            ..Self::lru(list_size)
        }
    }

    /// LRU recording only uploads of files with at most `max_sources`
    /// sources — the rare-file "popularity" policy of Section 5.3.2.
    pub fn rare_lru(list_size: usize, max_sources: u32) -> Self {
        SimConfig {
            policy: PolicyKind::RareLru { max_sources },
            ..Self::lru(list_size)
        }
    }

    /// Enables two-hop search.
    pub fn with_two_hop(mut self) -> Self {
        self.two_hop = true;
        self
    }

    /// Overrides the seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Runs under the given availability regime.
    pub fn with_availability(mut self, availability: AvailabilityConfig) -> Self {
        self.availability = availability;
        self
    }
}

/// The availability ledger: every query attempt of a simulation run,
/// accounted once. Identities (checked by [`SearchHealth::reconcile`]):
///
/// * `answered == one_hop_hits + two_hop_hits`
/// * `answered + server_fallback + stranded == requests`
/// * `attempted == requests + retried`
/// * `recovered <= answered`
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SearchHealth {
    /// Query attempts issued (initial attempts plus retries).
    pub attempted: u64,
    /// Requests answered by the overlay (one- or two-hop).
    pub answered: u64,
    /// Individual neighbour queries that timed out (offline peer).
    pub timed_out: u64,
    /// Retry attempts (beyond each request's first attempt).
    pub retried: u64,
    /// Stale entries evicted (or replaced) after a timeout.
    pub evicted_stale: u64,
    /// Stale entries probed/demoted after a timeout (History).
    pub probed_stale: u64,
    /// Final misses resolved by the fallback server.
    pub server_fallback: u64,
    /// Final misses during a server outage: the request failed
    /// entirely — nothing acquired, nothing recorded.
    pub stranded: u64,
    /// Requests the overlay answered *during* a server outage — what
    /// server-less search rescued when there was no fallback.
    pub recovered: u64,
}

impl SearchHealth {
    /// Checks the ledger identities against raw totals. Returns a
    /// description of the first violated identity, if any.
    pub fn reconcile(
        &self,
        requests: u64,
        one_hop_hits: u64,
        two_hop_hits: u64,
    ) -> Result<(), String> {
        let hits = one_hop_hits + two_hop_hits;
        if self.answered != hits {
            return Err(format!(
                "answered {} != one_hop + two_hop hits {hits}",
                self.answered
            ));
        }
        let resolved = self.answered + self.server_fallback + self.stranded;
        if resolved != requests {
            return Err(format!(
                "answered {} + server_fallback {} + stranded {} = {resolved} != requests {requests}",
                self.answered, self.server_fallback, self.stranded
            ));
        }
        if self.attempted != requests + self.retried {
            return Err(format!(
                "attempted {} != requests {requests} + retried {}",
                self.attempted, self.retried
            ));
        }
        if self.recovered > self.answered {
            return Err(format!(
                "recovered {} > answered {}",
                self.recovered, self.answered
            ));
        }
        Ok(())
    }

    /// [`SearchHealth::reconcile`] against a [`SimResult`].
    pub fn check_against(&self, result: &SimResult) -> Result<(), String> {
        self.reconcile(result.requests, result.one_hop_hits, result.two_hop_hits)
    }
}

/// Simulation outcome.
#[derive(Clone, Debug, PartialEq)]
pub struct SimResult {
    /// Requests actually simulated (pairs whose file already had a
    /// sharer).
    pub requests: u64,
    /// Requests answered by a one-hop semantic neighbour.
    pub one_hop_hits: u64,
    /// Requests answered only at the second hop (zero unless two-hop).
    pub two_hop_hits: u64,
    /// Pairs that seeded the system (no prior sharer).
    pub contributor_seeds: u64,
    /// Messages received per peer (Fig. 22's load distribution).
    pub messages_per_peer: Vec<u64>,
}

impl SimResult {
    /// Total hits (one-hop plus two-hop).
    pub fn hits(&self) -> u64 {
        self.one_hop_hits + self.two_hop_hits
    }

    /// Hit rate in `[0,1]`; 0 when no requests were simulated.
    pub fn hit_rate(&self) -> f64 {
        if self.requests == 0 {
            return 0.0;
        }
        self.hits() as f64 / self.requests as f64
    }

    /// Mean messages per peer over peers that received any.
    pub fn mean_load(&self) -> f64 {
        // Single fold, no intermediate allocation.
        let (sum, busy) = self
            .messages_per_peer
            .iter()
            .filter(|&&m| m > 0)
            .fold((0u64, 0u64), |(s, n), &m| (s + m, n + 1));
        if busy == 0 {
            0.0
        } else {
            sum as f64 / busy as f64
        }
    }

    /// Peak messages on any single peer.
    pub fn max_load(&self) -> u64 {
        self.messages_per_peer.iter().copied().max().unwrap_or(0)
    }

    /// Per-peer load sorted descending — the Fig. 22 curve
    /// (`messages` vs `client by rank`), zero-load peers omitted.
    pub fn load_by_rank(&self) -> Vec<u64> {
        let mut loads: Vec<u64> = self
            .messages_per_peer
            .iter()
            .copied()
            .filter(|&m| m > 0)
            .collect();
        loads.sort_unstable_by(|a, b| b.cmp(a));
        loads
    }
}

/// Runs the Section 5.1 simulation over a static cache set.
///
/// `caches[p]` is the potential request set of peer `p` (its cache in
/// the trace). Peers with empty caches are free-riders: they issue no
/// requests (the paper's request model has no free-rider requests) and,
/// holding nothing, never appear in neighbour lists.
///
/// # Examples
///
/// ```
/// use edonkey_semsearch::sim::{simulate, SimConfig};
/// use edonkey_trace::model::FileRef;
///
/// // Two peers with identical two-file caches: whoever requests second
/// // finds the first via the fallback, then hits on the second file.
/// let caches = vec![
///     vec![FileRef(0), FileRef(1)],
///     vec![FileRef(0), FileRef(1)],
/// ];
/// let result = simulate(&caches, 2, &SimConfig::lru(5));
/// assert_eq!(result.requests + result.contributor_seeds, 4);
/// ```
pub fn simulate(caches: &[Vec<FileRef>], n_files: usize, config: &SimConfig) -> SimResult {
    let arena = CacheArena::from_caches(caches, n_files);
    simulate_arena(&arena, config)
}

/// [`simulate`], also returning the availability ledger.
pub fn simulate_health(
    caches: &[Vec<FileRef>],
    n_files: usize,
    config: &SimConfig,
) -> (SimResult, SearchHealth) {
    let arena = CacheArena::from_caches(caches, n_files);
    simulate_arena_health_with_scratch(&arena, config, &mut SimScratch::new())
}

/// Arena-backed [`simulate`] with fresh scratch buffers.
pub fn simulate_arena(arena: &CacheArena, config: &SimConfig) -> SimResult {
    simulate_arena_with_scratch(arena, config, &mut SimScratch::new())
}

/// Reusable simulation buffers.
///
/// One `simulate` run needs a request stream, a per-file sharer table
/// and a per-peer membership mark; across a sweep those allocations
/// dwarf the useful work for small traces. A `SimScratch` carried from
/// run to run (e.g. one per worker thread via
/// [`crate::experiment::parallel_map_init`]) reuses them: vectors are
/// cleared, not freed, and the mark array is invalidated by bumping a
/// generation counter instead of being rewritten.
#[derive(Debug, Default)]
pub struct SimScratch {
    stream: Vec<(u32, FileRef)>,
    sharers: Vec<Vec<Peer>>,
    /// `mark[p] == generation` ⇔ peer `p` is an *online, queried*
    /// neighbour of the current requester. Stale entries are
    /// invalidated by the generation bump — never by clearing the
    /// array.
    mark: Vec<u64>,
    generation: u64,
    /// Per-attempt copy of the requester's neighbour list: staleness
    /// reactions mutate the list mid-walk.
    query_buf: Vec<Peer>,
    /// Per-request consecutive-timeout streaks `(neighbour, streak)` —
    /// the previous attempt's and the one being walked.
    stale_prev: Vec<(Peer, u32)>,
    stale_cur: Vec<(Peer, u32)>,
}

impl SimScratch {
    /// Creates empty scratch; buffers grow on first use.
    pub fn new() -> Self {
        Self::default()
    }
}

/// The arena-backed simulation core.
///
/// Behaviourally identical to the original `Vec<Vec<FileRef>>` +
/// per-peer `HashSet` implementation (kept as [`simulate_reference`]):
/// the request stream, every policy update and every RNG draw happen in
/// the same order, so results are bit-identical for a given seed. What
/// changed is the data layout:
///
/// * the stream is filled from contiguous arena rows instead of chasing
///   per-peer heap allocations;
/// * the "is this sharer one of my neighbours?" test is a generation-
///   stamped mark-array probe, stamped for free during the (already
///   mandatory) message-accounting walk over the requester's neighbour
///   list, instead of a `HashSet` lookup per candidate sharer;
/// * all large buffers live in `scratch` and are reused across runs.
pub fn simulate_arena_with_scratch(
    arena: &CacheArena,
    config: &SimConfig,
    scratch: &mut SimScratch,
) -> SimResult {
    simulate_arena_health_with_scratch(arena, config, scratch).0
}

/// [`simulate_arena_with_scratch`], also returning the availability
/// ledger ([`SearchHealth::check_against`] holds for every config).
pub fn simulate_arena_health_with_scratch(
    arena: &CacheArena,
    config: &SimConfig,
    scratch: &mut SimScratch,
) -> (SimResult, SearchHealth) {
    let n_peers = arena.n_peers();
    let n_files = arena.n_files();
    let mut rng = StdRng::seed_from_u64(config.seed);

    // Sharers (non-free-riders) are the candidate pool for random lists.
    let sharer_pool: Vec<Peer> = (0..n_peers)
        .filter(|&p| !arena.cache(p).is_empty())
        .map(|p| p as Peer)
        .collect();

    let SimScratch {
        stream,
        sharers,
        mark,
        generation,
        query_buf,
        stale_prev,
        stale_cur,
    } = scratch;

    // Request stream: a uniformly shuffled multiset of (peer, file).
    stream.clear();
    stream.reserve(arena.replica_count());
    for p in 0..n_peers {
        stream.extend(arena.cache(p).iter().map(|&f| (p as u32, f)));
    }
    shuffle(stream, &mut rng);

    // Mutable simulation state.
    let mut policies: Vec<AnyPolicy> = (0..n_peers)
        .map(|p| {
            AnyPolicy::new(
                config.policy,
                config.list_size,
                p as Peer,
                &sharer_pool,
                &mut rng,
            )
        })
        .collect();
    if sharers.len() < n_files {
        sharers.resize_with(n_files, Vec::new);
    }
    for s in &mut sharers[..n_files] {
        s.clear();
    }
    if mark.len() < n_peers {
        mark.resize(n_peers, 0);
    }

    let mut result = SimResult {
        requests: 0,
        one_hop_hits: 0,
        two_hop_hits: 0,
        contributor_seeds: 0,
        messages_per_peer: vec![0; n_peers],
    };
    let mut health = SearchHealth::default();

    // Availability: quiet schedules take none of the branches below, so
    // the pre-churn behaviour (and RNG sequence) is preserved exactly.
    let availability = &config.availability;
    let schedule = ChurnSchedule::new(availability.churn.clone());
    let quiet = schedule.is_quiet();
    let query = availability.query;
    // The static stream is spread uniformly over the virtual span, in
    // milli-days (1 day = 1000 md).
    let span_millis = u64::from(availability.virtual_days.max(1)) * 1000;
    let stream_len = stream.len().max(1) as u64;

    for (t, &(peer, file)) in stream.iter().enumerate() {
        let peer_idx = peer as usize;
        if sharers[file.index()].is_empty() {
            // Original contributor.
            result.contributor_seeds += 1;
            sharers[file.index()].push(peer);
            continue;
        }
        result.requests += 1;

        let base_millis = t as u64 * span_millis / stream_len;
        let mut elapsed = 0u64;
        let mut attempt = 0u32;
        stale_prev.clear();

        let (mut uploader, hop, day) = loop {
            health.attempted += 1;
            if attempt > 0 {
                health.retried += 1;
            }
            let now = base_millis + elapsed;
            let day = (now / 1000) as u32;
            let milli = (now % 1000) as u32;

            // Querying loads every *online* one-hop neighbour; the same
            // walk stamps the mark array for the membership probe
            // below. The list is copied out first because staleness
            // reactions mutate it mid-walk.
            *generation += 1;
            let mut saw_timeout = false;
            query_buf.clear();
            query_buf.extend_from_slice(policies[peer_idx].neighbours());
            stale_cur.clear();
            for &n in query_buf.iter() {
                if !quiet && schedule.offline(n, day, milli) {
                    // Timed out: no message delivered, no mark stamped.
                    saw_timeout = true;
                    health.timed_out += 1;
                    if query.handle_stale {
                        let streak = stale_prev
                            .iter()
                            .find(|&&(p, _)| p == n)
                            .map_or(1, |&(_, s)| s + 1);
                        stale_cur.push((n, streak));
                        if streak >= query.stale_after.max(1) {
                            // Only the Random policy wants a
                            // replacement; it is drawn statelessly so
                            // the main RNG sequence never moves.
                            let replacement = match config.policy {
                                PolicyKind::Random if !sharer_pool.is_empty() => {
                                    let i =
                                        schedule.replacement_index(peer, n, day, sharer_pool.len());
                                    Some(sharer_pool[i])
                                }
                                _ => None,
                            };
                            match policies[peer_idx].handle_stale(n, replacement) {
                                StaleReaction::Evicted | StaleReaction::Replaced => {
                                    health.evicted_stale += 1;
                                }
                                StaleReaction::Probed => health.probed_stale += 1,
                                StaleReaction::Kept => {}
                            }
                        }
                    }
                } else {
                    result.messages_per_peer[n as usize] += 1;
                    mark[n as usize] = *generation;
                }
            }
            std::mem::swap(stale_prev, stale_cur);

            // One-hop: does any current sharer sit among the online
            // queried neighbours? Iterating sharers (popularity-sized)
            // beats iterating the list for rare files, and is
            // equivalent.
            let file_sharers = &sharers[file.index()];
            let mut uploader: Option<Peer> = file_sharers
                .iter()
                .copied()
                .find(|&s| mark[s as usize] == *generation);
            let mut hop = 1;

            // Two-hop: query each online neighbour's neighbours; the
            // second-hop holder must itself be online to answer.
            if uploader.is_none() && config.two_hop {
                'outer: for &n in query_buf.iter() {
                    if mark[n as usize] != *generation {
                        continue; // offline relay: its list is unreachable
                    }
                    for &s in file_sharers {
                        if s != peer
                            && policies[n as usize].contains(s)
                            && (quiet || !schedule.offline(s, day, milli))
                        {
                            uploader = Some(s);
                            hop = 2;
                            break 'outer;
                        }
                    }
                }
            }

            // Retry only when something actually timed out: a
            // definitive miss over fully online neighbours is final.
            if uploader.is_some() || !saw_timeout || attempt >= query.max_retries {
                break (uploader, hop, day);
            }
            elapsed += query.backoff_for(attempt);
            attempt += 1;
        };

        match uploader {
            Some(_) => {
                if hop == 1 {
                    result.one_hop_hits += 1;
                } else {
                    result.two_hop_hits += 1;
                }
                health.answered += 1;
                if schedule.server_out(day) {
                    health.recovered += 1;
                }
            }
            None => {
                if schedule.server_out(day) {
                    // Overlay miss with the fallback server down: the
                    // request strands — nothing acquired, nothing
                    // recorded, no RNG consumed.
                    health.stranded += 1;
                    continue;
                }
                // Server fallback: a uniformly random current sharer
                // uploads the file. The server queues uploads from
                // currently-offline sharers, so the pick ranges over
                // all of them — which is also exactly the pre-churn
                // draw, keeping quiet runs bit-identical.
                let file_sharers = &sharers[file.index()];
                let pick = file_sharers[rng.gen_range(0..file_sharers.len())];
                health.server_fallback += 1;
                uploader = Some(pick);
            }
        }

        let uploader = uploader.expect("an uploader always exists here");
        let sources = sharers[file.index()].len() as u32;
        policies[peer_idx].record_upload_with_popularity(uploader, sources);
        sharers[file.index()].push(peer);
    }

    (result, health)
}

/// The original (pre-arena) implementation, kept verbatim as a
/// correctness oracle: `deterministic_under_seed`, the property tests
/// and the benchmark harness all compare the arena path against it.
pub fn simulate_reference(
    caches: &[Vec<FileRef>],
    n_files: usize,
    config: &SimConfig,
) -> SimResult {
    let mut rng = StdRng::seed_from_u64(config.seed);

    // Sharers (non-free-riders) are the candidate pool for random lists.
    let sharer_pool: Vec<Peer> = caches
        .iter()
        .enumerate()
        .filter(|(_, c)| !c.is_empty())
        .map(|(p, _)| p as Peer)
        .collect();

    // Request stream: a uniformly shuffled multiset of (peer, file).
    let mut stream: Vec<(u32, FileRef)> = caches
        .iter()
        .enumerate()
        .flat_map(|(p, cache)| cache.iter().map(move |&f| (p as u32, f)))
        .collect();
    shuffle(&mut stream, &mut rng);

    // Mutable simulation state.
    let mut policies: Vec<AnyPolicy> = (0..caches.len())
        .map(|p| {
            AnyPolicy::new(
                config.policy,
                config.list_size,
                p as Peer,
                &sharer_pool,
                &mut rng,
            )
        })
        .collect();
    // Who currently shares each file (grow-only), and each peer's
    // current holdings for O(1) "does neighbour n share f" checks.
    let mut sharers: Vec<Vec<Peer>> = vec![Vec::new(); n_files];
    let mut holdings: Vec<HashSet<FileRef>> = vec![HashSet::new(); caches.len()];

    let mut result = SimResult {
        requests: 0,
        one_hop_hits: 0,
        two_hop_hits: 0,
        contributor_seeds: 0,
        messages_per_peer: vec![0; caches.len()],
    };

    for (peer, file) in stream {
        let peer_idx = peer as usize;
        let file_sharers = &sharers[file.index()];
        if file_sharers.is_empty() {
            // Original contributor.
            result.contributor_seeds += 1;
            sharers[file.index()].push(peer);
            holdings[peer_idx].insert(file);
            continue;
        }
        result.requests += 1;

        // Querying loads every one-hop neighbour.
        for &n in policies[peer_idx].neighbours() {
            result.messages_per_peer[n as usize] += 1;
        }

        // One-hop: does any current sharer sit in the neighbour list?
        // Iterating sharers (popularity-sized) beats iterating the list
        // for rare files, and is equivalent.
        let policy = &policies[peer_idx];
        let mut uploader: Option<Peer> = file_sharers.iter().copied().find(|&s| policy.contains(s));
        let mut hop = 1;

        // Two-hop: query each neighbour's neighbours.
        if uploader.is_none() && config.two_hop {
            'outer: for &n in policies[peer_idx].neighbours() {
                for &s in file_sharers {
                    if s != peer && policies[n as usize].contains(s) {
                        uploader = Some(s);
                        hop = 2;
                        break 'outer;
                    }
                }
            }
        }

        match uploader {
            Some(_) if hop == 1 => result.one_hop_hits += 1,
            Some(_) => result.two_hop_hits += 1,
            None => {
                // Server fallback: a uniformly random current sharer
                // uploads the file.
                let pick = file_sharers[rng.gen_range(0..file_sharers.len())];
                uploader = Some(pick);
            }
        }

        let uploader = uploader.expect("an uploader always exists here");
        let sources = sharers[file.index()].len() as u32;
        policies[peer_idx].record_upload_with_popularity(uploader, sources);
        sharers[file.index()].push(peer);
        holdings[peer_idx].insert(file);
    }

    result
}

/// Fisher–Yates shuffle (kept local: `rand`'s `SliceRandom` would work,
/// but an explicit implementation keeps the request-order contract
/// obvious and seed-stable across `rand` versions).
fn shuffle<T>(items: &mut [T], rng: &mut impl Rng) {
    for i in (1..items.len()).rev() {
        let j = rng.gen_range(0..=i);
        items.swap(i, j);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn f(i: u32) -> FileRef {
        FileRef(i)
    }

    /// A tight community: 10 peers sharing the same 20 files.
    fn community(n_peers: u32, n_files: u32) -> Vec<Vec<FileRef>> {
        (0..n_peers)
            .map(|_| (0..n_files).map(f).collect())
            .collect()
    }

    #[test]
    fn accounting_adds_up() {
        let caches = community(10, 20);
        let result = simulate(&caches, 20, &SimConfig::lru(5));
        assert_eq!(
            result.requests + result.contributor_seeds,
            200,
            "every (peer, file) pair is consumed exactly once"
        );
        assert_eq!(
            result.contributor_seeds, 20,
            "each file has one contributor"
        );
        assert!(result.hits() <= result.requests);
    }

    #[test]
    fn clustered_caches_give_high_lru_hit_rates() {
        let caches = community(10, 40);
        let result = simulate(&caches, 40, &SimConfig::lru(5));
        // Everyone's neighbours quickly converge on the community.
        assert!(
            result.hit_rate() > 0.6,
            "hit rate {} too low for a perfect community",
            result.hit_rate()
        );
    }

    #[test]
    fn random_policy_is_much_worse_on_disjoint_communities() {
        // 20 communities of 5 peers with disjoint file sets.
        let mut caches = Vec::new();
        for c in 0..20u32 {
            for _ in 0..5 {
                caches.push((0..10).map(|k| f(c * 10 + k)).collect());
            }
        }
        let lru = simulate(&caches, 200, &SimConfig::lru(4));
        let random = simulate(&caches, 200, &SimConfig::random(4));
        assert!(
            lru.hit_rate() > random.hit_rate() + 0.2,
            "LRU {} vs random {}",
            lru.hit_rate(),
            random.hit_rate()
        );
    }

    #[test]
    fn history_also_learns() {
        let caches = community(10, 40);
        let result = simulate(&caches, 40, &SimConfig::history(5));
        assert!(
            result.hit_rate() > 0.5,
            "history hit rate {}",
            result.hit_rate()
        );
    }

    #[test]
    fn two_hop_never_hurts() {
        let mut caches = Vec::new();
        for c in 0..10u32 {
            for _ in 0..6 {
                caches.push((0..8).map(|k| f(c * 8 + k)).collect());
            }
        }
        let one = simulate(&caches, 80, &SimConfig::lru(3));
        let two = simulate(&caches, 80, &SimConfig::lru(3).with_two_hop());
        assert!(two.hit_rate() >= one.hit_rate());
        assert!(two.two_hop_hits > 0, "two-hop must answer something");
        assert_eq!(one.two_hop_hits, 0);
    }

    #[test]
    fn free_riders_issue_nothing_and_receive_nothing() {
        let mut caches = community(5, 10);
        caches.push(vec![]); // a free-rider
        let result = simulate(&caches, 10, &SimConfig::lru(5));
        assert_eq!(result.messages_per_peer[5], 0);
        assert_eq!(result.requests + result.contributor_seeds, 50);
    }

    #[test]
    fn load_is_counted_per_queried_neighbour() {
        let caches = community(4, 10);
        let result = simulate(&caches, 10, &SimConfig::lru(2));
        let total: u64 = result.messages_per_peer.iter().sum();
        // Each request queries at most 2 neighbours (less while lists
        // warm up).
        assert!(total <= result.requests * 2);
        assert!(total > 0);
        assert!(result.max_load() >= result.mean_load() as u64);
        let ranked = result.load_by_rank();
        assert!(ranked.windows(2).all(|w| w[0] >= w[1]));
    }

    #[test]
    fn deterministic_under_seed() {
        let caches = community(8, 15);
        let a = simulate(&caches, 15, &SimConfig::lru(5).with_seed(9));
        let b = simulate(&caches, 15, &SimConfig::lru(5).with_seed(9));
        assert_eq!(a, b);
        let c = simulate(&caches, 15, &SimConfig::lru(5).with_seed(10));
        // Different order, same accounting identity.
        assert_eq!(c.requests + c.contributor_seeds, 120);
        // The arena rewrite preserves the RNG call sequence exactly, so
        // the legacy implementation must agree bit-for-bit — across
        // policies, hop modes and scratch reuse.
        let mut scratch = SimScratch::new();
        let arena = CacheArena::from_caches(&caches, 15);
        for config in [
            SimConfig::lru(5).with_seed(9),
            SimConfig::lru(5).with_seed(10),
            SimConfig::history(4).with_seed(9),
            SimConfig::random(3).with_seed(9),
            SimConfig::rare_lru(5, 3).with_seed(9),
            SimConfig::lru(3).with_seed(9).with_two_hop(),
        ] {
            let legacy = simulate_reference(&caches, 15, &config);
            let fresh = simulate(&caches, 15, &config);
            let reused = simulate_arena_with_scratch(&arena, &config, &mut scratch);
            assert_eq!(legacy, fresh, "config {config:?}");
            assert_eq!(legacy, reused, "config {config:?} (reused scratch)");
        }
    }

    #[test]
    fn empty_input() {
        let result = simulate(&[], 0, &SimConfig::lru(5));
        assert_eq!(result.requests, 0);
        assert_eq!(result.hit_rate(), 0.0);
        assert_eq!(result.mean_load(), 0.0);
        assert_eq!(result.max_load(), 0);
        let (result, health) = simulate_health(&[], 0, &SimConfig::lru(5));
        assert!(health.check_against(&result).is_ok());
        assert_eq!(health, SearchHealth::default());
    }

    #[test]
    fn quiet_availability_is_bit_identical_to_reference() {
        let caches = community(8, 15);
        // A quiet schedule with a non-trivial seed and span, retries
        // armed: none of it may move a single bit.
        let quiet = AvailabilityConfig {
            churn: ChurnConfig::with_rate(0xdead_beef, 0),
            query: QueryPolicy::retry_evict(),
            virtual_days: 97,
        };
        assert!(quiet.is_quiet());
        for base in [
            SimConfig::lru(5).with_seed(9),
            SimConfig::history(4).with_seed(9),
            SimConfig::random(3).with_seed(9),
            SimConfig::rare_lru(5, 3).with_seed(9),
            SimConfig::lru(3).with_seed(9).with_two_hop(),
        ] {
            let reference = simulate_reference(&caches, 15, &base);
            let config = base.with_availability(quiet.clone());
            let (result, health) = simulate_health(&caches, 15, &config);
            assert_eq!(reference, result, "config {config:?}");
            assert!(health.check_against(&result).is_ok());
            assert_eq!(health.timed_out, 0);
            assert_eq!(health.retried, 0);
            assert_eq!(health.evicted_stale + health.probed_stale, 0);
            assert_eq!(health.stranded, 0);
            assert_eq!(health.recovered, 0);
            assert_eq!(health.attempted, result.requests);
        }
    }

    #[test]
    fn churn_reconciles_for_every_policy() {
        let caches = community(10, 30);
        for permille in [100u32, 250, 500, 1000] {
            for base in [
                SimConfig::lru(5),
                SimConfig::history(5),
                SimConfig::random(5),
                SimConfig::rare_lru(5, 3),
                SimConfig::lru(4).with_two_hop(),
            ] {
                for query in [QueryPolicy::no_retry(), QueryPolicy::retry_evict()] {
                    let config = base.clone().with_availability(
                        AvailabilityConfig::churn(7, permille).with_query(query),
                    );
                    let (result, health) = simulate_health(&caches, 30, &config);
                    health
                        .check_against(&result)
                        .unwrap_or_else(|e| panic!("{e} (config {config:?})"));
                    assert!(health.timed_out > 0, "churn {permille} must bite");
                }
            }
        }
    }

    #[test]
    fn churn_degrades_hits_monotonically() {
        let caches = community(12, 40);
        let hit_at = |permille: u32| {
            let config =
                SimConfig::lru(6).with_availability(AvailabilityConfig::churn(3, permille));
            simulate(&caches, 40, &config).hits()
        };
        let h0 = hit_at(0);
        let h250 = hit_at(250);
        let h1000 = hit_at(1000);
        assert!(h0 > 0);
        assert!(h250 < h0, "25% churn must cost hits ({h250} vs {h0})");
        assert_eq!(h1000, 0, "permanently offline neighbours never answer");
    }

    #[test]
    fn retries_recover_hits_under_churn() {
        let caches = community(12, 40);
        let run = |query: QueryPolicy| {
            let config = SimConfig::lru(6)
                .with_availability(AvailabilityConfig::churn(3, 250).with_query(query));
            simulate_health(&caches, 40, &config)
        };
        let (none, none_health) = run(QueryPolicy::no_retry());
        let (retry, retry_health) = run(QueryPolicy::retry_evict());
        assert!(retry_health.retried > 0);
        assert_eq!(none_health.retried, 0);
        assert!(
            retry.hits() > none.hits(),
            "retry {} vs no-retry {}",
            retry.hits(),
            none.hits()
        );
    }

    #[test]
    fn outage_strands_and_recovers() {
        let caches = community(10, 30);
        // The server dies halfway through the 14-day span: the warmed
        // overlay keeps answering (recovered), misses strand.
        let late_days: Vec<u32> = (7..200).collect();
        let config = SimConfig::lru(5).with_availability(
            AvailabilityConfig::churn(3, 250)
                .with_query(QueryPolicy::retry_evict())
                .with_outages(late_days),
        );
        let (result, health) = simulate_health(&caches, 30, &config);
        assert!(health.check_against(&result).is_ok());
        assert!(health.stranded > 0, "outage misses must strand");
        assert!(health.recovered > 0, "the warm overlay still answers");
        assert!(health.server_fallback > 0, "pre-outage misses fall back");
        assert_eq!(
            health.stranded + health.server_fallback,
            result.requests - result.hits()
        );

        // Server down from day 0: adaptive lists can never bootstrap —
        // the first acquisition needs the server — so nothing is ever
        // answered. Server-less search still *depends* on a server to
        // seed its links.
        let all_days: Vec<u32> = (0..200).collect();
        let config = SimConfig::lru(5).with_availability(
            AvailabilityConfig::churn(3, 250)
                .with_query(QueryPolicy::retry_evict())
                .with_outages(all_days),
        );
        let (result, health) = simulate_health(&caches, 30, &config);
        assert!(health.check_against(&result).is_ok());
        assert_eq!(health.server_fallback, 0, "no server to fall back to");
        assert_eq!(result.hits(), 0, "LRU lists never seed without a server");
        assert_eq!(health.stranded, result.requests);

        // No outage, same churn: nothing strands, nothing to recover.
        let config = SimConfig::lru(5).with_availability(
            AvailabilityConfig::churn(3, 250).with_query(QueryPolicy::retry_evict()),
        );
        let (result, health) = simulate_health(&caches, 30, &config);
        assert!(health.check_against(&result).is_ok());
        assert_eq!(health.stranded, 0);
        assert_eq!(health.recovered, 0);
        assert!(health.server_fallback > 0);
    }

    #[test]
    fn churn_runs_are_deterministic() {
        let caches = community(9, 25);
        let config = SimConfig::history(5).with_availability(
            AvailabilityConfig::churn(11, 400)
                .with_query(QueryPolicy::retry_evict())
                .with_outages(vec![2, 3]),
        );
        let a = simulate_health(&caches, 25, &config);
        let b = simulate_health(&caches, 25, &config);
        assert_eq!(a, b);
    }

    #[test]
    fn reconcile_rejects_violations() {
        let health = SearchHealth {
            attempted: 5,
            answered: 3,
            server_fallback: 2,
            ..SearchHealth::default()
        };
        assert!(health.reconcile(5, 3, 0).is_ok());
        let err = health.reconcile(5, 2, 0).unwrap_err();
        assert!(err.contains("answered"), "{err}");
        let err = health.reconcile(6, 3, 0).unwrap_err();
        assert!(err.contains("requests"), "{err}");
        let bad = SearchHealth {
            recovered: 4,
            ..health
        };
        assert!(bad.reconcile(5, 3, 0).is_err());
        let bad = SearchHealth {
            attempted: 9,
            ..health
        };
        let err = bad.reconcile(5, 3, 0).unwrap_err();
        assert!(err.contains("retried"), "{err}");
    }

    #[test]
    fn larger_lists_do_not_reduce_hits() {
        let caches = community(12, 30);
        let small = simulate(&caches, 30, &SimConfig::lru(2));
        let large = simulate(&caches, 30, &SimConfig::lru(11));
        assert!(large.hit_rate() >= small.hit_rate() - 0.02);
    }
}
