//! The trace-driven search simulation of Section 5.1.
//!
//! The simulator replays a static cache set as a request stream:
//!
//! 1. Pick a uniformly random `(peer, pending file)` pair and remove it
//!    from the peer's pending list.
//! 2. If nobody currently shares the file, the peer is its *original
//!    contributor*: the file just enters the peer's (simulated) cache.
//! 3. Otherwise the peer *requests* the file: it queries its semantic
//!    neighbours (and, in two-hop mode, their neighbours); a **hit**
//!    means some queried peer currently shares the file. On a miss the
//!    peer falls back to the server. Either way it obtains the file,
//!    starts sharing it, and the uploader is recorded in its neighbour
//!    list (head of LRU / counter bump for History).
//!
//! Load accounting: every request sends one message to each of the
//! requester's (one-hop) semantic neighbours, which is how the paper's
//! Fig. 22 counts "messages per client".
//!
//! # Availability
//!
//! With a non-quiet [`AvailabilityConfig`] the simulator consults a
//! deterministic [`ChurnSchedule`]: the static request stream is spread
//! over `virtual_days` of simulated time, queries to offline neighbours
//! time out (no message delivered, no mark stamped), the querier
//! retries per its [`QueryPolicy`] with backoff in simulated time, and
//! stale entries get the per-policy reaction of
//! [`AnyPolicy::handle_stale`]. Day-scoped server outages strand final
//! misses: the file is not acquired and nothing is recorded. A
//! [`SearchHealth`] ledger accounts for every attempt and reconciles
//! exactly against the [`SimResult`] totals. When the schedule is quiet
//! the whole layer is a no-op and results are bit-identical to the
//! pre-availability simulator ([`simulate_reference`] is the pinned
//! oracle).

use edonkey_trace::compact::{CacheArena, RowBits};
use edonkey_trace::model::FileRef;
pub use edonkey_workload::adversary::{AdversaryConfig, AdversaryPlan};
pub use edonkey_workload::churn::{ChurnConfig, ChurnSchedule, QueryPolicy};
use edonkey_workload::mix::splitmix64;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashSet;
use std::time::Instant;

use crate::index::{IndexBackend, IndexRoute};
use crate::neighbours::{
    AnyPolicy, NeighbourPolicy, Peer, PolicyKind, ReputationBook, StaleReaction,
};

/// Stateless server-fallback pick: which of the `len` current sharers
/// uploads on a miss at stream position `t`, drawn by a splitmix64
/// finalizer over `(seed, t)` — the same construction the churn
/// schedule uses for its replacement draws.
///
/// Being a pure function of the stream position (instead of a draw from
/// the simulation's sequential RNG) is what lets the split-cell sweep
/// replay any querier's requests independently and still agree
/// bit-for-bit with [`simulate_reference`].
#[inline]
pub(crate) fn fallback_index(seed: u64, t: u64, len: usize) -> usize {
    debug_assert!(len > 0);
    let z = splitmix64(seed ^ t.wrapping_mul(0x9e37_79b9_7f4a_7c15));
    (z % len as u64) as usize
}

/// The availability regime a simulation runs under.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AvailabilityConfig {
    /// Who is offline when, and which days the server is down.
    pub churn: ChurnConfig,
    /// The querier's timeout reaction (retries, backoff, staleness).
    pub query: QueryPolicy,
    /// How many simulated days the static request stream spans (the
    /// trace-driven stream has no timestamps of its own). Irrelevant —
    /// but still bit-identically harmless — when `churn` is quiet.
    pub virtual_days: u32,
    /// Which index backend resolves final misses (and how `outage_days`
    /// degrade it). [`IndexBackend::SingleServer`] is the pre-trait
    /// behaviour, bit-for-bit.
    pub backend: IndexBackend,
    /// Which peers play sybil / polluter / free-rider on which days
    /// (quiet by default — nobody attacks).
    pub adversary: AdversaryConfig,
    /// Arms the per-neighbour reputation defense: adversarially
    /// recorded neighbours are scored on every refused answer and
    /// hard-removed once the score fires. A no-op — mechanically, not
    /// just statistically — when the adversary plan is quiet, because
    /// suspects only enter the book through adversarial records.
    pub reputation: bool,
}

/// Default span: the 14-day windows the Section 4 figures use.
const DEFAULT_VIRTUAL_DAYS: u32 = 14;

impl AvailabilityConfig {
    /// Always-on peers, always-up server, single attempts: the paper's
    /// implicit regime, and the bit-identity baseline.
    pub fn none() -> Self {
        AvailabilityConfig {
            churn: ChurnConfig::none(),
            query: QueryPolicy::no_retry(),
            virtual_days: DEFAULT_VIRTUAL_DAYS,
            backend: IndexBackend::SingleServer,
            adversary: AdversaryConfig::none(),
            reputation: false,
        }
    }

    /// Session churn at `churn_permille` (see [`ChurnConfig`]) under
    /// the given schedule seed, single attempts.
    pub fn churn(seed: u64, churn_permille: u32) -> Self {
        AvailabilityConfig {
            churn: ChurnConfig::with_rate(seed, churn_permille),
            ..Self::none()
        }
    }

    /// Replaces the query policy.
    pub fn with_query(mut self, query: QueryPolicy) -> Self {
        self.query = query;
        self
    }

    /// Adds server-outage days (offsets into the virtual span).
    pub fn with_outages(mut self, days: Vec<u32>) -> Self {
        self.churn.outage_days = days;
        self
    }

    /// Replaces the index backend.
    pub fn with_backend(mut self, backend: IndexBackend) -> Self {
        self.backend = backend;
        self
    }

    /// Replaces the adversary plan.
    pub fn with_adversary(mut self, adversary: AdversaryConfig) -> Self {
        self.adversary = adversary;
        self
    }

    /// Arms the reputation defense.
    pub fn with_reputation(mut self) -> Self {
        self.reputation = true;
        self
    }

    /// True iff the availability layer cannot affect the simulation.
    pub fn is_quiet(&self) -> bool {
        self.churn.is_quiet() && self.adversary.is_quiet()
    }
}

impl Default for AvailabilityConfig {
    fn default() -> Self {
        Self::none()
    }
}

/// Simulation parameters.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SimConfig {
    /// Neighbour list length (the paper sweeps 5–200).
    pub list_size: usize,
    /// Which policy maintains the lists.
    pub policy: PolicyKind,
    /// Also query neighbours' neighbours on a one-hop miss (Fig. 23).
    pub two_hop: bool,
    /// RNG seed for the request order and uploader picks.
    pub seed: u64,
    /// Peer-availability regime (quiet by default).
    pub availability: AvailabilityConfig,
}

impl SimConfig {
    /// LRU with the given list size — the paper's default setup.
    pub fn lru(list_size: usize) -> Self {
        SimConfig {
            list_size,
            policy: PolicyKind::Lru,
            two_hop: false,
            seed: 0x5eed,
            availability: AvailabilityConfig::none(),
        }
    }

    /// Same, with the History policy.
    pub fn history(list_size: usize) -> Self {
        SimConfig {
            policy: PolicyKind::History,
            ..Self::lru(list_size)
        }
    }

    /// Same, with the Random benchmark.
    pub fn random(list_size: usize) -> Self {
        SimConfig {
            policy: PolicyKind::Random,
            ..Self::lru(list_size)
        }
    }

    /// LRU recording only uploads of files with at most `max_sources`
    /// sources — the rare-file "popularity" policy of Section 5.3.2.
    pub fn rare_lru(list_size: usize, max_sources: u32) -> Self {
        SimConfig {
            policy: PolicyKind::RareLru { max_sources },
            ..Self::lru(list_size)
        }
    }

    /// Enables two-hop search.
    pub fn with_two_hop(mut self) -> Self {
        self.two_hop = true;
        self
    }

    /// Overrides the seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Runs under the given availability regime.
    pub fn with_availability(mut self, availability: AvailabilityConfig) -> Self {
        self.availability = availability;
        self
    }

    /// Replaces the index backend (keeping the rest of the availability
    /// regime).
    pub fn with_backend(mut self, backend: IndexBackend) -> Self {
        self.availability.backend = backend;
        self
    }
}

/// The availability ledger: every query attempt of a simulation run,
/// accounted once. Identities (checked by [`SearchHealth::reconcile`]):
///
/// * `answered == one_hop_hits + two_hop_hits`
/// * `answered + server_fallback + stranded == requests`
/// * `attempted == requests + retried`
/// * `recovered <= answered`
/// * `forwarded == dht_hops == 0` when no fallback lookup ever ran
///   (`server_fallback + stranded == 0`) — routing hops only accrue on
///   index lookups.
/// * `polluted_acquisitions <= server_fallback` — pollution only
///   strikes acquisitions the index resolved.
/// * `sybil_slots_held <= answered + server_fallback` — a slot is only
///   hijacked where a genuine record would have landed.
/// * `reputation_evictions == 0` when
///   `sybil_slots_held + polluted_acquisitions == 0` — the defense only
///   scores peers that entered a list adversarially.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SearchHealth {
    /// Query attempts issued (initial attempts plus retries).
    pub attempted: u64,
    /// Requests answered by the overlay (one- or two-hop).
    pub answered: u64,
    /// Individual neighbour queries that timed out (offline peer).
    pub timed_out: u64,
    /// Retry attempts (beyond each request's first attempt).
    pub retried: u64,
    /// Stale entries evicted (or replaced) after a timeout.
    pub evicted_stale: u64,
    /// Stale entries probed/demoted after a timeout (History).
    pub probed_stale: u64,
    /// Final misses resolved by the fallback server.
    pub server_fallback: u64,
    /// Final misses during a server outage: the request failed
    /// entirely — nothing acquired, nothing recorded.
    pub stranded: u64,
    /// Requests the overlay answered *during* a server outage — what
    /// server-less search rescued when there was no fallback.
    pub recovered: u64,
    /// Inter-server forward hops taken by fallback lookups (federated
    /// backend; zero for the single server and the DHT).
    pub forwarded: u64,
    /// XOR-routing hops taken by fallback lookups (DHT backend; zero
    /// otherwise).
    pub dht_hops: u64,
    /// Queries delivered to an online adversary that refused to answer
    /// (message paid, nothing gained; not a timeout).
    pub wasted_queries: u64,
    /// Neighbour-list records captured by a sybil impersonating the
    /// genuine uploader.
    pub sybil_slots_held: u64,
    /// Server-fallback acquisitions resolved through a poisoned index
    /// record (the file still arrives; the recorded uploader is the
    /// polluter).
    pub polluted_acquisitions: u64,
    /// Neighbours hard-removed by the reputation defense.
    pub reputation_evictions: u64,
}

impl SearchHealth {
    /// Checks the ledger identities against raw totals. Returns a
    /// description of the first violated identity, if any.
    pub fn reconcile(
        &self,
        requests: u64,
        one_hop_hits: u64,
        two_hop_hits: u64,
    ) -> Result<(), String> {
        let hits = one_hop_hits + two_hop_hits;
        if self.answered != hits {
            return Err(format!(
                "answered {} != one_hop + two_hop hits {hits}",
                self.answered
            ));
        }
        let resolved = self.answered + self.server_fallback + self.stranded;
        if resolved != requests {
            return Err(format!(
                "answered {} + server_fallback {} + stranded {} = {resolved} != requests {requests}",
                self.answered, self.server_fallback, self.stranded
            ));
        }
        if self.attempted != requests + self.retried {
            return Err(format!(
                "attempted {} != requests {requests} + retried {}",
                self.attempted, self.retried
            ));
        }
        if self.recovered > self.answered {
            return Err(format!(
                "recovered {} > answered {}",
                self.recovered, self.answered
            ));
        }
        if self.server_fallback + self.stranded == 0 && self.forwarded + self.dht_hops != 0 {
            return Err(format!(
                "forwarded {} + dht_hops {} nonzero without any fallback lookup",
                self.forwarded, self.dht_hops
            ));
        }
        if self.polluted_acquisitions > self.server_fallback {
            return Err(format!(
                "polluted_acquisitions {} > server_fallback {}",
                self.polluted_acquisitions, self.server_fallback
            ));
        }
        if self.sybil_slots_held > self.answered + self.server_fallback {
            return Err(format!(
                "sybil_slots_held {} > answered {} + server_fallback {}",
                self.sybil_slots_held, self.answered, self.server_fallback
            ));
        }
        if self.sybil_slots_held + self.polluted_acquisitions == 0 && self.reputation_evictions != 0
        {
            return Err(format!(
                "reputation_evictions {} nonzero without any adversarial record",
                self.reputation_evictions
            ));
        }
        Ok(())
    }

    /// [`SearchHealth::reconcile`] against a [`SimResult`].
    pub fn check_against(&self, result: &SimResult) -> Result<(), String> {
        self.reconcile(result.requests, result.one_hop_hits, result.two_hop_hits)
    }

    /// [`SearchHealth::check_against`], panicking with the cell
    /// identity on violation. Sweep matrices run hundreds of cells;
    /// "which cell" is the first question a failure raises, so the
    /// message carries `(seed, list_size, churn_rate, backend)`
    /// alongside the violated identity — the backend kind matters
    /// because the forwarding backends (`federated{n}`, `dht_k{k}`)
    /// take a different routing path than the single server, and a
    /// hop-accounting bug would otherwise point at the wrong cell.
    pub fn expect_reconciled(&self, result: &SimResult, config: &SimConfig) {
        if let Err(e) = self.check_against(result) {
            panic!(
                "SearchHealth failed to reconcile: {e} \
                 (seed {}, list_size {}, churn_rate {}, backend {})",
                config.seed,
                config.list_size,
                config.availability.churn.churn_permille,
                config.availability.backend.name()
            );
        }
    }
}

/// Simulation outcome.
#[derive(Clone, Debug, PartialEq)]
pub struct SimResult {
    /// Requests actually simulated (pairs whose file already had a
    /// sharer).
    pub requests: u64,
    /// Requests answered by a one-hop semantic neighbour.
    pub one_hop_hits: u64,
    /// Requests answered only at the second hop (zero unless two-hop).
    pub two_hop_hits: u64,
    /// Pairs that seeded the system (no prior sharer).
    pub contributor_seeds: u64,
    /// Messages received per peer (Fig. 22's load distribution).
    pub messages_per_peer: Vec<u64>,
}

impl SimResult {
    /// Total hits (one-hop plus two-hop).
    pub fn hits(&self) -> u64 {
        self.one_hop_hits + self.two_hop_hits
    }

    /// Hit rate in `[0,1]`; 0 when no requests were simulated.
    pub fn hit_rate(&self) -> f64 {
        if self.requests == 0 {
            return 0.0;
        }
        self.hits() as f64 / self.requests as f64
    }

    /// Mean messages per peer over peers that received any.
    pub fn mean_load(&self) -> f64 {
        // Single fold, no intermediate allocation.
        let (sum, busy) = self
            .messages_per_peer
            .iter()
            .filter(|&&m| m > 0)
            .fold((0u64, 0u64), |(s, n), &m| (s + m, n + 1));
        if busy == 0 {
            0.0
        } else {
            sum as f64 / busy as f64
        }
    }

    /// Peak messages on any single peer.
    pub fn max_load(&self) -> u64 {
        self.messages_per_peer.iter().copied().max().unwrap_or(0)
    }

    /// Per-peer load sorted descending — the Fig. 22 curve
    /// (`messages` vs `client by rank`), zero-load peers omitted.
    pub fn load_by_rank(&self) -> Vec<u64> {
        let mut loads: Vec<u64> = self
            .messages_per_peer
            .iter()
            .copied()
            .filter(|&m| m > 0)
            .collect();
        loads.sort_unstable_by(|a, b| b.cmp(a));
        loads
    }
}

/// Runs the Section 5.1 simulation over a static cache set.
///
/// `caches[p]` is the potential request set of peer `p` (its cache in
/// the trace). Peers with empty caches are free-riders: they issue no
/// requests (the paper's request model has no free-rider requests) and,
/// holding nothing, never appear in neighbour lists.
///
/// # Examples
///
/// ```
/// use edonkey_semsearch::sim::{simulate, SimConfig};
/// use edonkey_trace::model::FileRef;
///
/// // Two peers with identical two-file caches: whoever requests second
/// // finds the first via the fallback, then hits on the second file.
/// let caches = vec![
///     vec![FileRef(0), FileRef(1)],
///     vec![FileRef(0), FileRef(1)],
/// ];
/// let result = simulate(&caches, 2, &SimConfig::lru(5));
/// assert_eq!(result.requests + result.contributor_seeds, 4);
/// ```
pub fn simulate(caches: &[Vec<FileRef>], n_files: usize, config: &SimConfig) -> SimResult {
    let arena = CacheArena::from_caches(caches, n_files);
    simulate_arena(&arena, config)
}

/// [`simulate`], also returning the availability ledger.
pub fn simulate_health(
    caches: &[Vec<FileRef>],
    n_files: usize,
    config: &SimConfig,
) -> (SimResult, SearchHealth) {
    let arena = CacheArena::from_caches(caches, n_files);
    simulate_arena_health_with_scratch(&arena, config, &mut SimScratch::new())
}

/// Arena-backed [`simulate`] with fresh scratch buffers.
pub fn simulate_arena(arena: &CacheArena, config: &SimConfig) -> SimResult {
    simulate_arena_with_scratch(arena, config, &mut SimScratch::new())
}

/// Reusable simulation buffers.
///
/// One `simulate` run needs a request stream, a per-file sharer table
/// and a per-peer membership mark; across a sweep those allocations
/// dwarf the useful work for small traces. A `SimScratch` carried from
/// run to run (e.g. one per worker thread via
/// [`crate::experiment::parallel_map_init`]) reuses them: vectors are
/// cleared, not freed, and the mark array is invalidated by bumping a
/// generation counter instead of being rewritten.
#[derive(Debug, Default)]
pub struct SimScratch {
    stream: Vec<(u32, FileRef)>,
    /// Arrival-ordered sharers per file, flat CSR: `sharer_heads` holds
    /// row offsets into `sharer_flat`, `sharer_len` the live widths.
    /// Every replica in the stream eventually lands in its file's row,
    /// so the final row widths are the per-file replica counts — known
    /// before the run starts. Three pooled buffers replace one heap
    /// `Vec` per shared file.
    sharer_heads: Vec<u32>,
    sharer_len: Vec<u32>,
    sharer_flat: Vec<Peer>,
    /// `mark[p] == generation` ⇔ peer `p` is an *online, queried*
    /// neighbour of the current requester. Stale entries are
    /// invalidated by the generation bump — never by clearing the
    /// array.
    mark: Vec<u64>,
    generation: u64,
    /// Per-attempt copy of the requester's neighbour list: staleness
    /// reactions mutate the list mid-walk.
    query_buf: Vec<Peer>,
    /// Per-request consecutive-timeout streaks `(neighbour, streak)` —
    /// the previous attempt's and the one being walked.
    stale_prev: Vec<(Peer, u32)>,
    stale_cur: Vec<(Peer, u32)>,
    /// Pooled per-peer neighbour policies, renewed in place each run
    /// ([`AnyPolicy::renew`] replays the construction draw sequence, so
    /// reuse is invisible to the RNG stream).
    policies: Vec<AnyPolicy>,
    /// Pooled candidate pool (the non-free-riders) for random lists.
    sharer_pool: Vec<Peer>,
    /// Pooled relay-list bitset for the two-hop probe.
    relay_bits: RowBits,
}

impl SimScratch {
    /// Creates empty scratch; buffers grow on first use.
    pub fn new() -> Self {
        Self::default()
    }

    /// Neighbour-list snapshot after the last run, in peer order — the
    /// final policy state the service-mode differential tests compare
    /// against. Empty before the first run.
    pub fn final_lists(&self) -> Vec<Vec<Peer>> {
        self.policies.iter().map(AnyPolicy::snapshot).collect()
    }
}

/// The arena-backed simulation core.
///
/// Behaviourally identical to the original `Vec<Vec<FileRef>>` +
/// per-peer `HashSet` implementation (kept as [`simulate_reference`]):
/// the request stream, every policy update and every RNG draw happen in
/// the same order, so results are bit-identical for a given seed. What
/// changed is the data layout:
///
/// * the stream is filled from contiguous arena rows instead of chasing
///   per-peer heap allocations;
/// * the "is this sharer one of my neighbours?" test is a generation-
///   stamped mark-array probe, stamped for free during the (already
///   mandatory) message-accounting walk over the requester's neighbour
///   list, instead of a `HashSet` lookup per candidate sharer;
/// * all large buffers live in `scratch` and are reused across runs.
pub fn simulate_arena_with_scratch(
    arena: &CacheArena,
    config: &SimConfig,
    scratch: &mut SimScratch,
) -> SimResult {
    simulate_arena_health_with_scratch(arena, config, scratch).0
}

/// [`simulate_arena_with_scratch`], also returning the availability
/// ledger ([`SearchHealth::check_against`] holds for every config).
pub fn simulate_arena_health_with_scratch(
    arena: &CacheArena,
    config: &SimConfig,
    scratch: &mut SimScratch,
) -> (SimResult, SearchHealth) {
    let n_peers = arena.n_peers();
    let n_files = arena.n_files();
    let mut rng = StdRng::seed_from_u64(config.seed);

    let SimScratch {
        stream,
        sharer_heads,
        sharer_len,
        sharer_flat,
        mark,
        generation,
        query_buf,
        stale_prev,
        stale_cur,
        policies,
        sharer_pool,
        relay_bits,
    } = scratch;

    // Sharers (non-free-riders) are the candidate pool for random lists.
    sharer_pool.clear();
    sharer_pool.extend(
        (0..n_peers)
            .filter(|&p| !arena.cache(p).is_empty())
            .map(|p| p as Peer),
    );

    // Request stream: a uniformly shuffled multiset of (peer, file).
    stream.clear();
    stream.reserve(arena.replica_count());
    for p in 0..n_peers {
        stream.extend(arena.cache(p).iter().map(|&f| (p as u32, f)));
    }
    shuffle(stream, &mut rng);

    // Mutable simulation state: renew the pooled policies in place (in
    // peer order, so the construction RNG draws replay exactly), extend
    // the pool if this arena has more peers than the last run.
    policies.truncate(n_peers);
    for (p, policy) in policies.iter_mut().enumerate() {
        policy.renew(
            config.policy,
            config.list_size,
            p as Peer,
            sharer_pool,
            &mut rng,
        );
    }
    for p in policies.len()..n_peers {
        policies.push(AnyPolicy::new(
            config.policy,
            config.list_size,
            p as Peer,
            sharer_pool,
            &mut rng,
        ));
    }
    // CSR sharer table: bucket-count the stream into row offsets, then
    // prefix-sum. Zeroing the counters is the same O(n_files) cost the
    // per-file `Vec::clear` walk used to pay, without its allocations.
    sharer_heads.clear();
    sharer_heads.resize(n_files + 1, 0);
    for &(_, f) in stream.iter() {
        sharer_heads[f.index() + 1] += 1;
    }
    for i in 0..n_files {
        sharer_heads[i + 1] += sharer_heads[i];
    }
    sharer_len.clear();
    sharer_len.resize(n_files, 0);
    sharer_flat.clear();
    sharer_flat.resize(stream.len(), 0);
    if mark.len() < n_peers {
        mark.resize(n_peers, 0);
    }

    let mut result = SimResult {
        requests: 0,
        one_hop_hits: 0,
        two_hop_hits: 0,
        contributor_seeds: 0,
        messages_per_peer: vec![0; n_peers],
    };
    let mut health = SearchHealth::default();

    // Availability: quiet schedules take none of the branches below, so
    // the pre-churn behaviour (and RNG sequence) is preserved exactly.
    let availability = &config.availability;
    let schedule = ChurnSchedule::new(availability.churn.clone());
    let quiet = schedule.is_quiet();
    let query = availability.query;
    // Adversary: a quiet plan takes none of the branches below and
    // consumes no RNG, so honest runs are bit-identical to runs that
    // never consulted it. The defense books are only allocated (and
    // only consulted) when both the plan and the flag are armed, which
    // is what makes `reputation` mechanically free on honest runs.
    let plan = AdversaryPlan::new(availability.adversary.clone());
    let adv_quiet = plan.is_quiet();
    let defend = availability.reputation && !adv_quiet;
    let exposure = availability.backend.pollution_exposure();
    let mut books: Vec<ReputationBook> = if defend {
        vec![ReputationBook::default(); n_peers]
    } else {
        Vec::new()
    };
    // Final misses route through the index backend; SingleServer is the
    // byte-identical pre-trait path (outage check + zero-cost resolve).
    let router = availability.backend.router(config.seed);
    // The static stream is spread uniformly over the virtual span, in
    // milli-days (1 day = 1000 md).
    let span_millis = u64::from(availability.virtual_days.max(1)) * 1000;
    let stream_len = stream.len().max(1) as u64;

    for (t, &(peer, file)) in stream.iter().enumerate() {
        let peer_idx = peer as usize;
        let head = sharer_heads[file.index()] as usize;
        let f_len = sharer_len[file.index()] as usize;
        if f_len == 0 {
            // Original contributor.
            result.contributor_seeds += 1;
            sharer_flat[head] = peer;
            sharer_len[file.index()] = 1;
            continue;
        }
        result.requests += 1;

        let base_millis = t as u64 * span_millis / stream_len;
        let mut elapsed = 0u64;
        let mut attempt = 0u32;
        stale_prev.clear();

        let (mut uploader, hop, day, milli) = loop {
            health.attempted += 1;
            if attempt > 0 {
                health.retried += 1;
            }
            let now = base_millis + elapsed;
            let day = (now / 1000) as u32;
            let milli = (now % 1000) as u32;

            // Querying loads every *online* one-hop neighbour; the same
            // walk stamps the mark array for the membership probe
            // below. The list is copied out first because staleness
            // reactions mutate it mid-walk.
            *generation += 1;
            let mut saw_timeout = false;
            query_buf.clear();
            query_buf.extend_from_slice(policies[peer_idx].neighbours());
            stale_cur.clear();
            for &n in query_buf.iter() {
                if !quiet && schedule.offline(n, day, milli) {
                    // Timed out: no message delivered, no mark stamped.
                    saw_timeout = true;
                    health.timed_out += 1;
                    if query.handle_stale {
                        let streak = stale_prev
                            .iter()
                            .find(|&&(p, _)| p == n)
                            .map_or(1, |&(_, s)| s + 1);
                        stale_cur.push((n, streak));
                        if streak >= query.stale_after.max(1) {
                            // Only the Random policy wants a
                            // replacement; it is drawn statelessly so
                            // the main RNG sequence never moves.
                            let replacement = match config.policy {
                                PolicyKind::Random if !sharer_pool.is_empty() => {
                                    let i =
                                        schedule.replacement_index(peer, n, day, sharer_pool.len());
                                    Some(sharer_pool[i])
                                }
                                _ => None,
                            };
                            match policies[peer_idx].handle_stale(n, replacement) {
                                StaleReaction::Evicted | StaleReaction::Replaced => {
                                    health.evicted_stale += 1;
                                }
                                StaleReaction::Probed => health.probed_stale += 1,
                                StaleReaction::Kept => {}
                            }
                        }
                    }
                } else if !adv_quiet && plan.answers_nothing(n) {
                    // Refused: the adversary is online and the query
                    // costs a message, but no answer comes back and no
                    // mark is stamped. Not a timeout — no retry or
                    // staleness fires; only the reputation score can
                    // clear the slot.
                    result.messages_per_peer[n as usize] += 1;
                    health.wasted_queries += 1;
                    if defend && books[peer_idx].on_query(n) {
                        let replacement = match config.policy {
                            PolicyKind::Random if !sharer_pool.is_empty() => {
                                let i = schedule.replacement_index(peer, n, day, sharer_pool.len());
                                Some(sharer_pool[i])
                            }
                            _ => None,
                        };
                        if policies[peer_idx].expel(n, replacement) {
                            health.reputation_evictions += 1;
                        }
                    }
                } else {
                    result.messages_per_peer[n as usize] += 1;
                    mark[n as usize] = *generation;
                }
            }
            std::mem::swap(stale_prev, stale_cur);

            // One-hop: does any current sharer sit among the online
            // queried neighbours? Iterating sharers (popularity-sized)
            // beats iterating the list for rare files, and is
            // equivalent.
            let file_sharers = &sharer_flat[head..head + f_len];
            let mut uploader: Option<Peer> = file_sharers
                .iter()
                .copied()
                .find(|&s| mark[s as usize] == *generation);
            let mut hop = 1;

            // Two-hop: query each online neighbour's neighbours; the
            // second-hop holder must itself be online to answer. For
            // popular files the per-relay membership probes dominate, so
            // the relay's list is stamped into a word-level bitset once
            // and the sharers probe single bits; rare files keep the
            // direct membership test. Either way the scan order — and
            // therefore the answer — is identical.
            if uploader.is_none() && config.two_hop {
                relay_bits.ensure(n_peers);
                'outer: for &n in query_buf.iter() {
                    if mark[n as usize] != *generation {
                        continue; // offline relay: its list is unreachable
                    }
                    let relay = &policies[n as usize];
                    if file_sharers.len() * 4 >= relay.neighbours().len() {
                        relay_bits.clear();
                        for &m in relay.neighbours() {
                            relay_bits.insert(m);
                        }
                        for &s in file_sharers {
                            if s != peer
                                && relay_bits.contains(s)
                                && (quiet || !schedule.offline(s, day, milli))
                                && (adv_quiet || !plan.answers_nothing(s))
                            {
                                uploader = Some(s);
                                hop = 2;
                                break 'outer;
                            }
                        }
                    } else {
                        for &s in file_sharers {
                            if s != peer
                                && relay.contains(s)
                                && (quiet || !schedule.offline(s, day, milli))
                                && (adv_quiet || !plan.answers_nothing(s))
                            {
                                uploader = Some(s);
                                hop = 2;
                                break 'outer;
                            }
                        }
                    }
                }
            }

            // Retry only when something actually timed out: a
            // definitive miss over fully online neighbours is final.
            if uploader.is_some() || !saw_timeout || attempt >= query.max_retries {
                break (uploader, hop, day, milli);
            }
            elapsed += query.backoff_for(attempt);
            attempt += 1;
        };

        let mut fell_back = false;
        match uploader {
            Some(_) => {
                if hop == 1 {
                    result.one_hop_hits += 1;
                } else {
                    result.two_hop_hits += 1;
                }
                health.answered += 1;
                if schedule.server_out(day) {
                    health.recovered += 1;
                }
            }
            None => {
                let lookup = router.lookup(&schedule, peer, file, day, milli);
                health.forwarded += lookup.forwarded;
                health.dht_hops += lookup.dht_hops;
                if !lookup.resolved {
                    // Overlay miss with the index unreachable: the
                    // request strands — nothing acquired, nothing
                    // recorded, no RNG consumed.
                    health.stranded += 1;
                    continue;
                }
                // Server fallback: a uniform current sharer uploads the
                // file, picked statelessly from the stream position (see
                // [`fallback_index`]). The pick is backend-agnostic —
                // the backend decides reachability and routing cost,
                // never *who* uploads — so zero-outage runs agree
                // across backends, and quiet SingleServer runs stay
                // bit-identical to the reference.
                let pick = sharer_flat[head + fallback_index(config.seed, t as u64, f_len)];
                health.server_fallback += 1;
                fell_back = true;
                uploader = Some(pick);
            }
        }

        let uploader = uploader.expect("an uploader always exists here");
        if adv_quiet {
            policies[peer_idx].record_upload_with_popularity(uploader, f_len as u32);
        } else {
            // Pollution strikes first (only fallback acquisitions
            // resolve through the index), a sybil hijack otherwise.
            // Either replaces only the *recorded* uploader — the
            // acquisition itself completes, so the sharer table below
            // grows exactly as in the honest run.
            let mut recorded = uploader;
            let mut polluted = false;
            let mut hijacked = false;
            if fell_back {
                if let Some(pol) = plan.polluter(file.index() as u64, exposure, n_peers) {
                    recorded = pol;
                    polluted = true;
                }
            }
            if !polluted {
                if let Some(syb) = plan.hijacker(peer, t as u64, n_peers) {
                    recorded = syb;
                    hijacked = true;
                }
            }
            if defend && (polluted || hijacked) && books[peer_idx].banned(recorded) {
                // A banned peer's claim is void: the querier ignores it
                // and credits the peer it actually downloaded from. The
                // capture dies; the learning signal survives. Refusing
                // re-admission — not expulsion — is what starves an
                // attacker out of the overlay.
                recorded = uploader;
                polluted = false;
                hijacked = false;
            }
            if defend && books[peer_idx].banned(recorded) {
                // The genuine uploader itself is banned (a fallback pick
                // can land on an attacker): nothing is recorded.
            } else {
                if polluted {
                    health.polluted_acquisitions += 1;
                } else if hijacked {
                    health.sybil_slots_held += 1;
                }
                let (added, removed) =
                    policies[peer_idx].record_upload_with_popularity_delta(recorded, f_len as u32);
                if defend {
                    let book = &mut books[peer_idx];
                    if polluted || hijacked {
                        // Suspect any slot the adversary now holds —
                        // won by this record or refreshed by it. A
                        // record the policy rejected outright captured
                        // nothing worth scoring. A repeat capture while
                        // already on probation fires the ban outright.
                        if (added == Some(recorded) || policies[peer_idx].contains(recorded))
                            && book.suspect(recorded)
                            && policies[peer_idx].expel(recorded, None)
                        {
                            health.reputation_evictions += 1;
                        }
                    } else if book.contains(recorded) {
                        // A genuine upload from a suspect redeems it.
                        book.redeem(recorded);
                    }
                    if let Some(rm) = removed {
                        book.remove(rm);
                    }
                }
            }
        }
        sharer_flat[head + f_len] = peer;
        sharer_len[file.index()] += 1;
    }

    (result, health)
}

/// The original (pre-arena) implementation, kept structurally intact as
/// a correctness oracle: `deterministic_under_seed`, the property tests
/// and the benchmark harness all compare the arena and split-cell paths
/// against it. The only change since the seed version is the server
/// fallback, which is now drawn statelessly from the stream position
/// (see [`fallback_index`]) in lockstep with the optimised paths.
pub fn simulate_reference(
    caches: &[Vec<FileRef>],
    n_files: usize,
    config: &SimConfig,
) -> SimResult {
    let mut rng = StdRng::seed_from_u64(config.seed);

    // Sharers (non-free-riders) are the candidate pool for random lists.
    let sharer_pool: Vec<Peer> = caches
        .iter()
        .enumerate()
        .filter(|(_, c)| !c.is_empty())
        .map(|(p, _)| p as Peer)
        .collect();

    // Request stream: a uniformly shuffled multiset of (peer, file).
    let mut stream: Vec<(u32, FileRef)> = caches
        .iter()
        .enumerate()
        .flat_map(|(p, cache)| cache.iter().map(move |&f| (p as u32, f)))
        .collect();
    shuffle(&mut stream, &mut rng);

    // Mutable simulation state.
    let mut policies: Vec<AnyPolicy> = (0..caches.len())
        .map(|p| {
            AnyPolicy::new(
                config.policy,
                config.list_size,
                p as Peer,
                &sharer_pool,
                &mut rng,
            )
        })
        .collect();
    // Who currently shares each file (grow-only), and each peer's
    // current holdings for O(1) "does neighbour n share f" checks.
    let mut sharers: Vec<Vec<Peer>> = vec![Vec::new(); n_files];
    let mut holdings: Vec<HashSet<FileRef>> = vec![HashSet::new(); caches.len()];

    let mut result = SimResult {
        requests: 0,
        one_hop_hits: 0,
        two_hop_hits: 0,
        contributor_seeds: 0,
        messages_per_peer: vec![0; caches.len()],
    };

    for (t, (peer, file)) in stream.into_iter().enumerate() {
        let peer_idx = peer as usize;
        let file_sharers = &sharers[file.index()];
        if file_sharers.is_empty() {
            // Original contributor.
            result.contributor_seeds += 1;
            sharers[file.index()].push(peer);
            holdings[peer_idx].insert(file);
            continue;
        }
        result.requests += 1;

        // Querying loads every one-hop neighbour.
        for &n in policies[peer_idx].neighbours() {
            result.messages_per_peer[n as usize] += 1;
        }

        // One-hop: does any current sharer sit in the neighbour list?
        // Iterating sharers (popularity-sized) beats iterating the list
        // for rare files, and is equivalent.
        let policy = &policies[peer_idx];
        let mut uploader: Option<Peer> = file_sharers.iter().copied().find(|&s| policy.contains(s));
        let mut hop = 1;

        // Two-hop: query each neighbour's neighbours.
        if uploader.is_none() && config.two_hop {
            'outer: for &n in policies[peer_idx].neighbours() {
                for &s in file_sharers {
                    if s != peer && policies[n as usize].contains(s) {
                        uploader = Some(s);
                        hop = 2;
                        break 'outer;
                    }
                }
            }
        }

        match uploader {
            Some(_) if hop == 1 => result.one_hop_hits += 1,
            Some(_) => result.two_hop_hits += 1,
            None => {
                // Server fallback: a uniform current sharer uploads the
                // file, picked statelessly from the stream position.
                let pick = file_sharers[fallback_index(config.seed, t as u64, file_sharers.len())];
                uploader = Some(pick);
            }
        }

        let uploader = uploader.expect("an uploader always exists here");
        let sources = sharers[file.index()].len() as u32;
        policies[peer_idx].record_upload_with_popularity(uploader, sources);
        sharers[file.index()].push(peer);
        holdings[peer_idx].insert(file);
    }

    result
}

/// True iff a cell can run on the split-cell path
/// ([`simulate_cell_range`]): queriers are mutually independent only
/// when no server outage can strand a request (every request then pushes
/// its peer onto the sharer list, making arrivals policy-independent),
/// the policy draws nothing from the sequential RNG (excludes Random)
/// and relays never matter (no two-hop). Forwarding index backends
/// (federated, DHT) are excluded too: their per-(querier, day) outage
/// stranding breaks the same arrival-rank invariance, and their hop
/// accounting has no mirror in the quiet interval-settled path — they
/// always run whole-cell (DESIGN.md §10). Non-quiet adversary plans
/// also run whole-cell: hijacked and polluted records change *which*
/// peer a list holds, and the split paths have no mirror of the
/// capture or defense bookkeeping.
pub fn split_eligible(config: &SimConfig) -> bool {
    !config.two_hop
        && !matches!(config.policy, PolicyKind::Random)
        && config.availability.churn.outage_days.is_empty()
        && !config.availability.backend.forwards()
        && config.availability.adversary.is_quiet()
}

/// One request of a querier's stream, fully resolved at precomp time:
/// stream position, file, arrival rank, and the file's arrival-CSR base
/// offset — one 16-byte load where the hot loop would otherwise chase
/// three parallel arrays. Shared with [`crate::serve`], which replays
/// the same records as a timed arrival stream.
#[derive(Clone, Copy, Debug)]
pub(crate) struct QueryRec {
    pub(crate) t: u32,
    pub(crate) file: FileRef,
    pub(crate) rank: u32,
    pub(crate) off: u32,
}

/// Policy-independent precomputation shared by every split-eligible
/// cell of a sweep that uses the same `(arena, seed)`.
///
/// The key observation: without server outages every consumed stream
/// entry `(p, f)` ends with `p` sharing `f`, so the sharer list of each
/// file — and hence every request's candidate uploader set — depends
/// only on the shuffled stream, never on the policy under test. One
/// pass over the stream therefore fixes, for all cells at once:
///
/// * which entries are contributor seeds (rank 0) vs requests;
/// * each file's sharers *in arrival order* (`arrivals`), of which the
///   first `rank` entries are exactly the file's sharer list at the
///   moment a rank-`rank` request is consumed;
/// * each querier's request positions (`queries`), the unit the
///   work-stealing scheduler splits cells by.
pub struct SweepPrecomp {
    pub(crate) seed: u64,
    pub(crate) stream: Vec<(u32, FileRef)>,
    /// Arrival-ordered sharers per file (CSR over files; each
    /// [`QueryRec`] carries its own row offset, so the offsets table is
    /// consumed during construction rather than stored).
    pub(crate) arrivals: Vec<Peer>,
    /// Fully-resolved requests per querier (CSR over peers); the
    /// offsets double as prefix sums of per-peer request counts.
    pub(crate) queries: Vec<QueryRec>,
    pub(crate) queries_off: Vec<u32>,
    /// Arrival rank per arena CSR entry: `rank_by[k]` is the arrival
    /// rank of peer `p` for file `f` where `k` indexes `(p, f)` in the
    /// arena's own CSR layout — the member-major hit check's O(1)
    /// "when did member `m` start sharing `f`" lookup.
    pub(crate) rank_by: Vec<u32>,
    pub(crate) requests: u64,
    pub(crate) contributor_seeds: u64,
    pub(crate) n_peers: usize,
}

impl SweepPrecomp {
    /// Builds the precomputation: one shuffle plus two linear passes.
    pub fn new(arena: &CacheArena, seed: u64) -> Self {
        Self::new_with_rng(arena, seed).0
    }

    /// [`SweepPrecomp::new`], also returning the RNG in its
    /// post-shuffle state. The batch simulator seeds one `StdRng`,
    /// shuffles the stream, then constructs the per-peer policies from
    /// the *same* generator — so any path that wants to reproduce its
    /// policy-construction draws (the serving engine does, for the
    /// Random policy's seeded lists) needs the generator exactly where
    /// the shuffle left it.
    pub(crate) fn new_with_rng(arena: &CacheArena, seed: u64) -> (Self, StdRng) {
        let n_peers = arena.n_peers();
        let n_files = arena.n_files();
        let mut rng = StdRng::seed_from_u64(seed);

        let mut stream: Vec<(u32, FileRef)> = Vec::with_capacity(arena.replica_count());
        for p in 0..n_peers {
            stream.extend(arena.cache(p).iter().map(|&f| (p as u32, f)));
        }
        shuffle(&mut stream, &mut rng);

        // Arrival CSR offsets: per-file replica counts, prefix-summed.
        let mut arrivals_off = vec![0u32; n_files + 1];
        for &(_, f) in &stream {
            arrivals_off[f.index() + 1] += 1;
        }
        for i in 0..n_files {
            arrivals_off[i + 1] += arrivals_off[i];
        }

        // Single pass: per-entry rank, arrival-ordered sharers, per-peer
        // request counts.
        let mut cursor: Vec<u32> = arrivals_off[..n_files].to_vec();
        let mut rank = vec![0u32; stream.len()];
        let mut arrivals = vec![0 as Peer; stream.len()];
        let mut per_peer = vec![0u32; n_peers];
        let mut requests = 0u64;
        for (t, &(p, f)) in stream.iter().enumerate() {
            let fi = f.index();
            let r = cursor[fi] - arrivals_off[fi];
            rank[t] = r;
            arrivals[cursor[fi] as usize] = p;
            cursor[fi] += 1;
            if r > 0 {
                per_peer[p as usize] += 1;
                requests += 1;
            }
        }
        let contributor_seeds = stream.len() as u64 - requests;

        // Request positions per querier (CSR over peers).
        let mut queries_off = vec![0u32; n_peers + 1];
        for p in 0..n_peers {
            queries_off[p + 1] = queries_off[p] + per_peer[p];
        }
        let mut qcursor: Vec<u32> = queries_off[..n_peers].to_vec();
        let mut queries = vec![
            QueryRec {
                t: 0,
                file: FileRef(0),
                rank: 0,
                off: 0
            };
            requests as usize
        ];
        for (t, &(p, f)) in stream.iter().enumerate() {
            if rank[t] > 0 {
                queries[qcursor[p as usize] as usize] = QueryRec {
                    t: t as u32,
                    file: f,
                    rank: rank[t],
                    off: arrivals_off[f.index()],
                };
                qcursor[p as usize] += 1;
            }
        }

        // Arrival rank per arena CSR entry, for the member-major probe.
        let (entries, offsets) = arena.as_csr_parts();
        let mut rank_by = vec![0u32; entries.len()];
        for (t, &(p, f)) in stream.iter().enumerate() {
            let row = arena.cache(p as usize);
            let pos = row
                .binary_search(&f)
                .expect("stream entries come from arena rows");
            rank_by[offsets[p as usize] as usize + pos] = rank[t];
        }

        (
            SweepPrecomp {
                seed,
                stream,
                arrivals,
                queries,
                queries_off,
                rank_by,
                requests,
                contributor_seeds,
                n_peers,
            },
            rng,
        )
    }

    /// The seed this precomputation was built for.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Requests issued by queriers in `[lo, hi)` — the scheduler's cost
    /// estimate for a subtask.
    pub fn requests_in(&self, lo: u32, hi: u32) -> u64 {
        u64::from(self.queries_off[hi as usize]) - u64::from(self.queries_off[lo as usize])
    }

    /// Splits the peer space into at most `chunks` contiguous ranges of
    /// roughly equal request counts. Any partition yields bit-identical
    /// sweep results (queriers are independent); this one just balances
    /// the work-stealing queue.
    pub fn peer_ranges(&self, chunks: usize) -> Vec<(u32, u32)> {
        let n = self.n_peers as u32;
        if n == 0 {
            return Vec::new();
        }
        let target = self.requests.div_ceil(chunks.max(1) as u64).max(1);
        let mut ranges = Vec::new();
        let mut lo = 0u32;
        while lo < n {
            let mut hi = lo + 1;
            while hi < n && self.requests_in(lo, hi) < target {
                hi += 1;
            }
            ranges.push((lo, hi));
            lo = hi;
        }
        ranges
    }
}

/// Per-worker scratch for [`simulate_cell_range`]: one pooled policy
/// (renewed per querier), the churn-path walk buffers, and the quiet
/// path's interval ledger.
#[derive(Debug, Default)]
pub struct SplitScratch {
    policy: Option<AnyPolicy>,
    /// Quiet path: `start_of[p]` is the request index at which member
    /// `p` became queryable — messages are settled per *interval* on
    /// eviction instead of per request. Only meaningful while `p` is
    /// marked with the current generation.
    start_of: Vec<u32>,
    /// Membership marks: `mark[p] == generation` ⇔ `p` is currently a
    /// list member (quiet path) or an online, queried neighbour (churn
    /// path). Maintained incrementally from the policy's upload deltas
    /// on the quiet path, so the hot hit check is one array load.
    mark: Vec<u64>,
    generation: u64,
    query_buf: Vec<Peer>,
    stale_prev: Vec<(Peer, u32)>,
    stale_cur: Vec<(Peer, u32)>,
    quiet: QuietState,
}

impl SplitScratch {
    /// Creates empty scratch; buffers grow on first use.
    pub fn new() -> Self {
        Self::default()
    }
}

/// Sentinel for "no peer" in [`QuietState`]'s intrusive links.
const NO_PEER: u32 = u32::MAX;

/// Peer-indexed policy state for the quiet split path.
///
/// The `neighbours` policies hash every membership test and `memmove`
/// every head insert; amortised over ~10⁵ requests per cell that is
/// most of a sweep's runtime. This mirror keeps the identical delta
/// semantics (pinned by the split determinism tests) with O(1) LRU
/// updates over intrusive recency links and generation-stamped History
/// counters — no hashing, no per-querier clearing. All per-peer arrays
/// are valid only where stamped with the scratch's current generation.
#[derive(Debug, Default)]
struct QuietState {
    /// Membership bitset over peers — ~2.5 KB at repro scale, so the
    /// hot prefix scan probes L1 instead of a peer-indexed word array.
    /// All-zero between queriers (members are unset during settling).
    bits: Vec<u64>,
    /// Recency links (head = most recently used), LRU kinds only.
    next: Vec<u32>,
    prev: Vec<u32>,
    head: u32,
    tail: u32,
    len: usize,
    /// History upload counters, valid iff `seen[p] == generation`.
    counts: Vec<u64>,
    /// History recency tie-break clocks, valid with `counts`.
    last: Vec<u64>,
    seen: Vec<u64>,
    clock: u64,
    /// History's member list, sorted by `(count, recency)` descending —
    /// exactly [`History`]'s list order.
    list: Vec<Peer>,
}

impl QuietState {
    /// Resets to the empty-list state for the next querier. The
    /// membership bits were already cleared during the previous
    /// querier's settling and the counter arrays are invalidated by the
    /// caller's generation bump, so this is O(1) after the first call.
    fn reset(&mut self, n_peers: usize) {
        if self.next.len() < n_peers {
            self.next.resize(n_peers, NO_PEER);
            self.prev.resize(n_peers, NO_PEER);
            self.counts.resize(n_peers, 0);
            self.last.resize(n_peers, 0);
            self.seen.resize(n_peers, 0);
            self.bits.resize(n_peers.div_ceil(64), 0);
        }
        self.head = NO_PEER;
        self.tail = NO_PEER;
        self.len = 0;
        self.clock = 0;
        self.list.clear();
    }

    #[inline]
    fn is_member(&self, p: u32) -> bool {
        self.bits[(p >> 6) as usize] & (1u64 << (p & 63)) != 0
    }

    #[inline]
    fn set_member(&mut self, p: u32) {
        self.bits[(p >> 6) as usize] |= 1u64 << (p & 63);
    }

    #[inline]
    fn unset_member(&mut self, p: u32) {
        self.bits[(p >> 6) as usize] &= !(1u64 << (p & 63));
    }

    #[inline]
    fn push_front(&mut self, u: u32) {
        self.prev[u as usize] = NO_PEER;
        self.next[u as usize] = self.head;
        if self.head == NO_PEER {
            self.tail = u;
        } else {
            self.prev[self.head as usize] = u;
        }
        self.head = u;
        self.len += 1;
    }

    #[inline]
    fn unlink(&mut self, u: u32) {
        let (p, n) = (self.prev[u as usize], self.next[u as usize]);
        if p == NO_PEER {
            self.head = n;
        } else {
            self.next[p as usize] = n;
        }
        if n == NO_PEER {
            self.tail = p;
        } else {
            self.prev[n as usize] = p;
        }
        self.len -= 1;
    }

    /// [`Lru::record_upload_delta`] over the intrusive links: the tail
    /// is the least recently used member, evicted before the insert,
    /// exactly like the Vec policy's `pop`-then-`insert(0, ..)`.
    #[inline]
    fn lru_record(&mut self, u: u32, cap: usize) -> Delta {
        if self.is_member(u) {
            if self.head != u {
                self.unlink(u);
                self.push_front(u);
            }
            (None, None)
        } else {
            let removed = if self.len == cap {
                let t = self.tail;
                self.unlink(t);
                self.unset_member(t);
                Some(t)
            } else {
                None
            };
            self.push_front(u);
            self.set_member(u);
            (Some(u), removed)
        }
    }

    #[inline]
    fn hist_key(&self, p: u32, gen: u64) -> (u64, u64) {
        if self.seen[p as usize] == gen {
            (self.counts[p as usize], self.last[p as usize])
        } else {
            (0, 0)
        }
    }

    /// [`History::record_upload_delta`] with the hash maps replaced by
    /// generation-stamped arrays; the sorted member list and its
    /// rejection/placement rules are verbatim.
    fn hist_record(&mut self, u: u32, cap: usize, gen: u64) -> Delta {
        self.clock += 1;
        let ui = u as usize;
        if self.seen[ui] == gen {
            self.counts[ui] += 1;
        } else {
            self.seen[ui] = gen;
            self.counts[ui] = 1;
        }
        self.last[ui] = self.clock;
        let mut delta = (None, None);
        if self.is_member(u) {
            let pos = self.list.iter().position(|&p| p == u).expect("member");
            self.list.remove(pos);
        } else if self.list.len() == cap {
            let tail = *self.list.last().expect("at capacity > 0");
            if self.hist_key(u, gen) <= self.hist_key(tail, gen) {
                return delta;
            }
            self.list.pop();
            self.unset_member(tail);
            self.set_member(u);
            delta = (Some(u), Some(tail));
        } else {
            self.set_member(u);
            delta = (Some(u), None);
        }
        let key = self.hist_key(u, gen);
        let pos = self
            .list
            .iter()
            .position(|&p| self.hist_key(p, gen) < key)
            .unwrap_or(self.list.len());
        self.list.insert(pos, u);
        delta
    }

    /// Number of current list members.
    #[inline]
    fn member_count(&self, kind: QuietKind) -> usize {
        match kind {
            QuietKind::History => self.list.len(),
            _ => self.len,
        }
    }

    /// Visits every current member (order is irrelevant to callers:
    /// min-rank probes and interval settling are order-free).
    #[inline]
    fn for_each_member(&self, kind: QuietKind, mut f: impl FnMut(u32)) {
        match kind {
            QuietKind::History => self.list.iter().for_each(|&m| f(m)),
            _ => {
                let mut m = self.head;
                while m != NO_PEER {
                    f(m);
                    m = self.next[m as usize];
                }
            }
        }
    }

    /// End-of-querier settling walk: visits every member while clearing
    /// its membership bit, restoring the all-zero invariant `reset`
    /// relies on.
    fn settle_members(&mut self, kind: QuietKind, mut f: impl FnMut(u32)) {
        match kind {
            QuietKind::History => {
                for i in 0..self.list.len() {
                    let m = self.list[i];
                    self.unset_member(m);
                    f(m);
                }
            }
            _ => {
                let mut m = self.head;
                while m != NO_PEER {
                    self.unset_member(m);
                    f(m);
                    m = self.next[m as usize];
                }
            }
        }
    }
}

/// Membership delta of one policy update: `(added, removed)`.
type Delta = (Option<Peer>, Option<Peer>);

/// The split-eligible policy kinds, with the rare-file cutoff resolved.
#[derive(Clone, Copy, Debug)]
enum QuietKind {
    Lru,
    History,
    RareLru { max_sources: u32 },
}

/// One subtask's contribution to a cell: every field merges by plain
/// summation, in any grouping, so [`merge_partials`] is exact.
#[derive(Clone, Debug)]
pub struct CellPartial {
    /// One-hop hits by queriers in this range (split cells never
    /// answer at two hops).
    pub one_hop_hits: u64,
    /// Messages received per peer from this range's queriers.
    pub messages: Vec<u64>,
    /// Availability ledger restricted to this range's requests.
    pub health: SearchHealth,
    /// Nanoseconds in the hit check (only when profiling).
    pub intersect_ns: u64,
    /// Nanoseconds in policy updates + message settling (profiling).
    pub update_ns: u64,
}

impl CellPartial {
    /// An all-zero partial covering no queriers — the identity of
    /// [`CellPartial::absorb`].
    pub fn empty(n_peers: usize) -> Self {
        CellPartial {
            one_hop_hits: 0,
            messages: vec![0; n_peers],
            health: SearchHealth::default(),
            intersect_ns: 0,
            update_ns: 0,
        }
    }

    /// Folds another partial in. Every field merges by plain summation
    /// over disjoint querier sets — the property [`merge_partials`]
    /// rests on — so windows can be accumulated one at a time without
    /// ever holding more than one partial (the bounded-working-set
    /// sweep's memory contract).
    pub fn absorb(&mut self, other: &CellPartial) {
        self.one_hop_hits += other.one_hop_hits;
        for (dst, &src) in self.messages.iter_mut().zip(&other.messages) {
            *dst += src;
        }
        self.health.attempted += other.health.attempted;
        self.health.answered += other.health.answered;
        self.health.timed_out += other.health.timed_out;
        self.health.retried += other.health.retried;
        self.health.evicted_stale += other.health.evicted_stale;
        self.health.probed_stale += other.health.probed_stale;
        self.health.server_fallback += other.health.server_fallback;
        self.health.stranded += other.health.stranded;
        self.health.recovered += other.health.recovered;
        self.health.forwarded += other.health.forwarded;
        self.health.dht_hops += other.health.dht_hops;
        self.health.wasted_queries += other.health.wasted_queries;
        self.health.sybil_slots_held += other.health.sybil_slots_held;
        self.health.polluted_acquisitions += other.health.polluted_acquisitions;
        self.health.reputation_evictions += other.health.reputation_evictions;
        self.intersect_ns += other.intersect_ns;
        self.update_ns += other.update_ns;
    }
}

/// Simulates queriers `peers.0 .. peers.1` of one split-eligible cell.
///
/// Replays exactly the per-querier slice of what
/// [`simulate_arena_health_with_scratch`] would do: the same request
/// order (a querier's requests keep their global stream order), the
/// same policy updates, the same stateless fallback picks. Because
/// split-eligible queriers never observe each other's lists, the
/// concatenation of any partition's partials is bit-identical to the
/// sequential run — the property the sweep determinism tests pin down.
///
/// `profile` additionally meters the hit-check and update stages into
/// the partial (off the sweeps' timed path; the metered run is a
/// separate pass).
pub fn simulate_cell_range(
    arena: &CacheArena,
    pre: &SweepPrecomp,
    config: &SimConfig,
    peers: (u32, u32),
    scratch: &mut SplitScratch,
    profile: bool,
) -> CellPartial {
    debug_assert!(split_eligible(config), "cell must be split-eligible");
    debug_assert_eq!(config.seed, pre.seed, "precomp seed must match the cell");
    let mut part = CellPartial {
        one_hop_hits: 0,
        messages: vec![0; pre.n_peers],
        health: SearchHealth::default(),
        intersect_ns: 0,
        update_ns: 0,
    };
    let quiet = config.availability.is_quiet();
    for p in peers.0..peers.1 {
        let lo = pre.queries_off[p as usize] as usize;
        let hi = pre.queries_off[p as usize + 1] as usize;
        if lo == hi {
            continue;
        }
        let requests = &pre.queries[lo..hi];
        if quiet {
            simulate_querier_quiet(arena, pre, config, requests, scratch, profile, &mut part);
        } else {
            simulate_querier_churn(pre, config, requests, scratch, profile, &mut part);
        }
    }
    part
}

/// Renews the pooled split-path policy for the next querier. Split
/// cells exclude the Random policy, so construction never draws RNG.
fn renew_split_policy<'a>(
    slot: &'a mut Option<AnyPolicy>,
    config: &SimConfig,
) -> &'a mut AnyPolicy {
    match slot {
        Some(policy) => policy.renew_adaptive(config.policy, config.list_size),
        None => *slot = Some(AnyPolicy::new_adaptive(config.policy, config.list_size)),
    }
    slot.as_mut().expect("slot was just filled")
}

/// Member-major hit check cutoff: prefer probing the (≤ list-size)
/// members against the arena when the file's sharer prefix is this many
/// times longer than the list. Purely a cost heuristic — both probes
/// return the member with the minimal arrival rank, i.e. the same
/// uploader the sequential sharer-order scan finds.
pub(crate) const MEMBER_MAJOR_CUTOFF: usize = 128;

/// Quiet-regime querier replay: interval-settled messages, rank-based
/// hit checks, no walk buffers.
fn simulate_querier_quiet(
    arena: &CacheArena,
    pre: &SweepPrecomp,
    config: &SimConfig,
    requests: &[QueryRec],
    scratch: &mut SplitScratch,
    profile: bool,
    part: &mut CellPartial,
) {
    let SplitScratch {
        start_of,
        generation,
        quiet,
        ..
    } = scratch;
    let kind = match config.policy {
        PolicyKind::Lru => QuietKind::Lru,
        PolicyKind::History => QuietKind::History,
        PolicyKind::RareLru { max_sources } => QuietKind::RareLru { max_sources },
        PolicyKind::Random => unreachable!("Random cells are split-ineligible"),
    };
    let cap = config.list_size;
    let (arena_files, arena_offsets) = arena.as_csr_parts();
    if start_of.len() < pre.n_peers {
        start_of.resize(pre.n_peers, 0);
    }
    quiet.reset(pre.n_peers);
    *generation += 1;
    let generation = *generation;
    for (q, rec) in requests.iter().enumerate() {
        let q = q as u32;
        let file = rec.file;
        let r = rec.rank as usize;
        let prefix = &pre.arrivals[rec.off as usize..rec.off as usize + r];

        // One-hop hit: the member with the minimal arrival rank below
        // `r` — identical to scanning the sharer list (which *is*
        // `prefix`) for the first member. Popular files probe
        // member-major via the arena; rare files scan the prefix, with
        // membership one array load (the marks mirror the list via the
        // upload deltas below).
        let t0 = profile.then(Instant::now);
        let uploader = if r > MEMBER_MAJOR_CUTOFF * quiet.member_count(kind).max(1) {
            let mut best: Option<(u32, Peer)> = None;
            quiet.for_each_member(kind, |m| {
                let row_lo = arena_offsets[m as usize] as usize;
                let row_hi = arena_offsets[m as usize + 1] as usize;
                if let Ok(pos) = arena_files[row_lo..row_hi].binary_search(&file) {
                    let rk = pre.rank_by[row_lo + pos];
                    if (rk as usize) < r && best.is_none_or(|(b, _)| rk < b) {
                        best = Some((rk, m));
                    }
                }
            });
            best.map(|(_, m)| m)
        } else {
            prefix.iter().copied().find(|&s| quiet.is_member(s))
        };
        if let Some(t0) = t0 {
            part.intersect_ns += t0.elapsed().as_nanos() as u64;
        }

        part.health.attempted += 1;
        let uploader = match uploader {
            Some(u) => {
                part.one_hop_hits += 1;
                part.health.answered += 1;
                u
            }
            None => {
                part.health.server_fallback += 1;
                prefix[fallback_index(pre.seed, u64::from(rec.t), r)]
            }
        };

        // Policy update + interval settling: a member evicted after
        // request `q` was queried during `[start, q]`.
        let t0 = profile.then(Instant::now);
        let (added, removed) = match kind {
            QuietKind::Lru => quiet.lru_record(uploader, cap),
            QuietKind::History => quiet.hist_record(uploader, cap, generation),
            QuietKind::RareLru { max_sources } => {
                if r as u32 <= max_sources {
                    quiet.lru_record(uploader, cap)
                } else {
                    (None, None)
                }
            }
        };
        if let Some(rm) = removed {
            part.messages[rm as usize] += u64::from(q + 1 - start_of[rm as usize]);
        }
        if let Some(ad) = added {
            start_of[ad as usize] = q + 1;
        }
        if let Some(t0) = t0 {
            part.update_ns += t0.elapsed().as_nanos() as u64;
        }
    }
    // Settle members still listed at the end of the querier's stream,
    // clearing their membership bits for the next querier.
    let total = requests.len() as u32;
    quiet.settle_members(kind, |m| {
        part.messages[m as usize] += u64::from(total - start_of[m as usize]);
    });
}

/// Churn-regime querier replay: the full timeout/retry/staleness walk of
/// the whole-cell path, restricted to one querier. Message accounting is
/// immediate (attempts differ per request, so intervals don't apply);
/// hit checks consult the mark array stamped during the walk, exactly
/// like the sequential path.
fn simulate_querier_churn(
    pre: &SweepPrecomp,
    config: &SimConfig,
    requests: &[QueryRec],
    scratch: &mut SplitScratch,
    profile: bool,
    part: &mut CellPartial,
) {
    let policy = renew_split_policy(&mut scratch.policy, config);
    if scratch.mark.len() < pre.n_peers {
        scratch.mark.resize(pre.n_peers, 0);
    }
    let availability = &config.availability;
    let schedule = ChurnSchedule::new(availability.churn.clone());
    let query = availability.query;
    let span_millis = u64::from(availability.virtual_days.max(1)) * 1000;
    let stream_len = pre.stream.len().max(1) as u64;

    for rec in requests {
        let t = rec.t;
        let r = rec.rank as usize;
        let prefix = &pre.arrivals[rec.off as usize..rec.off as usize + r];

        let base_millis = u64::from(t) * span_millis / stream_len;
        let mut elapsed = 0u64;
        let mut attempt = 0u32;
        scratch.stale_prev.clear();

        let uploader = loop {
            part.health.attempted += 1;
            if attempt > 0 {
                part.health.retried += 1;
            }
            let now = base_millis + elapsed;
            let day = (now / 1000) as u32;
            let milli = (now % 1000) as u32;

            scratch.generation += 1;
            let mut saw_timeout = false;
            scratch.query_buf.clear();
            scratch.query_buf.extend_from_slice(policy.neighbours());
            scratch.stale_cur.clear();
            let t0 = profile.then(Instant::now);
            for &n in scratch.query_buf.iter() {
                if schedule.offline(n, day, milli) {
                    saw_timeout = true;
                    part.health.timed_out += 1;
                    if query.handle_stale {
                        let streak = scratch
                            .stale_prev
                            .iter()
                            .find(|&&(p, _)| p == n)
                            .map_or(1, |&(_, s)| s + 1);
                        scratch.stale_cur.push((n, streak));
                        if streak >= query.stale_after.max(1) {
                            // Random is split-ineligible, so no
                            // replacement is ever drawn here.
                            match policy.handle_stale(n, None) {
                                StaleReaction::Evicted | StaleReaction::Replaced => {
                                    part.health.evicted_stale += 1;
                                }
                                StaleReaction::Probed => part.health.probed_stale += 1,
                                StaleReaction::Kept => {}
                            }
                        }
                    }
                } else {
                    part.messages[n as usize] += 1;
                    scratch.mark[n as usize] = scratch.generation;
                }
            }
            std::mem::swap(&mut scratch.stale_prev, &mut scratch.stale_cur);
            let uploader: Option<Peer> = prefix
                .iter()
                .copied()
                .find(|&s| scratch.mark[s as usize] == scratch.generation);
            if let Some(t0) = t0 {
                part.intersect_ns += t0.elapsed().as_nanos() as u64;
            }

            if uploader.is_some() || !saw_timeout || attempt >= query.max_retries {
                break uploader;
            }
            elapsed += query.backoff_for(attempt);
            attempt += 1;
        };

        let uploader = match uploader {
            Some(u) => {
                part.one_hop_hits += 1;
                part.health.answered += 1;
                u
            }
            None => {
                // No outage days on the split path, so the fallback
                // server is always up: nothing strands.
                part.health.server_fallback += 1;
                prefix[fallback_index(pre.seed, u64::from(t), r)]
            }
        };
        let t0 = profile.then(Instant::now);
        let _ = policy.record_upload_with_popularity_delta(uploader, r as u32);
        if let Some(t0) = t0 {
            part.update_ns += t0.elapsed().as_nanos() as u64;
        }
    }
}

/// Merges a split cell's subtask partials back into the sequential
/// result: totals and per-peer loads are sums over disjoint querier
/// sets, so addition in any order reproduces the whole-cell run
/// bit-for-bit; the stream-level totals (requests, contributor seeds)
/// come from the precomputation.
pub fn merge_partials(pre: &SweepPrecomp, parts: &[CellPartial]) -> (SimResult, SearchHealth) {
    let mut acc = CellPartial::empty(pre.n_peers);
    for part in parts {
        acc.absorb(part);
    }
    let result = SimResult {
        requests: pre.requests,
        one_hop_hits: acc.one_hop_hits,
        two_hop_hits: 0,
        contributor_seeds: pre.contributor_seeds,
        messages_per_peer: acc.messages,
    };
    (result, acc.health)
}

/// Fisher–Yates shuffle (kept local: `rand`'s `SliceRandom` would work,
/// but an explicit implementation keeps the request-order contract
/// obvious and seed-stable across `rand` versions).
fn shuffle<T>(items: &mut [T], rng: &mut impl Rng) {
    for i in (1..items.len()).rev() {
        let j = rng.gen_range(0..=i);
        items.swap(i, j);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn f(i: u32) -> FileRef {
        FileRef(i)
    }

    /// A tight community: 10 peers sharing the same 20 files.
    fn community(n_peers: u32, n_files: u32) -> Vec<Vec<FileRef>> {
        (0..n_peers)
            .map(|_| (0..n_files).map(f).collect())
            .collect()
    }

    #[test]
    fn accounting_adds_up() {
        let caches = community(10, 20);
        let result = simulate(&caches, 20, &SimConfig::lru(5));
        assert_eq!(
            result.requests + result.contributor_seeds,
            200,
            "every (peer, file) pair is consumed exactly once"
        );
        assert_eq!(
            result.contributor_seeds, 20,
            "each file has one contributor"
        );
        assert!(result.hits() <= result.requests);
    }

    #[test]
    fn clustered_caches_give_high_lru_hit_rates() {
        let caches = community(10, 40);
        let result = simulate(&caches, 40, &SimConfig::lru(5));
        // Everyone's neighbours quickly converge on the community.
        assert!(
            result.hit_rate() > 0.6,
            "hit rate {} too low for a perfect community",
            result.hit_rate()
        );
    }

    #[test]
    fn random_policy_is_much_worse_on_disjoint_communities() {
        // 20 communities of 5 peers with disjoint file sets.
        let mut caches = Vec::new();
        for c in 0..20u32 {
            for _ in 0..5 {
                caches.push((0..10).map(|k| f(c * 10 + k)).collect());
            }
        }
        let lru = simulate(&caches, 200, &SimConfig::lru(4));
        let random = simulate(&caches, 200, &SimConfig::random(4));
        assert!(
            lru.hit_rate() > random.hit_rate() + 0.2,
            "LRU {} vs random {}",
            lru.hit_rate(),
            random.hit_rate()
        );
    }

    #[test]
    fn history_also_learns() {
        let caches = community(10, 40);
        let result = simulate(&caches, 40, &SimConfig::history(5));
        assert!(
            result.hit_rate() > 0.5,
            "history hit rate {}",
            result.hit_rate()
        );
    }

    #[test]
    fn two_hop_never_hurts() {
        let mut caches = Vec::new();
        for c in 0..10u32 {
            for _ in 0..6 {
                caches.push((0..8).map(|k| f(c * 8 + k)).collect());
            }
        }
        let one = simulate(&caches, 80, &SimConfig::lru(3));
        let two = simulate(&caches, 80, &SimConfig::lru(3).with_two_hop());
        assert!(two.hit_rate() >= one.hit_rate());
        assert!(two.two_hop_hits > 0, "two-hop must answer something");
        assert_eq!(one.two_hop_hits, 0);
    }

    #[test]
    fn free_riders_issue_nothing_and_receive_nothing() {
        let mut caches = community(5, 10);
        caches.push(vec![]); // a free-rider
        let result = simulate(&caches, 10, &SimConfig::lru(5));
        assert_eq!(result.messages_per_peer[5], 0);
        assert_eq!(result.requests + result.contributor_seeds, 50);
    }

    #[test]
    fn load_is_counted_per_queried_neighbour() {
        let caches = community(4, 10);
        let result = simulate(&caches, 10, &SimConfig::lru(2));
        let total: u64 = result.messages_per_peer.iter().sum();
        // Each request queries at most 2 neighbours (less while lists
        // warm up).
        assert!(total <= result.requests * 2);
        assert!(total > 0);
        assert!(result.max_load() >= result.mean_load() as u64);
        let ranked = result.load_by_rank();
        assert!(ranked.windows(2).all(|w| w[0] >= w[1]));
    }

    #[test]
    fn deterministic_under_seed() {
        let caches = community(8, 15);
        let a = simulate(&caches, 15, &SimConfig::lru(5).with_seed(9));
        let b = simulate(&caches, 15, &SimConfig::lru(5).with_seed(9));
        assert_eq!(a, b);
        let c = simulate(&caches, 15, &SimConfig::lru(5).with_seed(10));
        // Different order, same accounting identity.
        assert_eq!(c.requests + c.contributor_seeds, 120);
        // The arena rewrite preserves the RNG call sequence exactly, so
        // the legacy implementation must agree bit-for-bit — across
        // policies, hop modes and scratch reuse.
        let mut scratch = SimScratch::new();
        let arena = CacheArena::from_caches(&caches, 15);
        for config in [
            SimConfig::lru(5).with_seed(9),
            SimConfig::lru(5).with_seed(10),
            SimConfig::history(4).with_seed(9),
            SimConfig::random(3).with_seed(9),
            SimConfig::rare_lru(5, 3).with_seed(9),
            SimConfig::lru(3).with_seed(9).with_two_hop(),
        ] {
            let legacy = simulate_reference(&caches, 15, &config);
            let fresh = simulate(&caches, 15, &config);
            let reused = simulate_arena_with_scratch(&arena, &config, &mut scratch);
            assert_eq!(legacy, fresh, "config {config:?}");
            assert_eq!(legacy, reused, "config {config:?} (reused scratch)");
        }
    }

    #[test]
    fn empty_input() {
        let result = simulate(&[], 0, &SimConfig::lru(5));
        assert_eq!(result.requests, 0);
        assert_eq!(result.hit_rate(), 0.0);
        assert_eq!(result.mean_load(), 0.0);
        assert_eq!(result.max_load(), 0);
        let (result, health) = simulate_health(&[], 0, &SimConfig::lru(5));
        assert!(health.check_against(&result).is_ok());
        assert_eq!(health, SearchHealth::default());
    }

    #[test]
    fn quiet_availability_is_bit_identical_to_reference() {
        let caches = community(8, 15);
        // A quiet schedule with a non-trivial seed and span, retries
        // armed: none of it may move a single bit.
        let quiet = AvailabilityConfig {
            churn: ChurnConfig::with_rate(0xdead_beef, 0),
            query: QueryPolicy::retry_evict(),
            virtual_days: 97,
            backend: IndexBackend::SingleServer,
            adversary: AdversaryConfig::sybils(0xfeed, 0),
            reputation: true,
        };
        assert!(quiet.is_quiet());
        for base in [
            SimConfig::lru(5).with_seed(9),
            SimConfig::history(4).with_seed(9),
            SimConfig::random(3).with_seed(9),
            SimConfig::rare_lru(5, 3).with_seed(9),
            SimConfig::lru(3).with_seed(9).with_two_hop(),
        ] {
            let reference = simulate_reference(&caches, 15, &base);
            let config = base.with_availability(quiet.clone());
            let (result, health) = simulate_health(&caches, 15, &config);
            assert_eq!(reference, result, "config {config:?}");
            assert!(health.check_against(&result).is_ok());
            assert_eq!(health.timed_out, 0);
            assert_eq!(health.retried, 0);
            assert_eq!(health.evicted_stale + health.probed_stale, 0);
            assert_eq!(health.stranded, 0);
            assert_eq!(health.recovered, 0);
            assert_eq!(health.attempted, result.requests);
        }
    }

    #[test]
    fn churn_reconciles_for_every_policy() {
        let caches = community(10, 30);
        for permille in [100u32, 250, 500, 1000] {
            for base in [
                SimConfig::lru(5),
                SimConfig::history(5),
                SimConfig::random(5),
                SimConfig::rare_lru(5, 3),
                SimConfig::lru(4).with_two_hop(),
            ] {
                for query in [QueryPolicy::no_retry(), QueryPolicy::retry_evict()] {
                    let config = base.clone().with_availability(
                        AvailabilityConfig::churn(7, permille).with_query(query),
                    );
                    let (result, health) = simulate_health(&caches, 30, &config);
                    health
                        .check_against(&result)
                        .unwrap_or_else(|e| panic!("{e} (config {config:?})"));
                    assert!(health.timed_out > 0, "churn {permille} must bite");
                }
            }
        }
    }

    #[test]
    fn churn_degrades_hits_monotonically() {
        let caches = community(12, 40);
        let hit_at = |permille: u32| {
            let config =
                SimConfig::lru(6).with_availability(AvailabilityConfig::churn(3, permille));
            simulate(&caches, 40, &config).hits()
        };
        let h0 = hit_at(0);
        let h250 = hit_at(250);
        let h1000 = hit_at(1000);
        assert!(h0 > 0);
        assert!(h250 < h0, "25% churn must cost hits ({h250} vs {h0})");
        assert_eq!(h1000, 0, "permanently offline neighbours never answer");
    }

    #[test]
    fn retries_recover_hits_under_churn() {
        let caches = community(12, 40);
        let run = |query: QueryPolicy| {
            let config = SimConfig::lru(6)
                .with_availability(AvailabilityConfig::churn(3, 250).with_query(query));
            simulate_health(&caches, 40, &config)
        };
        let (none, none_health) = run(QueryPolicy::no_retry());
        let (retry, retry_health) = run(QueryPolicy::retry_evict());
        assert!(retry_health.retried > 0);
        assert_eq!(none_health.retried, 0);
        assert!(
            retry.hits() > none.hits(),
            "retry {} vs no-retry {}",
            retry.hits(),
            none.hits()
        );
    }

    #[test]
    fn outage_strands_and_recovers() {
        let caches = community(10, 30);
        // The server dies halfway through the 14-day span: the warmed
        // overlay keeps answering (recovered), misses strand.
        let late_days: Vec<u32> = (7..200).collect();
        let config = SimConfig::lru(5).with_availability(
            AvailabilityConfig::churn(3, 250)
                .with_query(QueryPolicy::retry_evict())
                .with_outages(late_days),
        );
        let (result, health) = simulate_health(&caches, 30, &config);
        assert!(health.check_against(&result).is_ok());
        assert!(health.stranded > 0, "outage misses must strand");
        assert!(health.recovered > 0, "the warm overlay still answers");
        assert!(health.server_fallback > 0, "pre-outage misses fall back");
        assert_eq!(
            health.stranded + health.server_fallback,
            result.requests - result.hits()
        );

        // Server down from day 0: adaptive lists can never bootstrap —
        // the first acquisition needs the server — so nothing is ever
        // answered. Server-less search still *depends* on a server to
        // seed its links.
        let all_days: Vec<u32> = (0..200).collect();
        let config = SimConfig::lru(5).with_availability(
            AvailabilityConfig::churn(3, 250)
                .with_query(QueryPolicy::retry_evict())
                .with_outages(all_days),
        );
        let (result, health) = simulate_health(&caches, 30, &config);
        assert!(health.check_against(&result).is_ok());
        assert_eq!(health.server_fallback, 0, "no server to fall back to");
        assert_eq!(result.hits(), 0, "LRU lists never seed without a server");
        assert_eq!(health.stranded, result.requests);

        // No outage, same churn: nothing strands, nothing to recover.
        let config = SimConfig::lru(5).with_availability(
            AvailabilityConfig::churn(3, 250).with_query(QueryPolicy::retry_evict()),
        );
        let (result, health) = simulate_health(&caches, 30, &config);
        assert!(health.check_against(&result).is_ok());
        assert_eq!(health.stranded, 0);
        assert_eq!(health.recovered, 0);
        assert!(health.server_fallback > 0);
    }

    #[test]
    fn churn_runs_are_deterministic() {
        let caches = community(9, 25);
        let config = SimConfig::history(5).with_availability(
            AvailabilityConfig::churn(11, 400)
                .with_query(QueryPolicy::retry_evict())
                .with_outages(vec![2, 3]),
        );
        let a = simulate_health(&caches, 25, &config);
        let b = simulate_health(&caches, 25, &config);
        assert_eq!(a, b);
    }

    #[test]
    fn reconcile_rejects_violations() {
        let health = SearchHealth {
            attempted: 5,
            answered: 3,
            server_fallback: 2,
            ..SearchHealth::default()
        };
        assert!(health.reconcile(5, 3, 0).is_ok());
        let err = health.reconcile(5, 2, 0).unwrap_err();
        assert!(err.contains("answered"), "{err}");
        let err = health.reconcile(6, 3, 0).unwrap_err();
        assert!(err.contains("requests"), "{err}");
        let bad = SearchHealth {
            recovered: 4,
            ..health
        };
        assert!(bad.reconcile(5, 3, 0).is_err());
        let bad = SearchHealth {
            attempted: 9,
            ..health
        };
        let err = bad.reconcile(5, 3, 0).unwrap_err();
        assert!(err.contains("retried"), "{err}");
        // Hops without a single fallback lookup cannot happen.
        let bad = SearchHealth {
            attempted: 5,
            answered: 5,
            server_fallback: 0,
            forwarded: 2,
            ..SearchHealth::default()
        };
        let err = bad.reconcile(5, 5, 0).unwrap_err();
        assert!(err.contains("fallback lookup"), "{err}");
    }

    #[test]
    fn reconcile_rejects_adversary_violations() {
        let health = SearchHealth {
            attempted: 5,
            answered: 3,
            server_fallback: 2,
            ..SearchHealth::default()
        };
        let bad = SearchHealth {
            polluted_acquisitions: 3,
            ..health
        };
        let err = bad.reconcile(5, 3, 0).unwrap_err();
        assert!(err.contains("polluted_acquisitions"), "{err}");
        let bad = SearchHealth {
            sybil_slots_held: 6,
            ..health
        };
        let err = bad.reconcile(5, 3, 0).unwrap_err();
        assert!(err.contains("sybil_slots_held"), "{err}");
        let bad = SearchHealth {
            reputation_evictions: 1,
            ..health
        };
        let err = bad.reconcile(5, 3, 0).unwrap_err();
        assert!(err.contains("reputation_evictions"), "{err}");
        let ok = SearchHealth {
            sybil_slots_held: 2,
            polluted_acquisitions: 1,
            reputation_evictions: 1,
            wasted_queries: 9,
            ..health
        };
        assert!(ok.reconcile(5, 3, 0).is_ok());
    }

    #[test]
    fn adversary_reconciles_and_counts_every_attack_kind() {
        let caches = community(30, 60);
        for base in [
            SimConfig::lru(5),
            SimConfig::history(5),
            SimConfig::random(5),
            SimConfig::rare_lru(5, 3),
            SimConfig::lru(4).with_two_hop(),
        ] {
            let config = base.with_availability(
                AvailabilityConfig::none().with_adversary(
                    AdversaryConfig::sybils(21, 150)
                        .with_polluters(150)
                        .with_freeriders(150),
                ),
            );
            let (result, health) = simulate_health(&caches, 60, &config);
            health
                .check_against(&result)
                .unwrap_or_else(|e| panic!("{e} (config {config:?})"));
            assert!(health.wasted_queries > 0, "refusals must bite");
            assert!(health.sybil_slots_held > 0, "sybils must capture slots");
            assert!(
                health.polluted_acquisitions > 0,
                "polluters must poison fallbacks"
            );
            assert_eq!(health.reputation_evictions, 0, "defense is off");
        }
    }

    #[test]
    fn adversary_degrades_hits_and_defense_recovers_them() {
        let caches = community(30, 60);
        let run = |adversary: AdversaryConfig, reputation: bool| {
            let mut avail = AvailabilityConfig::none().with_adversary(adversary);
            if reputation {
                avail = avail.with_reputation();
            }
            simulate_health(&caches, 60, &SimConfig::lru(4).with_availability(avail))
        };
        let (honest, _) = run(AdversaryConfig::none(), false);
        let (attacked, attacked_health) = run(AdversaryConfig::sybils(21, 300), false);
        assert!(
            attacked.hits() < honest.hits(),
            "a 30% sybil plan must cost hits ({} vs {})",
            attacked.hits(),
            honest.hits()
        );
        let (defended, defended_health) = run(AdversaryConfig::sybils(21, 300), true);
        assert!(
            defended_health.reputation_evictions > 0,
            "defense must fire"
        );
        assert!(
            defended.hits() > attacked.hits(),
            "defense must recover hits ({} vs {})",
            defended.hits(),
            attacked.hits()
        );
        assert!(attacked_health.reputation_evictions == 0);
    }

    #[test]
    fn armed_defense_is_bitwise_free_on_honest_runs() {
        // `reputation: true` with a quiet adversary plan must change
        // nothing — even under churn, where the defense's walk branch
        // sits next to live timeout handling.
        let caches = community(10, 30);
        for base in [
            SimConfig::lru(5),
            SimConfig::history(5),
            SimConfig::random(5),
            SimConfig::rare_lru(5, 3),
        ] {
            let avail = AvailabilityConfig::churn(7, 250).with_query(QueryPolicy::retry_evict());
            let plain = base.clone().with_availability(avail.clone());
            let armed = base.with_availability(avail.with_reputation());
            assert_eq!(
                simulate_health(&caches, 30, &plain),
                simulate_health(&caches, 30, &armed)
            );
        }
    }

    /// The doctored ledger both should-panic tests use: `answered`
    /// disagrees with the hit counts.
    fn doctored_cell() -> (SearchHealth, SimResult) {
        let health = SearchHealth {
            attempted: 5,
            answered: 3,
            server_fallback: 2,
            ..SearchHealth::default()
        };
        let result = SimResult {
            requests: 5,
            one_hop_hits: 2,
            two_hop_hits: 0,
            contributor_seeds: 0,
            messages_per_peer: Vec::new(),
        };
        (health, result)
    }

    #[test]
    #[should_panic(expected = "(seed 42, list_size 5, churn_rate 250, backend single)")]
    fn reconcile_panic_names_the_cell() {
        // The panic must localize the cell by seed, list size, rate and
        // backend kind.
        let (health, result) = doctored_cell();
        let config = SimConfig::lru(5)
            .with_seed(42)
            .with_availability(AvailabilityConfig::churn(7, 250));
        health.expect_reconciled(&result, &config);
    }

    #[test]
    #[should_panic(expected = "(seed 42, list_size 5, churn_rate 250, backend federated8)")]
    fn reconcile_panic_names_the_forwarding_backend() {
        // A forwarding-backend cell must be named as such: the routing
        // path differs from the single server, so "which backend" is
        // part of the cell identity.
        let (health, result) = doctored_cell();
        let config = SimConfig::lru(5).with_seed(42).with_availability(
            AvailabilityConfig::churn(7, 250)
                .with_backend(IndexBackend::Federated { n_servers: 8 }),
        );
        health.expect_reconciled(&result, &config);
    }

    #[test]
    fn forwarding_backends_account_hops_and_preserve_results() {
        let caches = community(10, 30);
        let (base, base_health) = simulate_health(&caches, 30, &SimConfig::lru(5));
        assert_eq!(base_health.forwarded + base_health.dht_hops, 0);

        // Zero outages: the uploader pick is backend-agnostic, so the
        // SimResult is identical across backends — only the routing-cost
        // counters move.
        let fed = SimConfig::lru(5).with_backend(IndexBackend::Federated { n_servers: 8 });
        let (fed_result, fed_health) = simulate_health(&caches, 30, &fed);
        assert!(fed_health.check_against(&fed_result).is_ok());
        assert_eq!(fed_result, base);
        assert!(fed_health.forwarded > 0, "some fallback must forward");
        assert_eq!(fed_health.dht_hops, 0);

        let dht = SimConfig::lru(5).with_backend(IndexBackend::Dht { replication_k: 3 });
        let (dht_result, dht_health) = simulate_health(&caches, 30, &dht);
        assert!(dht_health.check_against(&dht_result).is_ok());
        assert_eq!(dht_result, base);
        assert!(dht_health.dht_hops > 0, "DHT lookups must walk the ring");
        assert_eq!(dht_health.forwarded, 0);
    }

    #[test]
    fn larger_lists_do_not_reduce_hits() {
        let caches = community(12, 30);
        let small = simulate(&caches, 30, &SimConfig::lru(2));
        let large = simulate(&caches, 30, &SimConfig::lru(11));
        assert!(large.hit_rate() >= small.hit_rate() - 0.02);
    }
}
