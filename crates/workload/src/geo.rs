//! Synthetic geography: countries, autonomous systems and an address
//! plan, calibrated to the paper's Fig. 4 and Table 2.
//!
//! The paper maps client IPs to countries and ASes with a GeoIP database
//! we cannot ship. Instead, this module *is* the database: each country
//! owns a distinct set of ASes, each AS owns a distinct IPv4 prefix, and
//! the generator draws client locations from the published marginals:
//!
//! * country shares — FR 29 %, DE 28 %, ES 16 %, US 5 %, IT 3 %, IL 2 %,
//!   GB 2 %, TW 1 %, PL 1 %, AT 1 %, NL 1 %, others 6 % (Fig. 4);
//! * dominant-AS national shares — Deutsche Telekom hosts 75 % of German
//!   clients, Transpac 51 % of French, Telefónica 50 % of Spanish, Proxad
//!   24 % of French, AOL 60 % of US clients (Table 2).

use edonkey_trace::model::CountryCode;
use rand::Rng;

use crate::dist::{cumulative_from_weights, sample_cumulative};

/// One autonomous system in the synthetic address plan.
#[derive(Clone, Debug, PartialEq)]
pub struct AsPlan {
    /// AS number (real numbers for Table 2's ASes, synthetic elsewhere).
    pub asn: u32,
    /// Operator name, for table rendering.
    pub name: &'static str,
    /// Share of the country's clients hosted by this AS, in `[0,1]`.
    pub national_share: f64,
}

/// One country in the synthetic plan.
#[derive(Clone, Debug, PartialEq)]
pub struct CountryPlan {
    /// ISO-style code.
    pub code: CountryCode,
    /// Share of all clients, in `[0,1]` (Fig. 4).
    pub share: f64,
    /// The country's ASes with their national shares (Table 2 rows where
    /// published, synthetic remainders elsewhere).
    pub ases: Vec<AsPlan>,
}

/// The full geography: countries, ASes, and the address plan.
#[derive(Clone, Debug)]
pub struct Geography {
    countries: Vec<CountryPlan>,
    country_cumulative: Vec<f64>,
    /// Per-country cumulative AS weights.
    as_cumulative: Vec<Vec<f64>>,
}

/// A sampled client location.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Location {
    /// Country index into [`Geography::countries`].
    pub country_idx: usize,
    /// Country code.
    pub country: CountryCode,
    /// Autonomous system number.
    pub asn: u32,
}

impl Geography {
    /// Builds the paper-calibrated geography.
    pub fn paper() -> Self {
        let c = CountryCode::new;
        // Within each country, the dominant ASes come from Table 2; the
        // remainder is split over a few synthetic "minor" ASes so AS-level
        // clustering (Fig. 12) has realistic granularity.
        let countries = vec![
            CountryPlan {
                code: c("FR"),
                share: 0.29,
                ases: with_remainder(
                    64_000,
                    &[
                        AsPlan {
                            asn: 3215,
                            name: "France Telecom Transpac",
                            national_share: 0.51,
                        },
                        AsPlan {
                            asn: 12322,
                            name: "Proxad ISP France",
                            national_share: 0.24,
                        },
                    ],
                    3,
                ),
            },
            CountryPlan {
                code: c("DE"),
                share: 0.28,
                ases: with_remainder(
                    64_100,
                    &[AsPlan {
                        asn: 3320,
                        name: "Deutsche Telekom AG",
                        national_share: 0.75,
                    }],
                    3,
                ),
            },
            CountryPlan {
                code: c("ES"),
                share: 0.16,
                ases: with_remainder(
                    64_200,
                    &[AsPlan {
                        asn: 3352,
                        name: "Telefonica Data Espana",
                        national_share: 0.50,
                    }],
                    3,
                ),
            },
            CountryPlan {
                code: c("US"),
                share: 0.05,
                ases: with_remainder(
                    64_300,
                    &[AsPlan {
                        asn: 1668,
                        name: "AOL-primehost USA",
                        national_share: 0.60,
                    }],
                    4,
                ),
            },
            synthetic_country(c("IT"), 0.03, 64_400, 3),
            synthetic_country(c("IL"), 0.02, 64_500, 2),
            synthetic_country(c("GB"), 0.02, 64_600, 3),
            synthetic_country(c("TW"), 0.01, 64_700, 2),
            synthetic_country(c("PL"), 0.01, 64_800, 2),
            synthetic_country(c("AT"), 0.01, 64_900, 2),
            synthetic_country(c("NL"), 0.01, 65_000, 2),
            // "Others": six small countries sharing the remainder. Fig. 4's
            // rounded percentages sum to 95 %, so the unlabeled mass (11 %)
            // goes here.
            synthetic_country(c("BE"), 0.02, 65_100, 2),
            synthetic_country(c("CH"), 0.02, 65_200, 2),
            synthetic_country(c("PT"), 0.02, 65_300, 2),
            synthetic_country(c("SE"), 0.02, 65_400, 2),
            synthetic_country(c("FI"), 0.015, 65_500, 2),
            synthetic_country(c("NO"), 0.015, 65_600, 2),
        ];
        Self::from_plan(countries)
    }

    /// Builds a geography from an explicit plan (tests, ablations).
    ///
    /// # Panics
    ///
    /// Panics if the plan is empty, shares are not positive, or any
    /// country has no ASes.
    pub fn from_plan(countries: Vec<CountryPlan>) -> Self {
        assert!(
            !countries.is_empty(),
            "geography needs at least one country"
        );
        for country in &countries {
            assert!(
                country.share > 0.0,
                "{}: share must be positive",
                country.code
            );
            assert!(
                !country.ases.is_empty(),
                "{}: needs at least one AS",
                country.code
            );
        }
        let country_cumulative =
            cumulative_from_weights(&countries.iter().map(|c| c.share).collect::<Vec<_>>());
        let as_cumulative = countries
            .iter()
            .map(|c| {
                cumulative_from_weights(
                    &c.ases.iter().map(|a| a.national_share).collect::<Vec<_>>(),
                )
            })
            .collect();
        Geography {
            countries,
            country_cumulative,
            as_cumulative,
        }
    }

    /// The country plans.
    pub fn countries(&self) -> &[CountryPlan] {
        &self.countries
    }

    /// Samples a client location from the country and AS marginals.
    pub fn sample_location(&self, rng: &mut impl Rng) -> Location {
        let country_idx = sample_cumulative(&self.country_cumulative, rng);
        let as_idx = sample_cumulative(&self.as_cumulative[country_idx], rng);
        Location {
            country_idx,
            country: self.countries[country_idx].code,
            asn: self.countries[country_idx].ases[as_idx].asn,
        }
    }

    /// Samples a country index only (used for file home countries).
    pub fn sample_country(&self, rng: &mut impl Rng) -> usize {
        sample_cumulative(&self.country_cumulative, rng)
    }

    /// Allocates a fresh IP for the `n`-th client of an AS.
    ///
    /// The plan gives each AS a disjoint /12-style block:
    /// `(as_block << 20) | host`. Uniqueness per (asn, host counter) is
    /// the caller's job (the generator keeps one counter per AS).
    pub fn ip_for(&self, asn: u32, host: u32) -> u32 {
        assert!(host < (1 << 20), "AS block exhausted: host {host}");
        // Fold the ASN into 12 bits; plan ASNs are distinct mod 4096
        // (real ones are small, synthetic ones are spread above 64 000).
        let block = asn % (1 << 12);
        (block << 20) | host
    }

    /// Looks up the country index for a code.
    pub fn country_index(&self, code: CountryCode) -> Option<usize> {
        self.countries.iter().position(|c| c.code == code)
    }
}

/// Builds a list of ASes: the published dominant ones plus `minor_count`
/// synthetic ASes evenly sharing the remainder.
fn with_remainder(base_asn: u32, dominant: &[AsPlan], minor_count: usize) -> Vec<AsPlan> {
    let used: f64 = dominant.iter().map(|a| a.national_share).sum();
    assert!(used < 1.0, "dominant shares exceed 100%");
    let mut ases = dominant.to_vec();
    let rest = (1.0 - used) / minor_count as f64;
    for i in 0..minor_count {
        ases.push(AsPlan {
            asn: base_asn + i as u32,
            name: "regional ISP",
            national_share: rest,
        });
    }
    ases
}

/// A country with no published AS data: one larger incumbent plus minors.
fn synthetic_country(
    code: CountryCode,
    share: f64,
    base_asn: u32,
    minor_count: usize,
) -> CountryPlan {
    CountryPlan {
        code,
        share,
        ases: with_remainder(
            base_asn,
            &[AsPlan {
                asn: base_asn + 50,
                name: "national incumbent",
                national_share: 0.55,
            }],
            minor_count,
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use std::collections::HashMap;

    #[test]
    fn paper_plan_matches_published_marginals() {
        let geo = Geography::paper();
        let total: f64 = geo.countries().iter().map(|c| c.share).sum();
        assert!(
            (total - 1.0).abs() < 1e-9,
            "country shares must sum to 1, got {total}"
        );
        let fr = &geo.countries()[geo.country_index(CountryCode::new("FR")).unwrap()];
        assert!((fr.share - 0.29).abs() < 1e-9);
        assert!(fr
            .ases
            .iter()
            .any(|a| a.asn == 3215 && a.national_share == 0.51));
        assert!(fr.ases.iter().any(|a| a.asn == 12322));
        for c in geo.countries() {
            let s: f64 = c.ases.iter().map(|a| a.national_share).sum();
            assert!((s - 1.0).abs() < 1e-9, "{}: AS shares sum to {s}", c.code);
        }
    }

    #[test]
    fn sampled_shares_track_plan() {
        let geo = Geography::paper();
        let mut rng = StdRng::seed_from_u64(5);
        let mut by_country: HashMap<CountryCode, usize> = HashMap::new();
        let mut by_asn: HashMap<u32, usize> = HashMap::new();
        let n = 100_000;
        for _ in 0..n {
            let loc = geo.sample_location(&mut rng);
            *by_country.entry(loc.country).or_insert(0) += 1;
            *by_asn.entry(loc.asn).or_insert(0) += 1;
        }
        let fr = by_country[&CountryCode::new("FR")] as f64 / n as f64;
        assert!((fr - 0.29).abs() < 0.01, "FR share {fr}");
        let de = by_country[&CountryCode::new("DE")] as f64 / n as f64;
        assert!((de - 0.28).abs() < 0.01, "DE share {de}");
        // Table 2 global shares: DTAG ≈ 0.28 * 0.75 ≈ 21 %.
        let dtag = by_asn[&3320] as f64 / n as f64;
        assert!((dtag - 0.21).abs() < 0.01, "DTAG global share {dtag}");
        let transpac = by_asn[&3215] as f64 / n as f64;
        assert!(
            (transpac - 0.148).abs() < 0.01,
            "Transpac global share {transpac}"
        );
    }

    #[test]
    fn ips_are_disjoint_across_ases() {
        let geo = Geography::paper();
        let mut seen = std::collections::HashSet::new();
        for country in geo.countries() {
            for a in &country.ases {
                for host in [0u32, 1, 500_000] {
                    assert!(
                        seen.insert(geo.ip_for(a.asn, host)),
                        "duplicate ip for asn {} host {host}",
                        a.asn
                    );
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "exhausted")]
    fn ip_block_overflow_panics() {
        let geo = Geography::paper();
        let _ = geo.ip_for(3320, 1 << 20);
    }

    #[test]
    fn country_index_lookup() {
        let geo = Geography::paper();
        assert!(geo.country_index(CountryCode::new("TW")).is_some());
        assert_eq!(geo.country_index(CountryCode::new("ZZ")), None);
    }

    #[test]
    #[should_panic(expected = "at least one country")]
    fn empty_plan_rejected() {
        let _ = Geography::from_plan(vec![]);
    }
}
