//! Day-at-a-time streaming trace generation — the out-of-core paper
//! tier's front end (DESIGN.md §13).
//!
//! [`crate::generate_trace`] materializes every day of the ground truth
//! plus the observed [`Trace`] before anything is written: at
//! `WorkloadConfig::paper_scale` (320 k peers, 8 M files) that is tens
//! of gigabytes of snapshots. The streaming generator instead emits one
//! [`DayArena`] at a time straight through [`TraceWriter`], so peak
//! memory is the population tables plus the current day's rows plus one
//! rolling cache window per sharer.
//!
//! The price of streaming is the RNG discipline: the batch generator
//! threads a single sequential `StdRng` through every day, which makes
//! day `d` depend on every draw before it. Here every draw is a
//! *stateless* [`splitmix64`] stream keyed by `(seed, salt, entity,
//! position)`, so any day — and any peer within a day — can be produced
//! independently, in parallel, with a thread-invariant result:
//!
//! * **acquisitions** — peer `i`'s lifetime acquisition stream maps
//!   position `k` to a file via a `(seed, ACQ, i, k)`-keyed draw through
//!   [`Population::sample_file`] (interest/locality mixture preserved);
//! * **turnover** — the day's acquisition count is a `(seed, DAILY,
//!   day, i)`-keyed Poisson draw with the configured ~5 replacements
//!   per client per day; the cache is the FIFO window holding the last
//!   `target_cache` positions, so a ring buffer over `k mod target`
//!   replays it with no per-day history;
//! * **observation** — the ideal observer's coverage ramp
//!   (`observe_prob_start → observe_prob_end`) is a `(seed, OBS, day,
//!   i)`-keyed Bernoulli draw, free-riders included (they surface as
//!   empty rows, exactly like the batch observer).
//!
//! Because the two generators consume RNG in different orders they
//! produce different (equally calibrated) traces for the same seed; the
//! streaming path's pinned equivalence is against its own in-memory
//! twin ([`generate_trace_streamed_in_memory`]), byte-identical under
//! `trace::io::bin` for any thread count — the property
//! `tests/properties.rs` locks down.

use std::io::{Seek, Write};
use std::path::Path;

use edonkey_trace::compact::DayArena;
use edonkey_trace::model::{FileRef, PeerId, Trace};
use edonkey_trace::{TraceIoError, TraceWriter};
use rand::{Rng, RngCore};

use crate::config::WorkloadConfig;
use crate::dist::poisson;
use crate::mix::splitmix64;
use crate::population::{Population, SampleTables};

/// Domain separation salts for the stateless draw streams.
const SALT_ACQ: u64 = 0x73_74_72_6d_41_43_51_31; // "strmACQ1"
const SALT_DAILY: u64 = 0x73_74_72_6d_44_41_59_31; // "strmDAY1"
const SALT_OBS: u64 = 0x73_74_72_6d_4f_42_53_31; // "strmOBS1"

/// A stateless-keyed counter RNG: `keyed(seed, salt, a, b)` starts an
/// independent splitmix64 stream, so any `(entity, position)` draw can
/// be replayed without the draws before it.
struct StreamRng {
    state: u64,
}

impl StreamRng {
    fn keyed(seed: u64, salt: u64, a: u64, b: u64) -> Self {
        let state = splitmix64(splitmix64(splitmix64(seed ^ salt).wrapping_add(a)).wrapping_add(b));
        StreamRng { state }
    }
}

impl RngCore for StreamRng {
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        splitmix64(self.state)
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

/// One peer's rolling cache window: the last `target` positions of its
/// acquisition stream, stored as a ring so day-to-day turnover is O(new
/// acquisitions) instead of O(cache).
struct PeerWindow {
    /// `ring[k % target]` holds the file acquired at position `k`.
    ring: Vec<u32>,
    /// Lifetime acquisition count (the next position to fill).
    count: u64,
}

/// What one day's emission produced, summed over the whole run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StreamStats {
    /// Days actually written (days with at least one observed peer).
    pub days_written: u32,
    /// Observed (peer, day) rows emitted.
    pub rows: u64,
    /// Cache entries emitted across all rows.
    pub entries: u64,
}

/// Fills the initial windows (positions `0..target` of every
/// acquisition stream), sharded over `threads` contiguous peer ranges.
fn init_windows(pop: &Population, tables: &SampleTables<'_>, threads: usize) -> Vec<PeerWindow> {
    let seed = pop.config.seed;
    let n_peers = pop.peers.len();
    let per = n_peers.div_ceil(threads.max(1)).max(1);
    let ranges: Vec<(usize, usize)> = (0..n_peers)
        .step_by(per)
        .map(|lo| (lo, (lo + per).min(n_peers)))
        .collect();
    let fill = |(lo, hi): &(usize, usize)| -> Vec<PeerWindow> {
        (*lo..*hi)
            .map(|i| {
                let target = pop.peers[i].target_cache as u64;
                let ring = (0..target)
                    .map(|k| {
                        let mut rng = StreamRng::keyed(seed, SALT_ACQ, i as u64, k);
                        pop.sample_file(i, tables, &mut rng)
                    })
                    .collect();
                PeerWindow {
                    ring,
                    count: target,
                }
            })
            .collect()
    };
    let parts: Vec<Vec<PeerWindow>> = if ranges.len() <= 1 {
        ranges.iter().map(fill).collect()
    } else {
        std::thread::scope(|scope| {
            let handles: Vec<_> = ranges
                .iter()
                .map(|r| scope.spawn(move || fill(r)))
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("window init worker panicked"))
                .collect()
        })
    };
    parts.into_iter().flatten().collect()
}

/// One worker's slice of a day: observed peers, their row lengths and
/// the concatenated sorted/deduplicated entries.
type DayPart = (Vec<u32>, Vec<u32>, Vec<FileRef>);

/// Advances one day of turnover for `windows[lo..hi]` and collects the
/// observed rows. All draws are keyed by absolute peer index and
/// lifetime position, so the result is independent of how peers are
/// sharded across workers.
#[allow(clippy::too_many_arguments)]
fn day_part(
    pop: &Population,
    tables: &SampleTables<'_>,
    windows: &mut [PeerWindow],
    lo: usize,
    offset: u32,
    lambda: f64,
    p_observe: f64,
    seed: u64,
) -> DayPart {
    let mut peers = Vec::new();
    let mut lens = Vec::new();
    let mut entries: Vec<FileRef> = Vec::new();
    let mut row: Vec<u32> = Vec::new();
    for (j, window) in windows.iter_mut().enumerate() {
        let i = lo + j;
        let target = window.ring.len();
        if target > 0 {
            let mut rng = StreamRng::keyed(seed, SALT_DAILY, u64::from(offset), i as u64);
            let acquisitions = poisson(lambda, &mut rng);
            for _ in 0..acquisitions {
                let pos = window.count;
                window.count += 1;
                let mut frng = StreamRng::keyed(seed, SALT_ACQ, i as u64, pos);
                window.ring[(pos % target as u64) as usize] = pop.sample_file(i, tables, &mut frng);
            }
        }
        let mut orng = StreamRng::keyed(seed, SALT_OBS, u64::from(offset), i as u64);
        if orng.gen_bool(p_observe.clamp(0.0, 1.0)) {
            row.clear();
            row.extend_from_slice(&window.ring);
            row.sort_unstable();
            row.dedup();
            peers.push(i as u32);
            lens.push(row.len() as u32);
            entries.extend(row.iter().map(|&f| FileRef(f)));
        }
    }
    (peers, lens, entries)
}

/// The shared day driver: advances every window by one day (sharded
/// over `threads` contiguous peer ranges), assembles the observed rows
/// into `out` in peer order, and returns whether the day is non-empty.
fn fill_day(
    pop: &Population,
    tables: &SampleTables<'_>,
    windows: &mut [PeerWindow],
    offset: u32,
    threads: usize,
    out: &mut DayArena,
) -> bool {
    let config = &pop.config;
    let n_days = f64::from(config.days.max(1));
    let t = f64::from(offset) / (n_days - 1.0).max(1.0);
    let p_observe =
        config.observe_prob_start + t * (config.observe_prob_end - config.observe_prob_start);
    let lambda = config.daily_replacements;
    let seed = config.seed;

    let n_peers = windows.len();
    let per = n_peers.div_ceil(threads.max(1)).max(1);
    let parts: Vec<DayPart> = if n_peers <= per {
        vec![day_part(
            pop, tables, windows, 0, offset, lambda, p_observe, seed,
        )]
    } else {
        std::thread::scope(|scope| {
            let handles: Vec<_> = windows
                .chunks_mut(per)
                .enumerate()
                .map(|(w, chunk)| {
                    scope.spawn(move || {
                        day_part(pop, tables, chunk, w * per, offset, lambda, p_observe, seed)
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("stream day worker panicked"))
                .collect()
        })
    };

    out.day = config.start_day + offset;
    out.peers.clear();
    out.offsets.clear();
    out.offsets.push(0);
    out.entries.clear();
    for (peers, lens, entries) in &parts {
        out.peers.extend_from_slice(peers);
        for &len in lens {
            let last = *out.offsets.last().expect("offsets start non-empty");
            out.offsets.push(last + len);
        }
        out.entries.extend_from_slice(entries);
    }
    !out.peers.is_empty()
}

/// Streams a generated trace through an already-open [`TraceWriter`],
/// returning the population, the emission stats and the finished sink.
///
/// Peak memory: the population tables + every sharer's rolling window
/// (≈ one day's ground truth) + one [`DayArena`] of observed rows —
/// never the full multi-day trace.
pub fn stream_trace<W: Write + Seek>(
    config: &WorkloadConfig,
    threads: usize,
    mut writer: TraceWriter<W>,
) -> Result<(Population, StreamStats, W), TraceIoError> {
    let pop = Population::generate(config.clone());
    let tables = pop.static_tables();
    let mut windows = init_windows(&pop, &tables, threads);
    let mut out = DayArena::new(config.start_day);
    let mut stats = StreamStats::default();
    for offset in 0..config.days {
        if fill_day(&pop, &tables, &mut windows, offset, threads, &mut out) {
            writer.write_day_arena(&out)?;
            stats.days_written += 1;
            stats.rows += out.peers.len() as u64;
            stats.entries += out.entries.len() as u64;
        }
    }
    let sink = writer.finish(&pop.file_infos(), &pop.peer_infos())?;
    Ok((pop, stats, sink))
}

/// Streams a generated trace straight to `path` in the binary format.
pub fn generate_trace_streaming(
    config: &WorkloadConfig,
    path: &Path,
    threads: usize,
) -> Result<(Population, StreamStats), TraceIoError> {
    let writer = TraceWriter::create(path)?;
    let (pop, stats, _file) = stream_trace(config, threads, writer)?;
    Ok((pop, stats))
}

/// The in-memory twin: materializes the full [`Trace`] the streaming
/// emitter would write. `to_bin` of this trace is byte-identical to the
/// [`stream_trace`] output for any thread count — the equivalence the
/// streaming proptests pin down (and the drop-in the smaller scales use
/// when the whole trace comfortably fits).
pub fn generate_trace_streamed_in_memory(
    config: &WorkloadConfig,
    threads: usize,
) -> (Population, Trace) {
    let pop = Population::generate(config.clone());
    let tables = pop.static_tables();
    let mut windows = init_windows(&pop, &tables, threads);
    let mut out = DayArena::new(config.start_day);
    let mut trace = Trace {
        files: pop.file_infos(),
        peers: pop.peer_infos(),
        days: Vec::new(),
    };
    for offset in 0..config.days {
        if fill_day(&pop, &tables, &mut windows, offset, threads, &mut out) {
            let mut snapshot = edonkey_trace::model::DaySnapshot::new(out.day);
            for (r, &p) in out.peers.iter().enumerate() {
                let cache =
                    out.entries[out.offsets[r] as usize..out.offsets[r + 1] as usize].to_vec();
                snapshot.caches.push((PeerId(p), cache));
            }
            trace.days.push(snapshot);
        }
    }
    (pop, trace)
}

/// Streams into an in-memory sink and returns the raw binary bytes —
/// the byte-equality hook for tests.
pub fn stream_trace_to_bytes(
    config: &WorkloadConfig,
    threads: usize,
) -> Result<(Population, StreamStats, Vec<u8>), TraceIoError> {
    let cursor = std::io::Cursor::new(Vec::new());
    let writer = TraceWriter::new(cursor)?;
    let (pop, stats, sink) = stream_trace(config, threads, writer)?;
    Ok((pop, stats, sink.into_inner()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use edonkey_trace::io::bin::to_bin;

    fn tiny_config() -> WorkloadConfig {
        let mut config = WorkloadConfig::test_scale(11);
        config.peers = 120;
        config.files = 900;
        config.topics = 24;
        config.days = 6;
        config
    }

    #[test]
    fn streamed_bytes_are_thread_invariant() {
        let config = tiny_config();
        let (_, stats1, bytes1) = stream_trace_to_bytes(&config, 1).expect("stream");
        let (_, stats3, bytes3) = stream_trace_to_bytes(&config, 3).expect("stream");
        let (_, stats8, bytes8) = stream_trace_to_bytes(&config, 8).expect("stream");
        assert_eq!(stats1, stats3);
        assert_eq!(stats1, stats8);
        assert_eq!(bytes1, bytes3);
        assert_eq!(bytes1, bytes8);
        assert!(stats1.rows > 0, "the observer must see someone");
    }

    #[test]
    fn in_memory_twin_matches_streamed_bytes() {
        let config = tiny_config();
        let (_, _, streamed) = stream_trace_to_bytes(&config, 2).expect("stream");
        let (_, trace) = generate_trace_streamed_in_memory(&config, 5);
        assert_eq!(streamed, to_bin(&trace));
    }

    #[test]
    fn windows_respect_cache_targets_and_free_riders() {
        let config = tiny_config();
        let (pop, trace) = generate_trace_streamed_in_memory(&config, 2);
        let mut saw_free_rider_row = false;
        for day in &trace.days {
            for (peer, cache) in &day.caches {
                let target = pop.peers[peer.index()].target_cache;
                assert!(cache.len() <= target.max(0), "window exceeds target");
                if target == 0 {
                    assert!(cache.is_empty());
                    saw_free_rider_row = true;
                }
                assert!(cache.windows(2).all(|w| w[0] < w[1]), "rows sorted+deduped");
            }
        }
        assert!(saw_free_rider_row, "free-riders must surface as empty rows");
    }

    #[test]
    fn turnover_replaces_oldest_entries() {
        // A sharer's day-to-day window shifts by the day's acquisition
        // count: consecutive windows share all but the turned-over
        // positions, so multi-day traces are correlated (the property
        // the semantic analyses rely on).
        let config = tiny_config();
        let (pop, trace) = generate_trace_streamed_in_memory(&config, 1);
        let sharer = pop
            .peers
            .iter()
            .position(|p| p.target_cache >= 20)
            .expect("a generous sharer exists");
        let rows: Vec<&Vec<FileRef>> = trace
            .days
            .iter()
            .filter_map(|d| {
                d.caches
                    .iter()
                    .find(|(p, _)| p.index() == sharer)
                    .map(|(_, c)| c)
            })
            .collect();
        assert!(rows.len() >= 2, "sharer observed at least twice");
        let (a, b) = (rows[0], rows[1]);
        let common = a.iter().filter(|f| b.binary_search(f).is_ok()).count();
        assert!(
            common * 2 > a.len().min(b.len()),
            "consecutive windows must overlap heavily ({common} of {})",
            a.len().min(b.len())
        );
    }
}
