//! `edonkey-workload`: the synthetic eDonkey population and dynamics
//! generator.
//!
//! The paper's raw material — a 56-day crawl of the live 2003–04 eDonkey
//! network — cannot be obtained; this crate is the substitution (see
//! DESIGN.md §2). It generates a population whose *published marginals*
//! match the paper's (free-rider fraction, Zipf-like popularity,
//! trimodal sizes, Fig. 4/Table 2 geography, generosity skew, ~5 cache
//! replacements per client per day) and whose latent structure — topic
//! interests and content locality — produces the semantic and geographic
//! clustering the paper measures.
//!
//! Modules:
//! * [`config`] — every knob, with paper-calibrated presets;
//! * [`adversary`] — deterministic sybil / polluter / free-rider role
//!   plans for adversarial-workload injection;
//! * [`arrivals`] — deterministic burst/jitter arrival processes for
//!   the always-on query-serving mode;
//! * [`churn`] — deterministic session on/off schedules, server-outage
//!   windows and the query retry policy for availability-aware search;
//! * [`dist`] — Zipf–Mandelbrot, Pareto, Poisson, log-normal samplers;
//! * [`geo`] — countries, ASes and the address plan;
//! * [`names`] — collision-prone nicknames for the crawler;
//! * [`population`] — topics, files, peers, cache sampling;
//! * [`dynamics`] — day-by-day evolution and the ideal-observer trace;
//! * [`stream`] — day-at-a-time streaming generation for the
//!   out-of-core paper tier.
//!
//! # Examples
//!
//! ```
//! use edonkey_workload::{WorkloadConfig, Population};
//! use rand::SeedableRng;
//!
//! let pop = Population::generate(WorkloadConfig::test_scale(7));
//! let mut rng = rand::rngs::StdRng::seed_from_u64(7);
//! let caches = pop.sample_static_caches(&mut rng);
//! assert_eq!(caches.len(), pop.peers.len());
//! ```

pub mod adversary;
pub mod arrivals;
pub mod churn;
pub mod config;
pub mod dist;
pub mod dynamics;
pub mod geo;
pub mod mix;
pub mod names;
pub mod population;
pub mod stream;

pub use adversary::{AdversaryConfig, AdversaryPlan, Role};
pub use arrivals::{ArrivalConfig, ArrivalProcess};
pub use churn::{ChurnConfig, ChurnSchedule, QueryPolicy};
pub use config::{KindProfile, WorkloadConfig};
pub use dynamics::{generate_trace, Dynamics, GroundTruth};
pub use geo::Geography;
pub use population::{GenFile, GenPeer, Population, Topic};
pub use stream::{
    generate_trace_streamed_in_memory, generate_trace_streaming, stream_trace, StreamStats,
};
