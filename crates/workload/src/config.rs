//! Workload generator configuration and scale presets.

use edonkey_proto::query::FileKind;

/// Per-kind generation parameters: how common a kind is, how large its
/// files are, and how attractive they are to downloaders.
///
/// Calibration targets (paper Fig. 6): ~40 % of files under 1 MB, ~50 %
/// between 1 and 10 MB (MP3s), ~10 % above; yet among files with
/// popularity ≥ 5, ~45 % above 600 MB (DivX movies). The attractiveness
/// multiplier is what tilts *popularity* toward large video files even
/// though they are a small minority of distinct files.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct KindProfile {
    /// The media kind this row describes.
    pub kind: FileKind,
    /// Relative frequency among distinct files.
    pub frequency: f64,
    /// `mu` of the log-normal size distribution (log bytes).
    pub size_mu: f64,
    /// `sigma` of the log-normal size distribution.
    pub size_sigma: f64,
    /// Attractiveness multiplier applied to every file of this kind.
    pub attractiveness: f64,
}

/// All knobs of the synthetic workload.
///
/// Defaults come from the paper's published marginals; presets scale the
/// population. Every analysis-relevant mechanism has its own knob so the
/// ablation benches can switch it off in isolation (e.g.
/// `interest_mix = 0` produces a workload with *no* semantic clustering).
#[derive(Clone, Debug, PartialEq)]
pub struct WorkloadConfig {
    /// RNG seed; every generated artefact is a pure function of the
    /// config.
    pub seed: u64,

    // --- scale ---
    /// Number of clients.
    pub peers: usize,
    /// Number of distinct files in the universe.
    pub files: usize,
    /// Number of interest topics.
    pub topics: usize,
    /// Trace length in days.
    pub days: u32,
    /// Absolute day number of the first trace day (the paper's plots run
    /// over days ≈ 334–390 of some epoch).
    pub start_day: u32,

    // --- population ---
    /// Fraction of clients sharing nothing (Table 1: 70–84 %).
    pub free_rider_fraction: f64,
    /// Pareto shape for cache-size targets; smaller = more skewed.
    pub cache_alpha: f64,
    /// Minimum cache size of a sharer.
    pub cache_min: u64,
    /// Cap on cache size.
    pub cache_max: u64,

    // --- popularity ---
    /// Zipf exponent over topic ranks.
    pub topic_zipf_s: f64,
    /// Zipf–Mandelbrot head shift over topics.
    pub topic_zipf_q: f64,
    /// Exponent coupling file-to-topic assignment to topic popularity.
    /// `1` puts most files in the most popular topics; `0` spreads the
    /// catalogue evenly, giving niche topics deep catalogues with few,
    /// devoted consumers — the collector communities behind the paper's
    /// rare-file clustering (Figs. 13/14/20).
    pub topic_assignment_skew: f64,
    /// Pareto shape of per-file intrinsic attractiveness.
    pub file_attractiveness_alpha: f64,
    /// Cap on the intrinsic attractiveness draw. Bounds how far one
    /// blockbuster can dominate the request stream — the knob behind the
    /// randomized-trace residual (Fig. 21).
    pub file_attractiveness_cap: f64,
    /// Per-kind frequency/size/attractiveness profiles.
    pub kind_profiles: Vec<KindProfile>,

    // --- interests / clustering ---
    /// Minimum number of interest topics per peer.
    pub interests_min: usize,
    /// Maximum number of interest topics per peer.
    pub interests_max: usize,
    /// Probability that an interest topic is drawn from the peer's own
    /// country's topics (content locality).
    pub topic_locality: f64,
    /// Exponent coupling *interest selection* to topic popularity. `1`
    /// herds everyone into the head topics (huge communities, no
    /// rare-file clustering); `0` spreads interests evenly, keeping
    /// communities at `sharers × interests / topics` members — the
    /// community size is what bounds rare-file hit rates at
    /// `list_size / community`.
    pub interest_selection_skew: f64,
    /// Probability that a cache draw comes from the peer's interest
    /// topics — the semantic-clustering strength β.
    pub interest_mix: f64,
    /// Within-topic popularity exponent for interest draws, in `[0,1]`.
    /// `1` makes collectors follow global taste inside their topics;
    /// `0` makes them sample their topics uniformly. Low values are what
    /// give *rare* files strongly correlated holders (Figs. 13/14/20).
    pub interest_depth: f64,
    /// Probability that a cache draw comes from the peer's home-country
    /// files — the geographic-clustering strength γ.
    pub geo_mix: f64,

    // --- dynamics ---
    /// Mean cache replacements per sharer per day (paper: ≈ 5).
    pub daily_replacements: f64,
    /// Fraction of files already existing when the trace starts.
    pub born_before_fraction: f64,
    /// Days a new file takes to reach peak attractiveness.
    pub lifecycle_surge_days: f64,
    /// Exponential decay time-constant of attractiveness after the peak,
    /// in days.
    pub lifecycle_decay_days: f64,
    /// Residual attractiveness floor after decay, in `[0,1]`.
    pub lifecycle_floor: f64,

    // --- observation (the "ideal crawler" shortcut) ---
    /// Probability a client is successfully browsed on day one.
    pub observe_prob_start: f64,
    /// Probability on the final day (the paper's coverage decayed from
    /// ~65 k to ~35 k clients/day due to crawler bandwidth).
    pub observe_prob_end: f64,
    /// Daily probability of a DHCP re-address in the ideal-observer
    /// path. Zero (the default) keeps the alias-free fast path and its
    /// byte-identical rng stream.
    pub alias_dhcp_daily_prob: f64,
    /// Daily probability of a client reinstall (fresh uid, same IP) in
    /// the ideal-observer path — the duplicate-IP aliases the filtering
    /// stage removes. Zero by default.
    pub alias_reinstall_daily_prob: f64,
}

impl WorkloadConfig {
    /// The default kind profiles (see [`KindProfile`] for the targets).
    pub fn default_kind_profiles() -> Vec<KindProfile> {
        // ln(1 MB) ≈ 13.8; ln(4 MB) ≈ 15.2; ln(700 MB) ≈ 20.4.
        vec![
            KindProfile {
                kind: FileKind::Audio,
                frequency: 0.50,
                size_mu: 15.2, // ~4 MB median
                size_sigma: 0.55,
                attractiveness: 1.0,
            },
            KindProfile {
                kind: FileKind::Image,
                frequency: 0.22,
                size_mu: 12.2, // ~200 KB median
                size_sigma: 0.9,
                attractiveness: 0.4,
            },
            KindProfile {
                kind: FileKind::Document,
                frequency: 0.14,
                size_mu: 12.6, // ~300 KB median
                size_sigma: 1.0,
                attractiveness: 0.4,
            },
            KindProfile {
                kind: FileKind::Video,
                frequency: 0.06,
                size_mu: 20.4, // ~700 MB median (DivX)
                size_sigma: 0.35,
                attractiveness: 8.0,
            },
            KindProfile {
                kind: FileKind::Archive,
                frequency: 0.04,
                size_mu: 18.2, // ~80 MB median (albums, ISOs)
                size_sigma: 0.8,
                attractiveness: 3.0,
            },
            KindProfile {
                kind: FileKind::Program,
                frequency: 0.04,
                size_mu: 15.5, // ~5 MB median
                size_sigma: 1.2,
                attractiveness: 0.8,
            },
        ]
    }

    fn base(seed: u64) -> Self {
        WorkloadConfig {
            seed,
            peers: 0,
            files: 0,
            topics: 0,
            days: 56,
            start_day: 334,
            free_rider_fraction: 0.74,
            cache_alpha: 1.15,
            cache_min: 3,
            cache_max: 400,
            topic_zipf_s: 1.0,
            topic_zipf_q: 3.0,
            topic_assignment_skew: 0.25,
            file_attractiveness_alpha: 1.1,
            file_attractiveness_cap: 300.0,
            kind_profiles: Self::default_kind_profiles(),
            interests_min: 1,
            interests_max: 3,
            topic_locality: 0.7,
            interest_selection_skew: 0.3,
            interest_mix: 0.85,
            interest_depth: 0.15,
            geo_mix: 0.05,
            daily_replacements: 3.0,
            born_before_fraction: 0.55,
            lifecycle_surge_days: 3.0,
            lifecycle_decay_days: 25.0,
            lifecycle_floor: 0.05,
            observe_prob_start: 0.95,
            observe_prob_end: 0.55,
            alias_dhcp_daily_prob: 0.0,
            alias_reinstall_daily_prob: 0.0,
        }
    }

    /// Tiny preset for unit/integration tests: runs in milliseconds.
    pub fn test_scale(seed: u64) -> Self {
        WorkloadConfig {
            peers: 800,
            files: 16_000,
            topics: 160,
            ..Self::base(seed)
        }
    }

    /// Default preset for figure regeneration: large enough for every
    /// shape to emerge, small enough for minutes-scale runs.
    pub fn repro_scale(seed: u64) -> Self {
        WorkloadConfig {
            peers: 20_000,
            files: 400_000,
            topics: 4_000,
            ..Self::base(seed)
        }
    }

    /// Full paper scale (320 k filtered clients, millions of files). For
    /// long unattended runs only.
    pub fn paper_scale(seed: u64) -> Self {
        WorkloadConfig {
            peers: 320_000,
            files: 8_000_000,
            topics: 80_000,
            cache_max: 5_000,
            ..Self::base(seed)
        }
    }

    /// Checks parameter sanity, returning a description of the first
    /// violated constraint.
    pub fn validate(&self) -> Result<(), String> {
        let prob = |name: &str, v: f64| -> Result<(), String> {
            if (0.0..=1.0).contains(&v) {
                Ok(())
            } else {
                Err(format!("{name} must be in [0,1], got {v}"))
            }
        };
        if self.peers == 0 || self.files == 0 || self.topics == 0 {
            return Err("peers, files and topics must be positive".into());
        }
        if self.days == 0 {
            return Err("days must be positive".into());
        }
        prob("free_rider_fraction", self.free_rider_fraction)?;
        prob("topic_locality", self.topic_locality)?;
        prob("interest_mix", self.interest_mix)?;
        prob("geo_mix", self.geo_mix)?;
        prob("born_before_fraction", self.born_before_fraction)?;
        prob("lifecycle_floor", self.lifecycle_floor)?;
        prob("observe_prob_start", self.observe_prob_start)?;
        prob("observe_prob_end", self.observe_prob_end)?;
        prob("alias_dhcp_daily_prob", self.alias_dhcp_daily_prob)?;
        prob(
            "alias_reinstall_daily_prob",
            self.alias_reinstall_daily_prob,
        )?;
        if self.interest_mix + self.geo_mix > 1.0 {
            return Err("interest_mix + geo_mix must not exceed 1".into());
        }
        if self.interests_min == 0 || self.interests_min > self.interests_max {
            return Err("need 1 <= interests_min <= interests_max".into());
        }
        if self.interests_max > self.topics {
            return Err("interests_max exceeds topic count".into());
        }
        if self.cache_min == 0 || self.cache_min > self.cache_max {
            return Err("need 1 <= cache_min <= cache_max".into());
        }
        if self.cache_max as usize > self.files {
            return Err("cache_max exceeds file universe".into());
        }
        let freq: f64 = self.kind_profiles.iter().map(|k| k.frequency).sum();
        if self.kind_profiles.is_empty() || (freq - 1.0).abs() > 1e-6 {
            return Err(format!("kind frequencies must sum to 1, got {freq}"));
        }
        if self.daily_replacements < 0.0 {
            return Err("daily_replacements must be non-negative".into());
        }
        if self.file_attractiveness_cap.partial_cmp(&0.0) != Some(std::cmp::Ordering::Greater) {
            return Err("file_attractiveness_cap must be positive".into());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_validate() {
        for config in [
            WorkloadConfig::test_scale(1),
            WorkloadConfig::repro_scale(2),
            WorkloadConfig::paper_scale(3),
        ] {
            assert_eq!(config.validate(), Ok(()), "{config:?}");
        }
    }

    #[test]
    fn kind_frequencies_sum_to_one() {
        let total: f64 = WorkloadConfig::default_kind_profiles()
            .iter()
            .map(|k| k.frequency)
            .sum();
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn validation_catches_bad_values() {
        let base = WorkloadConfig::test_scale(0);
        let mut c = base.clone();
        c.peers = 0;
        assert!(c.validate().is_err());
        let mut c = base.clone();
        c.free_rider_fraction = 1.5;
        assert!(c.validate().is_err());
        let mut c = base.clone();
        c.interest_mix = 0.8;
        c.geo_mix = 0.4;
        assert!(c.validate().is_err());
        let mut c = base.clone();
        c.interests_min = 10;
        c.interests_max = 5;
        assert!(c.validate().is_err());
        let mut c = base.clone();
        c.cache_max = c.files as u64 + 1;
        assert!(c.validate().is_err());
        let mut c = base.clone();
        c.kind_profiles[0].frequency += 0.5;
        assert!(c.validate().is_err());
        let mut c = base.clone();
        c.interests_max = c.topics + 1;
        assert!(c.validate().is_err());
        let mut c = base;
        c.alias_reinstall_daily_prob = -0.1;
        assert!(c.validate().is_err());
    }
}
