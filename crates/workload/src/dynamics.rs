//! Day-by-day evolution of the population and the ideal-observer trace.
//!
//! The paper's trace is *dynamic*: clients replace about five files per
//! day, new files keep appearing (100 k/day even after a month), and
//! popular files surge suddenly then decay slowly (Fig. 8). This module
//! reproduces those mechanisms:
//!
//! * every file has a **lifecycle multiplier**: zero before birth, a
//!   linear surge over `lifecycle_surge_days`, then exponential decay
//!   toward `lifecycle_floor`;
//! * every sharer performs `Poisson(daily_replacements)` cache
//!   replacements per day, drawing acquisitions from the day's
//!   lifecycle-reweighted interest/locality mixture and evicting its
//!   oldest entries (FIFO) — high turnover at constant cache size, as
//!   the paper observes;
//! * an **ideal observer** browses each client with a per-day success
//!   probability that decays over the trace, mimicking the crawler's
//!   bandwidth-induced coverage loss (65 k → 35 k clients/day, Fig. 1),
//!   and producing the missed days the extrapolation stage must fill.
//!
//! The full protocol-level crawler lives in `edonkey-netsim`; this module
//! is the fast path used by analyses that don't need the measurement
//! artefacts to arise mechanistically.

use edonkey_proto::md4::{Digest, Md4};
use edonkey_trace::model::{FileRef, Trace, TraceBuilder};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashSet;
use std::collections::VecDeque;

use crate::config::WorkloadConfig;
use crate::population::Population;

/// The true day-by-day cache contents of every peer (before observation).
pub struct GroundTruth {
    /// Absolute day of the first entry of `days`.
    pub start_day: u32,
    /// `days[d][p]` is peer `p`'s cache on `start_day + d`, sorted.
    pub days: Vec<Vec<Vec<FileRef>>>,
}

impl GroundTruth {
    /// Number of simulated days.
    pub fn len(&self) -> usize {
        self.days.len()
    }

    /// Whether no days were simulated.
    pub fn is_empty(&self) -> bool {
        self.days.is_empty()
    }
}

/// The day-by-day simulator.
pub struct Dynamics<'a> {
    population: &'a Population,
    /// FIFO caches: front = oldest entry (next eviction victim).
    caches: Vec<VecDeque<FileRef>>,
    members: Vec<HashSet<FileRef>>,
    day: u32,
    /// Mean target cache size over sharers; per-peer churn scales with
    /// `target / mean` so that turnover is proportional to generosity
    /// (otherwise small sharers would accumulate huge observed unions
    /// and flatten the Fig. 7 concentration).
    mean_target: f64,
}

impl<'a> Dynamics<'a> {
    /// Initializes every sharer's cache by sampling its target size from
    /// the day-zero lifecycle-weighted distribution.
    pub fn new(population: &'a Population, rng: &mut impl Rng) -> Self {
        let day = population.config.start_day;
        let tables = population.reweighted_tables(|i| {
            lifecycle(&population.config, population.files[i].birth_day, day)
        });
        let mut caches = Vec::with_capacity(population.peers.len());
        let mut members = Vec::with_capacity(population.peers.len());
        for (idx, peer) in population.peers.iter().enumerate() {
            let cache = population.sample_cache(idx, peer.target_cache, &tables, rng);
            members.push(cache.iter().copied().collect::<HashSet<_>>());
            caches.push(cache.into_iter().collect::<VecDeque<_>>());
        }
        let sharers: Vec<f64> = population
            .peers
            .iter()
            .filter(|p| !p.is_free_rider())
            .map(|p| p.target_cache as f64)
            .collect();
        let mean_target = if sharers.is_empty() {
            1.0
        } else {
            sharers.iter().sum::<f64>() / sharers.len() as f64
        };
        Dynamics {
            population,
            caches,
            members,
            day,
            mean_target,
        }
    }

    /// The current absolute day.
    pub fn day(&self) -> u32 {
        self.day
    }

    /// Current cache of a peer, in FIFO order (front = oldest).
    pub fn cache(&self, peer: usize) -> &VecDeque<FileRef> {
        &self.caches[peer]
    }

    /// Snapshot of all caches, each sorted.
    pub fn snapshot(&self) -> Vec<Vec<FileRef>> {
        self.caches
            .iter()
            .map(|c| {
                let mut v: Vec<FileRef> = c.iter().copied().collect();
                v.sort_unstable();
                v
            })
            .collect()
    }

    /// Advances one day: every sharer performs its Poisson number of
    /// replacements against the day's lifecycle-weighted distribution.
    pub fn step(&mut self, rng: &mut impl Rng) {
        self.day += 1;
        let config = &self.population.config;
        let day = self.day;
        let tables = self
            .population
            .reweighted_tables(|i| lifecycle(config, self.population.files[i].birth_day, day));
        for (idx, peer) in self.population.peers.iter().enumerate() {
            if peer.is_free_rider() {
                continue;
            }
            let rate =
                config.daily_replacements * peer.target_cache as f64 / self.mean_target.max(1.0);
            let replacements = crate::dist::poisson(rate, rng);
            for _ in 0..replacements {
                // Acquire one new file (a few tries to find a non-member).
                let mut acquired = None;
                for _ in 0..12 {
                    let f = FileRef(self.population.sample_file(idx, &tables, rng));
                    if !self.members[idx].contains(&f) {
                        acquired = Some(f);
                        break;
                    }
                }
                let Some(f) = acquired else { continue };
                self.caches[idx].push_back(f);
                self.members[idx].insert(f);
                // Evict the oldest entry to hold the target size.
                if self.caches[idx].len() > peer.target_cache {
                    let evicted = self.caches[idx].pop_front().expect("cache is non-empty");
                    self.members[idx].remove(&evicted);
                }
            }
        }
    }

    /// Runs the configured number of days, returning the ground truth
    /// (one snapshot per day, including day zero).
    pub fn run(mut self, rng: &mut impl Rng) -> GroundTruth {
        let start_day = self.day;
        let mut days = Vec::with_capacity(self.population.config.days as usize);
        days.push(self.snapshot());
        for _ in 1..self.population.config.days {
            self.step(rng);
            days.push(self.snapshot());
        }
        GroundTruth { start_day, days }
    }
}

/// The lifecycle multiplier of a file born on `birth` as of `day`.
///
/// Zero before birth; linear surge to 1.0 over `lifecycle_surge_days`;
/// then exponential decay toward `lifecycle_floor`.
pub fn lifecycle(config: &WorkloadConfig, birth: u32, day: u32) -> f64 {
    if day < birth {
        return 0.0;
    }
    let age = (day - birth) as f64;
    if age < config.lifecycle_surge_days {
        // Surge: even a brand-new file has some weight.
        return (age + 1.0) / (config.lifecycle_surge_days + 1.0);
    }
    let past_peak = age - config.lifecycle_surge_days;
    let decayed = (-past_peak / config.lifecycle_decay_days).exp();
    decayed.max(config.lifecycle_floor)
}

/// The uid a client adopts after its `reinstalls`-th reinstall
/// (1-based), derived from the previous uid — deterministic and
/// collision-free. Shared by the protocol-level netsim client and the
/// ideal observer's alias model so both paths produce the same uid
/// chains.
pub fn reinstall_uid(previous: &Digest, reinstalls: u32) -> Digest {
    let mut h = Md4::new();
    h.update(previous.as_bytes());
    h.update(b"reinstall");
    h.update(&reinstalls.to_le_bytes());
    h.finalize()
}

/// Applies the ideal-observer model to a ground truth, producing a
/// [`Trace`] ready for the pipeline.
///
/// Every peer is browsed on each day with a probability interpolating
/// from `observe_prob_start` to `observe_prob_end` across the trace —
/// the crawler coverage decline of Fig. 1. Free-riders appear with empty
/// caches when observed (the crawl does see them; they just share
/// nothing).
///
/// With either alias knob set (`alias_dhcp_daily_prob`,
/// `alias_reinstall_daily_prob`), client identities evolve day by day
/// exactly as in the netsim network — DHCP re-addressing and reinstall
/// uid churn — so the trace contains the duplicate-IP/uid aliases the
/// filtering stage removes. Both knobs at zero take the original
/// alias-free path, untouched, with a byte-identical rng stream.
pub fn observe(population: &Population, truth: &GroundTruth, rng: &mut impl Rng) -> Trace {
    let config = &population.config;
    if config.alias_dhcp_daily_prob > 0.0 || config.alias_reinstall_daily_prob > 0.0 {
        return observe_aliased(population, truth, rng);
    }
    let mut builder = TraceBuilder::new();
    // Intern everything up front so FileRef/PeerId match the population
    // indices exactly (analyses rely on this alignment).
    for info in population.file_infos() {
        builder.intern_file(info);
    }
    for info in population.peer_infos() {
        builder.intern_peer(info);
    }
    let n_days = truth.days.len().max(1) as f64;
    for (offset, day_caches) in truth.days.iter().enumerate() {
        let day = truth.start_day + offset as u32;
        let t = offset as f64 / (n_days - 1.0).max(1.0);
        let p_observe = population.config.observe_prob_start
            + t * (population.config.observe_prob_end - population.config.observe_prob_start);
        for (peer_idx, cache) in day_caches.iter().enumerate() {
            if rng.gen_bool(p_observe.clamp(0.0, 1.0)) {
                builder.observe(
                    day,
                    edonkey_trace::model::PeerId(peer_idx as u32),
                    cache.clone(),
                );
            }
        }
    }
    builder.finish()
}

/// The alias-aware observer branch: identities churn (DHCP + reinstall)
/// before each day's observations.
///
/// Interning order keeps the analyses' alignment guarantee for original
/// identities: files and the day-zero peer identities are interned up
/// front, so `PeerId(i) == population index i` for every `i` below
/// `population.peers.len()`; reinstall aliases append *after* that
/// range as they are first observed.
fn observe_aliased(population: &Population, truth: &GroundTruth, rng: &mut impl Rng) -> Trace {
    let config = &population.config;
    let mut builder = TraceBuilder::new();
    for info in population.file_infos() {
        builder.intern_file(info);
    }
    let mut idents = population.peer_infos();
    for info in &idents {
        builder.intern_peer(info.clone());
    }
    let mut reinstalls = vec![0u32; idents.len()];
    // Fresh-IP counter above any static host index, mirroring the
    // netsim network's DHCP allocation plan.
    let mut dhcp_counter: u32 = 1 << 19;
    let n_days = truth.days.len().max(1) as f64;
    for (offset, day_caches) in truth.days.iter().enumerate() {
        let day = truth.start_day + offset as u32;
        let t = offset as f64 / (n_days - 1.0).max(1.0);
        let p_observe =
            config.observe_prob_start + t * (config.observe_prob_end - config.observe_prob_start);
        for (peer_idx, cache) in day_caches.iter().enumerate() {
            // Identity churn: skipped on day zero, like the network,
            // which boots with the population identities.
            if offset > 0 {
                if rng.gen_bool(config.alias_dhcp_daily_prob) {
                    let asn = idents[peer_idx].asn;
                    idents[peer_idx].ip = population.geography.ip_for(asn, dhcp_counter);
                    dhcp_counter += 1;
                }
                if rng.gen_bool(config.alias_reinstall_daily_prob) {
                    reinstalls[peer_idx] += 1;
                    idents[peer_idx].uid =
                        reinstall_uid(&idents[peer_idx].uid, reinstalls[peer_idx]);
                }
            }
            if rng.gen_bool(p_observe.clamp(0.0, 1.0)) {
                let peer = builder.intern_peer(idents[peer_idx].clone());
                builder.observe(day, peer, cache.clone());
            }
        }
    }
    builder.finish()
}

/// One-call convenience: population → dynamics → ideal observation.
///
/// Returns the population (for ground-truth access) and the observed
/// trace. Deterministic in `config.seed`.
///
/// # Examples
///
/// ```
/// use edonkey_workload::{generate_trace, WorkloadConfig};
///
/// let mut config = WorkloadConfig::test_scale(3);
/// config.peers = 120;
/// config.files = 900;
/// config.days = 8;
/// config.cache_max = 300;
/// let (population, trace) = generate_trace(config);
/// assert_eq!(trace.peers.len(), population.peers.len());
/// assert_eq!(trace.days.len(), 8);
/// ```
pub fn generate_trace(config: WorkloadConfig) -> (Population, Trace) {
    let seed = config.seed;
    let population = Population::generate(config);
    let mut rng = StdRng::seed_from_u64(seed.wrapping_add(0x9e37_79b9_7f4a_7c15));
    let truth = Dynamics::new(&population, &mut rng).run(&mut rng);
    let trace = observe(&population, &truth, &mut rng);
    (population, trace)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::WorkloadConfig;

    fn tiny_config() -> WorkloadConfig {
        let mut c = WorkloadConfig::test_scale(11);
        c.peers = 150;
        c.files = 1_200;
        c.topics = 30;
        c.days = 12;
        c.cache_max = 400;
        c
    }

    #[test]
    fn lifecycle_shape() {
        let c = tiny_config();
        // Before birth: zero.
        assert_eq!(lifecycle(&c, 340, 339), 0.0);
        // Surge: increasing.
        let l0 = lifecycle(&c, 340, 340);
        let l1 = lifecycle(&c, 340, 341);
        let l2 = lifecycle(&c, 340, 342);
        assert!(l0 > 0.0 && l0 < l1 && l1 < l2);
        // Peak then decay.
        let peak = lifecycle(&c, 340, 343);
        assert!(peak > lifecycle(&c, 340, 353));
        // Floor holds far out.
        assert!((lifecycle(&c, 340, 900) - c.lifecycle_floor).abs() < 1e-12);
    }

    #[test]
    fn caches_keep_target_size_with_turnover() {
        let config = tiny_config();
        let pop = Population::generate(config.clone());
        let mut rng = StdRng::seed_from_u64(1);
        let mut dyn_sim = Dynamics::new(&pop, &mut rng);
        let before = dyn_sim.snapshot();
        for _ in 0..8 {
            dyn_sim.step(&mut rng);
        }
        let after = dyn_sim.snapshot();
        let mut turnover = 0usize;
        let mut stable_sizes = 0usize;
        for (idx, peer) in pop.peers.iter().enumerate() {
            assert_eq!(
                after[idx].len(),
                before[idx].len(),
                "cache size must be stable"
            );
            if peer.is_free_rider() {
                assert!(after[idx].is_empty());
                continue;
            }
            stable_sizes += 1;
            let before_set: HashSet<_> = before[idx].iter().collect();
            turnover += after[idx]
                .iter()
                .filter(|f| !before_set.contains(f))
                .count();
        }
        assert!(stable_sizes > 0);
        assert!(turnover > 0, "eight days of churn must replace something");
    }

    #[test]
    fn unborn_files_never_appear() {
        let config = tiny_config();
        let pop = Population::generate(config.clone());
        let mut rng = StdRng::seed_from_u64(2);
        let truth = Dynamics::new(&pop, &mut rng).run(&mut rng);
        for (offset, day_caches) in truth.days.iter().enumerate() {
            let day = truth.start_day + offset as u32;
            for cache in day_caches {
                for f in cache {
                    assert!(
                        pop.files[f.index()].birth_day <= day,
                        "file {f} (born {}) observed on day {day}",
                        pop.files[f.index()].birth_day
                    );
                }
            }
        }
    }

    #[test]
    fn observation_produces_valid_trace_with_misses() {
        let config = tiny_config();
        let (pop, trace) = generate_trace(config.clone());
        assert_eq!(trace.check_invariants(), Ok(()));
        assert_eq!(trace.days.len(), config.days as usize);
        // Coverage must be partial (observe probabilities < 1).
        let total_obs = trace.snapshot_count();
        let max_possible = pop.peers.len() * config.days as usize;
        assert!(
            total_obs < max_possible,
            "observer must miss some snapshots"
        );
        assert!(
            total_obs > max_possible / 3,
            "observer must see most snapshots"
        );
    }

    #[test]
    fn coverage_declines_over_the_trace() {
        let mut config = tiny_config();
        config.peers = 400;
        config.observe_prob_start = 0.95;
        config.observe_prob_end = 0.40;
        let (_, trace) = generate_trace(config);
        let first = trace.days.first().unwrap().peer_count();
        let last = trace.days.last().unwrap().peer_count();
        assert!(
            last < first * 3 / 4,
            "coverage should drop markedly: first {first}, last {last}"
        );
    }

    #[test]
    fn generate_trace_is_deterministic() {
        let (_, a) = generate_trace(tiny_config());
        let (_, b) = generate_trace(tiny_config());
        assert_eq!(a, b);
    }

    #[test]
    fn reinstall_uid_chains_are_deterministic_and_collision_free() {
        let start = Digest([7; 16]);
        let a = reinstall_uid(&start, 1);
        let b = reinstall_uid(&start, 1);
        assert_eq!(a, b);
        let c = reinstall_uid(&a, 2);
        assert_ne!(a, start);
        assert_ne!(c, a);
        assert_ne!(reinstall_uid(&start, 2), a, "count is part of the input");
    }

    #[test]
    fn alias_churn_creates_filterable_duplicates() {
        let mut config = tiny_config();
        config.alias_dhcp_daily_prob = 0.02;
        config.alias_reinstall_daily_prob = 0.01;
        let (pop, trace) = generate_trace(config);
        assert_eq!(trace.check_invariants(), Ok(()));
        assert!(
            trace.peers.len() > pop.peers.len(),
            "reinstalls must append alias identities: {} vs {}",
            trace.peers.len(),
            pop.peers.len()
        );
        // The original identities keep the population alignment.
        for idx in [0usize, 1, pop.peers.len() - 1] {
            assert_eq!(trace.peers[idx].uid, pop.peers[idx].info.uid);
        }
        // Filtering now has real work to do: duplicate-IP sharing
        // aliases are dropped, so filtered < full (the Table 1 gap).
        let filtered = edonkey_trace::pipeline::filter(&trace);
        assert!(
            filtered.trace.peers.len() < trace.peers.len(),
            "filtered {} must be below full {}",
            filtered.trace.peers.len(),
            trace.peers.len()
        );
        // And it stays deterministic.
        let mut config2 = tiny_config();
        config2.alias_dhcp_daily_prob = 0.02;
        config2.alias_reinstall_daily_prob = 0.01;
        let (_, again) = generate_trace(config2);
        assert_eq!(again, trace);
    }

    use std::collections::HashSet;
}
