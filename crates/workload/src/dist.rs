//! Probability distributions used by the workload generator.
//!
//! All samplers are implemented from scratch on top of `rand::Rng` so the
//! dependency set stays at the allowed list. Three families matter for
//! the paper's marginals:
//!
//! * [`ZipfMandelbrot`] — file/topic popularity. The paper's Fig. 5 shows
//!   a *flat head* followed by a power-law tail; the Mandelbrot shift `q`
//!   produces exactly that shape (`weight(r) ∝ 1/(r+q)^s`).
//! * [`Pareto`] — peer generosity. Heavy-tailed cache sizes reproduce the
//!   "top 15 % of peers offer 75 % of files" concentration.
//! * [`poisson`] — per-day cache replacements (~5 per client per day).

use rand::Rng;

/// A Zipf–Mandelbrot distribution over ranks `0..n`.
///
/// `weight(rank) = 1 / (rank + 1 + q)^s`, normalized. `q = 0` gives plain
/// Zipf; larger `q` flattens the head (the small flat region the paper
/// observes before the log-log linear trend).
///
/// Sampling is by binary search over the cumulative weights: O(log n) per
/// draw after O(n) setup.
///
/// # Examples
///
/// ```
/// use edonkey_workload::dist::ZipfMandelbrot;
/// use rand::SeedableRng;
///
/// let z = ZipfMandelbrot::new(1000, 1.0, 5.0);
/// let mut rng = rand::rngs::StdRng::seed_from_u64(1);
/// let r = z.sample(&mut rng);
/// assert!(r < 1000);
/// ```
#[derive(Clone, Debug)]
pub struct ZipfMandelbrot {
    cumulative: Vec<f64>,
}

impl ZipfMandelbrot {
    /// Builds the distribution for `n` ranks with exponent `s` and head
    /// shift `q`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`, `s` is not finite/positive, or `q < 0`.
    pub fn new(n: usize, s: f64, q: f64) -> Self {
        assert!(n > 0, "ZipfMandelbrot needs at least one rank");
        assert!(s.is_finite() && s > 0.0, "exponent must be positive");
        assert!(q.is_finite() && q >= 0.0, "shift must be non-negative");
        let mut cumulative = Vec::with_capacity(n);
        let mut acc = 0.0;
        for rank in 0..n {
            acc += 1.0 / (rank as f64 + 1.0 + q).powf(s);
            cumulative.push(acc);
        }
        ZipfMandelbrot { cumulative }
    }

    /// Number of ranks.
    pub fn len(&self) -> usize {
        self.cumulative.len()
    }

    /// Whether the distribution is empty (never true by construction).
    pub fn is_empty(&self) -> bool {
        self.cumulative.is_empty()
    }

    /// The unnormalized weight of `rank`.
    pub fn weight(&self, rank: usize) -> f64 {
        let prev = if rank == 0 {
            0.0
        } else {
            self.cumulative[rank - 1]
        };
        self.cumulative[rank] - prev
    }

    /// The normalized probability of `rank`.
    pub fn probability(&self, rank: usize) -> f64 {
        self.weight(rank) / self.total()
    }

    fn total(&self) -> f64 {
        *self.cumulative.last().expect("non-empty by construction")
    }

    /// Draws a rank.
    pub fn sample(&self, rng: &mut impl Rng) -> usize {
        let x = rng.gen_range(0.0..self.total());
        // partition_point: first index whose cumulative weight exceeds x.
        self.cumulative
            .partition_point(|&c| c <= x)
            .min(self.len() - 1)
    }
}

/// Samples from a cumulative-weight slice: returns the first index whose
/// cumulative value exceeds a uniform draw.
///
/// Shared helper for the generator's many "weighted pick" tables.
///
/// # Panics
///
/// Panics if `cumulative` is empty or ends at a non-positive total.
pub fn sample_cumulative(cumulative: &[f64], rng: &mut impl Rng) -> usize {
    let total = *cumulative
        .last()
        .expect("cumulative table must be non-empty");
    assert!(total > 0.0, "cumulative table must have positive total");
    let x = rng.gen_range(0.0..total);
    cumulative
        .partition_point(|&c| c <= x)
        .min(cumulative.len() - 1)
}

/// Builds a cumulative table from weights.
///
/// # Examples
///
/// ```
/// use edonkey_workload::dist::cumulative_from_weights;
/// assert_eq!(cumulative_from_weights(&[1.0, 2.0, 3.0]), vec![1.0, 3.0, 6.0]);
/// ```
pub fn cumulative_from_weights(weights: &[f64]) -> Vec<f64> {
    let mut acc = 0.0;
    weights
        .iter()
        .map(|w| {
            debug_assert!(*w >= 0.0, "weights must be non-negative");
            acc += w;
            acc
        })
        .collect()
}

/// A Pareto (power-law tail) distribution with scale `x_min` and shape
/// `alpha`: `P(X > x) = (x_min / x)^alpha` for `x ≥ x_min`.
///
/// # Examples
///
/// ```
/// use edonkey_workload::dist::Pareto;
/// use rand::SeedableRng;
///
/// let p = Pareto::new(1.0, 1.1);
/// let mut rng = rand::rngs::StdRng::seed_from_u64(2);
/// assert!(p.sample(&mut rng) >= 1.0);
/// ```
#[derive(Clone, Copy, Debug)]
pub struct Pareto {
    x_min: f64,
    alpha: f64,
}

impl Pareto {
    /// Creates the distribution.
    ///
    /// # Panics
    ///
    /// Panics unless `x_min > 0` and `alpha > 0`.
    pub fn new(x_min: f64, alpha: f64) -> Self {
        assert!(x_min > 0.0 && x_min.is_finite(), "x_min must be positive");
        assert!(alpha > 0.0 && alpha.is_finite(), "alpha must be positive");
        Pareto { x_min, alpha }
    }

    /// Draws a value by inverse-transform sampling.
    pub fn sample(&self, rng: &mut impl Rng) -> f64 {
        // U in (0,1]; X = x_min * U^(-1/alpha).
        let u: f64 = 1.0 - rng.gen_range(0.0..1.0);
        self.x_min * u.powf(-1.0 / self.alpha)
    }

    /// Draws a value clamped to `[x_min, cap]` and rounded to an integer.
    pub fn sample_clamped(&self, cap: f64, rng: &mut impl Rng) -> u64 {
        self.sample(rng).min(cap).round() as u64
    }
}

/// Draws from a Poisson distribution with mean `lambda` (Knuth's method;
/// `lambda` stays small here — cache replacements per day — so the O(λ)
/// loop is fine).
///
/// # Panics
///
/// Panics if `lambda` is negative or not finite.
pub fn poisson(lambda: f64, rng: &mut impl Rng) -> u32 {
    assert!(
        lambda >= 0.0 && lambda.is_finite(),
        "lambda must be non-negative"
    );
    if lambda == 0.0 {
        return 0;
    }
    let limit = (-lambda).exp();
    let mut k = 0u32;
    let mut product: f64 = 1.0;
    loop {
        product *= rng.gen_range(0.0f64..1.0);
        if product <= limit {
            return k;
        }
        k += 1;
        // Defensive cap: for our λ ≤ ~20 this is unreachable, but a
        // pathological RNG must not loop forever.
        if k > 10_000 {
            return k;
        }
    }
}

/// A log-normal sampler (`exp(mu + sigma * Z)`), used for file sizes
/// within a kind.
#[derive(Clone, Copy, Debug)]
pub struct LogNormal {
    mu: f64,
    sigma: f64,
}

impl LogNormal {
    /// Creates the sampler; `mu`/`sigma` are the parameters of the
    /// underlying normal.
    ///
    /// # Panics
    ///
    /// Panics if `sigma` is negative or parameters are not finite.
    pub fn new(mu: f64, sigma: f64) -> Self {
        assert!(mu.is_finite() && sigma.is_finite() && sigma >= 0.0);
        LogNormal { mu, sigma }
    }

    /// Draws a value using a Box–Muller standard normal.
    pub fn sample(&self, rng: &mut impl Rng) -> f64 {
        let u1: f64 = 1.0 - rng.gen_range(0.0f64..1.0); // (0,1]
        let u2: f64 = rng.gen_range(0.0f64..1.0);
        let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
        (self.mu + self.sigma * z).exp()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn zipf_weights_decrease_and_sum_to_one() {
        let z = ZipfMandelbrot::new(100, 1.0, 2.0);
        for r in 1..100 {
            assert!(z.weight(r) <= z.weight(r - 1), "rank {r}");
        }
        let total: f64 = (0..100).map(|r| z.probability(r)).sum();
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn zipf_head_is_flattened_by_q() {
        let plain = ZipfMandelbrot::new(100, 1.0, 0.0);
        let shifted = ZipfMandelbrot::new(100, 1.0, 10.0);
        // Ratio of rank-0 to rank-9 weight is far larger without shift.
        let ratio_plain = plain.weight(0) / plain.weight(9);
        let ratio_shifted = shifted.weight(0) / shifted.weight(9);
        assert!(ratio_plain > 5.0 * ratio_shifted);
    }

    #[test]
    fn zipf_sampling_tracks_probabilities() {
        let z = ZipfMandelbrot::new(10, 1.2, 0.0);
        let mut rng = StdRng::seed_from_u64(7);
        let mut counts = [0usize; 10];
        let draws = 200_000;
        for _ in 0..draws {
            counts[z.sample(&mut rng)] += 1;
        }
        for (r, &count) in counts.iter().enumerate() {
            let expected = z.probability(r) * draws as f64;
            let got = count as f64;
            assert!(
                (got - expected).abs() < 5.0 * expected.sqrt().max(10.0),
                "rank {r}: expected {expected}, got {got}"
            );
        }
    }

    #[test]
    #[should_panic(expected = "at least one rank")]
    fn zipf_rejects_empty() {
        let _ = ZipfMandelbrot::new(0, 1.0, 0.0);
    }

    #[test]
    fn cumulative_helpers() {
        let cum = cumulative_from_weights(&[0.5, 0.0, 2.5]);
        assert_eq!(cum, vec![0.5, 0.5, 3.0]);
        let mut rng = StdRng::seed_from_u64(3);
        let mut counts = [0usize; 3];
        for _ in 0..10_000 {
            counts[sample_cumulative(&cum, &mut rng)] += 1;
        }
        assert_eq!(counts[1], 0, "zero-weight index must never be drawn");
        assert!(counts[2] > counts[0]);
    }

    #[test]
    fn pareto_tail_is_heavy() {
        let p = Pareto::new(1.0, 1.0);
        let mut rng = StdRng::seed_from_u64(11);
        let samples: Vec<f64> = (0..50_000).map(|_| p.sample(&mut rng)).collect();
        let above_10 = samples.iter().filter(|&&x| x > 10.0).count() as f64;
        // P(X > 10) = 0.1 for alpha = 1.
        assert!((above_10 / 50_000.0 - 0.1).abs() < 0.01);
        assert!(samples.iter().all(|&x| x >= 1.0));
    }

    #[test]
    fn pareto_concentration_matches_top15_share() {
        // With alpha ≈ 1.05, the top 15 % of draws should hold very
        // roughly 75 % of the mass — the paper's generosity skew.
        let p = Pareto::new(1.0, 1.05);
        let mut rng = StdRng::seed_from_u64(13);
        let mut samples: Vec<f64> = (0..100_000)
            .map(|_| p.sample(&mut rng).min(5_000.0))
            .collect();
        samples.sort_by(|a, b| b.partial_cmp(a).expect("finite"));
        let total: f64 = samples.iter().sum();
        let top15: f64 = samples[..15_000].iter().sum();
        let share = top15 / total;
        assert!(
            (0.60..0.90).contains(&share),
            "top-15% share {share} outside plausible band"
        );
    }

    #[test]
    fn pareto_clamped_bounds() {
        let p = Pareto::new(2.0, 0.8);
        let mut rng = StdRng::seed_from_u64(17);
        for _ in 0..1000 {
            let v = p.sample_clamped(100.0, &mut rng);
            assert!((2..=100).contains(&v));
        }
    }

    #[test]
    fn poisson_mean_and_degenerate() {
        let mut rng = StdRng::seed_from_u64(19);
        assert_eq!(poisson(0.0, &mut rng), 0);
        let mean: f64 = (0..20_000)
            .map(|_| poisson(5.0, &mut rng) as f64)
            .sum::<f64>()
            / 20_000.0;
        assert!((mean - 5.0).abs() < 0.1, "sample mean {mean}");
    }

    #[test]
    fn lognormal_median_tracks_mu() {
        let ln = LogNormal::new(8.0_f64, 0.5);
        let mut rng = StdRng::seed_from_u64(23);
        let mut samples: Vec<f64> = (0..20_001).map(|_| ln.sample(&mut rng)).collect();
        samples.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        let median = samples[10_000];
        let expected = 8.0_f64.exp();
        assert!((median / expected - 1.0).abs() < 0.1, "median {median}");
    }
}
