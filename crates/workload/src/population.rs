//! The synthetic population: topics, files and peers, plus the
//! interest/locality-biased cache sampler.
//!
//! The generative model (DESIGN.md §4.4):
//!
//! * **Topics** carry a Zipf–Mandelbrot weight and a *home country* —
//!   content communities are language-bound, which is what makes
//!   geographic clustering emerge (Figs. 11/12).
//! * **Files** belong to one topic, inherit its home country, and get an
//!   intrinsic attractiveness `topic_weight × Pareto × kind_multiplier`.
//!   Heavy-tailed attractiveness yields the Zipf-like replica
//!   distribution of Fig. 5; the kind multiplier makes large video files
//!   dominate the popular tail (Fig. 6).
//! * **Peers** have a location, a free-rider flag, a Pareto cache-size
//!   target (the "top 15 % hold 75 %" skew of Fig. 7), and a handful of
//!   interest topics biased toward their own country's topics.
//! * **Cache draws** are a three-way mixture: with probability
//!   `interest_mix` from the peer's interest topics (semantic
//!   clustering), with `geo_mix` from home-country files (geographic
//!   clustering), otherwise from the global popularity distribution.

use edonkey_proto::md4::{Digest, Md4};
use edonkey_trace::model::{FileInfo, FileRef, PeerInfo};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;
use std::collections::HashSet;

use crate::config::WorkloadConfig;
use crate::dist::{cumulative_from_weights, sample_cumulative, LogNormal, Pareto, ZipfMandelbrot};
use crate::geo::Geography;
use crate::names::nickname;

/// An interest topic.
#[derive(Clone, Debug)]
pub struct Topic {
    /// Zipf–Mandelbrot popularity weight.
    pub weight: f64,
    /// Index of the topic's home country in the geography.
    pub home_country: usize,
}

/// A generated file with its latent workload attributes.
#[derive(Clone, Debug)]
pub struct GenFile {
    /// Trace-level metadata (hash, size, kind).
    pub info: FileInfo,
    /// The topic this file belongs to.
    pub topic: u32,
    /// Home country (inherited from the topic).
    pub home_country: usize,
    /// Intrinsic attractiveness (unnormalized sampling weight).
    pub attractiveness: f64,
    /// Absolute day the file first exists (may precede the trace).
    pub birth_day: u32,
}

/// A generated peer with its latent workload attributes.
#[derive(Clone, Debug)]
pub struct GenPeer {
    /// Trace-level metadata (uid, ip, country, AS).
    pub info: PeerInfo,
    /// Index of the peer's country in the geography.
    pub country_idx: usize,
    /// Nickname (used by the crawler's `query-users` sweeps).
    pub nick: String,
    /// Interest topics (distinct, non-empty for sharers).
    pub interests: Vec<u32>,
    /// Target cache size; `0` marks a free-rider.
    pub target_cache: usize,
}

impl GenPeer {
    /// Whether this peer never shares anything.
    pub fn is_free_rider(&self) -> bool {
        self.target_cache == 0
    }
}

/// The complete synthetic population plus precomputed sampling tables.
pub struct Population {
    /// The configuration that generated this population.
    pub config: WorkloadConfig,
    /// The geography used for locations and home countries.
    pub geography: Geography,
    /// All topics.
    pub topics: Vec<Topic>,
    /// All files, indexed by [`FileRef`].
    pub files: Vec<GenFile>,
    /// All peers, indexed by `PeerId`.
    pub peers: Vec<GenPeer>,

    // --- sampling tables (static attractiveness; dynamics rebuilds its
    // own lifecycle-weighted tables per day) ---
    topic_files: Vec<Vec<u32>>,
    topic_file_cum: Vec<Vec<f64>>,
    country_files: Vec<Vec<u32>>,
    country_file_cum: Vec<Vec<f64>>,
    global_cum: Vec<f64>,
}

impl Population {
    /// Generates a population deterministically from the config.
    ///
    /// # Panics
    ///
    /// Panics if the config does not [`WorkloadConfig::validate`].
    pub fn generate(config: WorkloadConfig) -> Self {
        if let Err(msg) = config.validate() {
            panic!("invalid workload config: {msg}");
        }
        let mut rng = StdRng::seed_from_u64(config.seed);
        let geography = Geography::paper();
        let topics = Self::gen_topics(&config, &geography, &mut rng);
        let files = Self::gen_files(&config, &topics, &mut rng);
        let peers = Self::gen_peers(&config, &geography, &topics, &mut rng);
        Self::index(config, geography, topics, files, peers)
    }

    fn gen_topics(config: &WorkloadConfig, geography: &Geography, rng: &mut StdRng) -> Vec<Topic> {
        let zipf = ZipfMandelbrot::new(config.topics, config.topic_zipf_s, config.topic_zipf_q);
        (0..config.topics)
            .map(|rank| Topic {
                weight: zipf.weight(rank),
                home_country: geography.sample_country(rng),
            })
            .collect()
    }

    fn gen_files(config: &WorkloadConfig, topics: &[Topic], rng: &mut StdRng) -> Vec<GenFile> {
        // Files spread across topics flatter than consumption: niche
        // topics carry deep catalogues (config.topic_assignment_skew).
        let skew = config.topic_assignment_skew;
        let topic_cum = cumulative_from_weights(
            &topics
                .iter()
                .map(|t| t.weight.powf(skew))
                .collect::<Vec<_>>(),
        );
        let kind_cum = cumulative_from_weights(
            &config
                .kind_profiles
                .iter()
                .map(|k| k.frequency)
                .collect::<Vec<_>>(),
        );
        let size_samplers: Vec<LogNormal> = config
            .kind_profiles
            .iter()
            .map(|k| LogNormal::new(k.size_mu, k.size_sigma))
            .collect();
        let attraction = Pareto::new(1.0, config.file_attractiveness_alpha);
        let end_day = config.start_day + config.days;
        let pre_span = 180u32; // catalogue accumulated before the crawl
        (0..config.files)
            .map(|i| {
                let topic_idx = sample_cumulative(&topic_cum, rng);
                let kind_idx = sample_cumulative(&kind_cum, rng);
                let profile = &config.kind_profiles[kind_idx];
                let size = size_samplers[kind_idx].sample(rng).max(1.0) as u64;
                let birth_day = if rng.gen_bool(config.born_before_fraction) {
                    config.start_day.saturating_sub(rng.gen_range(1..=pre_span))
                } else {
                    rng.gen_range(config.start_day..end_day)
                };
                // Cap the heavy tail so one file cannot dwarf the system.
                let intrinsic = attraction.sample(rng).min(config.file_attractiveness_cap);
                GenFile {
                    info: FileInfo {
                        id: digest_of(config.seed, "file", i as u64),
                        size,
                        kind: profile.kind,
                    },
                    topic: topic_idx as u32,
                    home_country: topics[topic_idx].home_country,
                    attractiveness: topics[topic_idx].weight * intrinsic * profile.attractiveness,
                    birth_day,
                }
            })
            .collect()
    }

    fn gen_peers(
        config: &WorkloadConfig,
        geography: &Geography,
        topics: &[Topic],
        rng: &mut StdRng,
    ) -> Vec<GenPeer> {
        // Interest selection tables: global, and restricted per country.
        // Selection is flattened relative to topic popularity so that
        // communities stay small (config.interest_selection_skew).
        let sel = config.interest_selection_skew;
        let topic_cum = cumulative_from_weights(
            &topics
                .iter()
                .map(|t| t.weight.powf(sel))
                .collect::<Vec<_>>(),
        );
        let mut country_topics: Vec<Vec<u32>> = vec![Vec::new(); geography.countries().len()];
        for (idx, topic) in topics.iter().enumerate() {
            country_topics[topic.home_country].push(idx as u32);
        }
        let country_topic_cum: Vec<Vec<f64>> = country_topics
            .iter()
            .map(|list| {
                cumulative_from_weights(
                    &list
                        .iter()
                        .map(|&t| topics[t as usize].weight.powf(sel))
                        .collect::<Vec<_>>(),
                )
            })
            .collect();

        let cache_dist = Pareto::new(config.cache_min as f64, config.cache_alpha);
        let mut host_counters: HashMap<u32, u32> = HashMap::new();
        (0..config.peers)
            .map(|i| {
                let location = geography.sample_location(rng);
                let host = host_counters.entry(location.asn).or_insert(0);
                let ip = geography.ip_for(location.asn, *host);
                *host += 1;
                let free_rider = rng.gen_bool(config.free_rider_fraction);
                let target_cache = if free_rider {
                    0
                } else {
                    cache_dist.sample_clamped(config.cache_max as f64, rng) as usize
                };
                let k = rng.gen_range(config.interests_min..=config.interests_max);
                let mut interests = Vec::with_capacity(k);
                let mut guard = 0;
                while interests.len() < k && guard < 1000 {
                    guard += 1;
                    let local = &country_topics[location.country_idx];
                    let topic = if !local.is_empty() && rng.gen_bool(config.topic_locality) {
                        local[sample_cumulative(&country_topic_cum[location.country_idx], rng)]
                    } else {
                        sample_cumulative(&topic_cum, rng) as u32
                    };
                    if !interests.contains(&topic) {
                        interests.push(topic);
                    }
                }
                GenPeer {
                    info: PeerInfo {
                        uid: digest_of(config.seed, "peer", i as u64),
                        ip,
                        country: location.country,
                        asn: location.asn,
                    },
                    country_idx: location.country_idx,
                    nick: nickname(rng),
                    interests,
                    target_cache,
                }
            })
            .collect()
    }

    fn index(
        config: WorkloadConfig,
        geography: Geography,
        topics: Vec<Topic>,
        files: Vec<GenFile>,
        peers: Vec<GenPeer>,
    ) -> Self {
        let mut topic_files: Vec<Vec<u32>> = vec![Vec::new(); topics.len()];
        let mut country_files: Vec<Vec<u32>> = vec![Vec::new(); geography.countries().len()];
        for (idx, file) in files.iter().enumerate() {
            topic_files[file.topic as usize].push(idx as u32);
            country_files[file.home_country].push(idx as u32);
        }
        let weight_table = |list: &[u32]| -> Vec<f64> {
            cumulative_from_weights(
                &list
                    .iter()
                    .map(|&f| files[f as usize].attractiveness)
                    .collect::<Vec<_>>(),
            )
        };
        // Interest draws flatten within-topic popularity: collectors dig
        // into their topics' tails (the source of rare-file clustering).
        let depth = config.interest_depth;
        let depth_table = |list: &[u32]| -> Vec<f64> {
            cumulative_from_weights(
                &list
                    .iter()
                    .map(|&f| files[f as usize].attractiveness.powf(depth))
                    .collect::<Vec<_>>(),
            )
        };
        let topic_file_cum = topic_files.iter().map(|l| depth_table(l)).collect();
        let country_file_cum = country_files.iter().map(|l| weight_table(l)).collect();
        let global_cum =
            cumulative_from_weights(&files.iter().map(|f| f.attractiveness).collect::<Vec<_>>());
        Population {
            config,
            geography,
            topics,
            files,
            peers,
            topic_files,
            topic_file_cum,
            country_files,
            country_file_cum,
            global_cum,
        }
    }

    /// Trace-level file metadata in [`FileRef`] order.
    pub fn file_infos(&self) -> Vec<FileInfo> {
        self.files.iter().map(|f| f.info.clone()).collect()
    }

    /// Trace-level peer metadata in `PeerId` order.
    pub fn peer_infos(&self) -> Vec<PeerInfo> {
        self.peers.iter().map(|p| p.info.clone()).collect()
    }

    /// Draws one file for `peer` from the interest/locality mixture.
    ///
    /// `reweight` optionally scales each file's attractiveness (the
    /// dynamics module passes the day's lifecycle multipliers); `None`
    /// uses static attractiveness.
    pub fn sample_file(
        &self,
        peer_idx: usize,
        tables: &SampleTables<'_>,
        rng: &mut impl Rng,
    ) -> u32 {
        let peer = &self.peers[peer_idx];
        let roll: f64 = rng.gen_range(0.0..1.0);
        if roll < self.config.interest_mix && !peer.interests.is_empty() {
            // Interest draw: uniform over own topics, weighted within.
            // Retry a few times in case the chosen topic has no files.
            for _ in 0..8 {
                let t = peer.interests[rng.gen_range(0..peer.interests.len())] as usize;
                if !tables.topic_files[t].is_empty() && *tables.topic_cum[t].last().unwrap() > 0.0 {
                    let i = sample_cumulative(&tables.topic_cum[t], rng);
                    return tables.topic_files[t][i];
                }
            }
        } else if roll < self.config.interest_mix + self.config.geo_mix {
            let c = peer.country_idx;
            if !tables.country_files[c].is_empty() && *tables.country_cum[c].last().unwrap() > 0.0 {
                let i = sample_cumulative(&tables.country_cum[c], rng);
                return tables.country_files[c][i];
            }
        }
        sample_cumulative(&tables.global_cum, rng) as u32
    }

    /// The static (lifecycle-free) sampling tables.
    pub fn static_tables(&self) -> SampleTables<'_> {
        SampleTables {
            topic_files: &self.topic_files,
            topic_cum: std::borrow::Cow::Borrowed(&self.topic_file_cum),
            country_files: &self.country_files,
            country_cum: std::borrow::Cow::Borrowed(&self.country_file_cum),
            global_cum: std::borrow::Cow::Borrowed(&self.global_cum),
        }
    }

    /// Builds lifecycle-reweighted tables for one day.
    ///
    /// `weight_of(file_idx)` returns the day's multiplier (0 for unborn
    /// files).
    pub fn reweighted_tables(&self, weight_of: impl Fn(usize) -> f64) -> SampleTables<'_> {
        let weights: Vec<f64> = self
            .files
            .iter()
            .enumerate()
            .map(|(i, f)| f.attractiveness * weight_of(i))
            .collect();
        // Interest draws keep their flattened within-topic profile while
        // still following the day's lifecycle (new files surge inside
        // their communities first).
        let depth = self.config.interest_depth;
        let depth_weights: Vec<f64> = self
            .files
            .iter()
            .enumerate()
            .map(|(i, f)| f.attractiveness.powf(depth) * weight_of(i))
            .collect();
        let table = |list: &[u32], w: &[f64]| -> Vec<f64> {
            cumulative_from_weights(&list.iter().map(|&f| w[f as usize]).collect::<Vec<_>>())
        };
        SampleTables {
            topic_files: &self.topic_files,
            topic_cum: std::borrow::Cow::Owned(
                self.topic_files
                    .iter()
                    .map(|l| table(l, &depth_weights))
                    .collect(),
            ),
            country_files: &self.country_files,
            country_cum: std::borrow::Cow::Owned(
                self.country_files
                    .iter()
                    .map(|l| table(l, &weights))
                    .collect(),
            ),
            global_cum: std::borrow::Cow::Owned(cumulative_from_weights(&weights)),
        }
    }

    /// Samples a full static cache (distinct files) for every peer.
    ///
    /// This is the "static world" generator used by analyses that do not
    /// need temporal structure. Free-riders get empty caches.
    pub fn sample_static_caches(&self, rng: &mut impl Rng) -> Vec<Vec<FileRef>> {
        let tables = self.static_tables();
        self.peers
            .iter()
            .enumerate()
            .map(|(idx, peer)| self.sample_cache(idx, peer.target_cache, &tables, rng))
            .collect()
    }

    /// Samples `target` distinct files for one peer.
    pub fn sample_cache(
        &self,
        peer_idx: usize,
        target: usize,
        tables: &SampleTables<'_>,
        rng: &mut impl Rng,
    ) -> Vec<FileRef> {
        let target = target.min(self.files.len());
        let mut cache: HashSet<u32> = HashSet::with_capacity(target);
        let mut attempts = 0usize;
        let max_attempts = 40 + target * 25;
        while cache.len() < target && attempts < max_attempts {
            attempts += 1;
            cache.insert(self.sample_file(peer_idx, tables, rng));
        }
        // Fallback for pathological saturation: uniform probing. This
        // keeps the promised cache size exactly, at a tiny popularity
        // bias cost in a regime (cache ≈ universe) the experiments never
        // enter.
        while cache.len() < target {
            cache.insert(rng.gen_range(0..self.files.len() as u32));
        }
        let mut cache: Vec<FileRef> = cache.into_iter().map(FileRef).collect();
        cache.sort_unstable();
        cache
    }
}

/// Borrowed or per-day sampling tables used by [`Population::sample_file`].
pub struct SampleTables<'a> {
    topic_files: &'a [Vec<u32>],
    topic_cum: std::borrow::Cow<'a, [Vec<f64>]>,
    country_files: &'a [Vec<u32>],
    country_cum: std::borrow::Cow<'a, [Vec<f64>]>,
    global_cum: std::borrow::Cow<'a, [f64]>,
}

/// Derives a stable 16-byte identity from `(seed, label, index)`.
fn digest_of(seed: u64, label: &str, index: u64) -> Digest {
    let mut h = Md4::new();
    h.update(&seed.to_le_bytes());
    h.update(label.as_bytes());
    h.update(&index.to_le_bytes());
    h.finalize()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::WorkloadConfig;

    fn small() -> Population {
        Population::generate(WorkloadConfig::test_scale(42))
    }

    #[test]
    fn generation_is_deterministic() {
        let a = small();
        let b = small();
        assert_eq!(a.files.len(), b.files.len());
        assert_eq!(a.files[0].info.id, b.files[0].info.id);
        assert_eq!(a.peers[10].info.uid, b.peers[10].info.uid);
        assert_eq!(a.peers[10].interests, b.peers[10].interests);
        let mut rng_a = StdRng::seed_from_u64(1);
        let mut rng_b = StdRng::seed_from_u64(1);
        assert_eq!(
            a.sample_static_caches(&mut rng_a),
            b.sample_static_caches(&mut rng_b)
        );
    }

    #[test]
    fn free_rider_fraction_matches_config() {
        let pop = small();
        let free = pop.peers.iter().filter(|p| p.is_free_rider()).count();
        let frac = free as f64 / pop.peers.len() as f64;
        assert!((frac - 0.74).abs() < 0.05, "free-rider fraction {frac}");
    }

    #[test]
    fn identities_are_unique() {
        let pop = small();
        let file_ids: HashSet<_> = pop.files.iter().map(|f| f.info.id).collect();
        assert_eq!(file_ids.len(), pop.files.len());
        let uids: HashSet<_> = pop.peers.iter().map(|p| p.info.uid).collect();
        assert_eq!(uids.len(), pop.peers.len());
        let ips: HashSet<_> = pop.peers.iter().map(|p| p.info.ip).collect();
        assert_eq!(
            ips.len(),
            pop.peers.len(),
            "the base population has no IP aliases"
        );
    }

    #[test]
    fn interests_are_distinct_and_bounded() {
        let pop = small();
        for peer in &pop.peers {
            let set: HashSet<_> = peer.interests.iter().collect();
            assert_eq!(set.len(), peer.interests.len());
            assert!(peer.interests.len() >= pop.config.interests_min);
            assert!(peer.interests.len() <= pop.config.interests_max);
        }
    }

    #[test]
    fn caches_hit_their_targets() {
        let pop = small();
        let mut rng = StdRng::seed_from_u64(3);
        let caches = pop.sample_static_caches(&mut rng);
        for (peer, cache) in pop.peers.iter().zip(&caches) {
            assert_eq!(cache.len(), peer.target_cache.min(pop.files.len()));
            assert!(cache.windows(2).all(|w| w[0] < w[1]), "sorted + distinct");
        }
    }

    #[test]
    fn interest_mix_biases_caches_toward_interests() {
        let pop = small();
        let mut rng = StdRng::seed_from_u64(5);
        let caches = pop.sample_static_caches(&mut rng);
        // Among sharers with decent caches, the fraction of cache files
        // in own interest topics must far exceed the topics' global share.
        let mut in_interest = 0usize;
        let mut total = 0usize;
        for (peer, cache) in pop.peers.iter().zip(&caches) {
            if cache.len() < 10 {
                continue;
            }
            for f in cache {
                total += 1;
                if peer.interests.contains(&pop.files[f.index()].topic) {
                    in_interest += 1;
                }
            }
        }
        let frac = in_interest as f64 / total as f64;
        assert!(
            frac > 0.35,
            "interest files fraction {frac}; expected well above baseline"
        );
    }

    #[test]
    fn popularity_is_heavy_tailed() {
        let pop = small();
        let mut rng = StdRng::seed_from_u64(7);
        let caches = pop.sample_static_caches(&mut rng);
        let mut counts: HashMap<FileRef, usize> = HashMap::new();
        for cache in &caches {
            for &f in cache {
                *counts.entry(f).or_insert(0) += 1;
            }
        }
        let mut pops: Vec<usize> = counts.values().copied().collect();
        pops.sort_unstable_by(|a, b| b.cmp(a));
        assert!(pops[0] >= 10, "most popular file has {} replicas", pops[0]);
        let singletons = pops.iter().filter(|&&c| c == 1).count();
        assert!(
            singletons as f64 / pops.len() as f64 > 0.4,
            "rare files must dominate the catalogue"
        );
    }

    #[test]
    fn reweighted_tables_respect_zero_weights() {
        let pop = small();
        // Kill every file except refs 0..100; samples must stay in range.
        let tables = pop.reweighted_tables(|i| if i < 100 { 1.0 } else { 0.0 });
        let mut rng = StdRng::seed_from_u64(11);
        for _ in 0..500 {
            let f = pop.sample_file(0, &tables, &mut rng);
            assert!(f < 100, "sampled dead file {f}");
        }
    }

    #[test]
    #[should_panic(expected = "invalid workload config")]
    fn invalid_config_panics() {
        let mut c = WorkloadConfig::test_scale(1);
        c.peers = 0;
        let _ = Population::generate(c);
    }
}
