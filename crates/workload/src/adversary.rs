//! Deterministic adversarial-workload model: sybil, pollution and
//! free-riding injection (DESIGN.md §12).
//!
//! The paper's population is honest: every peer shares what its cache
//! says and answers what it holds. Deployed eDonkey never was — index
//! pollution and sybil flooding were endemic, and the free-rider
//! fraction the paper measures is a *behaviour*, not an accident. This
//! module marks seeded fractions of the population as attackers, the
//! same way [`crate::churn`] marks them offline:
//!
//! * [`AdversaryPlan`] — a seeded, **stateless** per-peer role oracle.
//!   Every decision is a splitmix64-style hash of `(seed, salt, keys)`
//!   — no RNG state is consumed, so a quiet plan
//!   (`all permilles == 0`) leaves a simulation byte-identical to one
//!   that never consulted it. The role draw is band-partitioned over a
//!   rate-independent hash, so raising one kind's permille only widens
//!   that kind's band in place: the attacker set at a lower fraction
//!   is a strict subset of the set at any higher fraction, and
//!   degradation is mechanically monotone per attack kind.
//! * Three attack behaviours, matched to where they bite:
//!   - **Sybils** hold neighbour-list slots. A sybil impersonates the
//!     genuine uploader of an acquisition ([`AdversaryPlan::hijacker`])
//!     and gets *recorded* in its place; the slot it captures answers
//!     nothing ever after.
//!   - **Polluters** poison the *index*. A server-fallback acquisition
//!     may resolve through a polluted record
//!     ([`AdversaryPlan::polluter`]); the download completes (the
//!     querier still starts sharing the file) but the recorded
//!     uploader is the polluter. Exposure scales with how many index
//!     replicas can carry the poisoned record, so federation and DHT
//!     replication *amplify* pollution.
//!   - **Free-riders** answer nothing — the paper's §4.1 population,
//!     promoted to a first-class injected behaviour.
//! * Every adversarial peer, whatever its kind, refuses overlay
//!   answers ([`AdversaryPlan::answers_nothing`]): the query is
//!   delivered and costs a message, but no answer comes back. A
//!   refusal is not a timeout — the peer is online — so no retry or
//!   staleness reaction fires; only a reputation defense can clear the
//!   captured slot.
//!
//! Roles are fixed per peer for the whole run, like a churn schedule's
//! per-peer session phase: an attacker keeps its identity, keeps its
//! captured slots, and keeps refusing — which is exactly why adaptive
//! lists need an *earned-trust* signal (the reputation defense) rather
//! than the timeout/staleness machinery, which never fires on a peer
//! that is online and merely unhelpful.

/// Adversary-model parameters. Integer fractions keep `Eq`/`Hash`
/// derivable and the band-nesting monotonicity argument exact.
#[derive(Clone, Debug, Default, PartialEq, Eq, Hash)]
pub struct AdversaryConfig {
    /// Seed for every plan draw (independent of the simulation and
    /// churn seeds: the same workload can be replayed under many
    /// plans).
    pub seed: u64,
    /// Fraction of the population playing sybil, in permille.
    pub sybil_permille: u32,
    /// Fraction playing index polluter, in permille.
    pub polluter_permille: u32,
    /// Fraction playing free-rider, in permille.
    pub freerider_permille: u32,
}

impl AdversaryConfig {
    /// No adversaries: consulting the plan changes nothing.
    pub fn none() -> Self {
        Self::default()
    }

    /// A sybil-only plan.
    pub fn sybils(seed: u64, permille: u32) -> Self {
        AdversaryConfig {
            seed,
            sybil_permille: permille,
            ..Self::default()
        }
    }

    /// A polluter-only plan.
    pub fn polluters(seed: u64, permille: u32) -> Self {
        AdversaryConfig {
            seed,
            polluter_permille: permille,
            ..Self::default()
        }
    }

    /// A free-rider-only plan.
    pub fn freeriders(seed: u64, permille: u32) -> Self {
        AdversaryConfig {
            seed,
            freerider_permille: permille,
            ..Self::default()
        }
    }

    /// Adds sybils to an existing plan.
    pub fn with_sybils(mut self, permille: u32) -> Self {
        self.sybil_permille = permille;
        self
    }

    /// Adds polluters to an existing plan.
    pub fn with_polluters(mut self, permille: u32) -> Self {
        self.polluter_permille = permille;
        self
    }

    /// Adds free-riders to an existing plan.
    pub fn with_freeriders(mut self, permille: u32) -> Self {
        self.freerider_permille = permille;
        self
    }

    /// True iff the plan can never mark anyone adversarial.
    pub fn is_quiet(&self) -> bool {
        self.sybil_permille == 0 && self.polluter_permille == 0 && self.freerider_permille == 0
    }
}

/// What a peer plays for the whole run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Role {
    /// Shares and answers normally.
    Honest,
    /// Captures neighbour-list slots by impersonating uploaders.
    Sybil,
    /// Poisons index records on server fallbacks.
    Polluter,
    /// Holds whatever slots it earns but serves nothing.
    FreeRider,
}

/// Domain-separation salts: independent decision streams share one
/// seed without correlating (same scheme as `churn::SALT_SESSION`).
const SALT_ROLE: u64 = 0xad5e_77a9_1b3c_0001;
const SALT_HIJACK: u64 = 0xad5e_77a9_1b3c_0002;
const SALT_POLLUTE: u64 = 0xad5e_77a9_1b3c_0003;

use crate::mix::splitmix64 as mix;

/// The stateless adversary oracle built from an [`AdversaryConfig`].
#[derive(Clone, Debug)]
pub struct AdversaryPlan {
    config: AdversaryConfig,
}

impl AdversaryPlan {
    /// Wraps a config; no precomputation, the plan is pure hashing.
    pub fn new(config: AdversaryConfig) -> Self {
        AdversaryPlan { config }
    }

    /// The wrapped config.
    pub fn config(&self) -> &AdversaryConfig {
        &self.config
    }

    /// True iff the plan can never mark anyone adversarial.
    pub fn is_quiet(&self) -> bool {
        self.config.is_quiet()
    }

    /// One deterministic draw on the decision stream `salt`.
    fn roll(&self, salt: u64, keys: [u64; 3]) -> u64 {
        let mut h = mix(self.config.seed ^ salt);
        for k in keys {
            h = mix(h ^ k);
        }
        h
    }

    /// The role `peer` plays. The underlying hash is
    /// fraction-independent; the permilles only partition `[0, 1000)`
    /// into bands `[sybil | polluter | free-rider | honest]`, so
    /// raising one kind's permille (others fixed) widens that band in
    /// place and the kind's peer set nests across fractions.
    pub fn role(&self, peer: u32) -> Role {
        let c = &self.config;
        if c.is_quiet() {
            return Role::Honest;
        }
        let h = (self.roll(SALT_ROLE, [peer as u64, 0, 0]) % 1000) as u32;
        if h < c.sybil_permille {
            Role::Sybil
        } else if h < c.sybil_permille.saturating_add(c.polluter_permille) {
            Role::Polluter
        } else if h < c
            .sybil_permille
            .saturating_add(c.polluter_permille)
            .saturating_add(c.freerider_permille)
        {
            Role::FreeRider
        } else {
            Role::Honest
        }
    }

    /// Does `peer` refuse to answer overlay queries? True for every
    /// adversarial role: sybils and polluters hold slots without
    /// serving, free-riders by definition. The refusal is *not* a
    /// timeout — the peer is online and the query costs a message.
    pub fn answers_nothing(&self, peer: u32) -> bool {
        self.role(peer) != Role::Honest
    }

    /// The sybil (if any) that hijacks `querier`'s acquisition at
    /// stream position `t`: one stateless candidate draw, a capture
    /// exactly when the candidate plays sybil. The capture probability
    /// therefore tracks `sybil_permille` mechanically.
    pub fn hijacker(&self, querier: u32, t: u64, n_peers: usize) -> Option<u32> {
        if self.config.sybil_permille == 0 || n_peers == 0 {
            return None;
        }
        let c = (self.roll(SALT_HIJACK, [querier as u64, t, 0]) % n_peers as u64) as u32;
        (self.role(c) == Role::Sybil).then_some(c)
    }

    /// The polluter (if any) behind a server-fallback acquisition of
    /// `file`, given that `exposure` index replicas could carry the
    /// poisoned record. Each replica is one independent candidate
    /// draw; the first polluting candidate wins. More replicas mean
    /// more draws — replication amplifies pollution.
    pub fn polluter(&self, file: u64, exposure: u32, n_peers: usize) -> Option<u32> {
        if self.config.polluter_permille == 0 || n_peers == 0 {
            return None;
        }
        for i in 0..exposure.max(1) {
            let c = (self.roll(SALT_POLLUTE, [file, i as u64, 0]) % n_peers as u64) as u32;
            if self.role(c) == Role::Polluter {
                return Some(c);
            }
        }
        None
    }

    /// The sybil census capture: every peer playing sybil adopts a
    /// copy of the population's largest cache, advertising the most
    /// popular catalogue to maximise slot capture. A quiet plan is a
    /// no-op by construction (nobody plays sybil).
    pub fn rewrite_caches<T: Clone>(&self, caches: &mut [Vec<T>]) {
        if self.config.sybil_permille == 0 {
            return;
        }
        let Some(donor) = (0..caches.len()).max_by_key(|&p| (caches[p].len(), usize::MAX - p))
        else {
            return;
        };
        if caches[donor].is_empty() {
            return;
        }
        let bait = caches[donor].clone();
        for (p, cache) in caches.iter_mut().enumerate() {
            if p != donor && self.role(p as u32) == Role::Sybil {
                *cache = bait.clone();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quiet_plan_never_marks_anyone() {
        let p = AdversaryPlan::new(AdversaryConfig::none());
        assert!(p.is_quiet());
        for peer in 0..100 {
            assert_eq!(p.role(peer), Role::Honest);
            assert!(!p.answers_nothing(peer));
        }
        assert_eq!(p.hijacker(3, 7, 100), None);
        assert_eq!(p.polluter(3, 8, 100), None);
    }

    #[test]
    fn draws_are_deterministic_and_seed_sensitive() {
        let a = AdversaryPlan::new(AdversaryConfig::sybils(7, 200));
        let b = AdversaryPlan::new(AdversaryConfig::sybils(7, 200));
        let c = AdversaryPlan::new(AdversaryConfig::sybils(8, 200));
        let mut differs = false;
        for peer in 0..500 {
            assert_eq!(a.role(peer), b.role(peer));
            if a.role(peer) != c.role(peer) {
                differs = true;
            }
        }
        assert!(differs, "different seeds must give different plans");
    }

    #[test]
    fn bands_nest_per_attack_kind() {
        // Raising one kind's permille only grows that kind's set.
        for (lo, hi) in [
            (
                AdversaryConfig::sybils(42, 100),
                AdversaryConfig::sybils(42, 400),
            ),
            (
                AdversaryConfig::polluters(42, 100),
                AdversaryConfig::polluters(42, 400),
            ),
            (
                AdversaryConfig::freeriders(42, 100),
                AdversaryConfig::freeriders(42, 400),
            ),
        ] {
            let lo = AdversaryPlan::new(lo);
            let hi = AdversaryPlan::new(hi);
            for peer in 0..1000 {
                if lo.role(peer) != Role::Honest {
                    assert_eq!(lo.role(peer), hi.role(peer));
                }
            }
        }
    }

    #[test]
    fn role_fractions_match_permilles() {
        let p = AdversaryPlan::new(
            AdversaryConfig::sybils(3, 100)
                .with_polluters(150)
                .with_freeriders(250),
        );
        let mut counts = [0u64; 4];
        let total = 4000u64;
        for peer in 0..4000 {
            let i = match p.role(peer) {
                Role::Honest => 0,
                Role::Sybil => 1,
                Role::Polluter => 2,
                Role::FreeRider => 3,
            };
            counts[i] += 1;
        }
        // Within 25% relative of the configured fraction.
        for (count, permille) in [(counts[1], 100u64), (counts[2], 150), (counts[3], 250)] {
            let expect = total * permille / 1000;
            assert!(
                count * 4 >= expect * 3 && count * 4 <= expect * 5,
                "count {count} vs expected {expect}"
            );
        }
        assert_eq!(counts.iter().sum::<u64>(), total);
    }

    #[test]
    fn hijacker_and_polluter_respect_roles() {
        let p = AdversaryPlan::new(AdversaryConfig::sybils(11, 300).with_polluters(300));
        let mut hijacks = 0;
        let mut pollutions = 0;
        for t in 0..400u64 {
            if let Some(s) = p.hijacker(5, t, 200) {
                assert_eq!(p.role(s), Role::Sybil);
                hijacks += 1;
            }
            if let Some(s) = p.polluter(t, 2, 200) {
                assert_eq!(p.role(s), Role::Polluter);
                pollutions += 1;
            }
        }
        assert!(hijacks > 0, "a 30% sybil plan must capture something");
        assert!(pollutions > 0, "a 30% polluter plan must poison something");
        // Stateless: the same keys always land the same answers.
        assert_eq!(p.hijacker(5, 9, 200), p.hijacker(5, 9, 200));
        assert_eq!(p.polluter(9, 2, 200), p.polluter(9, 2, 200));
    }

    #[test]
    fn pollution_grows_with_exposure() {
        // More index replicas mean more candidate draws: the polluted
        // set at exposure k is a subset of the set at exposure k' > k.
        let p = AdversaryPlan::new(AdversaryConfig::polluters(13, 150));
        let mut counts = Vec::new();
        for exposure in [1u32, 2, 8] {
            let mut polluted = 0;
            for file in 0..1000u64 {
                if p.polluter(file, exposure, 300).is_some() {
                    polluted += 1;
                } else {
                    continue;
                }
                // Subset check: polluted at this exposure stays
                // polluted at every higher one.
                assert!(p.polluter(file, 8, 300).is_some());
            }
            counts.push(polluted);
        }
        assert!(counts[0] <= counts[1] && counts[1] <= counts[2]);
        assert!(counts[2] > counts[0], "8 replicas must beat 1 somewhere");
    }

    #[test]
    fn rewrite_caches_clones_the_largest_into_sybils() {
        let quiet = AdversaryPlan::new(AdversaryConfig::none());
        let mut caches: Vec<Vec<u32>> = (0..50).map(|p| (0..p).collect()).collect();
        let before = caches.clone();
        quiet.rewrite_caches(&mut caches);
        assert_eq!(caches, before, "a quiet plan never rewrites");

        let p = AdversaryPlan::new(AdversaryConfig::sybils(5, 400));
        p.rewrite_caches(&mut caches);
        let bait: Vec<u32> = (0..49).collect();
        let mut rewrote = 0;
        for (peer, cache) in caches.iter().enumerate() {
            if p.role(peer as u32) == Role::Sybil && peer != 49 {
                assert_eq!(cache, &bait, "sybil {peer} must carry the bait cache");
                rewrote += 1;
            } else {
                assert_eq!(cache, &before[peer], "honest caches stay put");
            }
        }
        assert!(rewrote > 0, "a 40% plan must rewrite someone");
    }
}
