//! Deterministic arrival processes for the always-on query-serving
//! mode (`edonkey-semsearch::serve`).
//!
//! The Section 5 simulator spreads the static request stream uniformly
//! over a virtual span (`t * span / len` milli-days). The honeypot
//! study (PAPERS.md) shows live eDonkey query traffic is anything but
//! uniform: arrivals cluster at the front of each day and jitter around
//! their nominal instants. This module perturbs the uniform schedule
//! along exactly those two axes, statelessly:
//!
//! * **burst compression** squeezes every within-day offset toward the
//!   start of its day by `burst_permille / 1000` — the day structure is
//!   kept, the instantaneous arrival rate at the front of each day
//!   grows. `burst_permille = 0` is the identity, and compressions
//!   *nest*: a stronger burst never moves an arrival later, so queue
//!   pressure is mechanically monotone in the knob.
//! * **jitter** adds a uniform draw in `[0, jitter_md]` keyed by
//!   `(seed, querier, tick)` through the same splitmix64 scheme as
//!   [`crate::churn`] — per-querier network delay with no sequential
//!   RNG, so any subset of arrivals can be recomputed independently.
//!
//! Both knobs leave the *trace* untouched: which peer requests which
//! file, and which sharers can answer, stay pinned by the request
//! stream. Arrival times only decide queueing, latency and — under
//! churn — which offline windows a query walk observes.

/// The arrival perturbation knobs (identity by default).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ArrivalConfig {
    /// Seed for the jitter draws (domain-separated from every other
    /// decision stream by [`SALT_JITTER`]).
    pub seed: u64,
    /// Maximum forward jitter per arrival, in milli-days (0 = none).
    pub jitter_md: u32,
    /// Within-day compression toward the day start, in permille
    /// (0 = uniform, 999 = everything lands on the first milli of its
    /// day). Values ≥ 1000 are clamped to 999 so a day keeps at least
    /// one representable milli.
    pub burst_permille: u32,
}

impl ArrivalConfig {
    /// The unperturbed schedule: arrivals at their nominal instants.
    pub fn none() -> Self {
        ArrivalConfig {
            seed: 0,
            jitter_md: 0,
            burst_permille: 0,
        }
    }

    /// Bursty arrivals: within-day compression at `burst_permille`,
    /// jittered by up to `jitter_md` under `seed`.
    pub fn bursty(seed: u64, burst_permille: u32, jitter_md: u32) -> Self {
        ArrivalConfig {
            seed,
            jitter_md,
            burst_permille,
        }
    }

    /// True iff this config cannot move any arrival.
    pub fn is_identity(&self) -> bool {
        self.jitter_md == 0 && self.burst_permille == 0
    }
}

impl Default for ArrivalConfig {
    fn default() -> Self {
        Self::none()
    }
}

/// Domain-separation salt for the jitter stream (same scheme as
/// `churn::SALT_SESSION`: one seed, uncorrelated decision streams).
const SALT_JITTER: u64 = 0xa441_7e5c_2b90_0001;

use crate::mix::splitmix64 as mix;

/// The stateless arrival oracle built from an [`ArrivalConfig`].
#[derive(Clone, Debug)]
pub struct ArrivalProcess {
    config: ArrivalConfig,
}

impl ArrivalProcess {
    /// Wraps a config; no precomputation, arrivals are pure hashing.
    pub fn new(config: ArrivalConfig) -> Self {
        ArrivalProcess { config }
    }

    /// The wrapped config.
    pub fn config(&self) -> &ArrivalConfig {
        &self.config
    }

    /// The jitter draw for `(querier, tick)` in `[0, jitter_md]`.
    pub fn jitter(&self, querier: u32, tick: u64) -> u64 {
        if self.config.jitter_md == 0 {
            return 0;
        }
        let mut h = mix(self.config.seed ^ SALT_JITTER);
        h = mix(h ^ u64::from(querier));
        h = mix(h ^ tick);
        h % (u64::from(self.config.jitter_md) + 1)
    }

    /// Maps a nominal arrival instant (milli-days since the span start)
    /// to the perturbed one: burst compression within the day, then the
    /// `(seed, querier, tick)`-keyed jitter. `tick` is the nominal
    /// tick the serving engine derives from `base_md` — passing it in
    /// keeps the draw independent of the engine's tick width.
    pub fn arrival_md(&self, querier: u32, tick: u64, base_md: u64) -> u64 {
        let burst = u64::from(self.config.burst_permille.min(999));
        let compressed = if burst == 0 {
            base_md
        } else {
            let day = base_md / 1000;
            let milli = base_md % 1000;
            day * 1000 + milli * (1000 - burst) / 1000
        };
        compressed + self.jitter(querier, tick)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_config_never_moves_an_arrival() {
        let p = ArrivalProcess::new(ArrivalConfig::none());
        assert!(p.config().is_identity());
        for base in [0u64, 1, 999, 1000, 13_999] {
            assert_eq!(p.arrival_md(7, base, base), base);
        }
    }

    #[test]
    fn jitter_is_bounded_deterministic_and_key_sensitive() {
        let p = ArrivalProcess::new(ArrivalConfig::bursty(42, 0, 50));
        let q = ArrivalProcess::new(ArrivalConfig::bursty(42, 0, 50));
        let mut moved = 0;
        for querier in 0..64u32 {
            for tick in 0..16u64 {
                let j = p.jitter(querier, tick);
                assert!(j <= 50);
                assert_eq!(j, q.jitter(querier, tick), "stateless draws must agree");
                if j != 0 {
                    moved += 1;
                }
            }
        }
        assert!(moved > 0, "a 50 md jitter cap must move something");
        let other = ArrivalProcess::new(ArrivalConfig::bursty(43, 0, 50));
        assert!(
            (0..64).any(|q| p.jitter(q, 3) != other.jitter(q, 3)),
            "the seed must matter"
        );
    }

    #[test]
    fn burst_compression_nests_and_keeps_the_day() {
        // Stronger bursts only move arrivals earlier, never across a
        // day boundary (jitter off so the compression is isolated).
        let levels = [0u32, 300, 600, 900, 999];
        for base in [0u64, 437, 999, 5_500, 13_999] {
            let mut prev = u64::MAX;
            for &b in &levels {
                let p = ArrivalProcess::new(ArrivalConfig::bursty(1, b, 0));
                let a = p.arrival_md(3, base, base);
                assert!(a <= base, "compression never delays");
                assert_eq!(a / 1000, base / 1000, "the day is preserved");
                assert!(a <= prev, "burst {b}: {a} must not exceed {prev}");
                prev = a;
            }
        }
    }

    #[test]
    fn clamps_degenerate_burst() {
        let p = ArrivalProcess::new(ArrivalConfig::bursty(1, 5_000, 0));
        assert_eq!(p.arrival_md(0, 999, 999), 0, "999-permille floor");
        assert_eq!(p.arrival_md(0, 1_999, 1_999), 1_000);
    }
}
