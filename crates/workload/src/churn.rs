//! Deterministic peer-availability model: session churn, server
//! outages, and the query retry policy (DESIGN.md §9).
//!
//! The Section 5 simulator assumes every semantic neighbour answers
//! instantly and forever; real eDonkey populations are dominated by
//! short intermittent sessions ("Ten weeks in the life of an eDonkey
//! server", PAPERS.md). This module supplies the availability ground
//! truth the search layer is evaluated against:
//!
//! * [`ChurnSchedule`] — a seeded, **stateless** per-peer on/off
//!   schedule. Every decision is a splitmix64-style hash of
//!   `(seed, salt, peer, day)` — no RNG state is consumed, so a quiet
//!   schedule (`churn_permille == 0`, no outages) leaves a simulation
//!   byte-identical to one that never consulted it, and the drawn
//!   offline *window start* is rate-independent, so the offline set at
//!   a lower churn rate is a strict subset of the set at any higher
//!   rate: availability degrades mechanically monotonically.
//! * [`QueryPolicy`] — the querier's reaction to timeouts: an attempt
//!   budget, exponential backoff in simulated request time, and whether
//!   stale (timed-out) neighbour entries are evicted/probed.
//!
//! Time is measured in **milli-days** (md): 1 simulated day = 1000 md,
//! so a 25% churn rate is one 250 md (~6 h) offline window per peer per
//! day. Backoffs are md too — a retry can genuinely outlive the
//! neighbour's offline window.

/// Churn-model parameters. Integer rates keep `Eq` derivable and the
/// monotonicity argument exact.
#[derive(Clone, Debug, Default, PartialEq, Eq, Hash)]
pub struct ChurnConfig {
    /// Seed for every schedule draw (independent of the simulation
    /// seed: the same workload can be replayed under many schedules).
    pub seed: u64,
    /// Per-day offline window length in milli-days (0 = always online,
    /// ≥ 1000 = never online). 250 ≈ the 25%-churn regime.
    pub churn_permille: u32,
    /// Day offsets (from the start of the run) on which the fallback
    /// server is unreachable: search is pure peer-to-peer.
    pub outage_days: Vec<u32>,
}

impl ChurnConfig {
    /// No churn, no outages: consulting the schedule changes nothing.
    pub fn none() -> Self {
        Self::default()
    }

    /// Session churn at the given rate, no server outages.
    pub fn with_rate(seed: u64, churn_permille: u32) -> Self {
        ChurnConfig {
            seed,
            churn_permille,
            outage_days: Vec::new(),
        }
    }

    /// True iff every availability question is statically "yes".
    pub fn is_quiet(&self) -> bool {
        self.churn_permille == 0 && self.outage_days.is_empty()
    }
}

/// Domain-separation salts: independent decision streams share one
/// seed without correlating (same scheme as `netsim::fault`).
const SALT_SESSION: u64 = 0x5e55_10f4_c4a9_0001;
const SALT_REPLACE: u64 = 0x5e55_10f4_c4a9_0002;

use crate::mix::splitmix64 as mix;

/// The stateless availability oracle built from a [`ChurnConfig`].
#[derive(Clone, Debug)]
pub struct ChurnSchedule {
    config: ChurnConfig,
}

impl ChurnSchedule {
    /// Wraps a config; no precomputation, the schedule is pure hashing.
    pub fn new(config: ChurnConfig) -> Self {
        ChurnSchedule { config }
    }

    /// The wrapped config.
    pub fn config(&self) -> &ChurnConfig {
        &self.config
    }

    /// True iff the schedule can never say "offline" or "outage".
    pub fn is_quiet(&self) -> bool {
        self.config.is_quiet()
    }

    /// One deterministic draw on the decision stream `salt`.
    fn roll(&self, salt: u64, keys: [u64; 3]) -> u64 {
        let mut h = mix(self.config.seed ^ salt);
        for k in keys {
            h = mix(h ^ k);
        }
        h
    }

    /// Where peer `peer`'s offline window starts on `day`, in
    /// milli-days `[0, 1000)`. **Rate-independent**: the same
    /// `(seed, peer, day)` always yields the same start, so raising
    /// `churn_permille` only widens every window in place.
    pub fn session_offline_start(&self, peer: u32, day: u32) -> u32 {
        (self.roll(SALT_SESSION, [peer as u64, day as u64, 0]) % 1000) as u32
    }

    /// Is `peer` offline at `milli` (`[0, 1000)`) of `day`? The window
    /// is `[start, start + churn_permille)` wrapping within the day.
    pub fn offline(&self, peer: u32, day: u32, milli: u32) -> bool {
        let rate = self.config.churn_permille;
        if rate == 0 {
            return false;
        }
        if rate >= 1000 {
            return true;
        }
        let start = self.session_offline_start(peer, day);
        (milli + 1000 - start) % 1000 < rate
    }

    /// Is the fallback server unreachable on `day`?
    pub fn server_out(&self, day: u32) -> bool {
        !self.config.outage_days.is_empty() && self.config.outage_days.contains(&day)
    }

    /// Deterministic index draw for staleness *replacement* (the Random
    /// policy refills evicted slots from the sharer pool). Stateless on
    /// purpose: the simulation's main RNG sequence must not move.
    pub fn replacement_index(&self, requester: u32, stale: u32, day: u32, len: usize) -> usize {
        debug_assert!(len > 0);
        let key = ((requester as u64) << 32) | stale as u64;
        (self.roll(SALT_REPLACE, [key, day as u64, 0]) % len as u64) as usize
    }
}

/// The querier's reaction to neighbour timeouts.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct QueryPolicy {
    /// Extra attempts after the first (0 = a timeout is final).
    pub max_retries: u32,
    /// Backoff before the first retry, in milli-days.
    pub backoff_base: u32,
    /// Multiplier applied per further retry.
    pub backoff_factor: u32,
    /// Evict/probe neighbour entries that timed out (per-policy
    /// reaction: see `AnyPolicy::handle_stale` in `edonkey-semsearch`).
    pub handle_stale: bool,
    /// Consecutive within-request timeouts before the staleness
    /// reaction fires (≤ 1 = react on the first timeout). Probation
    /// rather than a hair trigger: a peer caught once inside its daily
    /// offline window is *normal*; one that also misses the backed-off
    /// retry is worth reacting to.
    pub stale_after: u32,
}

impl QueryPolicy {
    /// The paper's implicit policy: one attempt, stale entries kept.
    pub fn no_retry() -> Self {
        QueryPolicy {
            max_retries: 0,
            backoff_base: 0,
            backoff_factor: 1,
            handle_stale: false,
            stale_after: 1,
        }
    }

    /// Retry with exponential backoff (60, 240, 960 md ≈ 1.4 h, 5.8 h,
    /// 23 h) and staleness handling after three consecutive timeouts.
    /// The backoffs are sized so the attempt sequence outlives any
    /// sub-day offline window, and the staleness threshold so that the
    /// first three attempt instants (t, t+60, t+300) cannot all fall
    /// inside one sub-300 md session window: the reaction targets peers
    /// gone across windows, not peers napping inside one — evicting on
    /// a shorter streak measurably purges lists faster than uploads
    /// refill them.
    pub fn retry_evict() -> Self {
        QueryPolicy {
            max_retries: 3,
            backoff_base: 60,
            backoff_factor: 4,
            handle_stale: true,
            stale_after: 3,
        }
    }

    /// Backoff in milli-days before retry number `attempt + 1`
    /// (`attempt` counts completed attempts, 0-based).
    pub fn backoff_for(&self, attempt: u32) -> u64 {
        let factor = (self.backoff_factor as u64).saturating_pow(attempt);
        (self.backoff_base as u64).saturating_mul(factor)
    }
}

impl Default for QueryPolicy {
    fn default() -> Self {
        Self::no_retry()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quiet_schedule_never_says_offline() {
        let s = ChurnSchedule::new(ChurnConfig::none());
        assert!(s.is_quiet());
        for peer in 0..50 {
            for day in 0..20 {
                for milli in [0, 250, 999] {
                    assert!(!s.offline(peer, day, milli));
                }
                assert!(!s.server_out(day));
            }
        }
    }

    #[test]
    fn draws_are_deterministic_and_seed_sensitive() {
        let a = ChurnSchedule::new(ChurnConfig::with_rate(7, 250));
        let b = ChurnSchedule::new(ChurnConfig::with_rate(7, 250));
        let c = ChurnSchedule::new(ChurnConfig::with_rate(8, 250));
        let mut differs = false;
        for peer in 0..200 {
            for day in 0..10 {
                assert_eq!(
                    a.session_offline_start(peer, day),
                    b.session_offline_start(peer, day)
                );
                if a.session_offline_start(peer, day) != c.session_offline_start(peer, day) {
                    differs = true;
                }
            }
        }
        assert!(differs, "different seeds must give different schedules");
    }

    #[test]
    fn offline_windows_nest_across_rates() {
        // Same seed, increasing rate: every (peer, day, milli) offline
        // at the lower rate is offline at the higher one.
        let lo = ChurnSchedule::new(ChurnConfig::with_rate(42, 100));
        let hi = ChurnSchedule::new(ChurnConfig::with_rate(42, 400));
        for peer in 0..100 {
            for day in 0..5 {
                for milli in (0..1000).step_by(13) {
                    if lo.offline(peer, day, milli) {
                        assert!(hi.offline(peer, day, milli));
                    }
                }
            }
        }
    }

    #[test]
    fn offline_fraction_matches_rate() {
        let s = ChurnSchedule::new(ChurnConfig::with_rate(3, 250));
        let mut offline = 0u64;
        let mut total = 0u64;
        for peer in 0..200 {
            for day in 0..4 {
                for milli in 0..1000 {
                    total += 1;
                    if s.offline(peer, day, milli) {
                        offline += 1;
                    }
                }
            }
        }
        // The window is exactly 250 md per (peer, day) by construction.
        assert_eq!(offline * 1000, total * 250);
    }

    #[test]
    fn extreme_rates() {
        let always = ChurnSchedule::new(ChurnConfig::with_rate(1, 1000));
        assert!(always.offline(0, 0, 0));
        let beyond = ChurnSchedule::new(ChurnConfig::with_rate(1, 5000));
        assert!(beyond.offline(9, 9, 999));
    }

    #[test]
    fn outages_are_day_scoped() {
        let mut config = ChurnConfig::with_rate(5, 0);
        config.outage_days = vec![3, 4];
        let s = ChurnSchedule::new(ChurnConfig {
            outage_days: vec![3, 4],
            ..config
        });
        assert!(!s.is_quiet(), "outage-only schedules are not quiet");
        assert!(!s.server_out(2));
        assert!(s.server_out(3));
        assert!(s.server_out(4));
        assert!(!s.server_out(5));
        // Churn stays off: the two knobs are independent.
        assert!(!s.offline(0, 3, 500));
    }

    #[test]
    fn replacement_draws_are_stable_and_in_range() {
        let s = ChurnSchedule::new(ChurnConfig::with_rate(11, 250));
        for len in [1usize, 2, 17, 1000] {
            for stale in 0..20 {
                let i = s.replacement_index(5, stale, 2, len);
                assert!(i < len);
                assert_eq!(i, s.replacement_index(5, stale, 2, len));
            }
        }
    }

    #[test]
    fn backoff_grows_geometrically() {
        let q = QueryPolicy::retry_evict();
        assert_eq!(q.backoff_for(0), 60);
        assert_eq!(q.backoff_for(1), 240);
        assert_eq!(q.backoff_for(2), 960);
        let none = QueryPolicy::no_retry();
        assert_eq!(none.max_retries, 0);
        assert_eq!(none.backoff_for(0), 0);
        assert_eq!(QueryPolicy::default(), QueryPolicy::no_retry());
    }

    #[test]
    fn backoff_saturates_instead_of_overflowing() {
        let q = QueryPolicy {
            max_retries: 100,
            backoff_base: u32::MAX,
            backoff_factor: u32::MAX,
            handle_stale: false,
            stale_after: 1,
        };
        assert_eq!(q.backoff_for(90), u64::MAX);
    }
}
