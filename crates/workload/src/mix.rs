//! The workspace's stateless-draw primitive: the splitmix64 finalizer.
//!
//! Every deterministic scenario layer in the repo — session churn
//! ([`crate::churn`]), arrival jitter ([`crate::arrivals`]), crawl
//! fault injection (`netsim::fault`), index routing
//! (`semsearch::index`), the server-fallback uploader pick and the
//! adversary plan ([`crate::adversary`]) — draws decisions as a pure
//! hash of `(seed, salt, keys...)` instead of consuming sequential RNG
//! state. That is what makes quiet configs bit-identical to runs that
//! never consulted the layer, lets any subset of the work be replayed
//! independently (split cells, serve shards), and keeps rate sweeps
//! mechanically nested.
//!
//! The finalizer itself used to be copied into each of those modules;
//! this module is the single shared definition. The constants are
//! load-bearing: every golden fixture in `tests/data/` pins the exact
//! bit pattern, so they must never change.

/// splitmix64 finalizer: avalanches a 64-bit counter into a hash.
///
/// The output feeds `% n` draws directly; the finalizer's full-width
/// avalanche keeps low bits unbiased enough for the simulation's
/// coarse (≤ 1000-way) draws.
#[inline]
pub fn splitmix64(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn finalizer_is_pinned() {
        // The exact constants the pre-dedup copies produced: golden
        // fixtures across the workspace depend on these bit patterns.
        assert_eq!(splitmix64(0), 0);
        assert_eq!(splitmix64(1), 0x5692_161d_100b_05e5);
        assert_eq!(splitmix64(0x9e37_79b9_7f4a_7c15), 0xe220_a839_7b1d_cdaf);
    }

    #[test]
    fn finalizer_avalanches() {
        // Flipping one input bit flips roughly half the output bits.
        for bit in [0u32, 17, 43, 63] {
            let a = splitmix64(0x1234_5678_9abc_def0);
            let b = splitmix64(0x1234_5678_9abc_def0 ^ (1u64 << bit));
            let flipped = (a ^ b).count_ones();
            assert!((16..=48).contains(&flipped), "bit {bit}: {flipped} flips");
        }
    }
}
