//! Nickname generation for synthetic clients.
//!
//! The paper's crawler discovers users through nickname substring queries
//! (`aaa` … `zzz`), and notes that *"not all users are retrieved in this
//! manner, due to the fact that many users share the same names"*. The
//! generator therefore produces pronounceable, **collision-prone**
//! nicknames: a small syllable alphabet plus a popularity-skewed pool of
//! common names, so the crawler simulation faces the same retrieval
//! biases the real one did.

use rand::Rng;

const ONSETS: &[&str] = &[
    "b", "c", "d", "f", "g", "j", "k", "l", "m", "n", "p", "r", "s", "t", "v", "z", "ch", "st",
    "dr",
];
const VOWELS: &[&str] = &["a", "e", "i", "o", "u", "ou", "ai"];
const SUFFIXES: &[&str] = &["", "", "", "x", "man", "girl", "123", "2000", "01", "99"];

/// A fixed pool of "very common" nicknames a sizeable fraction of users
/// pick, creating the heavy name collisions the paper mentions.
const COMMON: &[&str] = &[
    "anonymous",
    "user",
    "emule",
    "donkey",
    "music",
    "shadow",
    "dragon",
    "ghost",
    "rider",
    "neo",
    "max",
    "alex",
    "david",
    "juan",
    "hans",
];

/// Probability a user takes a common pool name rather than a generated
/// one.
const COMMON_PROB: f64 = 0.25;

/// Generates one nickname.
///
/// # Examples
///
/// ```
/// use rand::SeedableRng;
/// let mut rng = rand::rngs::StdRng::seed_from_u64(1);
/// let nick = edonkey_workload::names::nickname(&mut rng);
/// assert!(!nick.is_empty());
/// assert!(nick.chars().all(|c| c.is_ascii_lowercase() || c.is_ascii_digit()));
/// ```
pub fn nickname(rng: &mut impl Rng) -> String {
    if rng.gen_bool(COMMON_PROB) {
        let base = COMMON[rng.gen_range(0..COMMON.len())];
        let suffix = SUFFIXES[rng.gen_range(0..SUFFIXES.len())];
        return format!("{base}{suffix}");
    }
    let syllables = rng.gen_range(2..=3);
    let mut name = String::new();
    for _ in 0..syllables {
        name.push_str(ONSETS[rng.gen_range(0..ONSETS.len())]);
        name.push_str(VOWELS[rng.gen_range(0..VOWELS.len())]);
    }
    name.push_str(SUFFIXES[rng.gen_range(0..SUFFIXES.len())]);
    name
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use std::collections::HashMap;

    #[test]
    fn nicknames_are_lowercase_ascii() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let n = nickname(&mut rng);
            assert!(!n.is_empty());
            assert!(
                n.chars()
                    .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit()),
                "{n}"
            );
        }
    }

    #[test]
    fn collisions_are_common() {
        // The paper's crawler relied on (and suffered from) name reuse.
        let mut rng = StdRng::seed_from_u64(2);
        let mut counts: HashMap<String, usize> = HashMap::new();
        for _ in 0..10_000 {
            *counts.entry(nickname(&mut rng)).or_insert(0) += 1;
        }
        let max = counts.values().max().copied().unwrap_or(0);
        assert!(max > 50, "expected heavy collisions, max repeat was {max}");
        // But there is still diversity.
        assert!(counts.len() > 1_000, "only {} distinct names", counts.len());
    }

    #[test]
    fn three_letter_substrings_cover_most_names() {
        // The crawler issues every 3-letter query; nearly every generated
        // name must contain at least one purely alphabetic trigram.
        let mut rng = StdRng::seed_from_u64(3);
        let mut missing = 0;
        for _ in 0..2000 {
            let n = nickname(&mut rng);
            let has_trigram = n
                .as_bytes()
                .windows(3)
                .any(|w| w.iter().all(u8::is_ascii_lowercase));
            if !has_trigram {
                missing += 1;
            }
        }
        assert!(missing < 100, "{missing} names lack an alphabetic trigram");
    }
}
