//! The eDonkey tag system: self-describing metadata attached to files and
//! clients.
//!
//! A *tag* is a `(name, value)` pair. Names are either well-known one-byte
//! identifiers (file name, size, type, …) or free-form strings; values are
//! strings or 32-bit integers. Servers index published tags and evaluate
//! meta-data searches against them — the "search based on file meta-data"
//! feature the paper describes in Section 2.1.
//!
//! The binary layout follows the classic eDonkey encoding:
//!
//! ```text
//! tag      := type:u8 name value
//! type     := 0x02 (string) | 0x03 (u32)
//! name     := len:u16le bytes...        (len == 1 covers the special ids)
//! value    := len:u16le bytes...        (string)
//!           | u32le                     (integer)
//! ```

use std::fmt;

use crate::error::{DecodeError, Reader, Writer};

/// Well-known one-byte tag identifiers used by eDonkey clients.
///
/// The numeric values match the historical protocol so that encoded tags
/// are recognizable to anyone who has stared at ed2k packet dumps.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum SpecialTag {
    /// File or user name (`0x01`).
    Name = 0x01,
    /// File size in bytes (`0x02`).
    Size = 0x02,
    /// Media type string: `Audio`, `Video`, … (`0x03`).
    Type = 0x03,
    /// Container format: `mp3`, `avi`, … (`0x04`).
    Format = 0x04,
    /// Client version (`0x11`).
    Version = 0x11,
    /// TCP port (`0x0f`).
    Port = 0x0f,
    /// Number of known sources for a published file (`0x15`).
    Availability = 0x15,
    /// Audio bitrate in kbit/s (`0xd4`).
    Bitrate = 0xd4,
    /// Media length in seconds (`0xd3`).
    MediaLength = 0xd3,
}

impl SpecialTag {
    /// Maps a raw byte back to a special tag, if known.
    pub fn from_byte(b: u8) -> Option<Self> {
        Some(match b {
            0x01 => SpecialTag::Name,
            0x02 => SpecialTag::Size,
            0x03 => SpecialTag::Type,
            0x04 => SpecialTag::Format,
            0x11 => SpecialTag::Version,
            0x0f => SpecialTag::Port,
            0x15 => SpecialTag::Availability,
            0xd4 => SpecialTag::Bitrate,
            0xd3 => SpecialTag::MediaLength,
            _ => return None,
        })
    }
}

/// A tag name: a well-known id or a free-form string.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub enum TagName {
    /// A well-known one-byte identifier.
    Special(SpecialTag),
    /// An arbitrary string name (used by newer clients for custom fields).
    Custom(String),
}

impl fmt::Display for TagName {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TagName::Special(s) => write!(f, "{s:?}"),
            TagName::Custom(s) => f.write_str(s),
        }
    }
}

/// A tag value: string or 32-bit integer.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub enum TagValue {
    /// UTF-8 string payload.
    String(String),
    /// Little-endian 32-bit integer payload.
    U32(u32),
}

impl TagValue {
    /// Returns the string payload, if this is a string tag.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            TagValue::String(s) => Some(s),
            TagValue::U32(_) => None,
        }
    }

    /// Returns the integer payload, if this is an integer tag.
    pub fn as_u32(&self) -> Option<u32> {
        match self {
            TagValue::U32(v) => Some(*v),
            TagValue::String(_) => None,
        }
    }
}

/// A complete metadata tag.
///
/// # Examples
///
/// ```
/// use edonkey_proto::tags::{Tag, SpecialTag, TagValue};
///
/// let tag = Tag::special(SpecialTag::Size, TagValue::U32(9_728_000));
/// let bytes = tag.encode_to_vec();
/// let (decoded, rest) = Tag::decode(&bytes).unwrap();
/// assert_eq!(decoded, tag);
/// assert!(rest.is_empty());
/// ```
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct Tag {
    /// The tag's name.
    pub name: TagName,
    /// The tag's value.
    pub value: TagValue,
}

const TAG_TYPE_STRING: u8 = 0x02;
const TAG_TYPE_U32: u8 = 0x03;

impl Tag {
    /// Builds a tag with a well-known name.
    pub fn special(name: SpecialTag, value: TagValue) -> Self {
        Tag {
            name: TagName::Special(name),
            value,
        }
    }

    /// Builds a tag with a custom string name.
    pub fn custom(name: impl Into<String>, value: TagValue) -> Self {
        Tag {
            name: TagName::Custom(name.into()),
            value,
        }
    }

    /// Appends the binary encoding of this tag to `w`.
    pub fn encode(&self, w: &mut Writer) {
        match &self.value {
            TagValue::String(_) => w.u8(TAG_TYPE_STRING),
            TagValue::U32(_) => w.u8(TAG_TYPE_U32),
        }
        match &self.name {
            TagName::Special(s) => {
                w.u16(1);
                w.u8(*s as u8);
            }
            TagName::Custom(s) => w.str16(s),
        }
        match &self.value {
            TagValue::String(s) => w.str16(s),
            TagValue::U32(v) => w.u32(*v),
        }
    }

    /// Encodes this tag into a fresh byte vector.
    pub fn encode_to_vec(&self) -> Vec<u8> {
        let mut w = Writer::new();
        self.encode(&mut w);
        w.into_vec()
    }

    /// Decodes one tag from the front of `data`, returning the tag and the
    /// remaining bytes.
    pub fn decode(data: &[u8]) -> Result<(Tag, &[u8]), DecodeError> {
        let mut r = Reader::new(data);
        let tag = Tag::read(&mut r)?;
        Ok((tag, r.rest()))
    }

    /// Reads one tag from a [`Reader`].
    pub fn read(r: &mut Reader<'_>) -> Result<Tag, DecodeError> {
        let ty = r.u8()?;
        let name_len = r.u16()?;
        let name = if name_len == 1 {
            let b = r.u8()?;
            match SpecialTag::from_byte(b) {
                Some(s) => TagName::Special(s),
                // A one-byte custom name: keep it as a string so round-trips
                // of unknown ids are lossless at the value level.
                None => TagName::Custom((b as char).to_string()),
            }
        } else {
            TagName::Custom(r.string(name_len as usize)?)
        };
        let value = match ty {
            TAG_TYPE_STRING => {
                let len = r.u16()?;
                TagValue::String(r.string(len as usize)?)
            }
            TAG_TYPE_U32 => TagValue::U32(r.u32()?),
            other => return Err(DecodeError::BadTagType(other)),
        };
        Ok(Tag { name, value })
    }
}

/// A list of tags, as attached to a published file or a user record.
///
/// # Examples
///
/// ```
/// use edonkey_proto::tags::{TagList, Tag, SpecialTag, TagValue};
///
/// let mut tags = TagList::new();
/// tags.push(Tag::special(SpecialTag::Name, TagValue::String("track.mp3".into())));
/// tags.push(Tag::special(SpecialTag::Size, TagValue::U32(4_000_000)));
/// assert_eq!(tags.get_str(SpecialTag::Name), Some("track.mp3"));
/// assert_eq!(tags.get_u32(SpecialTag::Size), Some(4_000_000));
/// assert_eq!(tags.get_u32(SpecialTag::Bitrate), None);
/// ```
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct TagList(pub Vec<Tag>);

impl TagList {
    /// Creates an empty tag list.
    pub fn new() -> Self {
        TagList(Vec::new())
    }

    /// Appends a tag.
    pub fn push(&mut self, tag: Tag) {
        self.0.push(tag);
    }

    /// Looks up the first tag with the given special name.
    pub fn get(&self, name: SpecialTag) -> Option<&TagValue> {
        self.0
            .iter()
            .find(|t| t.name == TagName::Special(name))
            .map(|t| &t.value)
    }

    /// Looks up a string-valued special tag.
    pub fn get_str(&self, name: SpecialTag) -> Option<&str> {
        self.get(name).and_then(TagValue::as_str)
    }

    /// Looks up an integer-valued special tag.
    pub fn get_u32(&self, name: SpecialTag) -> Option<u32> {
        self.get(name).and_then(TagValue::as_u32)
    }

    /// Appends the binary encoding (`count:u32le` then each tag) to `w`.
    pub fn encode(&self, w: &mut Writer) {
        w.u32(self.0.len() as u32);
        for tag in &self.0 {
            tag.encode(w);
        }
    }

    /// Reads a tag list from a [`Reader`].
    pub fn read(r: &mut Reader<'_>) -> Result<TagList, DecodeError> {
        let count = r.u32()?;
        // Each tag takes at least 4 bytes; reject absurd counts before
        // allocating (a malformed length must not OOM the decoder).
        if count as usize > r.remaining() {
            return Err(DecodeError::BadCount(count));
        }
        let mut tags = Vec::with_capacity(count as usize);
        for _ in 0..count {
            tags.push(Tag::read(r)?);
        }
        Ok(TagList(tags))
    }
}

impl FromIterator<Tag> for TagList {
    fn from_iter<I: IntoIterator<Item = Tag>>(iter: I) -> Self {
        TagList(iter.into_iter().collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_tags() -> TagList {
        [
            Tag::special(SpecialTag::Name, TagValue::String("Some Movie.avi".into())),
            Tag::special(SpecialTag::Size, TagValue::U32(734_003_200)),
            Tag::special(SpecialTag::Type, TagValue::String("Video".into())),
            Tag::special(SpecialTag::Availability, TagValue::U32(12)),
            Tag::custom("codec", TagValue::String("divx".into())),
        ]
        .into_iter()
        .collect()
    }

    #[test]
    fn tag_round_trip() {
        for tag in sample_tags().0 {
            let bytes = tag.encode_to_vec();
            let (decoded, rest) = Tag::decode(&bytes).expect("decode");
            assert!(rest.is_empty());
            assert_eq!(decoded, tag);
        }
    }

    #[test]
    fn tag_list_round_trip() {
        let tags = sample_tags();
        let mut w = Writer::new();
        tags.encode(&mut w);
        let bytes = w.into_vec();
        let mut r = Reader::new(&bytes);
        let decoded = TagList::read(&mut r).expect("decode");
        assert_eq!(decoded, tags);
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn lookup_accessors() {
        let tags = sample_tags();
        assert_eq!(tags.get_str(SpecialTag::Name), Some("Some Movie.avi"));
        assert_eq!(tags.get_u32(SpecialTag::Size), Some(734_003_200));
        assert_eq!(
            tags.get_u32(SpecialTag::Name),
            None,
            "type mismatch yields None"
        );
        assert_eq!(tags.get(SpecialTag::Bitrate), None);
    }

    #[test]
    fn unknown_special_byte_survives_as_custom() {
        // Encode a custom single-character name not in the special table.
        let tag = Tag::custom("q", TagValue::U32(7));
        let bytes = tag.encode_to_vec();
        let (decoded, _) = Tag::decode(&bytes).expect("decode");
        assert_eq!(decoded.value, TagValue::U32(7));
        assert_eq!(decoded.name, TagName::Custom("q".into()));
    }

    #[test]
    fn truncated_input_is_an_error_not_a_panic() {
        let tag = Tag::special(SpecialTag::Size, TagValue::U32(1));
        let bytes = tag.encode_to_vec();
        for cut in 0..bytes.len() {
            assert!(Tag::decode(&bytes[..cut]).is_err(), "cut at {cut}");
        }
    }

    #[test]
    fn bad_tag_type_rejected() {
        let bytes = [0x7fu8, 1, 0, 0x01, 0, 0, 0, 0];
        assert!(matches!(
            Tag::decode(&bytes),
            Err(DecodeError::BadTagType(0x7f))
        ));
    }

    #[test]
    fn absurd_count_rejected() {
        let mut w = Writer::new();
        w.u32(u32::MAX);
        let bytes = w.into_vec();
        let mut r = Reader::new(&bytes);
        assert!(TagList::read(&mut r).is_err());
    }

    #[test]
    fn special_tag_byte_mapping_is_involutive() {
        for tag in [
            SpecialTag::Name,
            SpecialTag::Size,
            SpecialTag::Type,
            SpecialTag::Format,
            SpecialTag::Version,
            SpecialTag::Port,
            SpecialTag::Availability,
            SpecialTag::Bitrate,
            SpecialTag::MediaLength,
        ] {
            assert_eq!(SpecialTag::from_byte(tag as u8), Some(tag));
        }
        assert_eq!(SpecialTag::from_byte(0xee), None);
    }
}
