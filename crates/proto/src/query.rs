//! The eDonkey search-query language: AST, wire codec, text parser and
//! evaluator.
//!
//! Section 2.1 of the paper: *"Queries can be complex: searches by
//! keywords in fields (e.g. MP3 tags), range queries on size, bit rates
//! and availability, and any combination of them with logical operators
//! (and, or, not)."* This module implements exactly that language.
//!
//! # Examples
//!
//! ```
//! use edonkey_proto::query::{Query, FileMeta, FileKind};
//!
//! let q = Query::parse("beatles AND type:Audio AND size<10000000").unwrap();
//! let file = FileMeta::new("The Beatles - Help.mp3", 4_200_000, FileKind::Audio);
//! assert!(q.matches(&file));
//!
//! let movie = FileMeta::new("beatles documentary.avi", 700_000_000, FileKind::Video);
//! assert!(!q.matches(&movie));
//! ```

use std::fmt;

use crate::error::{DecodeError, Reader, Writer};

/// Media kind of a file, as carried by the `Type` tag.
///
/// The workload generator assigns kinds jointly with sizes (MP3s are
/// megabytes, DivX movies are hundreds of megabytes — Fig. 6 of the
/// paper), and Fig. 13 singles out *audio* files.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum FileKind {
    /// Music and other audio (typically 1–10 MB MP3s).
    Audio,
    /// Movies and clips (DivX movies are the > 600 MB mode of Fig. 6).
    Video,
    /// Archives: complete albums, ISO images (10–600 MB mode).
    Archive,
    /// Pictures (the < 1 MB mode).
    Image,
    /// Text documents.
    Document,
    /// Software.
    Program,
}

impl FileKind {
    /// All kinds, for iteration.
    pub const ALL: [FileKind; 6] = [
        FileKind::Audio,
        FileKind::Video,
        FileKind::Archive,
        FileKind::Image,
        FileKind::Document,
        FileKind::Program,
    ];

    /// The canonical tag string (`"Audio"`, `"Video"`, …).
    pub fn as_str(&self) -> &'static str {
        match self {
            FileKind::Audio => "Audio",
            FileKind::Video => "Video",
            FileKind::Archive => "Archive",
            FileKind::Image => "Image",
            FileKind::Document => "Document",
            FileKind::Program => "Program",
        }
    }

    /// Parses a tag string, case-insensitively.
    pub fn from_str_ci(s: &str) -> Option<FileKind> {
        FileKind::ALL
            .iter()
            .copied()
            .find(|k| k.as_str().eq_ignore_ascii_case(s))
    }
}

impl fmt::Display for FileKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// The searchable metadata of a file, the domain of query evaluation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FileMeta {
    /// File name (keyword matching is word-based and case-insensitive).
    pub name: String,
    /// File size in bytes.
    pub size: u64,
    /// Media kind.
    pub kind: FileKind,
    /// Audio bitrate in kbit/s, when known.
    pub bitrate: Option<u32>,
    /// Number of known sources (availability).
    pub availability: u32,
}

impl FileMeta {
    /// Builds metadata with no bitrate and zero availability.
    pub fn new(name: impl Into<String>, size: u64, kind: FileKind) -> Self {
        FileMeta {
            name: name.into(),
            size,
            kind,
            bitrate: None,
            availability: 0,
        }
    }

    /// Whether `word` occurs in the file name, case-insensitively, as a
    /// substring (eDonkey keyword semantics are substring-per-keyword).
    fn contains_word(&self, word: &str) -> bool {
        self.name
            .to_ascii_lowercase()
            .contains(&word.to_ascii_lowercase())
    }
}

/// Numeric fields a range query can target.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum RangeField {
    /// File size in bytes.
    Size,
    /// Audio bitrate in kbit/s.
    Bitrate,
    /// Number of sources.
    Availability,
}

impl RangeField {
    fn value_of(&self, meta: &FileMeta) -> Option<u64> {
        match self {
            RangeField::Size => Some(meta.size),
            RangeField::Bitrate => meta.bitrate.map(u64::from),
            RangeField::Availability => Some(u64::from(meta.availability)),
        }
    }

    fn name(&self) -> &'static str {
        match self {
            RangeField::Size => "size",
            RangeField::Bitrate => "bitrate",
            RangeField::Availability => "avail",
        }
    }
}

/// A search query AST node.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Query {
    /// Keyword match against the file name.
    Keyword(String),
    /// Exact media-kind match.
    KindIs(FileKind),
    /// `field > bound` (strict).
    Greater(RangeField, u64),
    /// `field < bound` (strict).
    Less(RangeField, u64),
    /// Both sub-queries must match.
    And(Box<Query>, Box<Query>),
    /// Either sub-query must match.
    Or(Box<Query>, Box<Query>),
    /// The sub-query must not match.
    Not(Box<Query>),
}

// Wire discriminants for the query tree (pre-order encoding).
const Q_KEYWORD: u8 = 0x01;
const Q_KIND: u8 = 0x02;
const Q_GREATER: u8 = 0x03;
const Q_LESS: u8 = 0x04;
const Q_AND: u8 = 0x10;
const Q_OR: u8 = 0x11;
const Q_NOT: u8 = 0x12;

const FIELD_SIZE: u8 = 0x01;
const FIELD_BITRATE: u8 = 0x02;
const FIELD_AVAIL: u8 = 0x03;

/// Maximum depth accepted by the wire decoder; deeper trees are rejected
/// to bound stack use on hostile input.
const MAX_QUERY_DEPTH: usize = 64;

impl Query {
    /// Convenience constructor for a keyword query.
    pub fn keyword(word: impl Into<String>) -> Query {
        Query::Keyword(word.into())
    }

    /// Builds `self AND other`.
    pub fn and(self, other: Query) -> Query {
        Query::And(Box::new(self), Box::new(other))
    }

    /// Builds `self OR other`.
    pub fn or(self, other: Query) -> Query {
        Query::Or(Box::new(self), Box::new(other))
    }

    /// Builds `NOT self`.
    #[allow(clippy::should_implement_trait)]
    pub fn not(self) -> Query {
        Query::Not(Box::new(self))
    }

    /// Evaluates the query against a file's metadata.
    pub fn matches(&self, meta: &FileMeta) -> bool {
        match self {
            Query::Keyword(w) => meta.contains_word(w),
            Query::KindIs(k) => meta.kind == *k,
            Query::Greater(field, bound) => field.value_of(meta).is_some_and(|v| v > *bound),
            Query::Less(field, bound) => field.value_of(meta).is_some_and(|v| v < *bound),
            Query::And(a, b) => a.matches(meta) && b.matches(meta),
            Query::Or(a, b) => a.matches(meta) || b.matches(meta),
            Query::Not(q) => !q.matches(meta),
        }
    }

    /// Encodes the query tree (pre-order) into `w`.
    pub fn encode(&self, w: &mut Writer) {
        match self {
            Query::Keyword(word) => {
                w.u8(Q_KEYWORD);
                w.str16(word);
            }
            Query::KindIs(kind) => {
                w.u8(Q_KIND);
                w.str16(kind.as_str());
            }
            Query::Greater(field, bound) => {
                w.u8(Q_GREATER);
                w.u8(field_byte(*field));
                w.u64(*bound);
            }
            Query::Less(field, bound) => {
                w.u8(Q_LESS);
                w.u8(field_byte(*field));
                w.u64(*bound);
            }
            Query::And(a, b) => {
                w.u8(Q_AND);
                a.encode(w);
                b.encode(w);
            }
            Query::Or(a, b) => {
                w.u8(Q_OR);
                a.encode(w);
                b.encode(w);
            }
            Query::Not(q) => {
                w.u8(Q_NOT);
                q.encode(w);
            }
        }
    }

    /// Reads a query tree from a [`Reader`].
    pub fn read(r: &mut Reader<'_>) -> Result<Query, DecodeError> {
        Self::read_depth(r, 0)
    }

    fn read_depth(r: &mut Reader<'_>, depth: usize) -> Result<Query, DecodeError> {
        if depth > MAX_QUERY_DEPTH {
            return Err(DecodeError::BadCount(depth as u32));
        }
        let disc = r.u8()?;
        Ok(match disc {
            Q_KEYWORD => Query::Keyword(r.str16()?),
            Q_KIND => {
                let s = r.str16()?;
                let kind = FileKind::from_str_ci(&s).ok_or(DecodeError::BadUtf8)?;
                Query::KindIs(kind)
            }
            Q_GREATER => Query::Greater(read_field(r)?, r.u64()?),
            Q_LESS => Query::Less(read_field(r)?, r.u64()?),
            Q_AND => {
                let a = Self::read_depth(r, depth + 1)?;
                let b = Self::read_depth(r, depth + 1)?;
                a.and(b)
            }
            Q_OR => {
                let a = Self::read_depth(r, depth + 1)?;
                let b = Self::read_depth(r, depth + 1)?;
                a.or(b)
            }
            Q_NOT => Self::read_depth(r, depth + 1)?.not(),
            other => return Err(DecodeError::BadOpcode(other)),
        })
    }

    /// Parses the textual query syntax.
    ///
    /// Grammar (case-insensitive operators, left-associative, `AND` binds
    /// tighter than `OR`, `NOT` tightest; parentheses group):
    ///
    /// ```text
    /// expr   := term (OR term)*
    /// term   := factor (AND factor)*
    /// factor := NOT factor | '(' expr ')' | atom
    /// atom   := type:KIND | size>N | size<N | bitrate>N | bitrate<N
    ///         | avail>N | avail<N | WORD
    /// ```
    ///
    /// # Examples
    ///
    /// ```
    /// use edonkey_proto::query::Query;
    /// let q = Query::parse("(madonna OR beatles) AND NOT type:Video").unwrap();
    /// assert!(Query::parse("size>>3").is_err());
    /// ```
    pub fn parse(input: &str) -> Result<Query, ParseError> {
        let tokens = tokenize(input)?;
        let mut p = Parser { tokens, pos: 0 };
        let q = p.expr()?;
        if p.pos != p.tokens.len() {
            return Err(ParseError::TrailingInput(p.pos));
        }
        Ok(q)
    }
}

fn field_byte(f: RangeField) -> u8 {
    match f {
        RangeField::Size => FIELD_SIZE,
        RangeField::Bitrate => FIELD_BITRATE,
        RangeField::Availability => FIELD_AVAIL,
    }
}

fn read_field(r: &mut Reader<'_>) -> Result<RangeField, DecodeError> {
    match r.u8()? {
        FIELD_SIZE => Ok(RangeField::Size),
        FIELD_BITRATE => Ok(RangeField::Bitrate),
        FIELD_AVAIL => Ok(RangeField::Availability),
        other => Err(DecodeError::BadOpcode(other)),
    }
}

impl fmt::Display for Query {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Query::Keyword(w) => write!(f, "{w}"),
            Query::KindIs(k) => write!(f, "type:{k}"),
            Query::Greater(field, b) => write!(f, "{}>{b}", field.name()),
            Query::Less(field, b) => write!(f, "{}<{b}", field.name()),
            Query::And(a, b) => write!(f, "({a} AND {b})"),
            Query::Or(a, b) => write!(f, "({a} OR {b})"),
            Query::Not(q) => write!(f, "NOT {q}"),
        }
    }
}

/// A query text parse error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseError {
    /// The input ended where a term was expected.
    UnexpectedEnd,
    /// An unexpected token at the given token index.
    UnexpectedToken(usize),
    /// Parsing finished with tokens left over (index of first leftover).
    TrailingInput(usize),
    /// A numeric bound did not parse.
    BadNumber(String),
    /// An unknown media kind after `type:`.
    BadKind(String),
    /// A malformed comparison like `size>>3`.
    BadComparison(String),
    /// Unbalanced parentheses.
    UnbalancedParens,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseError::UnexpectedEnd => write!(f, "unexpected end of query"),
            ParseError::UnexpectedToken(i) => write!(f, "unexpected token at {i}"),
            ParseError::TrailingInput(i) => write!(f, "trailing input from token {i}"),
            ParseError::BadNumber(s) => write!(f, "bad number: {s}"),
            ParseError::BadKind(s) => write!(f, "unknown media kind: {s}"),
            ParseError::BadComparison(s) => write!(f, "bad comparison: {s}"),
            ParseError::UnbalancedParens => write!(f, "unbalanced parentheses"),
        }
    }
}

impl std::error::Error for ParseError {}

#[derive(Debug, Clone, PartialEq, Eq)]
enum Token {
    And,
    Or,
    Not,
    LParen,
    RParen,
    Atom(String),
}

fn tokenize(input: &str) -> Result<Vec<Token>, ParseError> {
    let mut tokens = Vec::new();
    let mut word = String::new();
    let flush = |word: &mut String, tokens: &mut Vec<Token>| {
        if word.is_empty() {
            return;
        }
        let tok = match word.to_ascii_uppercase().as_str() {
            "AND" => Token::And,
            "OR" => Token::Or,
            "NOT" => Token::Not,
            _ => Token::Atom(std::mem::take(word)),
        };
        word.clear();
        tokens.push(tok);
    };
    for c in input.chars() {
        match c {
            '(' => {
                flush(&mut word, &mut tokens);
                tokens.push(Token::LParen);
            }
            ')' => {
                flush(&mut word, &mut tokens);
                tokens.push(Token::RParen);
            }
            c if c.is_whitespace() => flush(&mut word, &mut tokens),
            c => word.push(c),
        }
    }
    flush(&mut word, &mut tokens);
    Ok(tokens)
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos)
    }

    fn expr(&mut self) -> Result<Query, ParseError> {
        let mut left = self.term()?;
        while self.peek() == Some(&Token::Or) {
            self.pos += 1;
            let right = self.term()?;
            left = left.or(right);
        }
        Ok(left)
    }

    fn term(&mut self) -> Result<Query, ParseError> {
        let mut left = self.factor()?;
        while self.peek() == Some(&Token::And) {
            self.pos += 1;
            let right = self.factor()?;
            left = left.and(right);
        }
        Ok(left)
    }

    fn factor(&mut self) -> Result<Query, ParseError> {
        match self.peek() {
            Some(Token::Not) => {
                self.pos += 1;
                Ok(self.factor()?.not())
            }
            Some(Token::LParen) => {
                self.pos += 1;
                let q = self.expr()?;
                match self.peek() {
                    Some(Token::RParen) => {
                        self.pos += 1;
                        Ok(q)
                    }
                    _ => Err(ParseError::UnbalancedParens),
                }
            }
            Some(Token::Atom(_)) => {
                let Some(Token::Atom(word)) = self.tokens.get(self.pos).cloned() else {
                    unreachable!("peeked an atom");
                };
                self.pos += 1;
                atom(&word)
            }
            Some(_) => Err(ParseError::UnexpectedToken(self.pos)),
            None => Err(ParseError::UnexpectedEnd),
        }
    }
}

fn atom(word: &str) -> Result<Query, ParseError> {
    if let Some(kind) = word.strip_prefix("type:") {
        return FileKind::from_str_ci(kind)
            .map(Query::KindIs)
            .ok_or_else(|| ParseError::BadKind(kind.to_string()));
    }
    for (prefix, field) in [
        ("size", RangeField::Size),
        ("bitrate", RangeField::Bitrate),
        ("avail", RangeField::Availability),
    ] {
        if let Some(rest) = word.strip_prefix(prefix) {
            if let Some(op) = rest.chars().next() {
                if op == '>' || op == '<' {
                    let num = &rest[1..];
                    let bound: u64 = num
                        .parse()
                        .map_err(|_| ParseError::BadNumber(num.to_string()))?;
                    return Ok(if op == '>' {
                        Query::Greater(field, bound)
                    } else {
                        Query::Less(field, bound)
                    });
                }
                // `sizeable` is a keyword, but `size=3` is a user error.
                if !op.is_alphanumeric() {
                    return Err(ParseError::BadComparison(word.to_string()));
                }
            }
        }
    }
    Ok(Query::Keyword(word.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mp3(name: &str) -> FileMeta {
        let mut m = FileMeta::new(name, 4_000_000, FileKind::Audio);
        m.bitrate = Some(192);
        m.availability = 3;
        m
    }

    fn divx(name: &str) -> FileMeta {
        let mut m = FileMeta::new(name, 700_000_000, FileKind::Video);
        m.availability = 40;
        m
    }

    #[test]
    fn keyword_is_case_insensitive_substring() {
        let q = Query::keyword("BeAtLeS");
        assert!(q.matches(&mp3("the beatles - help.mp3")));
        assert!(!q.matches(&mp3("rolling stones.mp3")));
    }

    #[test]
    fn range_queries() {
        let small = Query::Less(RangeField::Size, 10_000_000);
        assert!(small.matches(&mp3("a")));
        assert!(!small.matches(&divx("b")));
        let hi_fi = Query::Greater(RangeField::Bitrate, 128);
        assert!(hi_fi.matches(&mp3("a")));
        assert!(
            !hi_fi.matches(&divx("b")),
            "missing bitrate never matches a range"
        );
        let popular = Query::Greater(RangeField::Availability, 10);
        assert!(popular.matches(&divx("b")));
        assert!(!popular.matches(&mp3("a")));
    }

    #[test]
    fn boolean_combinators() {
        let q = Query::keyword("live").and(Query::KindIs(FileKind::Audio));
        assert!(q.matches(&mp3("concert live.mp3")));
        assert!(!q.matches(&divx("concert live.avi")));
        let q = Query::keyword("live").or(Query::KindIs(FileKind::Video));
        assert!(q.matches(&divx("whatever.avi")));
        let q = Query::KindIs(FileKind::Video).not();
        assert!(q.matches(&mp3("x")));
        assert!(!q.matches(&divx("x")));
    }

    #[test]
    fn parse_precedence_and_parens() {
        // AND binds tighter than OR.
        let q = Query::parse("a OR b AND c").unwrap();
        assert_eq!(
            q,
            Query::keyword("a").or(Query::keyword("b").and(Query::keyword("c")))
        );
        let q = Query::parse("(a OR b) AND c").unwrap();
        assert_eq!(
            q,
            Query::keyword("a")
                .or(Query::keyword("b"))
                .and(Query::keyword("c"))
        );
        let q = Query::parse("NOT a AND b").unwrap();
        assert_eq!(q, Query::keyword("a").not().and(Query::keyword("b")));
    }

    #[test]
    fn parse_atoms() {
        assert_eq!(
            Query::parse("type:audio").unwrap(),
            Query::KindIs(FileKind::Audio)
        );
        assert_eq!(
            Query::parse("size>1000").unwrap(),
            Query::Greater(RangeField::Size, 1000)
        );
        assert_eq!(
            Query::parse("bitrate<320").unwrap(),
            Query::Less(RangeField::Bitrate, 320)
        );
        assert_eq!(
            Query::parse("avail>5").unwrap(),
            Query::Greater(RangeField::Availability, 5)
        );
        // Words that merely start with a field name stay keywords.
        assert_eq!(
            Query::parse("sizeable").unwrap(),
            Query::keyword("sizeable")
        );
    }

    #[test]
    fn parse_errors() {
        assert!(matches!(Query::parse(""), Err(ParseError::UnexpectedEnd)));
        assert!(matches!(
            Query::parse("(a"),
            Err(ParseError::UnbalancedParens)
        ));
        assert!(matches!(
            Query::parse("a b"),
            Err(ParseError::TrailingInput(_))
        ));
        assert!(matches!(
            Query::parse("type:music"),
            Err(ParseError::BadKind(_))
        ));
        assert!(matches!(
            Query::parse("size>abc"),
            Err(ParseError::BadNumber(_))
        ));
        assert!(matches!(
            Query::parse("size>>3"),
            Err(ParseError::BadNumber(_))
        ));
        assert!(matches!(
            Query::parse("size=3"),
            Err(ParseError::BadComparison(_))
        ));
        assert!(matches!(
            Query::parse("AND a"),
            Err(ParseError::UnexpectedToken(0))
        ));
    }

    #[test]
    fn wire_round_trip() {
        let queries = [
            Query::keyword("beatles"),
            Query::parse("(madonna OR beatles) AND NOT type:Video AND size>1000000").unwrap(),
            Query::Greater(RangeField::Availability, 3).and(Query::Less(RangeField::Bitrate, 320)),
        ];
        for q in queries {
            let mut w = Writer::new();
            q.encode(&mut w);
            let bytes = w.into_vec();
            let mut r = Reader::new(&bytes);
            let decoded = Query::read(&mut r).expect("decode");
            assert_eq!(decoded, q);
            assert_eq!(r.remaining(), 0);
        }
    }

    #[test]
    fn wire_rejects_deep_bombs() {
        // 100 nested NOTs exceed MAX_QUERY_DEPTH.
        let mut w = Writer::new();
        for _ in 0..100 {
            w.u8(0x12); // Q_NOT
        }
        w.u8(0x01); // Q_KEYWORD
        w.str16("x");
        let bytes = w.into_vec();
        let mut r = Reader::new(&bytes);
        assert!(Query::read(&mut r).is_err());
    }

    #[test]
    fn display_round_trips_through_parse() {
        let q = Query::parse("(a OR b) AND NOT type:Video").unwrap();
        let q2 = Query::parse(&q.to_string()).unwrap();
        assert_eq!(q, q2);
    }

    #[test]
    fn kind_string_round_trip() {
        for k in FileKind::ALL {
            assert_eq!(FileKind::from_str_ci(k.as_str()), Some(k));
            assert_eq!(FileKind::from_str_ci(&k.as_str().to_lowercase()), Some(k));
        }
        assert_eq!(FileKind::from_str_ci("polka"), None);
    }
}
