//! `edonkey-proto`: the eDonkey protocol substrate of the EuroSys'06
//! reproduction.
//!
//! The paper's measurement infrastructure is a modified eDonkey client
//! (MLdonkey) crawling a live network. This crate rebuilds the protocol
//! pieces that infrastructure depends on:
//!
//! * [`md4`] — the MD4 digest (RFC 1320), eDonkey's content hash;
//! * [`hash`] — 9.5 MB part hashing and ed2k file identifiers;
//! * [`tags`] — the tag metadata system servers index;
//! * [`query`] — the search language (keywords, ranges, and/or/not);
//! * [`wire`] — client↔server and client↔client messages with framing;
//! * [`error`] — the little-endian codec primitives and decode errors.
//!
//! Everything is implemented from scratch; no cryptography or protocol
//! crates are used.
//!
//! # Examples
//!
//! ```
//! use edonkey_proto::hash::PartHashes;
//! use edonkey_proto::wire::Message;
//!
//! // Hash a (tiny) file and ask a peer whether it shares it.
//! let hashes = PartHashes::of_bytes(b"file body");
//! let frame = Message::QueryFile { file_id: hashes.file_id() }.to_frame();
//! let (decoded, _) = Message::from_frame(&frame).unwrap();
//! assert_eq!(decoded, Message::QueryFile { file_id: hashes.file_id() });
//! ```

pub mod error;
pub mod hash;
pub mod md4;
pub mod query;
pub mod tags;
pub mod wire;

pub use hash::{FileId, PartHashes, PART_SIZE};
pub use md4::{Digest, Md4};
pub use query::{FileKind, FileMeta, Query};
pub use wire::{Message, PublishedFile, UserId, UserRecord};
