//! MD4 message digest, implemented from scratch after RFC 1320.
//!
//! eDonkey identifies every 9.28 MB file part by its MD4 digest, and every
//! file by the MD4 digest of the concatenation of its part digests (see
//! [`crate::hash`]). MD4 is cryptographically broken, but the reproduction
//! needs it for fidelity with the protocol, not for security.
//!
//! The implementation is incremental: bytes may be fed in arbitrary chunks
//! through [`Md4::update`], and [`Md4::finalize`] appends the RFC 1320
//! padding (a `0x80` byte, zeros, then the bit length as a little-endian
//! `u64`) before producing the 16-byte digest.
//!
//! # Examples
//!
//! ```
//! use edonkey_proto::md4::Md4;
//!
//! let digest = Md4::digest(b"abc");
//! assert_eq!(digest.to_hex(), "a448017aaf21d8525fc10ae87aa6729d");
//! ```

use std::fmt;

/// A 16-byte MD4 digest.
///
/// Wraps the raw bytes so that digests get their own `Display`/`Debug`
/// (lowercase hex, as file-sharing tools print ed2k hashes) and so that
/// other crates cannot confuse a digest with arbitrary `[u8; 16]` data.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Digest(pub [u8; 16]);

impl Digest {
    /// Returns the digest as lowercase hexadecimal.
    ///
    /// # Examples
    ///
    /// ```
    /// use edonkey_proto::md4::Md4;
    /// assert_eq!(Md4::digest(b"").to_hex(), "31d6cfe0d16ae931b73c59d7e0c089c0");
    /// ```
    pub fn to_hex(&self) -> String {
        let mut s = String::with_capacity(32);
        for b in self.0 {
            s.push(char::from_digit((b >> 4) as u32, 16).expect("nibble < 16"));
            s.push(char::from_digit((b & 0xf) as u32, 16).expect("nibble < 16"));
        }
        s
    }

    /// Parses a 32-character hexadecimal string into a digest.
    ///
    /// Returns `None` when the input is not exactly 32 hex digits.
    ///
    /// # Examples
    ///
    /// ```
    /// use edonkey_proto::md4::Digest;
    /// let d = Digest::from_hex("31d6cfe0d16ae931b73c59d7e0c089c0").unwrap();
    /// assert_eq!(d.to_hex(), "31d6cfe0d16ae931b73c59d7e0c089c0");
    /// assert!(Digest::from_hex("xyz").is_none());
    /// ```
    pub fn from_hex(s: &str) -> Option<Self> {
        if s.len() != 32 || !s.is_ascii() {
            return None;
        }
        let bytes = s.as_bytes();
        let mut out = [0u8; 16];
        for (i, chunk) in bytes.chunks_exact(2).enumerate() {
            let hi = (chunk[0] as char).to_digit(16)?;
            let lo = (chunk[1] as char).to_digit(16)?;
            out[i] = ((hi << 4) | lo) as u8;
        }
        Some(Digest(out))
    }

    /// Returns the raw digest bytes.
    pub fn as_bytes(&self) -> &[u8; 16] {
        &self.0
    }
}

impl fmt::Display for Digest {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_hex())
    }
}

impl fmt::Debug for Digest {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Digest({})", self.to_hex())
    }
}

/// Incremental MD4 hasher.
///
/// # Examples
///
/// ```
/// use edonkey_proto::md4::Md4;
///
/// let mut h = Md4::new();
/// h.update(b"message ");
/// h.update(b"digest");
/// assert_eq!(h.finalize().to_hex(), "d9130a8164549fe818874806e1c7014b");
/// ```
#[derive(Clone)]
pub struct Md4 {
    state: [u32; 4],
    /// Total number of message bytes fed so far (mod 2^64).
    len: u64,
    /// Buffered partial block.
    buf: [u8; 64],
    buf_len: usize,
}

impl Default for Md4 {
    fn default() -> Self {
        Self::new()
    }
}

/// Round 1 auxiliary function: bitwise conditional.
#[inline(always)]
fn f(x: u32, y: u32, z: u32) -> u32 {
    (x & y) | (!x & z)
}

/// Round 2 auxiliary function: bitwise majority.
#[inline(always)]
fn g(x: u32, y: u32, z: u32) -> u32 {
    (x & y) | (x & z) | (y & z)
}

/// Round 3 auxiliary function: parity.
#[inline(always)]
fn h(x: u32, y: u32, z: u32) -> u32 {
    x ^ y ^ z
}

impl Md4 {
    /// RFC 1320 initial state.
    const INIT: [u32; 4] = [0x6745_2301, 0xefcd_ab89, 0x98ba_dcfe, 0x1032_5476];

    /// Creates a fresh hasher.
    pub fn new() -> Self {
        Md4 {
            state: Self::INIT,
            len: 0,
            buf: [0u8; 64],
            buf_len: 0,
        }
    }

    /// One-shot digest of `data`.
    ///
    /// # Examples
    ///
    /// ```
    /// use edonkey_proto::md4::Md4;
    /// assert_eq!(Md4::digest(b"a").to_hex(), "bde52cb31de33e46245e05fbdbd6fb24");
    /// ```
    pub fn digest(data: &[u8]) -> Digest {
        let mut hasher = Md4::new();
        hasher.update(data);
        hasher.finalize()
    }

    /// Feeds `data` into the hasher.
    pub fn update(&mut self, data: &[u8]) {
        self.len = self.len.wrapping_add(data.len() as u64);
        let mut rest = data;
        if self.buf_len > 0 {
            let take = rest.len().min(64 - self.buf_len);
            self.buf[self.buf_len..self.buf_len + take].copy_from_slice(&rest[..take]);
            self.buf_len += take;
            rest = &rest[take..];
            if self.buf_len < 64 {
                // The input fit entirely in the partial block; it must not
                // fall through, or the remainder handling below would reset
                // `buf_len`.
                debug_assert!(rest.is_empty());
                return;
            }
            let block = self.buf;
            self.compress(&block);
            self.buf_len = 0;
        }
        let mut chunks = rest.chunks_exact(64);
        for block in &mut chunks {
            let block: &[u8; 64] = block.try_into().expect("chunks_exact(64)");
            self.compress(block);
        }
        let tail = chunks.remainder();
        self.buf[..tail.len()].copy_from_slice(tail);
        self.buf_len = tail.len();
    }

    /// Consumes the hasher, appending RFC 1320 padding, and returns the digest.
    pub fn finalize(mut self) -> Digest {
        let bit_len = self.len.wrapping_mul(8);
        // Padding: 0x80, then zeros until the length is ≡ 56 (mod 64).
        self.update(&[0x80]);
        while self.buf_len != 56 {
            self.update(&[0]);
        }
        // `update` also advances `len`, but `bit_len` was captured first.
        self.update(&bit_len.to_le_bytes());
        debug_assert_eq!(self.buf_len, 0);
        let mut out = [0u8; 16];
        for (chunk, word) in out.chunks_exact_mut(4).zip(self.state) {
            chunk.copy_from_slice(&word.to_le_bytes());
        }
        Digest(out)
    }

    /// Compresses one 64-byte block into the state (RFC 1320 section A.3).
    fn compress(&mut self, block: &[u8; 64]) {
        let mut x = [0u32; 16];
        for (word, chunk) in x.iter_mut().zip(block.chunks_exact(4)) {
            *word = u32::from_le_bytes(chunk.try_into().expect("chunks_exact(4)"));
        }
        let [mut a, mut b, mut c, mut d] = self.state;

        macro_rules! round1 {
            ($a:ident, $b:ident, $c:ident, $d:ident, $k:expr, $s:expr) => {
                $a = $a
                    .wrapping_add(f($b, $c, $d))
                    .wrapping_add(x[$k])
                    .rotate_left($s);
            };
        }
        macro_rules! round2 {
            ($a:ident, $b:ident, $c:ident, $d:ident, $k:expr, $s:expr) => {
                $a = $a
                    .wrapping_add(g($b, $c, $d))
                    .wrapping_add(x[$k])
                    .wrapping_add(0x5a82_7999)
                    .rotate_left($s);
            };
        }
        macro_rules! round3 {
            ($a:ident, $b:ident, $c:ident, $d:ident, $k:expr, $s:expr) => {
                $a = $a
                    .wrapping_add(h($b, $c, $d))
                    .wrapping_add(x[$k])
                    .wrapping_add(0x6ed9_eba1)
                    .rotate_left($s);
            };
        }

        // Round 1: indices 0..16 in order, shifts 3,7,11,19.
        for i in (0..16).step_by(4) {
            round1!(a, b, c, d, i, 3);
            round1!(d, a, b, c, i + 1, 7);
            round1!(c, d, a, b, i + 2, 11);
            round1!(b, c, d, a, i + 3, 19);
        }
        // Round 2: column order (0,4,8,12), shifts 3,5,9,13.
        for i in 0..4 {
            round2!(a, b, c, d, i, 3);
            round2!(d, a, b, c, i + 4, 5);
            round2!(c, d, a, b, i + 8, 9);
            round2!(b, c, d, a, i + 12, 13);
        }
        // Round 3: bit-reversed order (0,8,4,12,2,10,6,14,1,9,5,13,3,11,7,15),
        // shifts 3,9,11,15.
        for &i in &[0usize, 2, 1, 3] {
            round3!(a, b, c, d, i, 3);
            round3!(d, a, b, c, i + 8, 9);
            round3!(c, d, a, b, i + 4, 11);
            round3!(b, c, d, a, i + 12, 15);
        }

        self.state[0] = self.state[0].wrapping_add(a);
        self.state[1] = self.state[1].wrapping_add(b);
        self.state[2] = self.state[2].wrapping_add(c);
        self.state[3] = self.state[3].wrapping_add(d);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// RFC 1320 appendix A.5 test suite.
    #[test]
    fn rfc1320_vectors() {
        let cases: &[(&[u8], &str)] = &[
            (b"", "31d6cfe0d16ae931b73c59d7e0c089c0"),
            (b"a", "bde52cb31de33e46245e05fbdbd6fb24"),
            (b"abc", "a448017aaf21d8525fc10ae87aa6729d"),
            (b"message digest", "d9130a8164549fe818874806e1c7014b"),
            (
                b"abcdefghijklmnopqrstuvwxyz",
                "d79e1c308aa5bbcdeea8ed63df412da9",
            ),
            (
                b"ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789",
                "043f8582f241db351ce627e153e7f0e4",
            ),
            (
                b"12345678901234567890123456789012345678901234567890123456789012345678901234567890",
                "e33b4ddc9c38f2199c3e7b164fcc0536",
            ),
        ];
        for (input, expect) in cases {
            assert_eq!(Md4::digest(input).to_hex(), *expect, "input {:?}", input);
        }
    }

    #[test]
    fn incremental_matches_oneshot() {
        let data: Vec<u8> = (0..1024u32).map(|i| (i % 251) as u8).collect();
        let oneshot = Md4::digest(&data);
        // Feed in every possible split around the block boundary.
        for split in [0usize, 1, 7, 63, 64, 65, 127, 128, 500, 1024] {
            let mut h = Md4::new();
            h.update(&data[..split]);
            h.update(&data[split..]);
            assert_eq!(h.finalize(), oneshot, "split at {split}");
        }
        // Byte-at-a-time.
        let mut h = Md4::new();
        for b in &data {
            h.update(std::slice::from_ref(b));
        }
        assert_eq!(h.finalize(), oneshot);
    }

    #[test]
    fn length_padding_boundaries() {
        // Hash inputs whose lengths straddle the 56-byte padding boundary;
        // all must be distinct and deterministic.
        let mut digests = std::collections::HashSet::new();
        for len in 50..70 {
            let data = vec![0xabu8; len];
            let d = Md4::digest(&data);
            assert_eq!(d, Md4::digest(&data));
            assert!(digests.insert(d), "collision at length {len}");
        }
    }

    #[test]
    fn hex_round_trip() {
        let d = Md4::digest(b"round trip");
        assert_eq!(Digest::from_hex(&d.to_hex()), Some(d));
        assert_eq!(Digest::from_hex(""), None);
        assert_eq!(Digest::from_hex("0123"), None);
        assert_eq!(Digest::from_hex("zz".repeat(16).as_str()), None);
    }

    #[test]
    fn display_and_debug() {
        let d = Md4::digest(b"abc");
        assert_eq!(format!("{d}"), "a448017aaf21d8525fc10ae87aa6729d");
        assert_eq!(format!("{d:?}"), "Digest(a448017aaf21d8525fc10ae87aa6729d)");
    }

    #[test]
    fn million_a_streaming() {
        // Classic extended vector: MD4 of one million 'a' bytes.
        let mut hasher = Md4::new();
        let chunk = [b'a'; 1000];
        for _ in 0..1000 {
            hasher.update(&chunk);
        }
        assert_eq!(
            hasher.finalize().to_hex(),
            "bbce80cc6bb65e5c6745e30d4eeca9a4"
        );
    }
}
