//! Binary codec primitives and decode errors shared by the wire modules.
//!
//! The eDonkey protocol is little-endian throughout, with 16-bit
//! length-prefixed strings. [`Writer`] and [`Reader`] capture exactly that
//! dialect so the message and tag codecs stay declarative.

use std::fmt;

/// An error produced while decoding eDonkey wire data.
///
/// Decoding malformed or truncated input must fail cleanly — the crawler
/// talks to arbitrary remote peers, so every length and discriminant is
/// validated before use.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecodeError {
    /// Input ended before a fixed-size field could be read.
    Truncated {
        /// Bytes needed to finish the read.
        needed: usize,
        /// Bytes actually remaining.
        remaining: usize,
    },
    /// A string field was not valid UTF-8.
    BadUtf8,
    /// A tag carried an unknown type discriminant.
    BadTagType(u8),
    /// A message carried an unknown opcode.
    BadOpcode(u8),
    /// A collection length prefix exceeded the remaining input.
    BadCount(u32),
    /// A frame header announced a length beyond the configured maximum.
    FrameTooLarge(u32),
    /// A frame used an unknown protocol marker byte.
    BadProtocolMarker(u8),
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodeError::Truncated { needed, remaining } => {
                write!(
                    f,
                    "truncated input: needed {needed} bytes, {remaining} remaining"
                )
            }
            DecodeError::BadUtf8 => write!(f, "string field is not valid UTF-8"),
            DecodeError::BadTagType(t) => write!(f, "unknown tag type {t:#04x}"),
            DecodeError::BadOpcode(op) => write!(f, "unknown message opcode {op:#04x}"),
            DecodeError::BadCount(n) => write!(f, "length prefix {n} exceeds input"),
            DecodeError::FrameTooLarge(n) => write!(f, "frame length {n} exceeds maximum"),
            DecodeError::BadProtocolMarker(b) => write!(f, "unknown protocol marker {b:#04x}"),
        }
    }
}

impl std::error::Error for DecodeError {}

/// Little-endian byte sink for encoding messages.
///
/// # Examples
///
/// ```
/// use edonkey_proto::error::Writer;
///
/// let mut w = Writer::new();
/// w.u8(1);
/// w.u32(0xdead_beef);
/// w.str16("hi");
/// assert_eq!(w.into_vec(), vec![1, 0xef, 0xbe, 0xad, 0xde, 2, 0, b'h', b'i']);
/// ```
#[derive(Default)]
pub struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    /// Creates an empty writer.
    pub fn new() -> Self {
        Writer { buf: Vec::new() }
    }

    /// Creates a writer with `cap` bytes preallocated.
    pub fn with_capacity(cap: usize) -> Self {
        Writer {
            buf: Vec::with_capacity(cap),
        }
    }

    /// Appends one byte.
    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Appends a little-endian `u16`.
    pub fn u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u32`.
    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u64`.
    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends raw bytes.
    pub fn bytes(&mut self, v: &[u8]) {
        self.buf.extend_from_slice(v);
    }

    /// Appends a 16-bit length-prefixed UTF-8 string.
    ///
    /// # Panics
    ///
    /// Panics if the string is longer than 65 535 bytes; protocol strings
    /// (nicknames, file names, keywords) are far below this bound and a
    /// longer one indicates a caller bug.
    pub fn str16(&mut self, s: &str) {
        let len = u16::try_from(s.len()).expect("protocol strings are shorter than 64 KiB");
        self.u16(len);
        self.bytes(s.as_bytes());
    }

    /// Current encoded length in bytes.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing has been written yet.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Consumes the writer, returning the encoded bytes.
    pub fn into_vec(self) -> Vec<u8> {
        self.buf
    }
}

/// Little-endian cursor for decoding messages.
///
/// # Examples
///
/// ```
/// use edonkey_proto::error::Reader;
///
/// let mut r = Reader::new(&[2, 0, b'h', b'i', 7]);
/// let len = r.u16().unwrap();
/// assert_eq!(r.string(len as usize).unwrap(), "hi");
/// assert_eq!(r.u8().unwrap(), 7);
/// assert!(r.u8().is_err());
/// ```
pub struct Reader<'a> {
    data: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// Creates a cursor at the start of `data`.
    pub fn new(data: &'a [u8]) -> Self {
        Reader { data, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.data.len() - self.pos
    }

    /// Returns the unconsumed suffix.
    pub fn rest(&self) -> &'a [u8] {
        &self.data[self.pos..]
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], DecodeError> {
        if self.remaining() < n {
            return Err(DecodeError::Truncated {
                needed: n,
                remaining: self.remaining(),
            });
        }
        let slice = &self.data[self.pos..self.pos + n];
        self.pos += n;
        Ok(slice)
    }

    /// Reads one byte.
    pub fn u8(&mut self) -> Result<u8, DecodeError> {
        Ok(self.take(1)?[0])
    }

    /// Reads a little-endian `u16`.
    pub fn u16(&mut self) -> Result<u16, DecodeError> {
        Ok(u16::from_le_bytes(
            self.take(2)?.try_into().expect("take(2)"),
        ))
    }

    /// Reads a little-endian `u32`.
    pub fn u32(&mut self) -> Result<u32, DecodeError> {
        Ok(u32::from_le_bytes(
            self.take(4)?.try_into().expect("take(4)"),
        ))
    }

    /// Reads a little-endian `u64`.
    pub fn u64(&mut self) -> Result<u64, DecodeError> {
        Ok(u64::from_le_bytes(
            self.take(8)?.try_into().expect("take(8)"),
        ))
    }

    /// Reads `n` raw bytes.
    pub fn bytes(&mut self, n: usize) -> Result<&'a [u8], DecodeError> {
        self.take(n)
    }

    /// Reads `n` bytes as a UTF-8 string.
    pub fn string(&mut self, n: usize) -> Result<String, DecodeError> {
        let bytes = self.take(n)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| DecodeError::BadUtf8)
    }

    /// Reads a 16-bit length-prefixed string.
    pub fn str16(&mut self) -> Result<String, DecodeError> {
        let len = self.u16()?;
        self.string(len as usize)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn writer_reader_round_trip() {
        let mut w = Writer::new();
        w.u8(0xab);
        w.u16(0x1234);
        w.u32(0xdead_beef);
        w.u64(0x0102_0304_0506_0708);
        w.str16("nickname");
        w.bytes(&[1, 2, 3]);
        let buf = w.into_vec();

        let mut r = Reader::new(&buf);
        assert_eq!(r.u8().unwrap(), 0xab);
        assert_eq!(r.u16().unwrap(), 0x1234);
        assert_eq!(r.u32().unwrap(), 0xdead_beef);
        assert_eq!(r.u64().unwrap(), 0x0102_0304_0506_0708);
        assert_eq!(r.str16().unwrap(), "nickname");
        assert_eq!(r.bytes(3).unwrap(), &[1, 2, 3]);
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn truncated_reads_error() {
        let mut r = Reader::new(&[1, 2]);
        assert_eq!(
            r.u32(),
            Err(DecodeError::Truncated {
                needed: 4,
                remaining: 2
            })
        );
        // A failed read must not consume input.
        assert_eq!(r.u16().unwrap(), 0x0201);
    }

    #[test]
    fn bad_utf8_is_an_error() {
        let mut r = Reader::new(&[0xff, 0xfe]);
        assert_eq!(r.string(2), Err(DecodeError::BadUtf8));
    }

    #[test]
    fn display_messages_are_informative() {
        let e = DecodeError::Truncated {
            needed: 4,
            remaining: 1,
        };
        assert!(e.to_string().contains("needed 4"));
        assert!(DecodeError::BadOpcode(0x99).to_string().contains("0x99"));
    }

    #[test]
    fn writer_len_tracks_content() {
        let mut w = Writer::with_capacity(16);
        assert!(w.is_empty());
        w.u32(1);
        assert_eq!(w.len(), 4);
        assert!(!w.is_empty());
    }
}
