//! eDonkey wire messages and framing.
//!
//! This module models the subset of the eDonkey TCP protocol that the
//! paper's measurement infrastructure exercises:
//!
//! * **client ↔ server**: login, file publication (cache contents), keyword
//!   search, source queries, `query-users` (the nickname search the crawler
//!   exploits, Section 2.2), and server-list propagation;
//! * **client ↔ client**: hello handshake, *browse* (asking a peer for its
//!   full shared-file list — the crawler's main tool), file/part queries
//!   and download sessions.
//!
//! Frames follow the classic layout: a protocol marker byte (`0xE3`), a
//! little-endian `u32` length covering the opcode and payload, then the
//! opcode byte and the payload.

use crate::error::{DecodeError, Reader, Writer};
use crate::hash::FileId;
use crate::md4::Digest;
use crate::query::Query;
use crate::tags::TagList;

/// Protocol marker byte for classic eDonkey frames.
pub const PROTO_EDONKEY: u8 = 0xe3;

/// Upper bound on a frame's announced payload length (16 MiB).
///
/// Real servers enforce a similar cap; without one, a hostile peer could
/// make the decoder allocate arbitrarily much from a five-byte header.
pub const MAX_FRAME_LEN: u32 = 16 * 1024 * 1024;

/// A 16-byte client user id ("user hash"). Stable across sessions unless
/// the user reinstalls the client — the aliasing source the paper filters.
pub type UserId = Digest;

/// A published file record: what a client tells its server it shares.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PublishedFile {
    /// Content identifier.
    pub file_id: FileId,
    /// Claimed source IPv4 address (0 when firewalled / low-id).
    pub ip: u32,
    /// Claimed source TCP port.
    pub port: u16,
    /// Metadata tags (name, size, type, bitrate…).
    pub tags: TagList,
}

impl PublishedFile {
    fn encode(&self, w: &mut Writer) {
        w.bytes(self.file_id.as_bytes());
        w.u32(self.ip);
        w.u16(self.port);
        self.tags.encode(w);
    }

    fn read(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        let file_id = Digest(r.bytes(16)?.try_into().expect("16 bytes"));
        let ip = r.u32()?;
        let port = r.u16()?;
        let tags = TagList::read(r)?;
        Ok(PublishedFile {
            file_id,
            ip,
            port,
            tags,
        })
    }
}

/// A user record as returned by the `query-users` server feature.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct UserRecord {
    /// The user hash.
    pub uid: UserId,
    /// Server-assigned client id (an IP for high-id clients, a small
    /// number for firewalled low-id clients).
    pub client_id: u32,
    /// Nickname (what the crawler's `aaa`…`zzz` queries match against).
    pub nick: String,
    /// IPv4 address.
    pub ip: u32,
    /// TCP port.
    pub port: u16,
}

impl UserRecord {
    fn encode(&self, w: &mut Writer) {
        w.bytes(self.uid.as_bytes());
        w.u32(self.client_id);
        w.str16(&self.nick);
        w.u32(self.ip);
        w.u16(self.port);
    }

    fn read(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        let uid = Digest(r.bytes(16)?.try_into().expect("16 bytes"));
        let client_id = r.u32()?;
        let nick = r.str16()?;
        let ip = r.u32()?;
        let port = r.u16()?;
        Ok(UserRecord {
            uid,
            client_id,
            nick,
            ip,
            port,
        })
    }
}

/// A `(ip, port)` source address for a file.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct SourceAddr {
    /// IPv4 address.
    pub ip: u32,
    /// TCP port.
    pub port: u16,
}

/// One eDonkey protocol message.
///
/// The opcode space mirrors the historical protocol where a value exists
/// (login `0x01`, search `0x16`, found sources `0x42`, …) and uses free
/// slots for the handful of messages we model more abstractly.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Message {
    // --- client → server ---
    /// Session start: identify and register.
    Login {
        /// User hash.
        uid: UserId,
        /// Nickname.
        nick: String,
        /// Listening TCP port.
        port: u16,
        /// Client metadata tags.
        tags: TagList,
    },
    /// Publish (part of) the cache contents for indexing.
    PublishFiles(Vec<PublishedFile>),
    /// Metadata search against the server index.
    Search(Query),
    /// Nickname search — the crawler's discovery primitive.
    QueryUsers {
        /// Substring pattern matched against nicknames.
        pattern: String,
    },
    /// Ask for sources of a file (retried every 20 minutes by clients).
    QuerySources {
        /// The file whose sources are requested.
        file_id: FileId,
    },
    /// Ask for the server's list of other servers.
    GetServerList,

    // --- server → client ---
    /// Login accepted; carries the assigned client id.
    IdChange {
        /// Assigned client id (IP for high-id clients).
        client_id: u32,
    },
    /// Search results: matching published files.
    SearchResults(Vec<PublishedFile>),
    /// Reply to [`Message::QueryUsers`] — capped at 200 records by real
    /// servers, a cap the crawler works around by issuing many patterns.
    FoundUsers(Vec<UserRecord>),
    /// Reply to [`Message::QuerySources`].
    FoundSources {
        /// The queried file.
        file_id: FileId,
        /// Known sources.
        sources: Vec<SourceAddr>,
    },
    /// Known other servers.
    ServerList(Vec<SourceAddr>),
    /// Periodic server statistics (user count, file count).
    ServerStatus {
        /// Connected users.
        users: u32,
        /// Indexed files.
        files: u32,
    },

    // --- client ↔ client ---
    /// Peer handshake.
    Hello {
        /// User hash.
        uid: UserId,
        /// Nickname.
        nick: String,
        /// Listening TCP port.
        port: u16,
    },
    /// Handshake reply.
    HelloReply {
        /// User hash.
        uid: UserId,
        /// Nickname.
        nick: String,
    },
    /// Ask a peer for its full shared-file list (browse). Peers may refuse
    /// — the user-disabled feature that made the paper's crawl possible.
    BrowseRequest,
    /// Browse reply: the peer's cache contents.
    BrowseResult(Vec<PublishedFile>),
    /// Browse refused (feature disabled).
    BrowseDenied,
    /// Ask whether a peer shares a file.
    QueryFile {
        /// The file asked about.
        file_id: FileId,
    },
    /// Reply: which parts of the file the peer has (bit `i` = part `i`).
    FileStatus {
        /// The file described.
        file_id: FileId,
        /// Part availability bitmap, little-endian bit order.
        parts: Vec<u8>,
    },
    /// Request a download session for byte ranges of a file.
    RequestParts {
        /// The file requested.
        file_id: FileId,
        /// Up to three `(start, end)` byte ranges, per the protocol.
        ranges: Vec<(u64, u64)>,
    },
    /// Ask for a file's part-hash set.
    QueryHashset {
        /// The file whose hashset is requested.
        file_id: FileId,
    },
    /// Hashset reply: per-part digests.
    Hashset {
        /// The file described.
        file_id: FileId,
        /// Per-part MD4 digests.
        parts: Vec<Digest>,
    },
}

// Opcode constants. Historical values are used where they exist.
const OP_LOGIN: u8 = 0x01;
const OP_PUBLISH: u8 = 0x15;
const OP_SEARCH: u8 = 0x16;
const OP_QUERY_USERS: u8 = 0x1a;
const OP_QUERY_SOURCES: u8 = 0x19;
const OP_GET_SERVER_LIST: u8 = 0x14;
const OP_ID_CHANGE: u8 = 0x40;
const OP_SEARCH_RESULTS: u8 = 0x33;
const OP_FOUND_USERS: u8 = 0x43;
const OP_FOUND_SOURCES: u8 = 0x42;
const OP_SERVER_LIST: u8 = 0x32;
const OP_SERVER_STATUS: u8 = 0x34;
const OP_HELLO: u8 = 0x4c;
const OP_HELLO_REPLY: u8 = 0x4d;
const OP_BROWSE_REQUEST: u8 = 0x4e;
const OP_BROWSE_RESULT: u8 = 0x4f;
const OP_BROWSE_DENIED: u8 = 0x50;
const OP_QUERY_FILE: u8 = 0x58;
const OP_FILE_STATUS: u8 = 0x59;
const OP_REQUEST_PARTS: u8 = 0x47;
const OP_QUERY_HASHSET: u8 = 0x51;
const OP_HASHSET: u8 = 0x52;

fn encode_digest_list(w: &mut Writer, items: &[Digest]) {
    w.u32(items.len() as u32);
    for d in items {
        w.bytes(d.as_bytes());
    }
}

fn read_digest_list(r: &mut Reader<'_>) -> Result<Vec<Digest>, DecodeError> {
    let count = r.u32()?;
    if (count as usize).saturating_mul(16) > r.remaining() {
        return Err(DecodeError::BadCount(count));
    }
    let mut out = Vec::with_capacity(count as usize);
    for _ in 0..count {
        out.push(Digest(r.bytes(16)?.try_into().expect("16 bytes")));
    }
    Ok(out)
}

fn encode_published_files(w: &mut Writer, files: &[PublishedFile]) {
    w.u32(files.len() as u32);
    for f in files {
        f.encode(w);
    }
}

fn read_published_files(r: &mut Reader<'_>) -> Result<Vec<PublishedFile>, DecodeError> {
    let count = r.u32()?;
    // Each record is at least 16 + 4 + 2 + 4 bytes.
    if (count as usize).saturating_mul(26) > r.remaining() {
        return Err(DecodeError::BadCount(count));
    }
    let mut out = Vec::with_capacity(count as usize);
    for _ in 0..count {
        out.push(PublishedFile::read(r)?);
    }
    Ok(out)
}

fn encode_sources(w: &mut Writer, sources: &[SourceAddr]) {
    w.u32(sources.len() as u32);
    for s in sources {
        w.u32(s.ip);
        w.u16(s.port);
    }
}

fn read_sources(r: &mut Reader<'_>) -> Result<Vec<SourceAddr>, DecodeError> {
    let count = r.u32()?;
    if (count as usize).saturating_mul(6) > r.remaining() {
        return Err(DecodeError::BadCount(count));
    }
    let mut out = Vec::with_capacity(count as usize);
    for _ in 0..count {
        out.push(SourceAddr {
            ip: r.u32()?,
            port: r.u16()?,
        });
    }
    Ok(out)
}

impl Message {
    /// The opcode byte identifying this message on the wire.
    pub fn opcode(&self) -> u8 {
        match self {
            Message::Login { .. } => OP_LOGIN,
            Message::PublishFiles(_) => OP_PUBLISH,
            Message::Search(_) => OP_SEARCH,
            Message::QueryUsers { .. } => OP_QUERY_USERS,
            Message::QuerySources { .. } => OP_QUERY_SOURCES,
            Message::GetServerList => OP_GET_SERVER_LIST,
            Message::IdChange { .. } => OP_ID_CHANGE,
            Message::SearchResults(_) => OP_SEARCH_RESULTS,
            Message::FoundUsers(_) => OP_FOUND_USERS,
            Message::FoundSources { .. } => OP_FOUND_SOURCES,
            Message::ServerList(_) => OP_SERVER_LIST,
            Message::ServerStatus { .. } => OP_SERVER_STATUS,
            Message::Hello { .. } => OP_HELLO,
            Message::HelloReply { .. } => OP_HELLO_REPLY,
            Message::BrowseRequest => OP_BROWSE_REQUEST,
            Message::BrowseResult(_) => OP_BROWSE_RESULT,
            Message::BrowseDenied => OP_BROWSE_DENIED,
            Message::QueryFile { .. } => OP_QUERY_FILE,
            Message::FileStatus { .. } => OP_FILE_STATUS,
            Message::RequestParts { .. } => OP_REQUEST_PARTS,
            Message::QueryHashset { .. } => OP_QUERY_HASHSET,
            Message::Hashset { .. } => OP_HASHSET,
        }
    }

    /// Encodes the message payload (opcode excluded) into `w`.
    pub fn encode_payload(&self, w: &mut Writer) {
        match self {
            Message::Login {
                uid,
                nick,
                port,
                tags,
            } => {
                w.bytes(uid.as_bytes());
                w.str16(nick);
                w.u16(*port);
                tags.encode(w);
            }
            Message::PublishFiles(files) => encode_published_files(w, files),
            Message::Search(query) => query.encode(w),
            Message::QueryUsers { pattern } => w.str16(pattern),
            Message::QuerySources { file_id } => w.bytes(file_id.as_bytes()),
            Message::GetServerList => {}
            Message::IdChange { client_id } => w.u32(*client_id),
            Message::SearchResults(files) => encode_published_files(w, files),
            Message::FoundUsers(users) => {
                w.u32(users.len() as u32);
                for u in users {
                    u.encode(w);
                }
            }
            Message::FoundSources { file_id, sources } => {
                w.bytes(file_id.as_bytes());
                encode_sources(w, sources);
            }
            Message::ServerList(servers) => encode_sources(w, servers),
            Message::ServerStatus { users, files } => {
                w.u32(*users);
                w.u32(*files);
            }
            Message::Hello { uid, nick, port } => {
                w.bytes(uid.as_bytes());
                w.str16(nick);
                w.u16(*port);
            }
            Message::HelloReply { uid, nick } => {
                w.bytes(uid.as_bytes());
                w.str16(nick);
            }
            Message::BrowseRequest | Message::BrowseDenied => {}
            Message::BrowseResult(files) => encode_published_files(w, files),
            Message::QueryFile { file_id } => w.bytes(file_id.as_bytes()),
            Message::FileStatus { file_id, parts } => {
                w.bytes(file_id.as_bytes());
                w.u16(parts.len() as u16);
                w.bytes(parts);
            }
            Message::RequestParts { file_id, ranges } => {
                w.bytes(file_id.as_bytes());
                w.u8(ranges.len() as u8);
                for (start, end) in ranges {
                    w.u64(*start);
                    w.u64(*end);
                }
            }
            Message::QueryHashset { file_id } => w.bytes(file_id.as_bytes()),
            Message::Hashset { file_id, parts } => {
                w.bytes(file_id.as_bytes());
                encode_digest_list(w, parts);
            }
        }
    }

    /// Decodes a message from an opcode and payload bytes.
    pub fn decode(opcode: u8, payload: &[u8]) -> Result<Message, DecodeError> {
        let mut r = Reader::new(payload);
        let read_digest = |r: &mut Reader<'_>| -> Result<Digest, DecodeError> {
            Ok(Digest(r.bytes(16)?.try_into().expect("16 bytes")))
        };
        let msg = match opcode {
            OP_LOGIN => {
                let uid = read_digest(&mut r)?;
                let nick = r.str16()?;
                let port = r.u16()?;
                let tags = TagList::read(&mut r)?;
                Message::Login {
                    uid,
                    nick,
                    port,
                    tags,
                }
            }
            OP_PUBLISH => Message::PublishFiles(read_published_files(&mut r)?),
            OP_SEARCH => Message::Search(Query::read(&mut r)?),
            OP_QUERY_USERS => Message::QueryUsers {
                pattern: r.str16()?,
            },
            OP_QUERY_SOURCES => Message::QuerySources {
                file_id: read_digest(&mut r)?,
            },
            OP_GET_SERVER_LIST => Message::GetServerList,
            OP_ID_CHANGE => Message::IdChange {
                client_id: r.u32()?,
            },
            OP_SEARCH_RESULTS => Message::SearchResults(read_published_files(&mut r)?),
            OP_FOUND_USERS => {
                let count = r.u32()?;
                if (count as usize).saturating_mul(28) > r.remaining() {
                    return Err(DecodeError::BadCount(count));
                }
                let mut users = Vec::with_capacity(count as usize);
                for _ in 0..count {
                    users.push(UserRecord::read(&mut r)?);
                }
                Message::FoundUsers(users)
            }
            OP_FOUND_SOURCES => {
                let file_id = read_digest(&mut r)?;
                let sources = read_sources(&mut r)?;
                Message::FoundSources { file_id, sources }
            }
            OP_SERVER_LIST => Message::ServerList(read_sources(&mut r)?),
            OP_SERVER_STATUS => Message::ServerStatus {
                users: r.u32()?,
                files: r.u32()?,
            },
            OP_HELLO => {
                let uid = read_digest(&mut r)?;
                let nick = r.str16()?;
                let port = r.u16()?;
                Message::Hello { uid, nick, port }
            }
            OP_HELLO_REPLY => {
                let uid = read_digest(&mut r)?;
                let nick = r.str16()?;
                Message::HelloReply { uid, nick }
            }
            OP_BROWSE_REQUEST => Message::BrowseRequest,
            OP_BROWSE_RESULT => Message::BrowseResult(read_published_files(&mut r)?),
            OP_BROWSE_DENIED => Message::BrowseDenied,
            OP_QUERY_FILE => Message::QueryFile {
                file_id: read_digest(&mut r)?,
            },
            OP_FILE_STATUS => {
                let file_id = read_digest(&mut r)?;
                let len = r.u16()?;
                let parts = r.bytes(len as usize)?.to_vec();
                Message::FileStatus { file_id, parts }
            }
            OP_REQUEST_PARTS => {
                let file_id = read_digest(&mut r)?;
                let count = r.u8()?;
                let mut ranges = Vec::with_capacity(count as usize);
                for _ in 0..count {
                    ranges.push((r.u64()?, r.u64()?));
                }
                Message::RequestParts { file_id, ranges }
            }
            OP_QUERY_HASHSET => Message::QueryHashset {
                file_id: read_digest(&mut r)?,
            },
            OP_HASHSET => {
                let file_id = read_digest(&mut r)?;
                let parts = read_digest_list(&mut r)?;
                Message::Hashset { file_id, parts }
            }
            other => return Err(DecodeError::BadOpcode(other)),
        };
        Ok(msg)
    }

    /// Encodes the message as a complete frame: marker, length, opcode,
    /// payload.
    ///
    /// # Examples
    ///
    /// ```
    /// use edonkey_proto::wire::Message;
    ///
    /// let frame = Message::BrowseRequest.to_frame();
    /// let (msg, used) = Message::from_frame(&frame).unwrap();
    /// assert_eq!(msg, Message::BrowseRequest);
    /// assert_eq!(used, frame.len());
    /// ```
    pub fn to_frame(&self) -> Vec<u8> {
        let mut payload = Writer::new();
        self.encode_payload(&mut payload);
        let payload = payload.into_vec();
        let mut w = Writer::with_capacity(payload.len() + 6);
        w.u8(PROTO_EDONKEY);
        w.u32(payload.len() as u32 + 1); // length covers opcode + payload
        w.u8(self.opcode());
        w.bytes(&payload);
        w.into_vec()
    }

    /// Decodes one frame from the front of `data`, returning the message
    /// and the number of bytes consumed.
    ///
    /// Returns [`DecodeError::Truncated`] when `data` does not yet hold a
    /// complete frame, so callers can use this directly on a growing
    /// receive buffer.
    pub fn from_frame(data: &[u8]) -> Result<(Message, usize), DecodeError> {
        let mut r = Reader::new(data);
        let marker = r.u8()?;
        if marker != PROTO_EDONKEY {
            return Err(DecodeError::BadProtocolMarker(marker));
        }
        let len = r.u32()?;
        if len == 0 {
            return Err(DecodeError::BadCount(0));
        }
        if len > MAX_FRAME_LEN {
            return Err(DecodeError::FrameTooLarge(len));
        }
        let body = r.bytes(len as usize)?;
        let msg = Message::decode(body[0], &body[1..])?;
        Ok((msg, 5 + len as usize))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::Query;
    use crate::tags::{SpecialTag, Tag, TagValue};

    fn uid(b: u8) -> UserId {
        Digest([b; 16])
    }

    fn sample_file(b: u8) -> PublishedFile {
        PublishedFile {
            file_id: Digest([b; 16]),
            ip: 0x0a00_0001,
            port: 4662,
            tags: [
                Tag::special(SpecialTag::Name, TagValue::String(format!("file-{b}.mp3"))),
                Tag::special(SpecialTag::Size, TagValue::U32(3_500_000)),
            ]
            .into_iter()
            .collect(),
        }
    }

    fn all_messages() -> Vec<Message> {
        vec![
            Message::Login {
                uid: uid(1),
                nick: "crawler-01".into(),
                port: 4662,
                tags: TagList::new(),
            },
            Message::PublishFiles(vec![sample_file(2), sample_file(3)]),
            Message::Search(Query::keyword("beatles")),
            Message::QueryUsers {
                pattern: "aab".into(),
            },
            Message::QuerySources {
                file_id: Digest([9; 16]),
            },
            Message::GetServerList,
            Message::IdChange {
                client_id: 0x0a00_0001,
            },
            Message::SearchResults(vec![sample_file(4)]),
            Message::FoundUsers(vec![UserRecord {
                uid: uid(5),
                client_id: 77,
                nick: "aaberg".into(),
                ip: 0x0a00_0002,
                port: 4663,
            }]),
            Message::FoundSources {
                file_id: Digest([6; 16]),
                sources: vec![SourceAddr { ip: 1, port: 2 }, SourceAddr { ip: 3, port: 4 }],
            },
            Message::ServerList(vec![SourceAddr { ip: 5, port: 4661 }]),
            Message::ServerStatus {
                users: 200_000,
                files: 11_000_000,
            },
            Message::Hello {
                uid: uid(7),
                nick: "peer".into(),
                port: 4662,
            },
            Message::HelloReply {
                uid: uid(8),
                nick: "other".into(),
            },
            Message::BrowseRequest,
            Message::BrowseResult(vec![sample_file(10)]),
            Message::BrowseDenied,
            Message::QueryFile {
                file_id: Digest([11; 16]),
            },
            Message::FileStatus {
                file_id: Digest([12; 16]),
                parts: vec![0b1010_1010, 0x01],
            },
            Message::RequestParts {
                file_id: Digest([13; 16]),
                ranges: vec![(0, 9_728_000), (9_728_000, 19_456_000)],
            },
            Message::QueryHashset {
                file_id: Digest([14; 16]),
            },
            Message::Hashset {
                file_id: Digest([15; 16]),
                parts: vec![uid(1), uid(2)],
            },
        ]
    }

    #[test]
    fn every_message_frame_round_trips() {
        for msg in all_messages() {
            let frame = msg.to_frame();
            let (decoded, used) =
                Message::from_frame(&frame).unwrap_or_else(|e| panic!("{msg:?}: {e}"));
            assert_eq!(used, frame.len(), "{msg:?}");
            assert_eq!(decoded, msg);
        }
    }

    #[test]
    fn opcodes_are_unique() {
        let msgs = all_messages();
        let mut seen = std::collections::HashSet::new();
        for m in &msgs {
            assert!(
                seen.insert(m.opcode()),
                "duplicate opcode {:#04x}",
                m.opcode()
            );
        }
    }

    #[test]
    fn truncated_frames_ask_for_more() {
        let frame = Message::ServerStatus { users: 1, files: 2 }.to_frame();
        for cut in 0..frame.len() {
            match Message::from_frame(&frame[..cut]) {
                Err(DecodeError::Truncated { .. }) => {}
                other => panic!("cut {cut}: expected Truncated, got {other:?}"),
            }
        }
    }

    #[test]
    fn back_to_back_frames_report_consumed_length() {
        let a = Message::BrowseRequest.to_frame();
        let b = Message::GetServerList.to_frame();
        let mut buf = a.clone();
        buf.extend_from_slice(&b);
        let (m1, used) = Message::from_frame(&buf).unwrap();
        assert_eq!(m1, Message::BrowseRequest);
        let (m2, used2) = Message::from_frame(&buf[used..]).unwrap();
        assert_eq!(m2, Message::GetServerList);
        assert_eq!(used + used2, buf.len());
    }

    #[test]
    fn bad_marker_rejected() {
        let mut frame = Message::BrowseRequest.to_frame();
        frame[0] = 0x42;
        assert!(matches!(
            Message::from_frame(&frame),
            Err(DecodeError::BadProtocolMarker(0x42))
        ));
    }

    #[test]
    fn oversized_frame_rejected() {
        let mut w = Writer::new();
        w.u8(PROTO_EDONKEY);
        w.u32(MAX_FRAME_LEN + 1);
        w.u8(OP_BROWSE_REQUEST);
        assert!(matches!(
            Message::from_frame(&w.into_vec()),
            Err(DecodeError::FrameTooLarge(_))
        ));
    }

    #[test]
    fn unknown_opcode_rejected() {
        let mut w = Writer::new();
        w.u8(PROTO_EDONKEY);
        w.u32(1);
        w.u8(0xff);
        assert!(matches!(
            Message::from_frame(&w.into_vec()),
            Err(DecodeError::BadOpcode(0xff))
        ));
    }

    #[test]
    fn corrupt_payload_rejected_not_panicking() {
        // A Login frame whose tag list is cut off.
        let msg = Message::Login {
            uid: uid(1),
            nick: "x".into(),
            port: 1,
            tags: [Tag::special(SpecialTag::Port, TagValue::U32(4662))]
                .into_iter()
                .collect(),
        };
        let frame = msg.to_frame();
        // Shrink the announced length to chop the tags, keeping the header
        // consistent so we exercise payload decoding, not framing.
        let mut bad = frame.clone();
        let new_len = (frame.len() - 5 - 4) as u32; // drop the tag's u32 value
        bad[1..5].copy_from_slice(&new_len.to_le_bytes());
        bad.truncate(5 + new_len as usize);
        assert!(Message::from_frame(&bad).is_err());
    }
}
