//! File identifiers and part hashing, following the ed2k scheme.
//!
//! eDonkey splits every file into parts of [`PART_SIZE`] bytes (9 500 KB —
//! the "9.5 MB blocks" of the paper) and computes an MD4 digest per part.
//! The file identifier is then:
//!
//! * the single part digest, when the file fits in one part, or
//! * the MD4 digest of the concatenation of all part digests otherwise.
//!
//! Part digests ("hashset") are exchanged between clients on demand so a
//! downloader can verify each 9.5 MB part independently and share verified
//! parts before the download completes — the *partial sharing* the paper
//! highlights as an eDonkey feature.
//!
//! We follow the eMule convention for files whose size is an exact
//! multiple of [`PART_SIZE`]: such files get a trailing zero-length part
//! (whose digest is the MD4 of the empty string). This keeps identifiers
//! consistent across implementations that stream data of a priori unknown
//! length.

use crate::md4::{Digest, Md4};

/// Size of an eDonkey part: 9 500 KB.
pub const PART_SIZE: u64 = 9_728_000;

/// Globally unique identifier of a file's *content* (not its name).
///
/// Two files with identical bytes share the same `FileId` regardless of
/// their names — the property the eDonkey network uses to aggregate
/// sources, and the property the paper relies on when counting replicas.
pub type FileId = Digest;

/// The per-part MD4 digests of a file, plus the derived [`FileId`].
///
/// # Examples
///
/// ```
/// use edonkey_proto::hash::{PartHashes, PART_SIZE};
///
/// let small = PartHashes::of_bytes(b"hello");
/// assert_eq!(small.parts().len(), 1);
/// // Single-part files use the part hash itself as the file id.
/// assert_eq!(small.file_id(), small.parts()[0]);
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PartHashes {
    parts: Vec<Digest>,
    file_id: FileId,
    size: u64,
}

impl PartHashes {
    /// Hashes an in-memory byte slice.
    pub fn of_bytes(data: &[u8]) -> Self {
        let mut hasher = PartHasher::new();
        hasher.update(data);
        hasher.finalize()
    }

    /// The per-part digests, in file order.
    pub fn parts(&self) -> &[Digest] {
        &self.parts
    }

    /// The derived file identifier.
    pub fn file_id(&self) -> FileId {
        self.file_id
    }

    /// Total file size in bytes.
    pub fn size(&self) -> u64 {
        self.size
    }

    /// Number of parts, counting the trailing empty part of exact
    /// multiples.
    pub fn part_count(&self) -> usize {
        self.parts.len()
    }

    /// Verifies a single part's bytes against its recorded digest.
    ///
    /// Returns `false` for out-of-range indices. This is the check a
    /// downloader runs before sharing a freshly fetched part.
    ///
    /// # Examples
    ///
    /// ```
    /// use edonkey_proto::hash::PartHashes;
    /// let h = PartHashes::of_bytes(b"data");
    /// assert!(h.verify_part(0, b"data"));
    /// assert!(!h.verify_part(0, b"tampered"));
    /// assert!(!h.verify_part(7, b"data"));
    /// ```
    pub fn verify_part(&self, index: usize, part_bytes: &[u8]) -> bool {
        match self.parts.get(index) {
            Some(expect) => Md4::digest(part_bytes) == *expect,
            None => false,
        }
    }

    /// Assembles a `PartHashes` from already-known components — for
    /// simulations that track hashsets without materializing file bytes.
    ///
    /// # Panics
    ///
    /// Panics if `file_id` does not match [`Self::file_id_of_parts`] of
    /// `parts` — an inconsistent hashset must never circulate.
    pub fn from_raw_parts(parts: Vec<Digest>, file_id: FileId, size: u64) -> Self {
        assert_eq!(
            Self::file_id_of_parts(&parts),
            Some(file_id),
            "file id must derive from the part digests"
        );
        PartHashes {
            parts,
            file_id,
            size,
        }
    }

    /// Recomputes the file id from a raw list of part digests, as a client
    /// must do when it receives a hashset from an untrusted peer.
    ///
    /// Returns `None` for an empty list (there is no such file).
    pub fn file_id_of_parts(parts: &[Digest]) -> Option<FileId> {
        match parts {
            [] => None,
            [only] => Some(*only),
            many => {
                let mut hasher = Md4::new();
                for p in many {
                    hasher.update(p.as_bytes());
                }
                Some(hasher.finalize())
            }
        }
    }
}

/// Incremental part hasher for streaming data of unknown length.
///
/// # Examples
///
/// ```
/// use edonkey_proto::hash::{PartHasher, PartHashes};
///
/// let mut h = PartHasher::new();
/// h.update(b"he");
/// h.update(b"llo");
/// assert_eq!(h.finalize(), PartHashes::of_bytes(b"hello"));
/// ```
pub struct PartHasher {
    parts: Vec<Digest>,
    current: Md4,
    current_len: u64,
    total: u64,
}

impl Default for PartHasher {
    fn default() -> Self {
        Self::new()
    }
}

impl PartHasher {
    /// Creates a hasher with no data fed yet.
    pub fn new() -> Self {
        PartHasher {
            parts: Vec::new(),
            current: Md4::new(),
            current_len: 0,
            total: 0,
        }
    }

    /// Feeds file bytes, rolling over part boundaries as needed.
    pub fn update(&mut self, mut data: &[u8]) {
        while !data.is_empty() {
            let room = (PART_SIZE - self.current_len) as usize;
            let take = data.len().min(room);
            self.current.update(&data[..take]);
            self.current_len += take as u64;
            self.total += take as u64;
            data = &data[take..];
            if self.current_len == PART_SIZE {
                let done = std::mem::take(&mut self.current);
                self.parts.push(done.finalize());
                self.current_len = 0;
            }
        }
    }

    /// Closes the final part and derives the file id.
    ///
    /// A file of exactly `k * PART_SIZE` bytes ends with an empty final
    /// part (eMule convention); the empty *file* is likewise represented
    /// by the single digest of the empty string.
    pub fn finalize(mut self) -> PartHashes {
        // The trailing (possibly empty) part always closes here: either the
        // file is empty, or the last `update` left `current_len < PART_SIZE`,
        // or it hit the boundary exactly and this empty hasher is the
        // convention's zero-length final part.
        self.parts.push(self.current.finalize());
        let file_id = PartHashes::file_id_of_parts(&self.parts).expect("at least one part exists");
        PartHashes {
            parts: self.parts,
            file_id,
            size: self.total,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_file() {
        let h = PartHashes::of_bytes(b"");
        assert_eq!(h.part_count(), 1);
        assert_eq!(h.size(), 0);
        assert_eq!(h.file_id().to_hex(), "31d6cfe0d16ae931b73c59d7e0c089c0");
    }

    #[test]
    fn single_part_uses_part_hash() {
        let h = PartHashes::of_bytes(b"some small file");
        assert_eq!(h.part_count(), 1);
        assert_eq!(h.file_id(), h.parts()[0]);
        assert_eq!(h.file_id(), Md4::digest(b"some small file"));
    }

    #[test]
    fn multi_part_id_is_hash_of_hashes() {
        // 2.5 parts worth of data. Keep it fast with a repeating pattern.
        let data = vec![0x5au8; (PART_SIZE * 2 + 1234) as usize];
        let h = PartHashes::of_bytes(&data);
        assert_eq!(h.part_count(), 3);
        assert_eq!(h.size(), data.len() as u64);
        let mut cat = Md4::new();
        for p in h.parts() {
            cat.update(p.as_bytes());
        }
        assert_eq!(h.file_id(), cat.finalize());
        // And the helper agrees.
        assert_eq!(PartHashes::file_id_of_parts(h.parts()), Some(h.file_id()));
    }

    #[test]
    fn exact_multiple_gets_empty_tail_part() {
        let data = vec![1u8; PART_SIZE as usize];
        let h = PartHashes::of_bytes(&data);
        assert_eq!(h.part_count(), 2);
        assert_eq!(h.parts()[1], Md4::digest(b""));
        assert!(h.verify_part(1, b""));
    }

    #[test]
    fn streaming_equals_oneshot_across_boundaries() {
        let data = vec![0xc3u8; (PART_SIZE + 100) as usize];
        let oneshot = PartHashes::of_bytes(&data);
        let mut h = PartHasher::new();
        // Oddly sized chunks that straddle the part boundary.
        for chunk in data.chunks(1_000_003) {
            h.update(chunk);
        }
        assert_eq!(h.finalize(), oneshot);
    }

    #[test]
    fn verify_part_detects_corruption() {
        let data = vec![9u8; (PART_SIZE + 5) as usize];
        let h = PartHashes::of_bytes(&data);
        assert!(h.verify_part(0, &data[..PART_SIZE as usize]));
        assert!(h.verify_part(1, &data[PART_SIZE as usize..]));
        let mut bad = data[..PART_SIZE as usize].to_vec();
        bad[42] ^= 0xff;
        assert!(!h.verify_part(0, &bad));
    }

    #[test]
    fn file_id_of_parts_empty_is_none() {
        assert_eq!(PartHashes::file_id_of_parts(&[]), None);
    }
}
