//! Order-preserving parallel map over slices.
//!
//! The workspace's sweeps and derivations are CPU-bound and
//! embarrassingly parallel; this module provides the one fan-out
//! primitive they all share. It lives in the trace crate (the bottom of
//! the dependency stack) so the derivation pipeline can shard work per
//! client without pulling in the simulation crates; `edonkey-semsearch`
//! re-exports it for its experiment harnesses.

/// Maps `items` in parallel with scoped threads, preserving order.
///
/// Uses `available_parallelism` threads; see [`parallel_map_init`] for
/// the scheduling contract.
pub fn parallel_map<T: Sync, R: Send>(items: &[T], f: impl Fn(&T) -> R + Sync) -> Vec<R> {
    parallel_map_init(items, || (), |(), item| f(item))
}

/// [`parallel_map`] with per-worker state: `init` runs once on each
/// worker thread and the resulting value is threaded through every call
/// that worker makes, so scratch allocations (e.g. simulation buffers)
/// are reused across sweep points instead of rebuilt per item.
///
/// Threads are spawned once and pull work off a shared atomic cursor in
/// small chunks; results carry their item index, so output order always
/// matches input order regardless of scheduling. A panic in `f` is
/// re-raised on the caller's thread (after remaining workers drain)
/// rather than poisoning a lock or deadlocking.
pub fn parallel_map_init<T: Sync, S, R: Send>(
    items: &[T],
    init: impl Fn() -> S + Sync,
    f: impl Fn(&mut S, &T) -> R + Sync,
) -> Vec<R> {
    let threads = std::thread::available_parallelism().map_or(4, |n| n.get());
    parallel_map_init_threads(items, threads, init, f)
}

/// [`parallel_map_init`] with an explicit worker count — the hook the
/// determinism tests use to prove results are bit-identical for any
/// thread count.
pub fn parallel_map_init_threads<T: Sync, S, R: Send>(
    items: &[T],
    threads: usize,
    init: impl Fn() -> S + Sync,
    f: impl Fn(&mut S, &T) -> R + Sync,
) -> Vec<R> {
    if items.is_empty() {
        return Vec::new();
    }
    let threads = threads.clamp(1, items.len());
    // Chunked claiming keeps cursor contention negligible for large item
    // counts while still load-balancing uneven per-item cost.
    let chunk = (items.len() / (threads * 8)).max(1);
    let next = std::sync::atomic::AtomicUsize::new(0);
    let partials: Vec<Vec<(usize, R)>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                scope.spawn(|| {
                    let mut state = init();
                    let mut out = Vec::new();
                    loop {
                        let start = next.fetch_add(chunk, std::sync::atomic::Ordering::Relaxed);
                        if start >= items.len() {
                            break;
                        }
                        let end = (start + chunk).min(items.len());
                        for (i, item) in items[start..end].iter().enumerate() {
                            out.push((start + i, f(&mut state, item)));
                        }
                    }
                    out
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| match h.join() {
                Ok(v) => v,
                // Re-raise the worker's panic payload; the enclosing scope
                // still joins the remaining workers on unwind.
                Err(payload) => std::panic::resume_unwind(payload),
            })
            .collect()
    });
    let mut slots: Vec<Option<R>> = (0..items.len()).map(|_| None).collect();
    for (i, r) in partials.into_iter().flatten() {
        slots[i] = Some(r);
    }
    slots
        .into_iter()
        .map(|r| r.expect("cursor covers every index"))
        .collect()
}

/// [`parallel_map_init_threads`] that claims items in *descending
/// weight order* instead of input order.
///
/// The sweep schedulers feed this wildly skewed tasks (one list-size-200
/// cell costs more than all the small cells together); starting the
/// heavy tasks first keeps the tail of the schedule short, while the
/// output still comes back in input order. `weights[i]` is an abstract
/// cost estimate for `items[i]` — only the ordering matters, and since
/// every item is computed independently the result is bit-identical for
/// any weight assignment and any thread count.
///
/// # Panics
///
/// Panics if `weights.len() != items.len()`.
pub fn parallel_map_weighted<T: Sync, S, R: Send>(
    items: &[T],
    weights: &[u64],
    threads: usize,
    init: impl Fn() -> S + Sync,
    f: impl Fn(&mut S, &T) -> R + Sync,
) -> Vec<R> {
    assert_eq!(
        items.len(),
        weights.len(),
        "one weight per item is required"
    );
    if items.is_empty() {
        return Vec::new();
    }
    let threads = threads.clamp(1, items.len());
    // Indirection: workers claim positions in `order`, which sorts item
    // indices heaviest-first (stable, so equal weights keep input order).
    let mut order: Vec<u32> = (0..items.len() as u32).collect();
    order.sort_by_key(|&i| std::cmp::Reverse(weights[i as usize]));
    // Tasks are few and heavy, so claim one at a time: perfect stealing
    // beats chunked cursor amortization here.
    let next = std::sync::atomic::AtomicUsize::new(0);
    let partials: Vec<Vec<(usize, R)>> = std::thread::scope(|scope| {
        let order = &order;
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                scope.spawn(|| {
                    let mut state = init();
                    let mut out = Vec::new();
                    loop {
                        let pos = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                        if pos >= order.len() {
                            break;
                        }
                        let i = order[pos] as usize;
                        out.push((i, f(&mut state, &items[i])));
                    }
                    out
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| match h.join() {
                Ok(v) => v,
                Err(payload) => std::panic::resume_unwind(payload),
            })
            .collect()
    });
    let mut slots: Vec<Option<R>> = (0..items.len()).map(|_| None).collect();
    for (i, r) in partials.into_iter().flatten() {
        slots[i] = Some(r);
    }
    slots
        .into_iter()
        .map(|r| r.expect("cursor covers every index"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_order() {
        let items: Vec<usize> = (0..100).collect();
        let out = parallel_map(&items, |&x| x * 2);
        assert_eq!(out, (0..100).map(|x| x * 2).collect::<Vec<_>>());
        assert!(parallel_map(&[] as &[usize], |&x| x).is_empty());
    }

    #[test]
    fn explicit_thread_counts_agree() {
        let items: Vec<usize> = (0..257).collect();
        let expect: Vec<usize> = items.iter().map(|&x| x * x).collect();
        for threads in [1, 2, 3, 8, 64] {
            let out = parallel_map_init_threads(&items, threads, || (), |(), &x| x * x);
            assert_eq!(out, expect, "threads = {threads}");
        }
    }

    #[test]
    fn init_state_is_per_worker() {
        let items: Vec<usize> = (0..64).collect();
        let out = parallel_map_init(&items, Vec::new, |scratch: &mut Vec<usize>, &x| {
            scratch.push(x);
            (x, scratch.len())
        });
        assert_eq!(out.len(), 64);
        for (i, (x, seen)) in out.iter().enumerate() {
            assert_eq!(*x, i);
            assert!(*seen >= 1);
        }
    }

    #[test]
    fn weighted_map_matches_plain_map_for_any_thread_count() {
        let items: Vec<usize> = (0..97).collect();
        let expect: Vec<usize> = items.iter().map(|&x| x * 3).collect();
        // Skewed, uniform and zero weights must all be order-neutral.
        let skewed: Vec<u64> = items.iter().map(|&x| (x as u64 % 7) * 1000).collect();
        for weights in [skewed, vec![1; 97], vec![0; 97]] {
            for threads in [1, 2, 5, 16] {
                let out = parallel_map_weighted(&items, &weights, threads, || (), |(), &x| x * 3);
                assert_eq!(out, expect, "threads = {threads}");
            }
        }
        assert!(parallel_map_weighted(&[] as &[usize], &[], 4, || (), |(), &x| x).is_empty());
    }

    #[test]
    #[should_panic(expected = "one weight per item")]
    fn weighted_map_rejects_length_mismatch() {
        let _ = parallel_map_weighted(&[1usize, 2], &[1], 2, || (), |(), &x| x);
    }

    #[test]
    fn propagates_worker_panics() {
        let items: Vec<usize> = (0..64).collect();
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            parallel_map(&items, |&x| {
                if x == 13 {
                    panic!("boom at {x}");
                }
                x
            })
        }));
        assert!(result.is_err(), "worker panic must propagate to the caller");
    }
}
