//! The trace data model: peers, files, and daily cache snapshots.
//!
//! A *trace* is what the paper's crawler produces: for each day of the
//! measurement period, the set of clients that could be browsed and, for
//! each, the list of files in its shared cache. Files and peers are
//! interned to dense `u32` indices ([`FileRef`], [`PeerId`]) so that an
//! 11-million-file trace stays compact; the intern tables keep the real
//! identities (ed2k hashes, user hashes, addresses).

use std::collections::HashMap;
use std::fmt;

use edonkey_proto::md4::Digest;
use edonkey_proto::query::FileKind;
/// Dense index of a peer within a trace.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PeerId(pub u32);

impl PeerId {
    /// The peer's position in [`Trace::peers`].
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for PeerId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0)
    }
}

/// Dense index of a file within a trace.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FileRef(pub u32);

impl FileRef {
    /// The file's position in [`Trace::files`].
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for FileRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "f{}", self.0)
    }
}

/// An ISO-3166-ish two-letter country code.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct CountryCode(pub [u8; 2]);

impl CountryCode {
    /// Builds a code from a two-ASCII-letter string, uppercased.
    ///
    /// # Panics
    ///
    /// Panics if `s` is not exactly two ASCII letters — country codes are
    /// compile-time constants in this codebase.
    pub fn new(s: &str) -> Self {
        let bytes = s.as_bytes();
        assert!(
            bytes.len() == 2 && bytes.iter().all(u8::is_ascii_alphabetic),
            "country code must be two ASCII letters, got {s:?}"
        );
        CountryCode([bytes[0].to_ascii_uppercase(), bytes[1].to_ascii_uppercase()])
    }

    /// The code as a string slice.
    pub fn as_str(&self) -> &str {
        // The constructor guarantees ASCII.
        std::str::from_utf8(&self.0).expect("country codes are ASCII")
    }
}

impl fmt::Display for CountryCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

impl fmt::Debug for CountryCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Metadata of one distinct file observed in a trace.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FileInfo {
    /// The ed2k content hash.
    pub id: Digest,
    /// Size in bytes.
    pub size: u64,
    /// Media kind.
    pub kind: FileKind,
}

/// Metadata of one distinct client observed in a trace.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PeerInfo {
    /// The user hash (changes when the user reinstalls the client).
    pub uid: Digest,
    /// IPv4 address (changes under DHCP).
    pub ip: u32,
    /// Country the address maps to.
    pub country: CountryCode,
    /// Autonomous system the address maps to.
    pub asn: u32,
}

/// The shared-file caches observed on one day.
///
/// Only peers that were successfully browsed that day appear; entries are
/// sorted by [`PeerId`] and each cache is a sorted, deduplicated list of
/// [`FileRef`]s.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DaySnapshot {
    /// Absolute day number (the paper plots days ~340–400).
    pub day: u32,
    /// `(peer, sorted cache)` pairs, sorted by peer.
    pub caches: Vec<(PeerId, Vec<FileRef>)>,
}

impl DaySnapshot {
    /// Creates an empty snapshot for `day`.
    pub fn new(day: u32) -> Self {
        DaySnapshot {
            day,
            caches: Vec::new(),
        }
    }

    /// Adds a peer's cache, normalizing it to sorted/deduplicated form.
    ///
    /// # Panics
    ///
    /// Panics if the peer was already recorded for this day.
    pub fn insert(&mut self, peer: PeerId, mut cache: Vec<FileRef>) {
        cache.sort_unstable();
        cache.dedup();
        match self.caches.binary_search_by_key(&peer, |(p, _)| *p) {
            Ok(_) => panic!("peer {peer} recorded twice on day {}", self.day),
            Err(pos) => self.caches.insert(pos, (peer, cache)),
        }
    }

    /// Looks up a peer's cache for this day.
    pub fn cache_of(&self, peer: PeerId) -> Option<&[FileRef]> {
        self.caches
            .binary_search_by_key(&peer, |(p, _)| *p)
            .ok()
            .map(|i| self.caches[i].1.as_slice())
    }

    /// Number of peers observed (including empty caches).
    pub fn peer_count(&self) -> usize {
        self.caches.len()
    }

    /// Number of peers observed with at least one shared file.
    pub fn non_empty_count(&self) -> usize {
        self.caches.iter().filter(|(_, c)| !c.is_empty()).count()
    }

    /// Total cache entries (file replicas) observed this day.
    pub fn replica_count(&self) -> usize {
        self.caches.iter().map(|(_, c)| c.len()).sum()
    }

    /// Number of *distinct* files observed this day.
    pub fn distinct_files(&self) -> usize {
        let mut seen = std::collections::HashSet::new();
        for (_, cache) in &self.caches {
            seen.extend(cache.iter().copied());
        }
        seen.len()
    }
}

/// A complete crawl trace: intern tables plus daily snapshots.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Trace {
    /// Distinct files, indexed by [`FileRef`].
    pub files: Vec<FileInfo>,
    /// Distinct peers, indexed by [`PeerId`].
    pub peers: Vec<PeerInfo>,
    /// Daily snapshots, sorted by day (not necessarily contiguous).
    pub days: Vec<DaySnapshot>,
}

impl Trace {
    /// Creates an empty trace.
    pub fn new() -> Self {
        Trace {
            files: Vec::new(),
            peers: Vec::new(),
            days: Vec::new(),
        }
    }

    /// First observed day, if any.
    pub fn first_day(&self) -> Option<u32> {
        self.days.first().map(|d| d.day)
    }

    /// Last observed day, if any.
    pub fn last_day(&self) -> Option<u32> {
        self.days.last().map(|d| d.day)
    }

    /// Duration in days, inclusive of both endpoints.
    pub fn duration_days(&self) -> u32 {
        match (self.first_day(), self.last_day()) {
            (Some(a), Some(b)) => b - a + 1,
            _ => 0,
        }
    }

    /// The snapshot for an absolute day number, if the crawler ran then.
    pub fn snapshot(&self, day: u32) -> Option<&DaySnapshot> {
        self.days
            .binary_search_by_key(&day, |s| s.day)
            .ok()
            .map(|i| &self.days[i])
    }

    /// Union of every cache each peer was ever observed with — the
    /// "static" view used by the paper's Section 5 simulations and the
    /// filtered-trace CDFs.
    ///
    /// The result has one (possibly empty) sorted cache per peer.
    pub fn static_caches(&self) -> Vec<Vec<FileRef>> {
        let mut caches: Vec<Vec<FileRef>> = vec![Vec::new(); self.peers.len()];
        for day in &self.days {
            for (peer, cache) in &day.caches {
                caches[peer.index()].extend(cache.iter().copied());
            }
        }
        for cache in &mut caches {
            cache.sort_unstable();
            cache.dedup();
        }
        caches
    }

    /// Peers that never shared a file: the free-riders of Table 1.
    pub fn free_rider_count(&self) -> usize {
        self.static_caches().iter().filter(|c| c.is_empty()).count()
    }

    /// Number of successful `(peer, day)` snapshots, the "successful
    /// snapshots" row of Table 1.
    pub fn snapshot_count(&self) -> usize {
        self.days.iter().map(|d| d.peer_count()).sum()
    }

    /// Total bytes across distinct files — Table 1's "space used by
    /// distinct files".
    pub fn distinct_bytes(&self) -> u64 {
        self.files.iter().map(|f| f.size).sum()
    }

    /// Days on which each peer was observed, indexed by peer.
    pub fn observation_days(&self) -> Vec<Vec<u32>> {
        let mut result = vec![Vec::new(); self.peers.len()];
        for day in &self.days {
            for (peer, _) in &day.caches {
                result[peer.index()].push(day.day);
            }
        }
        result
    }

    /// Validates internal invariants; used by tests and after I/O.
    ///
    /// Checks: days sorted strictly; caches sorted by peer; cache entries
    /// sorted, deduplicated and in-range; peer ids in range.
    pub fn check_invariants(&self) -> Result<(), String> {
        for w in self.days.windows(2) {
            if w[0].day >= w[1].day {
                return Err(format!(
                    "days not strictly sorted: {} {}",
                    w[0].day, w[1].day
                ));
            }
        }
        for snap in &self.days {
            for w in snap.caches.windows(2) {
                if w[0].0 >= w[1].0 {
                    return Err(format!("day {}: caches not sorted by peer", snap.day));
                }
            }
            for (peer, cache) in &snap.caches {
                if peer.index() >= self.peers.len() {
                    return Err(format!("day {}: peer {peer} out of range", snap.day));
                }
                for w in cache.windows(2) {
                    if w[0] >= w[1] {
                        return Err(format!(
                            "day {}: cache of {peer} not sorted/deduped",
                            snap.day
                        ));
                    }
                }
                if let Some(f) = cache.iter().find(|f| f.index() >= self.files.len()) {
                    return Err(format!("day {}: file {f} out of range", snap.day));
                }
            }
        }
        Ok(())
    }
}

impl Default for Trace {
    fn default() -> Self {
        Self::new()
    }
}

/// Incremental trace builder that interns file and peer identities.
///
/// The crawler (and the synthetic generator) feed observations through
/// this builder; it assigns dense ids in first-seen order.
///
/// # Examples
///
/// ```
/// use edonkey_trace::model::{TraceBuilder, FileInfo, PeerInfo, CountryCode};
/// use edonkey_proto::md4::Md4;
/// use edonkey_proto::query::FileKind;
///
/// let mut b = TraceBuilder::new();
/// let peer = b.intern_peer(PeerInfo {
///     uid: Md4::digest(b"user-1"),
///     ip: 0x0a000001,
///     country: CountryCode::new("fr"),
///     asn: 3215,
/// });
/// let file = b.intern_file(FileInfo {
///     id: Md4::digest(b"file-1"),
///     size: 4_000_000,
///     kind: FileKind::Audio,
/// });
/// b.observe(350, peer, vec![file]);
/// let trace = b.finish();
/// assert_eq!(trace.snapshot(350).unwrap().cache_of(peer).unwrap(), &[file]);
/// ```
pub struct TraceBuilder {
    files: Vec<FileInfo>,
    file_index: HashMap<Digest, FileRef>,
    peers: Vec<PeerInfo>,
    peer_index: HashMap<Digest, PeerId>,
    days: HashMap<u32, DaySnapshot>,
}

impl TraceBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        TraceBuilder {
            files: Vec::new(),
            file_index: HashMap::new(),
            peers: Vec::new(),
            peer_index: HashMap::new(),
            days: HashMap::new(),
        }
    }

    /// Interns a file by its ed2k hash, returning its dense ref.
    ///
    /// The first observation of a hash fixes its metadata; later calls
    /// with the same hash return the existing ref without comparing
    /// metadata (real crawls see conflicting metadata for one hash).
    pub fn intern_file(&mut self, info: FileInfo) -> FileRef {
        if let Some(&fref) = self.file_index.get(&info.id) {
            return fref;
        }
        let fref = FileRef(self.files.len() as u32);
        self.file_index.insert(info.id, fref);
        self.files.push(info);
        fref
    }

    /// Interns a peer by user hash, returning its dense id.
    ///
    /// Metadata (IP!) is taken from the *first* observation; the
    /// filtering pipeline handles duplicate IPs and uids.
    pub fn intern_peer(&mut self, info: PeerInfo) -> PeerId {
        if let Some(&pid) = self.peer_index.get(&info.uid) {
            return pid;
        }
        let pid = PeerId(self.peers.len() as u32);
        self.peer_index.insert(info.uid, pid);
        self.peers.push(info);
        pid
    }

    /// Looks up an already-interned peer.
    pub fn peer_by_uid(&self, uid: &Digest) -> Option<PeerId> {
        self.peer_index.get(uid).copied()
    }

    /// Records a successful browse of `peer` on `day`.
    ///
    /// # Panics
    ///
    /// Panics if the same peer is recorded twice on one day (the crawler
    /// de-duplicates per day before recording).
    pub fn observe(&mut self, day: u32, peer: PeerId, cache: Vec<FileRef>) {
        self.days
            .entry(day)
            .or_insert_with(|| DaySnapshot::new(day))
            .insert(peer, cache);
    }

    /// Whether a peer was already recorded on a given day.
    pub fn observed_on(&self, day: u32, peer: PeerId) -> bool {
        self.days
            .get(&day)
            .is_some_and(|s| s.cache_of(peer).is_some())
    }

    /// Removes and returns a completed day's snapshot, keeping the
    /// intern tables.
    ///
    /// This is the streaming hook: a producer that finishes its days in
    /// order (the crawler) can hand each one to a
    /// [`TraceWriter`](crate::io::bin::TraceWriter) as it completes,
    /// instead of accumulating the whole trace in memory.
    pub fn take_day(&mut self, day: u32) -> Option<DaySnapshot> {
        self.days.remove(&day)
    }

    /// The file intern table built so far.
    pub fn files(&self) -> &[FileInfo] {
        &self.files
    }

    /// The peer intern table built so far.
    pub fn peers(&self) -> &[PeerInfo] {
        &self.peers
    }

    /// Finalizes the trace, sorting snapshots by day.
    pub fn finish(self) -> Trace {
        let mut days: Vec<DaySnapshot> = self.days.into_values().collect();
        days.sort_by_key(|d| d.day);
        let trace = Trace {
            files: self.files,
            peers: self.peers,
            days,
        };
        debug_assert_eq!(trace.check_invariants(), Ok(()));
        trace
    }
}

impl Default for TraceBuilder {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use edonkey_proto::md4::Md4;

    fn file(n: u64) -> FileInfo {
        FileInfo {
            id: Md4::digest(&n.to_le_bytes()),
            size: 1000 * n,
            kind: FileKind::Audio,
        }
    }

    fn peer(n: u64) -> PeerInfo {
        PeerInfo {
            uid: Md4::digest(format!("peer{n}").as_bytes()),
            ip: n as u32,
            country: CountryCode::new("FR"),
            asn: 3215,
        }
    }

    #[test]
    fn country_code_normalizes_case() {
        assert_eq!(CountryCode::new("fr"), CountryCode::new("FR"));
        assert_eq!(CountryCode::new("de").as_str(), "DE");
        assert_eq!(format!("{}", CountryCode::new("es")), "ES");
    }

    #[test]
    #[should_panic(expected = "two ASCII letters")]
    fn country_code_rejects_junk() {
        let _ = CountryCode::new("F1");
    }

    #[test]
    fn builder_interns_by_identity() {
        let mut b = TraceBuilder::new();
        let f1 = b.intern_file(file(1));
        let f1_again = b.intern_file(file(1));
        let f2 = b.intern_file(file(2));
        assert_eq!(f1, f1_again);
        assert_ne!(f1, f2);
        let p1 = b.intern_peer(peer(1));
        let p1_again = b.intern_peer(peer(1));
        assert_eq!(p1, p1_again);
        assert_eq!(b.peer_by_uid(&peer(1).uid), Some(p1));
        assert_eq!(b.peer_by_uid(&peer(9).uid), None);
    }

    #[test]
    fn snapshot_normalizes_caches() {
        let mut snap = DaySnapshot::new(350);
        let (a, b, c) = (FileRef(3), FileRef(1), FileRef(3));
        snap.insert(PeerId(0), vec![a, b, c]);
        assert_eq!(snap.cache_of(PeerId(0)).unwrap(), &[FileRef(1), FileRef(3)]);
        assert_eq!(snap.cache_of(PeerId(1)), None);
    }

    #[test]
    #[should_panic(expected = "recorded twice")]
    fn double_observation_panics() {
        let mut snap = DaySnapshot::new(350);
        snap.insert(PeerId(0), vec![]);
        snap.insert(PeerId(0), vec![]);
    }

    #[test]
    fn static_caches_take_union() {
        let mut b = TraceBuilder::new();
        let p = b.intern_peer(peer(1));
        let q = b.intern_peer(peer(2));
        let f1 = b.intern_file(file(1));
        let f2 = b.intern_file(file(2));
        b.observe(350, p, vec![f1]);
        b.observe(351, p, vec![f2]);
        b.observe(351, q, vec![]);
        let trace = b.finish();
        let caches = trace.static_caches();
        assert_eq!(caches[p.index()], vec![f1, f2]);
        assert!(caches[q.index()].is_empty());
        assert_eq!(trace.free_rider_count(), 1);
        assert_eq!(trace.snapshot_count(), 3);
    }

    #[test]
    fn day_counters() {
        let mut b = TraceBuilder::new();
        let p = b.intern_peer(peer(1));
        let q = b.intern_peer(peer(2));
        let f1 = b.intern_file(file(1));
        let f2 = b.intern_file(file(2));
        b.observe(350, p, vec![f1, f2]);
        b.observe(350, q, vec![f2]);
        let trace = b.finish();
        let snap = trace.snapshot(350).unwrap();
        assert_eq!(snap.peer_count(), 2);
        assert_eq!(snap.non_empty_count(), 2);
        assert_eq!(snap.replica_count(), 3);
        assert_eq!(snap.distinct_files(), 2);
        assert_eq!(trace.duration_days(), 1);
        assert_eq!(trace.distinct_bytes(), 3000);
    }

    #[test]
    fn invariants_catch_corruption() {
        let mut b = TraceBuilder::new();
        let p = b.intern_peer(peer(1));
        let f = b.intern_file(file(1));
        b.observe(350, p, vec![f]);
        let mut trace = b.finish();
        assert_eq!(trace.check_invariants(), Ok(()));
        trace.days[0].caches[0].1.push(FileRef(99));
        assert!(trace.check_invariants().is_err());
    }

    #[test]
    fn take_day_drains_snapshots_but_keeps_tables() {
        let mut b = TraceBuilder::new();
        let p = b.intern_peer(peer(1));
        let f = b.intern_file(file(1));
        b.observe(350, p, vec![f]);
        b.observe(351, p, vec![]);
        let snap = b.take_day(350).expect("day 350 exists");
        assert_eq!(snap.cache_of(p).unwrap(), &[f]);
        assert!(b.take_day(350).is_none(), "take_day removes the snapshot");
        assert_eq!(b.files().len(), 1);
        assert_eq!(b.peers().len(), 1);
        // The remaining day still finishes into a valid trace.
        let trace = b.finish();
        assert_eq!(trace.days.len(), 1);
        assert_eq!(trace.days[0].day, 351);
    }

    #[test]
    fn observation_days_per_peer() {
        let mut b = TraceBuilder::new();
        let p = b.intern_peer(peer(1));
        let q = b.intern_peer(peer(2));
        b.observe(350, p, vec![]);
        b.observe(352, p, vec![]);
        b.observe(351, q, vec![]);
        let trace = b.finish();
        let days = trace.observation_days();
        assert_eq!(days[p.index()], vec![350, 352]);
        assert_eq!(days[q.index()], vec![351]);
    }
}
