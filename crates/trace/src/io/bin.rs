//! The versioned binary columnar trace format (`.edt`), plus streaming
//! writer/reader APIs.
//!
//! Text codecs (`io::to_json`, `io::to_compact`) parse whole traces and
//! dominate wall-clock at paper scale. This format stores the same
//! `Trace` columnar and delta-compressed, aligned with the
//! [`CacheArena`](crate::compact::CacheArena) CSR layout: a day section
//! is cache *lengths* plus one concatenated run of sorted, delta+varint
//! encoded entries — exactly the offsets/files split of the arena.
//!
//! # Layout (format version 1)
//!
//! All integers little-endian; `varint` is LEB128 (`u64`, ≤ 10 bytes).
//!
//! ```text
//! header   magic[8] = 89 45 44 4B 54 52 43 0A  ("\x89EDKTRC\n")
//!          version  u8  = 1
//!          n_files  u32
//!          n_peers  u32
//!          table_offset u64     absolute offset of the FILES section
//!          checksum u64         FNV-1a64 over the 25 bytes above
//! section  tag u8 | payload_len u64 | payload | checksum u64 (FNV-1a64)
//! ```
//!
//! Physical section order is `DAY* FILES PEERS END`: day sections are
//! streamed first so a producer (e.g. the crawler) can emit snapshots
//! while its intern tables are still growing; `finish` writes the
//! tables and back-patches `table_offset` in the header. Payloads:
//!
//! * `FILES` (tag 1, columnar): `n_files` × id `[u8; 16]`, then
//!   `n_files` × size varint, then `n_files` × kind `u8`.
//! * `PEERS` (tag 2, columnar): uids `[u8; 16]`, ips `u32`, country
//!   codes `[u8; 2]`, asns varint.
//! * `DAY` (tag 3): `day u32 | n_caches u32 | peer ids | cache lengths
//!   (varint each) | entries`. Peer ids are strictly increasing: first
//!   absolute (varint), then gaps (varint, ≥ 1). Each cache's entries
//!   are sorted the same way, restarting per cache.
//! * `END` (tag 0xEE): `n_days u32`. Guards against truncation.
//!
//! # Versioning rules
//!
//! The version byte names the *whole* layout. Readers reject any other
//! version outright (no silent best-effort decode); any change to
//! section payloads, framing, or checksums must bump it. The golden
//! fixture test (`tests/format_compat.rs`) pins version 1 byte-for-byte.
//!
//! # Robustness
//!
//! [`TraceReader`] never panics and never trusts a declared count for an
//! allocation: every section length is bounded by the physical file size
//! before any buffer is sized, and element counts are re-checked against
//! the bytes actually present. Corrupt input returns
//! [`TraceIoError::Bin`] (see `tests/codec_corruption.rs`).

use std::fs::File;
use std::io::{BufReader, BufWriter, Cursor, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

use edonkey_proto::md4::Digest;
use edonkey_proto::query::FileKind;

use super::TraceIoError;
use crate::compact::DayArena;
use crate::model::{CountryCode, DaySnapshot, FileInfo, FileRef, PeerInfo, Trace};

/// The 8-byte file magic. The `0x89` lead byte and embedded newline make
/// accidental text-format collisions impossible, like PNG's magic.
pub const MAGIC: [u8; 8] = *b"\x89EDKTRC\n";

/// The format version this build writes and the only one it reads.
pub const FORMAT_VERSION: u8 = 1;

/// Header size: magic + version + n_files + n_peers + table_offset + checksum.
pub const HEADER_LEN: u64 = 8 + 1 + 4 + 4 + 8 + 8;

const TAG_FILES: u8 = 1;
const TAG_PEERS: u8 = 2;
const TAG_DAY: u8 = 3;
const TAG_END: u8 = 0xEE;

/// Section framing overhead: tag byte + payload length + payload checksum.
const SECTION_OVERHEAD: u64 = 1 + 8 + 8;

/// FNV-1a64 folded over 8-byte little-endian lanes (tail bytes folded
/// byte-wise, then the length). Laning shortens the multiply dependency
/// chain ~8× versus byte-serial FNV — the checksum pass over a
/// repro-scale file drops from ~20 ms to ~3 ms — while keeping the
/// detection argument: every fold step (xor, then multiply by an odd
/// constant) is a bijection on the running state, so two equal-length
/// inputs that differ anywhere evolve through states that can never
/// reconverge. Any single-byte corruption is therefore detected
/// deterministically, not probabilistically.
fn fnv1a64(bytes: &[u8]) -> u64 {
    const PRIME: u64 = 0x100000001b3;
    let mut h: u64 = 0xcbf29ce484222325;
    let mut lanes = bytes.chunks_exact(8);
    for lane in &mut lanes {
        h ^= u64::from_le_bytes(lane.try_into().expect("8 bytes"));
        h = h.wrapping_mul(PRIME);
    }
    for &b in lanes.remainder() {
        h ^= b as u64;
        h = h.wrapping_mul(PRIME);
    }
    h ^= bytes.len() as u64;
    h.wrapping_mul(PRIME)
}

fn err(offset: u64, message: impl Into<String>) -> TraceIoError {
    TraceIoError::Bin {
        offset,
        message: message.into(),
    }
}

fn push_varint(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

/// Byte encoding of a [`FileKind`]: its position in [`FileKind::ALL`].
fn kind_byte(kind: FileKind) -> u8 {
    FileKind::ALL
        .iter()
        .position(|&k| k == kind)
        .expect("FileKind::ALL is exhaustive") as u8
}

// --- writer -----------------------------------------------------------

/// Streaming binary trace writer: day sections as they complete, intern
/// tables at [`TraceWriter::finish`].
///
/// Memory is bounded by one encoded day section; the sink sees one
/// back-patch seek (the header) at finish time.
pub struct TraceWriter<W: Write + Seek> {
    sink: W,
    days_written: u32,
    last_day: Option<u32>,
    /// Highest peer id / file ref seen in any day, validated against the
    /// tables at finish (days are written before the tables exist).
    max_peer: Option<u32>,
    max_file: Option<u32>,
    /// Set by [`TraceWriter::create`]: the `.tmp` sibling actually being
    /// written and the destination it is renamed to at finish.
    paths: Option<(PathBuf, PathBuf)>,
}

impl TraceWriter<BufWriter<File>> {
    /// Creates a binary trace file at `path`.
    ///
    /// Crash-safe: bytes stream into a `<name>.tmp` sibling and only the
    /// atomic rename inside [`TraceWriter::finish`] touches `path`, so a
    /// writer killed mid-stream (or a `finish` that fails validation)
    /// leaves whatever was at `path` before intact. An orphaned `.tmp`
    /// is simply truncated by the next attempt.
    pub fn create(path: &Path) -> Result<Self, TraceIoError> {
        let tmp = super::tmp_sibling(path);
        let make = || -> Result<Self, TraceIoError> {
            let mut w = Self::new(BufWriter::new(File::create(&tmp)?))?;
            w.paths = Some((tmp.clone(), path.to_path_buf()));
            Ok(w)
        };
        make().map_err(|e| e.with_path(path))
    }
}

impl<W: Write + Seek> TraceWriter<W> {
    /// Starts a trace stream on any seekable sink (a placeholder header
    /// is written immediately and rewritten by [`TraceWriter::finish`]).
    pub fn new(mut sink: W) -> Result<Self, TraceIoError> {
        sink.write_all(&header_bytes(0, 0, 0))?;
        Ok(TraceWriter {
            sink,
            days_written: 0,
            last_day: None,
            max_peer: None,
            max_file: None,
            paths: None,
        })
    }

    /// Appends one day section. Days must arrive strictly increasing;
    /// the snapshot's own invariants (caches sorted by peer, entries
    /// sorted and deduplicated) are re-checked during encoding.
    pub fn write_day(&mut self, snapshot: &DaySnapshot) -> Result<(), TraceIoError> {
        self.write_day_arena(&DayArena::from_snapshot(snapshot))
    }

    /// Appends one day section from its CSR form — byte-identical to
    /// [`TraceWriter::write_day`] on the equivalent snapshot, without
    /// materializing per-cache `Vec`s (a DAY section's wire layout *is*
    /// lengths plus concatenated delta-coded rows).
    pub fn write_day_arena(&mut self, day: &DayArena) -> Result<(), TraceIoError> {
        if let Some(last) = self.last_day {
            if day.day <= last {
                return Err(TraceIoError::Invalid(format!(
                    "day {} written after day {last} (days must be strictly increasing)",
                    day.day
                )));
            }
        }
        if day.offsets.len() != day.peers.len() + 1
            || day.offsets.first() != Some(&0)
            || day.offsets.last().copied().unwrap_or(0) as usize != day.entries.len()
            || day.offsets.windows(2).any(|w| w[0] > w[1])
        {
            return Err(TraceIoError::Invalid(format!(
                "day {}: malformed CSR offset table",
                day.day
            )));
        }
        let n_caches = u32::try_from(day.peers.len())
            .map_err(|_| TraceIoError::Invalid("more than u32::MAX caches in a day".into()))?;
        let mut payload = Vec::with_capacity(16 + 2 * day.peers.len());
        payload.extend_from_slice(&day.day.to_le_bytes());
        payload.extend_from_slice(&n_caches.to_le_bytes());
        let mut prev_peer: Option<u32> = None;
        for &peer in &day.peers {
            let delta = match prev_peer {
                None => peer as u64,
                Some(prev) if peer > prev => (peer - prev) as u64,
                Some(prev) => {
                    return Err(TraceIoError::Invalid(format!(
                        "day {}: peer p{peer} after p{prev}, not sorted",
                        day.day
                    )))
                }
            };
            push_varint(&mut payload, delta);
            self.max_peer = Some(self.max_peer.unwrap_or(0).max(peer));
            prev_peer = Some(peer);
        }
        for w in day.offsets.windows(2) {
            push_varint(&mut payload, (w[1] - w[0]) as u64);
        }
        for i in 0..day.peers.len() {
            let peer = day.peers[i];
            let mut prev: Option<u32> = None;
            for f in day.row(i) {
                let delta = match prev {
                    None => f.0 as u64,
                    Some(prev) if f.0 > prev => (f.0 - prev) as u64,
                    Some(prev) => {
                        return Err(TraceIoError::Invalid(format!(
                            "day {}: cache of p{peer} not sorted/deduped (f{} after f{prev})",
                            day.day, f.0
                        )))
                    }
                };
                push_varint(&mut payload, delta);
                self.max_file = Some(self.max_file.unwrap_or(0).max(f.0));
                prev = Some(f.0);
            }
        }
        self.write_section(TAG_DAY, &payload)?;
        self.days_written += 1;
        self.last_day = Some(day.day);
        Ok(())
    }

    /// Writes the intern tables and the end marker, back-patches the
    /// header, and flushes. Fails if any day referenced a peer or file
    /// outside the tables. For a writer opened with
    /// [`TraceWriter::create`], this is also the moment the `.tmp`
    /// sibling is atomically renamed onto the destination path.
    pub fn finish(mut self, files: &[FileInfo], peers: &[PeerInfo]) -> Result<W, TraceIoError> {
        let n_files = u32::try_from(files.len())
            .map_err(|_| TraceIoError::Invalid("more than u32::MAX files".into()))?;
        let n_peers = u32::try_from(peers.len())
            .map_err(|_| TraceIoError::Invalid("more than u32::MAX peers".into()))?;
        if let Some(max) = self.max_peer {
            if max as usize >= peers.len() {
                return Err(TraceIoError::Invalid(format!(
                    "day sections reference peer p{max} but the table has {n_peers} peers"
                )));
            }
        }
        if let Some(max) = self.max_file {
            if max as usize >= files.len() {
                return Err(TraceIoError::Invalid(format!(
                    "day sections reference file f{max} but the table has {n_files} files"
                )));
            }
        }

        let table_offset = self.sink.stream_position()?;

        let mut payload = Vec::with_capacity(files.len() * 22);
        for f in files {
            payload.extend_from_slice(&f.id.0);
        }
        for f in files {
            push_varint(&mut payload, f.size);
        }
        for f in files {
            payload.push(kind_byte(f.kind));
        }
        self.write_section(TAG_FILES, &payload)?;

        payload.clear();
        for p in peers {
            payload.extend_from_slice(&p.uid.0);
        }
        for p in peers {
            payload.extend_from_slice(&p.ip.to_le_bytes());
        }
        for p in peers {
            payload.extend_from_slice(&p.country.0);
        }
        for p in peers {
            push_varint(&mut payload, p.asn as u64);
        }
        self.write_section(TAG_PEERS, &payload)?;

        let end_payload = self.days_written.to_le_bytes();
        self.write_section(TAG_END, &end_payload)?;

        self.sink.seek(SeekFrom::Start(0))?;
        self.sink
            .write_all(&header_bytes(n_files, n_peers, table_offset))?;
        self.sink.flush()?;
        if let Some((tmp, dest)) = self.paths.take() {
            std::fs::rename(&tmp, &dest).map_err(|e| TraceIoError::Io(e).with_path(&dest))?;
        }
        Ok(self.sink)
    }

    fn write_section(&mut self, tag: u8, payload: &[u8]) -> Result<(), TraceIoError> {
        self.sink.write_all(&[tag])?;
        self.sink.write_all(&(payload.len() as u64).to_le_bytes())?;
        self.sink.write_all(payload)?;
        self.sink.write_all(&fnv1a64(payload).to_le_bytes())?;
        Ok(())
    }
}

/// Renders the 33-byte header for the given table geometry.
fn header_bytes(n_files: u32, n_peers: u32, table_offset: u64) -> [u8; HEADER_LEN as usize] {
    let mut h = [0u8; HEADER_LEN as usize];
    h[0..8].copy_from_slice(&MAGIC);
    h[8] = FORMAT_VERSION;
    h[9..13].copy_from_slice(&n_files.to_le_bytes());
    h[13..17].copy_from_slice(&n_peers.to_le_bytes());
    h[17..25].copy_from_slice(&table_offset.to_le_bytes());
    let checksum = fnv1a64(&h[0..25]);
    h[25..33].copy_from_slice(&checksum.to_le_bytes());
    h
}

// --- reader -----------------------------------------------------------

/// Streaming binary trace reader: the intern tables are loaded up front
/// (one seek to the trailing table region), then day sections decode
/// one at a time — resident memory is the tables plus one
/// [`DaySnapshot`], never the whole trace.
pub struct TraceReader<R: Read + Seek> {
    src: R,
    files: Vec<FileInfo>,
    peers: Vec<PeerInfo>,
    declared_days: u32,
    days_read: u32,
    last_day: Option<u32>,
    /// Current absolute offset within the day region.
    pos: u64,
    table_offset: u64,
}

impl TraceReader<BufReader<File>> {
    /// Opens a binary trace file. Errors carry the file path.
    pub fn open(path: &Path) -> Result<Self, TraceIoError> {
        let open =
            || -> Result<Self, TraceIoError> { Self::new(BufReader::new(File::open(path)?)) };
        open().map_err(|e| e.with_path(path))
    }
}

impl<R: Read + Seek> TraceReader<R> {
    /// Validates the header, tables and end marker of `src` and
    /// positions the stream at the first day section.
    pub fn new(mut src: R) -> Result<Self, TraceIoError> {
        let file_len = src.seek(SeekFrom::End(0))?;
        src.seek(SeekFrom::Start(0))?;
        if file_len < HEADER_LEN {
            return Err(err(
                0,
                format!("file too short for a header ({file_len} bytes)"),
            ));
        }
        let mut header = [0u8; HEADER_LEN as usize];
        src.read_exact(&mut header)?;
        if header[0..8] != MAGIC {
            return Err(err(0, "bad magic (not a binary trace file)"));
        }
        if header[8] != FORMAT_VERSION {
            return Err(err(
                8,
                format!(
                    "unsupported format version {} (this build reads {FORMAT_VERSION})",
                    header[8]
                ),
            ));
        }
        let stored = u64::from_le_bytes(header[25..33].try_into().expect("8 bytes"));
        if stored != fnv1a64(&header[0..25]) {
            return Err(err(25, "header checksum mismatch"));
        }
        let n_files = u32::from_le_bytes(header[9..13].try_into().expect("4 bytes"));
        let n_peers = u32::from_le_bytes(header[13..17].try_into().expect("4 bytes"));
        let table_offset = u64::from_le_bytes(header[17..25].try_into().expect("8 bytes"));
        if table_offset < HEADER_LEN || table_offset > file_len {
            return Err(err(
                17,
                format!("table offset {table_offset} outside the file"),
            ));
        }

        // Tables + end marker first (one seek), then back to the days.
        src.seek(SeekFrom::Start(table_offset))?;
        let mut pos = table_offset;
        let payload = read_section(&mut src, &mut pos, file_len, TAG_FILES)?;
        let files = decode_files(&payload, n_files, pos)?;
        let payload = read_section(&mut src, &mut pos, file_len, TAG_PEERS)?;
        let peers = decode_peers(&payload, n_peers, pos)?;
        let payload = read_section(&mut src, &mut pos, file_len, TAG_END)?;
        if payload.len() != 4 {
            return Err(err(pos, "end marker payload must be 4 bytes"));
        }
        let declared_days = u32::from_le_bytes(payload[..].try_into().expect("4 bytes"));
        if pos != file_len {
            return Err(err(pos, "trailing data after end marker"));
        }

        src.seek(SeekFrom::Start(HEADER_LEN))?;
        Ok(TraceReader {
            src,
            files,
            peers,
            declared_days,
            days_read: 0,
            last_day: None,
            pos: HEADER_LEN,
            table_offset,
        })
    }

    /// The file intern table.
    pub fn files(&self) -> &[FileInfo] {
        &self.files
    }

    /// The peer intern table.
    pub fn peers(&self) -> &[PeerInfo] {
        &self.peers
    }

    /// Number of day sections the file declares.
    pub fn declared_days(&self) -> u32 {
        self.declared_days
    }

    /// Decodes the next day section, or `None` after the last one.
    ///
    /// Each snapshot is validated in full (day order, peer order and
    /// range, entry order and range) before it is returned.
    pub fn next_day(&mut self) -> Result<Option<DaySnapshot>, TraceIoError> {
        Ok(self.next_day_arena()?.map(|d| d.to_snapshot()))
    }

    /// Decodes the next day section straight into CSR form, or `None`
    /// after the last one — the allocation-lean path streaming
    /// transforms (e.g. `pipeline::filter_streaming`) consume: one flat
    /// entry buffer per day instead of one `Vec` per cache. Validation
    /// is identical to [`TraceReader::next_day`].
    pub fn next_day_arena(&mut self) -> Result<Option<DayArena>, TraceIoError> {
        if self.pos == self.table_offset {
            if self.days_read != self.declared_days {
                return Err(err(
                    self.pos,
                    format!(
                        "day region ended after {} sections but the end marker declares {}",
                        self.days_read, self.declared_days
                    ),
                ));
            }
            return Ok(None);
        }
        let payload = read_section(&mut self.src, &mut self.pos, self.table_offset, TAG_DAY)?;
        let day = decode_day_arena(&payload, self.peers.len(), self.files.len(), self.pos)?;
        if let Some(last) = self.last_day {
            if day.day <= last {
                return Err(err(
                    self.pos,
                    format!("day {} after day {last}: not strictly increasing", day.day),
                ));
            }
        }
        self.days_read += 1;
        if self.days_read > self.declared_days {
            return Err(err(
                self.pos,
                format!("more day sections than the declared {}", self.declared_days),
            ));
        }
        self.last_day = Some(day.day);
        Ok(Some(day))
    }

    /// Drains the remaining days into a complete [`Trace`].
    pub fn into_trace(mut self) -> Result<Trace, TraceIoError> {
        let mut days = Vec::new();
        while let Some(day) = self.next_day()? {
            days.push(day);
        }
        // No final `check_invariants` pass: `next_day` already enforced
        // day ordering and, per snapshot, peer/entry ordering and range
        // — a full re-walk here would double the decode cost.
        let trace = Trace {
            files: self.files,
            peers: self.peers,
            days,
        };
        debug_assert_eq!(trace.check_invariants(), Ok(()));
        Ok(trace)
    }
}

/// Reads one section frame, expecting `expected_tag`. Bounds every read
/// against `limit` (the physical end of the region) *before* allocating,
/// so a corrupted length field cannot trigger an oversized allocation.
fn read_section<R: Read>(
    src: &mut R,
    pos: &mut u64,
    limit: u64,
    expected_tag: u8,
) -> Result<Vec<u8>, TraceIoError> {
    if limit - *pos < SECTION_OVERHEAD {
        return Err(err(*pos, "truncated section frame"));
    }
    let mut tag = [0u8; 1];
    src.read_exact(&mut tag)?;
    if tag[0] != expected_tag {
        return Err(err(
            *pos,
            format!("expected section tag {expected_tag}, found {}", tag[0]),
        ));
    }
    let mut len_bytes = [0u8; 8];
    src.read_exact(&mut len_bytes)?;
    let payload_len = u64::from_le_bytes(len_bytes);
    if payload_len > limit - *pos - SECTION_OVERHEAD {
        return Err(err(
            *pos + 1,
            format!(
                "section claims {payload_len} payload bytes, only {} remain",
                limit - *pos - SECTION_OVERHEAD
            ),
        ));
    }
    let mut payload = vec![0u8; payload_len as usize];
    src.read_exact(&mut payload)?;
    let mut checksum = [0u8; 8];
    src.read_exact(&mut checksum)?;
    if u64::from_le_bytes(checksum) != fnv1a64(&payload) {
        return Err(err(*pos, "section checksum mismatch"));
    }
    *pos += SECTION_OVERHEAD + payload_len;
    Ok(payload)
}

/// Bounds-checked cursor over one section payload. `base` is the
/// payload's absolute offset so errors carry file positions.
struct PayloadCursor<'a> {
    buf: &'a [u8],
    pos: usize,
    base: u64,
}

impl<'a> PayloadCursor<'a> {
    fn new(buf: &'a [u8], section_end: u64) -> Self {
        PayloadCursor {
            buf,
            pos: 0,
            base: section_end - buf.len() as u64 - 8,
        }
    }

    fn err(&self, message: impl Into<String>) -> TraceIoError {
        err(self.base + self.pos as u64, message)
    }

    fn bytes(&mut self, n: usize) -> Result<&'a [u8], TraceIoError> {
        if self.buf.len() - self.pos < n {
            return Err(self.err(format!(
                "payload truncated: need {n} bytes, have {}",
                self.buf.len() - self.pos
            )));
        }
        let out = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    fn u32(&mut self) -> Result<u32, TraceIoError> {
        Ok(u32::from_le_bytes(
            self.bytes(4)?.try_into().expect("4 bytes"),
        ))
    }

    fn varint(&mut self) -> Result<u64, TraceIoError> {
        let mut v: u64 = 0;
        let mut shift = 0u32;
        loop {
            let Some(&byte) = self.buf.get(self.pos) else {
                return Err(self.err("payload truncated inside a varint"));
            };
            self.pos += 1;
            if shift == 63 && byte > 1 {
                return Err(self.err("varint overflows u64"));
            }
            v |= ((byte & 0x7f) as u64) << shift;
            if byte & 0x80 == 0 {
                return Ok(v);
            }
            shift += 7;
            if shift > 63 {
                return Err(self.err("varint longer than 10 bytes"));
            }
        }
    }

    /// A varint that must fit `u32` (ids, gaps, cache lengths).
    fn varint32(&mut self, what: &str) -> Result<u32, TraceIoError> {
        let v = self.varint()?;
        u32::try_from(v).map_err(|_| self.err(format!("{what} {v} exceeds u32")))
    }

    fn finish(&self) -> Result<(), TraceIoError> {
        if self.pos != self.buf.len() {
            return Err(self.err("trailing bytes in section payload"));
        }
        Ok(())
    }
}

fn decode_files(
    payload: &[u8],
    n_files: u32,
    section_end: u64,
) -> Result<Vec<FileInfo>, TraceIoError> {
    let n = n_files as usize;
    let mut c = PayloadCursor::new(payload, section_end);
    // The columns below consume at least 18 bytes per file; reject an
    // inflated count before sizing any buffer from it.
    if (payload.len() as u64) < 18 * n_files as u64 {
        return Err(c.err(format!(
            "files section too small for {n_files} declared files"
        )));
    }
    let ids = c.bytes(16 * n)?;
    let mut files = Vec::with_capacity(n);
    for i in 0..n {
        let id = Digest(ids[16 * i..16 * (i + 1)].try_into().expect("16 bytes"));
        files.push(FileInfo {
            id,
            size: 0,
            kind: FileKind::Document,
        });
    }
    for f in files.iter_mut() {
        f.size = c.varint()?;
    }
    let kinds = c.bytes(n)?;
    for (f, &k) in files.iter_mut().zip(kinds) {
        f.kind = *FileKind::ALL
            .get(k as usize)
            .ok_or_else(|| err(section_end, format!("unknown file kind byte {k}")))?;
    }
    c.finish()?;
    Ok(files)
}

fn decode_peers(
    payload: &[u8],
    n_peers: u32,
    section_end: u64,
) -> Result<Vec<PeerInfo>, TraceIoError> {
    let n = n_peers as usize;
    let mut c = PayloadCursor::new(payload, section_end);
    // uid + ip + country + ≥1 asn byte per peer.
    if (payload.len() as u64) < 23 * n_peers as u64 {
        return Err(c.err(format!(
            "peers section too small for {n_peers} declared peers"
        )));
    }
    let uids = c.bytes(16 * n)?;
    let ips = c.bytes(4 * n)?;
    let ccs = c.bytes(2 * n)?;
    let mut peers = Vec::with_capacity(n);
    for i in 0..n {
        let cc = [ccs[2 * i], ccs[2 * i + 1]];
        if !cc.iter().all(u8::is_ascii_alphabetic) {
            return Err(err(
                section_end,
                format!("bad country code bytes {:?} for peer {i}", cc),
            ));
        }
        peers.push(PeerInfo {
            uid: Digest(uids[16 * i..16 * (i + 1)].try_into().expect("16 bytes")),
            ip: u32::from_le_bytes(ips[4 * i..4 * (i + 1)].try_into().expect("4 bytes")),
            country: CountryCode([cc[0].to_ascii_uppercase(), cc[1].to_ascii_uppercase()]),
            asn: 0,
        });
    }
    for p in peers.iter_mut() {
        p.asn = c.varint32("asn")?;
    }
    c.finish()?;
    Ok(peers)
}

fn decode_day_arena(
    payload: &[u8],
    n_peers: usize,
    n_files: usize,
    section_end: u64,
) -> Result<DayArena, TraceIoError> {
    let mut c = PayloadCursor::new(payload, section_end);
    let day = c.u32()?;
    let n_caches = c.u32()? as usize;
    // Each cache costs at least one peer-gap byte and one length byte.
    if n_caches > payload.len() {
        return Err(c.err(format!(
            "day section too small for {n_caches} declared caches"
        )));
    }
    let mut peers = Vec::with_capacity(n_caches);
    let mut prev: Option<u32> = None;
    for _ in 0..n_caches {
        let delta = c.varint32("peer id delta")?;
        let peer = match prev {
            None => delta,
            Some(prev) => {
                if delta == 0 {
                    return Err(c.err("zero peer-id gap (duplicate or unsorted peer)"));
                }
                prev.checked_add(delta)
                    .ok_or_else(|| c.err("peer id overflows u32"))?
            }
        };
        if peer as usize >= n_peers {
            return Err(c.err(format!("peer p{peer} out of range ({n_peers} peers)")));
        }
        prev = Some(peer);
        peers.push(peer);
    }
    let mut offsets = Vec::with_capacity(n_caches + 1);
    offsets.push(0u32);
    let mut total: u64 = 0;
    for _ in 0..n_caches {
        let len = c.varint32("cache length")?;
        total += len as u64;
        // Every entry costs at least one byte; reject inflated lengths
        // before any cache buffer is sized from them.
        if total > payload.len() as u64 {
            return Err(c.err(format!(
                "declared cache entries ({total}) exceed the section payload"
            )));
        }
        offsets.push(total as u32);
    }
    let mut entries = Vec::with_capacity(total as usize);
    for i in 0..peers.len() {
        let len = (offsets[i + 1] - offsets[i]) as usize;
        let mut prev: Option<u32> = None;
        for _ in 0..len {
            let delta = c.varint32("file ref delta")?;
            let f = match prev {
                None => delta,
                Some(prev) => {
                    if delta == 0 {
                        return Err(c.err("zero file-ref gap (duplicate or unsorted entry)"));
                    }
                    prev.checked_add(delta)
                        .ok_or_else(|| c.err("file ref overflows u32"))?
                }
            };
            if f as usize >= n_files {
                return Err(c.err(format!("file f{f} out of range ({n_files} files)")));
            }
            prev = Some(f);
            entries.push(FileRef(f));
        }
    }
    c.finish()?;
    Ok(DayArena {
        day,
        peers,
        offsets,
        entries,
    })
}

// --- whole-trace conveniences -----------------------------------------

/// Saves a trace in the binary columnar format (crash-safe: tmp sibling
/// + atomic rename, via [`TraceWriter::create`]).
pub fn save_bin(trace: &Trace, path: &Path) -> Result<(), TraceIoError> {
    let save = || -> Result<(), TraceIoError> {
        let mut writer = TraceWriter::create(path)?;
        for day in &trace.days {
            writer.write_day(day)?;
        }
        writer.finish(&trace.files, &trace.peers)?;
        Ok(())
    };
    save().map_err(|e| e.with_path(path))
}

/// Loads a binary trace file. Errors carry the file path.
pub fn load_bin(path: &Path) -> Result<Trace, TraceIoError> {
    let load = || -> Result<Trace, TraceIoError> { TraceReader::open(path)?.into_trace() };
    load().map_err(|e| e.with_path(path))
}

/// Encodes a trace to binary bytes in memory.
pub fn to_bin(trace: &Trace) -> Vec<u8> {
    let mut writer = TraceWriter::new(Cursor::new(Vec::new())).expect("in-memory sink");
    for day in &trace.days {
        writer.write_day(day).expect("valid trace encodes");
    }
    writer
        .finish(&trace.files, &trace.peers)
        .expect("valid trace encodes")
        .into_inner()
}

/// Decodes a binary trace from bytes in memory.
pub fn from_bin(bytes: &[u8]) -> Result<Trace, TraceIoError> {
    TraceReader::new(Cursor::new(bytes))?.into_trace()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::TraceBuilder;
    use edonkey_proto::md4::Md4;

    fn sample_trace() -> Trace {
        let mut b = TraceBuilder::new();
        let p0 = b.intern_peer(PeerInfo {
            uid: Md4::digest(b"u0"),
            ip: 100,
            country: CountryCode::new("FR"),
            asn: 3215,
        });
        let p1 = b.intern_peer(PeerInfo {
            uid: Md4::digest(b"u1"),
            ip: 200,
            country: CountryCode::new("DE"),
            asn: 3320,
        });
        let f0 = b.intern_file(FileInfo {
            id: Md4::digest(b"f0"),
            size: 4_000_000,
            kind: FileKind::Audio,
        });
        let f1 = b.intern_file(FileInfo {
            id: Md4::digest(b"f1"),
            size: 700_000_000,
            kind: FileKind::Video,
        });
        b.observe(350, p0, vec![f0, f1]);
        b.observe(350, p1, vec![]);
        b.observe(351, p0, vec![f1]);
        b.finish()
    }

    #[test]
    fn round_trips_in_memory() {
        let trace = sample_trace();
        assert_eq!(from_bin(&to_bin(&trace)).unwrap(), trace);
    }

    #[test]
    fn round_trips_empty_and_dayless_traces() {
        let empty = Trace::new();
        assert_eq!(from_bin(&to_bin(&empty)).unwrap(), empty);
        let mut dayless = sample_trace();
        dayless.days.clear();
        assert_eq!(from_bin(&to_bin(&dayless)).unwrap(), dayless);
    }

    #[test]
    fn round_trips_on_disk() {
        let trace = sample_trace();
        let dir = std::env::temp_dir().join("edonkey-trace-test-bin");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("t.edt");
        save_bin(&trace, &path).unwrap();
        assert_eq!(load_bin(&path).unwrap(), trace);
    }

    #[test]
    fn streaming_reader_yields_days_in_order() {
        let trace = sample_trace();
        let bytes = to_bin(&trace);
        let mut reader = TraceReader::new(Cursor::new(&bytes[..])).unwrap();
        assert_eq!(reader.files(), &trace.files[..]);
        assert_eq!(reader.peers(), &trace.peers[..]);
        assert_eq!(reader.declared_days(), 2);
        let d0 = reader.next_day().unwrap().unwrap();
        assert_eq!(d0, trace.days[0]);
        let d1 = reader.next_day().unwrap().unwrap();
        assert_eq!(d1, trace.days[1]);
        assert!(reader.next_day().unwrap().is_none());
        assert!(reader.next_day().unwrap().is_none(), "None is sticky");
    }

    #[test]
    fn interrupted_write_leaves_the_original_intact() {
        let dir = std::env::temp_dir().join("edonkey-trace-test-atomic");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("t.edt");
        let trace = sample_trace();
        save_bin(&trace, &path).unwrap();

        // A writer killed mid-stream: one day written, never finished.
        {
            let mut w = TraceWriter::create(&path).unwrap();
            w.write_day(&trace.days[0]).unwrap();
            // dropped here without finish — the simulated crash
        }
        assert_eq!(
            load_bin(&path).unwrap(),
            trace,
            "an unfinished write must not clobber the original"
        );
        let tmp = path.with_file_name("t.edt.tmp");
        assert!(tmp.exists(), "the partial write lands in the tmp sibling");

        // A finish that fails validation must not install either.
        let mut w = TraceWriter::create(&path).unwrap();
        for day in &trace.days {
            w.write_day(day).unwrap();
        }
        assert!(w.finish(&trace.files[..1], &trace.peers).is_err());
        assert_eq!(load_bin(&path).unwrap(), trace);

        // A clean save truncates the orphaned tmp and installs.
        save_bin(&trace, &path).unwrap();
        assert!(!tmp.exists(), "finish consumes the tmp sibling");
        assert_eq!(load_bin(&path).unwrap(), trace);
    }

    #[test]
    fn writer_rejects_out_of_order_days() {
        let trace = sample_trace();
        let mut w = TraceWriter::new(Cursor::new(Vec::new())).unwrap();
        w.write_day(&trace.days[1]).unwrap();
        assert!(matches!(
            w.write_day(&trace.days[0]),
            Err(TraceIoError::Invalid(_))
        ));
    }

    #[test]
    fn writer_rejects_refs_outside_tables() {
        let trace = sample_trace();
        let mut w = TraceWriter::new(Cursor::new(Vec::new())).unwrap();
        for day in &trace.days {
            w.write_day(day).unwrap();
        }
        // Tables too small for the written day sections.
        assert!(matches!(
            w.finish(&trace.files[..1], &trace.peers),
            Err(TraceIoError::Invalid(_))
        ));
    }

    #[test]
    fn version_mismatch_is_rejected() {
        let mut bytes = to_bin(&sample_trace());
        bytes[8] = FORMAT_VERSION + 1;
        // Re-checksum so the version check itself is what fires.
        let sum = fnv1a64(&bytes[0..25]);
        bytes[25..33].copy_from_slice(&sum.to_le_bytes());
        match from_bin(&bytes) {
            Err(TraceIoError::Bin { message, .. }) => {
                assert!(message.contains("version"), "{message}");
            }
            other => panic!("expected version error, got {other:?}"),
        }
    }

    #[test]
    fn header_tampering_is_detected() {
        let mut bytes = to_bin(&sample_trace());
        bytes[10] ^= 0xff; // n_files, without fixing the checksum
        match from_bin(&bytes) {
            Err(TraceIoError::Bin { message, .. }) => {
                assert!(message.contains("checksum"), "{message}");
            }
            other => panic!("expected checksum error, got {other:?}"),
        }
    }

    #[test]
    fn varints_round_trip_at_extremes() {
        for v in [0u64, 1, 127, 128, 16_383, 16_384, u32::MAX as u64, u64::MAX] {
            let mut buf = Vec::new();
            push_varint(&mut buf, v);
            let mut c = PayloadCursor::new(&buf, buf.len() as u64 + 8);
            assert_eq!(c.varint().unwrap(), v);
            assert!(c.finish().is_ok());
        }
    }

    #[test]
    fn overlong_varint_is_rejected() {
        let buf = [0x80u8; 11];
        let mut c = PayloadCursor::new(&buf, buf.len() as u64 + 8);
        assert!(c.varint().is_err());
    }

    #[test]
    fn arena_write_path_is_byte_identical_to_row_path() {
        let trace = sample_trace();
        let arena = crate::compact::TraceArena::from_trace(&trace);
        let mut writer = TraceWriter::new(Cursor::new(Vec::new())).unwrap();
        for day in &arena.days {
            writer.write_day_arena(day).unwrap();
        }
        let bytes = writer
            .finish(&trace.files, &trace.peers)
            .unwrap()
            .into_inner();
        assert_eq!(bytes, to_bin(&trace));
    }

    #[test]
    fn arena_read_path_yields_csr_days() {
        let trace = sample_trace();
        let bytes = to_bin(&trace);
        let mut reader = TraceReader::new(Cursor::new(&bytes[..])).unwrap();
        for day in &trace.days {
            let got = reader.next_day_arena().unwrap().unwrap();
            assert_eq!(got, DayArena::from_snapshot(day));
            got.check_invariants(trace.peers.len(), trace.files.len())
                .unwrap();
        }
        assert!(reader.next_day_arena().unwrap().is_none());
    }

    #[test]
    fn malformed_arena_csr_is_rejected_by_writer() {
        let mut day = DayArena::new(350);
        day.peers.push(0);
        day.offsets.push(5); // declares 5 entries, but `entries` is empty
        let mut writer = TraceWriter::new(Cursor::new(Vec::new())).unwrap();
        match writer.write_day_arena(&day) {
            Err(TraceIoError::Invalid(message)) => {
                assert!(message.contains("CSR"), "{message}");
            }
            other => panic!("expected Invalid, got {other:?}"),
        }
    }
}
